"""Elastic reshape: rank teams grow/shrink at safe points, no relaunch.

The load-bearing guarantees of :mod:`repro.elastic`:

* on the elastic backends (threads / simcluster / multiproc) an
  adaptation chain with at least one grow and one shrink completes
  without a single phase relaunch, bit-identical to the sequential
  reference;
* checkpoints written across membership transitions stay byte-identical
  to every other backend's at matching safe points (the mode-independent
  format survives elasticity);
* grow-then-fail-then-restart chains recover correctly — relaunch stays
  the recovery path under an elastic backend;
* park/un-park cycles leak nothing: no worker threads, no worker
  processes, no shared-memory segments outlive the run;
* the move schedule a :class:`ReshapePlan` derives from the partition
  layouts reassembles exactly the regions each new owner needs;
* the advisor's per-backend calibrated transition costs rank an
  in-place reshape below a process relaunch.
"""

import multiprocessing
import os
import threading

import numpy as np
import pytest

from repro.apps.plugs.sor_plugs import SOR_ADAPTIVE
from repro.apps.sor import SOR
from repro.ckpt import EveryN, FailureInjector
from repro.core import (
    AdaptStep,
    AdaptationPlan,
    ExecConfig,
    Runtime,
    plug,
)
from repro.core.advisor import SelfAdaptationAdvisor
from repro.dsm import shm
from repro.dsm.partition import BlockLayout, CyclicLayout, HybridLayout
from repro.elastic import ReshapePlan
from repro.exec import MultiprocessBackend, build_default_registry
from repro.vtime import MachineModel

MACHINE = MachineModel(nodes=2, cores_per_node=4)
N, ITERS = 40, 12
REF = SOR(n=N, iterations=ITERS).execute()
WOVEN = plug(SOR, SOR_ADAPTIVE)

GROW_AT, SHRINK_AT = 3, 7


def mp_cfg(n: int) -> ExecConfig:
    return ExecConfig.distributed(n).with_backend("multiproc")


def grow_shrink_plan(shapes) -> AdaptationPlan:
    lo, hi = shapes
    return AdaptationPlan([AdaptStep(at=GROW_AT, config=hi),
                           AdaptStep(at=SHRINK_AT, config=lo)])


#: label -> (start config, (small shape, big shape)) per elastic backend.
ELASTIC = {
    "threads": (ExecConfig.shared(2),
                (ExecConfig.shared(2), ExecConfig.shared(4))),
    "simcluster": (ExecConfig.distributed(2),
                   (ExecConfig.distributed(2), ExecConfig.distributed(4))),
    "multiproc": (mp_cfg(2), (mp_cfg(2), mp_cfg(4))),
}


def run_sor(tmp_path, config, tag, **kw):
    rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / tag,
                 policy=kw.pop("policy", None),
                 ckpt_strategy=kw.pop("ckpt_strategy", "master"))
    res = rt.run(WOVEN, ctor_kwargs={"n": N, "iterations": ITERS},
                 entry="execute", config=config, fresh=True, **kw)
    return rt, res


# ---------------------------------------------------------------------------
# the acceptance chain: grow + shrink, zero relaunches, identical result
# ---------------------------------------------------------------------------
class TestGrowShrinkWithoutRelaunch:
    @pytest.mark.parametrize("label", sorted(ELASTIC))
    def test_chain_runs_in_place(self, tmp_path, label):
        start, shapes = ELASTIC[label]
        _, res = run_sor(tmp_path, start, f"el-{label}",
                         plan=grow_shrink_plan(shapes))
        assert res.value == REF, label
        assert res.relaunches == 0, (label, res.phases)
        assert len(res.phases) == 1
        kinds = [a.extra["kind"] for a in res.in_place_reshapes]
        assert len(kinds) == 2, (label, res.adaptations)
        assert res.final_config == shapes[0]
        # grow and shrink both reported at their planned safe points
        ats = [a.at_count for a in res.in_place_reshapes]
        assert ats == [GROW_AT, SHRINK_AT]

    @pytest.mark.parametrize("label", ["simcluster", "multiproc"])
    def test_rank_reshape_events_emitted(self, tmp_path, label):
        start, shapes = ELASTIC[label]
        _, res = run_sor(tmp_path, start, f"ev-{label}",
                         plan=grow_shrink_plan(shapes))
        reshapes = res.events.of_kind("reshape")
        grew = [e for e in reshapes if e.data["grew"]]
        shrank = [e for e in reshapes if not e.data["grew"]]
        assert grew and shrank
        # vtime stays monotone through both transitions.  Only a single
        # rank's stream is ordered (ranks append to the shared log in
        # host order): safepoint events are rank 0's own sequence.
        vts = [e.vtime for e in res.events.of_kind("safepoint")]
        assert len(vts) == ITERS
        assert all(a <= b for a, b in zip(vts, vts[1:]))
        assert res.vtime >= max(e.vtime for e in reshapes)

    def test_in_place_false_forces_relaunch(self, tmp_path):
        """The same chain with ``in_place=False`` pays two relaunches —
        the reshape-vs-relaunch benchmark's control arm."""
        start, (lo, hi) = ELASTIC["simcluster"]
        plan = AdaptationPlan([
            AdaptStep(at=GROW_AT, config=hi, in_place=False),
            AdaptStep(at=SHRINK_AT, config=lo, in_place=False)])
        _, res = run_sor(tmp_path, start, "forced", plan=plan)
        assert res.value == REF
        assert res.relaunches == 2
        assert res.in_place_reshapes == []

    def test_spawn_start_method_reshapes_in_place(self, tmp_path):
        """Under "spawn" the un-park control path works like under fork:
        the AdaptStep/segment metadata in the un-park message is pickled
        with the rest of the child task."""
        if "spawn" not in multiprocessing.get_all_start_methods():
            pytest.skip("platform has no spawn start method")
        reg = build_default_registry()
        reg.register(MultiprocessBackend(start_method="spawn"),
                     replace=True)
        _, shapes = ELASTIC["multiproc"]
        rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "spawn",
                     registry=reg)
        res = rt.run(WOVEN, ctor_kwargs={"n": N, "iterations": ITERS},
                     entry="execute", config=mp_cfg(2),
                     plan=grow_shrink_plan(shapes), fresh=True)
        assert res.value == REF
        assert res.relaunches == 0
        assert len(res.in_place_reshapes) == 2

    def test_grow_from_single_rank(self, tmp_path):
        plan = AdaptationPlan([
            AdaptStep(at=GROW_AT, config=ExecConfig.distributed(3))])
        _, res = run_sor(tmp_path, ExecConfig.distributed(1), "one",
                         plan=plan)
        assert res.value == REF
        assert res.relaunches == 0


# ---------------------------------------------------------------------------
# checkpoint parity across all five backends, reshapes included
# ---------------------------------------------------------------------------
class TestCheckpointParityAcrossReshapes:
    def test_identical_checkpoint_bytes(self, tmp_path):
        """EveryN(4) checkpoints bracket the grow (at 3) and shrink (at
        7): every backend — elastically reshaping or relaunching — must
        write byte-identical field data at matching safe points."""
        stores = {}
        runs = dict(ELASTIC)
        runs["hybrid"] = (ExecConfig.hybrid(2, 2),
                          (ExecConfig.hybrid(2, 2), ExecConfig.hybrid(4, 2)))
        for label, (start, shapes) in runs.items():
            rt, res = run_sor(tmp_path, start, f"ck-{label}",
                              plan=grow_shrink_plan(shapes),
                              policy=EveryN(4))
            assert res.value == REF, label
            stores[label] = rt.store
        rt0, res0 = run_sor(tmp_path, ExecConfig.sequential(), "ck-ref",
                            policy=EveryN(4))
        counts = rt0.store.counts()
        assert counts, "no checkpoints taken"
        for count in counts:
            ref = rt0.store.read(count).field_blobs()
            for label, store in stores.items():
                assert store.read(count).field_blobs() == ref, \
                    f"checkpoint {count} differs in {label}"


    def test_checkpoint_at_the_reshape_safepoint(self, tmp_path):
        """EveryN(1) checkpoints collide with both transitions: the
        capture always sees the pre-reshape membership and stays
        byte-identical to the sequential stream."""
        start, shapes = ELASTIC["multiproc"]
        rt, res = run_sor(tmp_path, start, "col", policy=EveryN(1),
                          plan=grow_shrink_plan(shapes))
        assert res.value == REF and res.relaunches == 0
        rt0, _ = run_sor(tmp_path, ExecConfig.sequential(), "col-ref",
                         policy=EveryN(1))
        for c in rt0.store.counts():
            assert rt.store.read(c).field_blobs() == \
                rt0.store.read(c).field_blobs(), c

    def test_local_shards_follow_the_membership(self, tmp_path):
        """STRATEGY_LOCAL across a reshape: each safe point's shard set
        matches the membership that saved it, and every set still
        reassembles into the sequential reference state."""
        start, shapes = ELASTIC["simcluster"]
        rt, res = run_sor(tmp_path, start, "loc", policy=EveryN(1),
                          plan=grow_shrink_plan(shapes),
                          ckpt_strategy="local")
        assert res.value == REF and res.relaunches == 0
        widths = {c: len(r) for c, r in rt.store.shard_counts().items()}
        assert widths[GROW_AT] == 2      # captured before the grow
        assert widths[GROW_AT + 1] == 4  # first save of the grown team
        assert widths[SHRINK_AT + 1] == 2
        parts = WOVEN.__pp_plugs__.partitioned_fields()
        mid = rt.store.assemble_from_shards(GROW_AT + 2, parts)
        ref = SOR(n=N, iterations=GROW_AT + 2)
        ref.execute()
        assert np.array_equal(mid.fields["G"], ref.G)


# ---------------------------------------------------------------------------
# failure during / after an elastic chain: restart stays the recovery path
# ---------------------------------------------------------------------------
class TestGrowFailRestart:
    @pytest.mark.parametrize("label", sorted(ELASTIC))
    def test_grow_then_fail_then_restart(self, tmp_path, label):
        start, (lo, hi) = ELASTIC[label]
        plan = AdaptationPlan([AdaptStep(at=GROW_AT, config=hi)])
        _, res = run_sor(tmp_path, start, f"gfr-{label}", plan=plan,
                         policy=EveryN(2),
                         injector=FailureInjector(fail_at=SHRINK_AT),
                         auto_recover=True)
        assert res.value == REF, label
        assert res.restarts == 1
        # the grow itself ran in place before the crash
        assert len(res.in_place_reshapes) >= 1
        # recovery resumed in the grown shape (config follows reshapes)
        assert res.final_config == hi

    def test_grow_shrink_then_fail(self, tmp_path):
        start, shapes = ELASTIC["multiproc"]
        plan = grow_shrink_plan(shapes)
        _, res = run_sor(tmp_path, start, "gsf", plan=plan,
                         policy=EveryN(2),
                         injector=FailureInjector(fail_at=10),
                         auto_recover=True)
        assert res.value == REF
        assert res.restarts == 1


# ---------------------------------------------------------------------------
# lifecycle: park/un-park cycles leak nothing
# ---------------------------------------------------------------------------
class TestNoLeaks:
    def test_repeated_grow_shrink_cycles(self, tmp_path):
        """Two full park/un-park cycles on the process backend plus an
        elastic simcluster chain: afterwards no worker thread, worker
        process or shared-memory segment survives."""
        plan = AdaptationPlan([
            AdaptStep(at=2, config=mp_cfg(4)),
            AdaptStep(at=5, config=mp_cfg(2)),
            AdaptStep(at=8, config=mp_cfg(3)),
            AdaptStep(at=10, config=mp_cfg(2)),
        ])
        _, res = run_sor(tmp_path, mp_cfg(2), "cycles", plan=plan)
        assert res.value == REF
        assert res.relaunches == 0
        assert len(res.in_place_reshapes) == 4

        plan2 = grow_shrink_plan(ELASTIC["simcluster"][1])
        _, res2 = run_sor(tmp_path, ExecConfig.distributed(2), "cyc-sim",
                          plan=plan2)
        assert res2.value == REF

        stray = [t.name for t in threading.enumerate()
                 if t.name.startswith(("team-w", "rank-"))]
        assert stray == [], f"leaked worker threads: {stray}"
        procs = [p.name for p in multiprocessing.active_children()
                 if p.name.startswith("mp-rank-")]
        assert procs == [], f"leaked worker processes: {procs}"
        assert shm.live_segments() == []
        if os.path.isdir("/dev/shm"):
            left = [f for f in os.listdir("/dev/shm")
                    if f.startswith(shm.SHM_PREFIX)]
            assert left == [], f"leaked /dev/shm segments: {left}"


# ---------------------------------------------------------------------------
# the ReshapePlan layer
# ---------------------------------------------------------------------------
class TestReshapePlan:
    def test_membership(self):
        grow = ReshapePlan(2, 5)
        assert grow.growing and not grow.shrinking
        assert grow.survivors == (0, 1)
        assert grow.joining == (2, 3, 4)
        assert grow.retiring == ()
        assert grow.renumber(1) == 1
        shrink = ReshapePlan(4, 2)
        assert shrink.retiring == (2, 3)
        assert shrink.renumber(3) is None
        with pytest.raises(ValueError):
            ReshapePlan(3, 3)

    @pytest.mark.parametrize("layout", [
        BlockLayout(axis=0), BlockLayout(axis=0, halo=1),
        CyclicLayout(axis=0), HybridLayout(axis=0, block=3)])
    @pytest.mark.parametrize("old_n,new_n", [(2, 5), (5, 2), (1, 4), (3, 1)])
    def test_moves_reassemble_every_needed_region(self, layout, old_n,
                                                  new_n):
        """Simulate the move schedule on per-rank arrays: afterwards
        every new owner's needed region holds the authoritative data."""
        n = 23
        truth = np.arange(n, dtype=float) * 1.5
        plan = ReshapePlan(old_n, new_n)
        # old-rank arrays: valid only in the old owned regions
        olds = [np.full(n, np.nan) for _ in range(old_n)]
        for r in range(old_n):
            idx = layout.owned(n, r, old_n)
            olds[r][idx] = truth[idx]
        # new-rank arrays: survivors carry theirs over, joiners start cold
        news = [olds[r] if r < old_n else np.full(n, np.nan)
                for r in range(new_n)]
        for mv in plan.moves(layout, n):
            payload = np.take(olds[mv.src], mv.idx)
            assert not np.isnan(payload).any(), \
                f"move sources unowned data: {mv}"
            news[mv.dst][mv.idx] = payload
        for r in range(new_n):
            need = plan.needed(layout, n, r)
            assert np.array_equal(news[r][need], truth[need]), \
                f"new rank {r} missing data for {layout}"

    def test_halo_widens_needed_region(self):
        layout = BlockLayout(axis=0, halo=2)
        plan = ReshapePlan(2, 4)
        need = plan.needed(layout, 16, 1)
        lo, hi = layout.halo_bounds(16, 1, 4)
        assert need[0] == lo and need[-1] == hi - 1


# ---------------------------------------------------------------------------
# per-backend cost-model calibration feeding the advisor
# ---------------------------------------------------------------------------
class TestTransitionCosts:
    def test_multiproc_calibration_overrides_spawn_and_network(self):
        base = MACHINE
        cal = MultiprocessBackend().calibrate(base)
        assert cal.spawn_cost > base.spawn_cost
        assert cal.network.intra_latency > base.network.intra_latency
        # calibration is a copy: the shared model is untouched
        assert base.spawn_cost == MachineModel().spawn_cost

    def test_reshape_ranks_below_relaunch_on_multiproc(self):
        adv = SelfAdaptationAdvisor(MACHINE, max_pe=8)
        cur, target = mp_cfg(2), mp_cfg(4)
        in_place = adv.transition_cost(cur, target)
        relaunch = adv.transition_cost(ExecConfig.sequential(), target)
        assert in_place < relaunch

    def test_transition_aware_ladder_stops_when_spawn_dominates(self):
        """With fork-class spawn costs and a tiny per-iteration time,
        climbing into process ranks cannot amortise within a trial
        window — the transition-aware advisor settles instead."""
        reg = build_default_registry()
        reg.unregister("simcluster")  # distributed resolves to multiproc
        adv = SelfAdaptationAdvisor(MACHINE, max_pe=16, window=4,
                                    registry=reg, transition_aware=True)
        dist = [c for c in adv.ladder if c.nranks > 1]
        assert dist, "ladder lost its distributed rungs"
        per_iter = 1e-4  # a window buys ~0.4ms: far below a fork fleet
        assert not adv._transition_affordable(ExecConfig.shared(4),
                                              dist[0], per_iter)
        # a thread-team resize amortises fine at the same per-iter time
        assert adv._transition_affordable(ExecConfig.shared(2),
                                          ExecConfig.shared(4), per_iter)

    def test_unresolvable_target_costs_infinity(self):
        reg = build_default_registry()
        adv = SelfAdaptationAdvisor(MACHINE, registry=reg)
        bad = ExecConfig.sequential().with_backend("nope")
        assert adv.transition_cost(ExecConfig.sequential(), bad) \
            == float("inf")


# ---------------------------------------------------------------------------
# the pre-sized process fabric
# ---------------------------------------------------------------------------
class TestFabricSizing:
    def test_fabric_covers_in_place_plan_steps(self):
        from repro.exec.base import PhaseSpec

        backend = MultiprocessBackend()
        plan = AdaptationPlan([
            AdaptStep(at=3, config=mp_cfg(6)),
            AdaptStep(at=5, config=mp_cfg(2)),
            # excluded: relaunches anyway
            AdaptStep(at=7, config=mp_cfg(8), via_restart=True),
            # excluded: different mode
            AdaptStep(at=9, config=ExecConfig.shared(16)),
        ])
        spec = PhaseSpec(woven=WOVEN, config=mp_cfg(2), plan=plan)
        assert backend._fabric_size(spec) == 6

    def test_explicit_max_ranks_widens_fabric(self):
        from repro.exec.base import PhaseSpec

        backend = MultiprocessBackend(max_ranks=5)
        spec = PhaseSpec(woven=WOVEN, config=mp_cfg(2))
        assert backend._fabric_size(spec) == 5
