"""Transport conformance: one mailbox contract over every fabric.

The :class:`~repro.dsm.transport.Transport` seam promises that the
endpoint list it builds behaves identically no matter what carries the
bytes — in-process queues (:class:`~repro.dsm.transport.QueueTransport`)
or length-prefixed TCP frames re-injected by a progress thread
(:class:`~repro.dsm.socketmail.SocketTransport`).  The same suite runs
against both: per-(source, tag) FIFO under interleaved selective
receives, poll/pending drain behaviour, the single monotonic deadline,
and large-payload integrity (the socket fabric must frame and reassemble
multi-megabyte pickles exactly).

Tag-epoch scoping is covered here too: a dead membership's queued frames
must never satisfy a later membership's selective receive on the same
``(source, tag)`` — the use-after-retire the epoch field exists to kill.
"""

import queue
import threading
import time

import numpy as np
import pytest

from repro.dsm.mailbox import Message
from repro.dsm.procmail import ProcessMailbox
from repro.dsm.socketmail import SocketTransport
from repro.dsm.transport import QueueTransport

NRANKS = 2


def msg(src, tag, payload=None, dst=0, epoch=0, nbytes=8):
    return Message(src=src, dst=dst, tag=tag, payload=payload,
                   nbytes=nbytes, arrival=0.0, epoch=epoch)


class _Fabric:
    """Two ranks' endpoint lists over one transport family.

    ``send(src, dst, message)`` goes through rank ``src``'s endpoint
    for ``dst`` — a queue put or a TCP frame depending on the fabric —
    and ``inbox(rank)`` is the rank's own receiving mailbox.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self.channels = [queue.Queue() for _ in range(NRANKS)]
        if kind == "queue":
            transport = QueueTransport(self.channels)
            self.transports = [transport] * NRANKS
        else:  # every rank its own "physical node": all traffic framed
            self.transports = [
                SocketTransport(r, self.channels, lambda rank: rank)
                for r in range(NRANKS)]
            addresses = {r: t.address
                         for r, t in enumerate(self.transports)}
            for t in self.transports:
                t.set_addresses(addresses)
        self.endpoints = [self.transports[r].endpoints(r)
                          for r in range(NRANKS)]

    def send(self, src: int, dst: int, m: Message) -> None:
        self.endpoints[src][dst].put(m)

    def inbox(self, rank: int) -> ProcessMailbox:
        return self.endpoints[rank][rank]

    def settle(self) -> None:
        """Socket frames cross reader threads; queues are synchronous."""
        if self.kind == "sockets":
            time.sleep(0.15)

    def close(self) -> None:
        if self.kind == "sockets":
            for t in self.transports:
                t.close()


@pytest.fixture(params=["queue", "sockets"])
def fabric(request):
    f = _Fabric(request.param)
    yield f
    f.close()


# ---------------------------------------------------------------------------
# the conformance suite (runs verbatim against both fabrics)
# ---------------------------------------------------------------------------
class TestTransportConformance:
    def test_fifo_per_src_tag_under_interleaved_selective_receives(
            self, fabric):
        for i in range(3):
            fabric.send(1, 0, msg(1, 7, ("a", i)))
            fabric.send(1, 0, msg(1, 9, ("c", i)))
        fabric.settle()
        inbox = fabric.inbox(0)
        # selective receive on the second stream first: the first
        # stream's envelopes are buffered in arrival order, not lost
        assert inbox.get(source=1, tag=9, timeout=5.0).payload == ("c", 0)
        assert [inbox.get(source=1, tag=7, timeout=5.0).payload
                for _ in range(3)] == [("a", 0), ("a", 1), ("a", 2)]
        assert [inbox.get(source=1, tag=9, timeout=5.0).payload
                for _ in range(2)] == [("c", 1), ("c", 2)]

    def test_selective_receive_across_sources(self, fabric):
        fabric.send(1, 0, msg(1, 5, "from-1"))
        fabric.send(0, 0, msg(0, 5, "from-0"))
        fabric.settle()
        inbox = fabric.inbox(0)
        assert inbox.get(source=0, tag=5, timeout=5.0).payload == "from-0"
        assert inbox.get(source=1, tag=5, timeout=5.0).payload == "from-1"

    def test_poll_drains_into_pending_without_losing_envelopes(
            self, fabric):
        fabric.send(1, 0, msg(1, 1, "x"))
        fabric.settle()
        inbox = fabric.inbox(0)
        deadline = time.monotonic() + 5.0
        while not inbox.poll(source=1, tag=1):
            assert time.monotonic() < deadline, "envelope never arrived"
        assert not inbox.poll(source=9)  # no match, nothing dropped
        assert inbox.get(source=1, tag=1, timeout=5.0).payload == "x"

    def test_deadline_is_one_monotonic_budget(self, fabric):
        inbox = fabric.inbox(0)
        t0 = time.monotonic()
        with pytest.raises(TimeoutError):
            inbox.get(source=1, tag=42, timeout=0.3)
        elapsed = time.monotonic() - t0
        assert 0.2 <= elapsed < 2.0

    def test_large_payload_crosses_intact(self, fabric):
        # well past any single recv() chunk: framing must reassemble
        arr = np.arange(1 << 18, dtype=np.float64)  # 2 MiB
        fabric.send(1, 0, msg(1, 3, arr, nbytes=arr.nbytes))
        got = fabric.inbox(0).get(source=1, tag=3, timeout=10.0)
        assert got.nbytes == arr.nbytes
        np.testing.assert_array_equal(got.payload, arr)

    def test_many_frames_keep_order_per_stream(self, fabric):
        for i in range(50):
            fabric.send(1, 0, msg(1, 11, i))
        got = [fabric.inbox(0).get(source=1, tag=11, timeout=10.0).payload
               for _ in range(50)]
        assert got == list(range(50))


class TestSocketFraming:
    def test_frame_counts_track_remote_destinations(self):
        f = _Fabric("sockets")
        try:
            f.send(0, 1, msg(0, 1, "hi", dst=1))
            assert f.inbox(1).get(source=0, tag=1,
                                  timeout=5.0).payload == "hi"
            assert f.transports[0].frame_counts() == {1: 1}
            assert f.transports[1].frame_counts() == {}
        finally:
            f.close()

    def test_self_and_colocated_ranks_use_queues_not_frames(self):
        channels = [queue.Queue() for _ in range(2)]
        # both ranks on one physical node: endpoints are pure mailboxes
        t0 = SocketTransport(0, channels, lambda r: 0)
        t1 = SocketTransport(1, channels, lambda r: 0)
        try:
            eps = t0.endpoints(0)
            assert all(isinstance(e, ProcessMailbox) for e in eps)
            eps[1].put(msg(0, 2, "local", dst=1))
            assert t1.endpoints(1)[1].get(source=0, tag=2,
                                          timeout=5.0).payload == "local"
            assert t0.frame_counts() == {}
        finally:
            t0.close()
            t1.close()

    def test_transport_is_bound_to_its_rank(self):
        t = SocketTransport(0, [queue.Queue()], lambda r: r)
        try:
            with pytest.raises(ValueError, match="bound to one rank"):
                t.endpoints(1)
        finally:
            t.close()


# ---------------------------------------------------------------------------
# tag-epoch scoping (the dead-peer fix)
# ---------------------------------------------------------------------------
class TestTagEpoch:
    def test_stale_epoch_frames_cannot_satisfy_later_phase(self):
        """The regression the epoch exists for: a retired rank's queued
        envelope on the same (source, tag) must not be matched by the
        next membership segment's selective receive."""
        ch = queue.Queue()
        mb = ProcessMailbox(0, ch)
        ch.put(msg(2, 7, "old-membership", epoch=0))
        mb.set_epoch(1)  # the membership switched
        with pytest.raises(TimeoutError):
            mb.get(source=2, tag=7, timeout=0.1)
        assert mb.stale_dropped == 1
        # the new membership's envelope still matches
        ch.put(msg(2, 7, "new-membership", epoch=1))
        assert mb.get(source=2, tag=7, timeout=5.0).payload \
            == "new-membership"

    def test_set_epoch_purges_already_buffered_stale_pendings(self):
        mb = ProcessMailbox(0, queue.Queue())
        mb.put(msg(1, 1, "a", epoch=0))
        mb.put(msg(1, 2, "b", epoch=0))
        assert not mb.poll(source=9)  # drain both into pending
        assert len(mb) == 2
        mb.set_epoch(1)
        assert len(mb) == 0
        assert mb.stale_dropped == 2

    def test_future_epoch_frames_wait_for_the_switch(self):
        """A peer that switched membership first may send ahead: its
        envelopes buffer (not drop) until this rank catches up."""
        ch = queue.Queue()
        mb = ProcessMailbox(0, ch)
        ch.put(msg(1, 4, "early", epoch=1))
        with pytest.raises(TimeoutError):
            mb.get(source=1, tag=4, timeout=0.1)
        assert mb.stale_dropped == 0 and len(mb) == 1  # buffered, kept
        mb.set_epoch(1)
        assert mb.get(source=1, tag=4, timeout=5.0).payload == "early"

    def test_poll_honours_epoch(self):
        mb = ProcessMailbox(0, queue.Queue(), epoch=3)
        mb.put(msg(1, 1, epoch=2))
        assert not mb.poll(source=1, tag=1)
        assert mb.stale_dropped == 1
        mb.put(msg(1, 1, epoch=3))
        assert mb.poll(source=1, tag=1)


# ---------------------------------------------------------------------------
# progress-thread concurrency
# ---------------------------------------------------------------------------
class TestSocketConcurrency:
    def test_concurrent_senders_interleave_without_corruption(self):
        """Three remote peers hammer one inbox concurrently; every
        stream arrives complete and per-stream ordered."""
        n = 4
        channels = [queue.Queue() for _ in range(n)]
        transports = [SocketTransport(r, channels, lambda rank: rank)
                      for r in range(n)]
        addresses = {r: t.address for r, t in enumerate(transports)}
        for t in transports:
            t.set_addresses(addresses)
        per_src = 40
        try:
            def blast(src):
                eps = transports[src].endpoints(src)
                for i in range(per_src):
                    eps[0].put(msg(src, 6, (src, i)))

            threads = [threading.Thread(target=blast, args=(s,))
                       for s in (1, 2, 3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            inbox = transports[0].endpoints(0)[0]
            seen = {1: [], 2: [], 3: []}
            for _ in range(3 * per_src):
                m = inbox.get(source=-1, tag=6, timeout=10.0)
                seen[m.payload[0]].append(m.payload[1])
            for src in (1, 2, 3):
                assert seen[src] == list(range(per_src))
        finally:
            for t in transports:
                t.close()
