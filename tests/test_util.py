"""Tests for repro.util: timers, RNG, serialization, event log."""

import threading
import time

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import (
    EventLog,
    ThreadTimer,
    WallTimer,
    crc32_of,
    dumps_portable,
    loads_portable,
    nbytes_of,
    seeded_rng,
    spawn_rngs,
)


class TestTimers:
    def test_wall_timer_measures_sleep(self):
        with WallTimer() as t:
            time.sleep(0.02)
        assert t.elapsed >= 0.015

    def test_thread_timer_excludes_sleep(self):
        with ThreadTimer() as t:
            time.sleep(0.05)
        assert t.elapsed < 0.04  # sleeping consumes no CPU

    def test_thread_timer_measures_cpu(self):
        with ThreadTimer() as t:
            sum(i * i for i in range(200_000))
        assert t.elapsed > 0.0

    def test_manual_start_stop(self):
        t = WallTimer()
        t.start()
        elapsed = t.stop()
        assert elapsed >= 0.0
        assert t.elapsed == elapsed


class TestRng:
    def test_seeded_rng_is_deterministic(self):
        a = seeded_rng(42).random(8)
        b = seeded_rng(42).random(8)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(seeded_rng(1).random(8), seeded_rng(2).random(8))

    def test_spawn_rngs_independent_streams(self):
        streams = spawn_rngs(7, 4)
        draws = [g.random(4) for g in streams]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.array_equal(draws[i], draws[j])

    def test_spawn_rngs_reproducible(self):
        a = [g.random(3) for g in spawn_rngs(11, 3)]
        b = [g.random(3) for g in spawn_rngs(11, 3)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)


class TestSerialization:
    def test_array_roundtrip(self):
        x = np.arange(12, dtype=np.float64).reshape(3, 4)
        y = loads_portable(dumps_portable(x))
        np.testing.assert_array_equal(x, y)
        assert y.dtype == x.dtype

    def test_object_roundtrip(self):
        obj = {"a": [1, 2, 3], "b": ("x", 4.5)}
        assert loads_portable(dumps_portable(obj)) == obj

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError):
            loads_portable(b"XXXXgarbage")

    def test_crc_stable(self):
        assert crc32_of(b"hello") == crc32_of(b"hello")
        assert crc32_of(b"hello") != crc32_of(b"hellp")

    def test_nbytes_array(self):
        x = np.zeros((10, 10), dtype=np.float64)
        assert nbytes_of(x) == 800

    def test_nbytes_bytes_and_list_of_arrays(self):
        assert nbytes_of(b"abcd") == 4
        xs = [np.zeros(4), np.zeros(6)]
        assert nbytes_of(xs) == 80

    def test_nbytes_memoryview_counts_bytes_not_elements(self):
        """Regression: len(memoryview) is the element count, not bytes."""
        x = np.zeros(10, dtype=np.float64)
        mv = memoryview(x)
        assert len(mv) == 10
        assert nbytes_of(mv) == 80
        # multi-dimensional views: len() is only the first axis
        mv2 = memoryview(np.zeros((4, 8), dtype=np.int32))
        assert nbytes_of(mv2) == 128

    def test_nbytes_memoryview_of_bytes(self):
        assert nbytes_of(memoryview(b"abcdef")) == 6

    @given(st.binary(max_size=256))
    def test_portable_bytes_roundtrip(self, data):
        assert loads_portable(dumps_portable(data)) == data

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False),
                    max_size=32))
    def test_portable_array_roundtrip_property(self, values):
        x = np.asarray(values, dtype=np.float64)
        np.testing.assert_array_equal(loads_portable(dumps_portable(x)), x)


class TestEventLog:
    def test_emit_and_query(self):
        log = EventLog()
        log.emit("a", vtime=1.0, rank=0, foo=1)
        log.emit("b", vtime=2.0, rank=1)
        log.emit("a", vtime=3.0, rank=0, foo=2)
        assert len(log) == 3
        assert [e.data["foo"] for e in log.of_kind("a")] == [1, 2]
        assert log.last("a").vtime == 3.0
        assert log.last("missing") is None
        assert log.last().kind == "a"

    def test_clear(self):
        log = EventLog()
        log.emit("x")
        log.clear()
        assert len(log) == 0
        assert log.last() is None

    def test_threaded_emission_is_lossless(self):
        log = EventLog()

        def emit_many(k):
            for i in range(200):
                log.emit("t", rank=k, i=i)

        threads = [threading.Thread(target=emit_many, args=(k,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(log) == 800
