"""The zero-copy data plane and its transport substrate.

Three layers under test:

* :class:`~repro.dsm.procmail.ProcessMailbox` — the selective-receive
  contract over a queue channel: per-(src, tag) FIFO under interleaved
  selective receives, ``poll`` drain behaviour, and the single
  monotonic deadline across the drain loop (a busy mailbox must not
  extend the timeout);
* :class:`~repro.dsm.shm.BufferPool` / :class:`~repro.dsm.shm.DataPlane`
  — slab lease/recycle lifecycle, ring growth and exhaustion fallback,
  leak checks on clean exit, after a rank failure, and across an
  elastic park/un-park cycle;
* end-to-end parity — the multiprocessing backend with the plane on
  produces bit-identical results and identical checkpoint bytes to the
  plane-off (queue-pickle) transport and to the threaded backends, and
  the tree collectives compute the same values as the paper's flat
  root-funnel ones.
"""

import os
import queue
import threading
import time

import numpy as np
import pytest

from repro.apps.plugs.sor_plugs import SOR_ADAPTIVE
from repro.apps.sor import SOR
from repro.ckpt import EveryN
from repro.ckpt.failure import FailureInjector
from repro.core import AdaptStep, AdaptationPlan, ExecConfig, Runtime, plug
from repro.dsm import shm
from repro.dsm.mailbox import Message
from repro.dsm.procmail import ProcessMailbox
from repro.exec import build_default_registry
from repro.exec.multiproc import MultiprocessBackend
from repro.vtime import MachineModel

MACHINE = MachineModel(nodes=2, cores_per_node=4)
N, ITERS = 48, 10
WOVEN = plug(SOR, SOR_ADAPTIVE)
REF = SOR(n=N, iterations=ITERS).execute()


def assert_no_segments():
    assert shm.live_segments() == []
    if os.path.isdir("/dev/shm"):
        left = [f for f in os.listdir("/dev/shm")
                if f.startswith(shm.SHM_PREFIX)]
        assert left == [], f"leaked /dev/shm segments: {left}"


def msg(src, tag, payload=None):
    return Message(src=src, dst=0, tag=tag, payload=payload,
                   nbytes=8, arrival=0.0)


# ---------------------------------------------------------------------------
# ProcessMailbox pending-buffer semantics
# ---------------------------------------------------------------------------
class TestProcessMailbox:
    def test_fifo_per_src_tag_under_interleaved_selective_receives(self):
        mb = ProcessMailbox(0, queue.Queue())
        # interleaved streams from two sources and two tags
        for i in range(3):
            mb.put(msg(1, 7, ("a", i)))
            mb.put(msg(2, 7, ("b", i)))
            mb.put(msg(1, 9, ("c", i)))
        # selective receive on (2, 7) first: (1, *) envelopes must be
        # buffered in arrival order, not lost or reordered
        assert mb.get(source=2, tag=7).payload == ("b", 0)
        assert mb.get(source=1, tag=9).payload == ("c", 0)
        # the pending buffer replays per-(src, tag) FIFO
        assert [mb.get(source=1, tag=7).payload for _ in range(3)] \
            == [("a", 0), ("a", 1), ("a", 2)]
        assert mb.get(source=2, tag=7).payload == ("b", 1)
        assert [mb.get(source=1, tag=9).payload for _ in range(2)] \
            == [("c", 1), ("c", 2)]

    def test_poll_drains_channel_into_pending(self):
        mb = ProcessMailbox(0, queue.Queue())
        mb.put(msg(1, 1))
        mb.put(msg(2, 2))
        mb.put(msg(3, 3))
        assert not mb.poll(source=9)       # drained everything, no match
        assert len(mb) == 3                # ... into the pending buffer
        assert mb.poll(source=2, tag=2)    # matches from pending only
        assert mb.poll(source=1)
        # drained envelopes are still retrievable in order
        assert mb.get(source=3, tag=3).src == 3

    def test_deadline_spans_the_whole_drain_loop(self):
        """A busy mailbox must not restart the timeout per arrival.

        The seed implementation passed the full ``timeout`` to every
        channel wait, so a trickle of non-matching envelopes arriving
        just under the timeout pushed the deadline out indefinitely.
        """
        ch = queue.Queue()
        mb = ProcessMailbox(0, ch)
        stop = threading.Event()

        def trickle():  # non-matching traffic every 50 ms
            i = 0
            while not stop.is_set():
                ch.put(msg(1, 1, i))
                i += 1
                time.sleep(0.05)

        t = threading.Thread(target=trickle, daemon=True)
        t.start()
        try:
            t0 = time.monotonic()
            with pytest.raises(TimeoutError):
                mb.get(source=2, tag=2, timeout=0.4)
            elapsed = time.monotonic() - t0
            assert elapsed < 2.0, \
                f"deadline stretched to {elapsed:.2f}s by busy traffic"
            assert elapsed >= 0.35
        finally:
            stop.set()
            t.join()
        # the non-matching traffic was preserved, in order
        assert mb.get(source=1, tag=1).payload == 0
        assert mb.get(source=1, tag=1).payload == 1

    def test_timeout_zero_and_expiry_message(self):
        mb = ProcessMailbox(0, queue.Queue())
        mb.put(msg(1, 5))
        with pytest.raises(TimeoutError, match="src=2"):
            mb.get(source=2, tag=5, timeout=0.05)
        assert len(mb) == 1  # buffered, not dropped
        # an expired deadline still owes one non-blocking poll: a match
        # already sitting in the channel must be returned, not timed out
        mb.put(msg(3, 5))
        assert mb.get(source=3, tag=5, timeout=0).src == 3
        with pytest.raises(TimeoutError):
            mb.get(source=9, tag=9, timeout=0)


# ---------------------------------------------------------------------------
# BufferPool lifecycle
# ---------------------------------------------------------------------------
class TestBufferPool:
    def test_lease_fill_fetch_recycle(self):
        pool = shm.BufferPool(shm.new_launch_id(), 0)
        client = shm.PoolClient()
        try:
            a = np.random.rand(64, 64)
            lease = pool.lease(a.nbytes)
            ref = lease.fill(a)
            assert pool.in_flight() == 1
            got = client.fetch(ref)
            assert np.array_equal(got, a)
            assert got.flags.writeable
            assert pool.in_flight() == 0  # fetch recycled the slot
            # the freed slot is reused, not re-allocated
            again = pool.lease(a.nbytes)
            assert again.fill(a).name == ref.name
            again.cancel()
            assert pool.in_flight() == 0
        finally:
            client.close_all()
            pool.unlink_all()
        assert_no_segments()

    def test_ring_grows_slab_for_bigger_payloads(self):
        pool = shm.BufferPool(shm.new_launch_id(), 0)
        client = shm.PoolClient()
        try:
            small = pool.lease(1024)
            ref1 = small.fill(np.arange(128.0))
            client.release(ref1)
            big = np.random.rand(512, 512)  # far beyond MIN_SLAB
            ref2 = pool.lease(big.nbytes).fill(big)
            assert ref2.capacity > ref1.capacity
            assert np.array_equal(client.fetch(ref2), big)
        finally:
            client.close_all()
            pool.unlink_all()
        assert_no_segments()

    def test_exhausted_ring_degrades_instead_of_blocking(self):
        pool = shm.BufferPool(shm.new_launch_id(), 0, slots=2,
                              lease_timeout=0.1)
        plane = shm.DataPlane(pool, threshold=16)
        try:
            l1, l2 = pool.lease(1024), pool.lease(1024)
            assert l1 is not None and l2 is not None
            t0 = time.monotonic()
            assert pool.lease(1024) is None  # both slots in flight
            assert time.monotonic() - t0 < 1.0
            # the plane falls back to the inline path on exhaustion
            arr = np.arange(100.0)
            out = plane.outbound(arr)
            assert isinstance(out, np.ndarray)
            assert plane.stats()["fallbacks"] >= 1
            l1.cancel()
            l2.cancel()
        finally:
            plane.close()
            pool.unlink_all()
        assert_no_segments()

    def test_parent_sweep_covers_abandoned_slabs(self):
        """Rank-failure cleanup: slabs leased by a rank that died are
        reclaimed by the parent's deterministic name sweep."""
        launch = shm.new_launch_id()
        pool = shm.BufferPool(launch, 3)
        pool.lease(1 << 17).fill(np.random.rand(128, 128))  # never freed
        pool.close()  # the owner process is gone; segments remain
        removed = shm.unlink_pool(launch, max_ranks=4)
        assert removed == 1
        assert_no_segments()

    def test_plane_container_roundtrip_and_owned_semantics(self):
        pool = shm.BufferPool(shm.new_launch_id(), 0)
        plane = shm.DataPlane(pool, threshold=1 << 10)
        try:
            a = np.random.rand(40, 40)
            payload = (("shape", a.shape), [a, np.arange(4)], {"x": a * 2})
            out = plane.outbound(payload)
            assert isinstance(out[1][0], shm.ShmRef)
            assert isinstance(out[2]["x"], shm.ShmRef)
            assert isinstance(out[1][1], np.ndarray)  # under threshold
            back = plane.inbound(out)
            assert np.array_equal(back[1][0], a)
            assert np.array_equal(back[2]["x"], a * 2)
            assert pool.in_flight() == 0
            # un-owned small arrays are defensively copied
            small = np.arange(8.0)
            sent = plane.outbound(small)
            assert sent is not small
            assert plane.outbound(small, owned=True) is small
        finally:
            plane.close()
            pool.unlink_all()
        assert_no_segments()

    def test_one_payload_larger_than_the_ring_never_stalls(self):
        """A single payload with more large arrays than the ring has
        slots can never be satisfied by a recycle (nothing ships until
        packing finishes), so the overflow must go inline immediately
        instead of waiting out the lease timeout per array."""
        pool = shm.BufferPool(shm.new_launch_id(), 0, slots=2,
                              lease_timeout=5.0)
        plane = shm.DataPlane(pool, threshold=1 << 10)
        try:
            payload = [np.random.rand(64, 64) for _ in range(6)]
            t0 = time.monotonic()
            out = plane.outbound(payload)
            assert time.monotonic() - t0 < 1.0, "pack stalled on leases"
            assert sum(isinstance(x, shm.ShmRef) for x in out) == 2
            assert plane.stats()["fallbacks"] == 4
            back = plane.inbound(out)
            for a, b in zip(back, payload):
                assert np.array_equal(a, b)
            # the next payload gets a fresh budget and the freed slots
            assert isinstance(plane.outbound(payload[0]), shm.ShmRef)
        finally:
            plane.close()
            pool.unlink_all()
        assert_no_segments()

    def test_borrow_refs_are_zero_copy_views(self):
        launch = shm.new_launch_id()
        pool = shm.BufferPool(launch, 0)
        plane = shm.DataPlane(pool, threshold=64)
        seg = shm.ShmSegment.allocate(shm.segment_name(launch, "F"),
                                      (32, 16), np.float64)
        try:
            src = seg.ndarray()
            src[...] = np.random.rand(32, 16)
            plane.register_borrow(src, seg.name)
            ref = plane.outbound(src[4:12])
            assert isinstance(ref, shm.ShmRef) and ref.kind == "borrow"
            assert pool.in_flight() == 0  # no slab was touched
            view = plane.inbound(ref)
            assert not view.flags.writeable
            assert np.array_equal(view, src[4:12])
            # the view aliases the source pages: a write shows through
            src[4, 0] = -1.0
            assert view[0, 0] == -1.0
            # non-contiguous views fall back to the slab/inline path
            assert not isinstance(plane.outbound(src[:, 2:5]), shm.ShmRef) \
                or plane.outbound(src[:, 2:5]).kind == "slab"
        finally:
            plane.close()
            seg.unlink()
            pool.unlink_all()
        assert_no_segments()


# ---------------------------------------------------------------------------
# end-to-end: the multiprocessing backend over the plane
# ---------------------------------------------------------------------------
def run_sor(tmp_path, tag, config, registry=None, **kw):
    rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / tag,
                 policy=kw.pop("policy", EveryN(3)), registry=registry,
                 ckpt_strategy=kw.pop("ckpt_strategy", "master"))
    res = rt.run(WOVEN, ctor_kwargs={"n": N, "iterations": ITERS},
                 entry="execute", config=config, fresh=True, **kw)
    return rt, res


def ckpt_bytes(rt):
    return {p.name: p.read_bytes() for p in sorted(rt.store.dir.iterdir())
            if p.is_file()}


class TestPlaneParity:
    def test_plane_on_off_bit_identical_results_and_checkpoints(self,
                                                                tmp_path):
        """The transport must be invisible: same value, same vtime, same
        checkpoint bytes, with the slab path actually exercised
        (threshold 1 KiB puts every SOR payload on the slabs)."""
        reg_on = build_default_registry()
        reg_on.register(MultiprocessBackend(plane_threshold=1 << 10),
                        replace=True)
        reg_off = build_default_registry()
        reg_off.register(MultiprocessBackend(data_plane=False),
                         replace=True)
        cfg = ExecConfig.distributed(3).with_backend("multiproc")
        rt_on, res_on = run_sor(tmp_path, "on", cfg, reg_on)
        rt_off, res_off = run_sor(tmp_path, "off", cfg, reg_off)
        assert res_on.value == res_off.value == pytest.approx(REF)
        # vtime is charged off measured (host-dependent) kernel rates in
        # worker processes, so exact equality is not meaningful here —
        # what must hold is that both transports charge the same *model*
        # (asserted bit-exactly by the checkpoint bytes below, and by
        # the pinned-rate comparison in bench_comm_plane.py).
        assert res_on.vtime > 0 and res_off.vtime > 0
        on, off = ckpt_bytes(rt_on), ckpt_bytes(rt_off)
        assert on.keys() == off.keys() and len(on) > 0
        for name in on:
            assert on[name] == off[name], f"checkpoint {name} diverged"
        assert_no_segments()

    def test_plane_parity_under_local_shard_strategy(self, tmp_path):
        from repro.core.context import STRATEGY_LOCAL

        reg_on = build_default_registry()
        reg_on.register(MultiprocessBackend(plane_threshold=1 << 10),
                        replace=True)
        reg_off = build_default_registry()
        reg_off.register(MultiprocessBackend(data_plane=False),
                         replace=True)
        cfg = ExecConfig.distributed(3).with_backend("multiproc")
        rt_on, res_on = run_sor(tmp_path, "l-on", cfg, reg_on,
                                ckpt_strategy=STRATEGY_LOCAL)
        rt_off, res_off = run_sor(tmp_path, "l-off", cfg, reg_off,
                                  ckpt_strategy=STRATEGY_LOCAL)
        assert res_on.value == res_off.value == pytest.approx(REF)
        on, off = ckpt_bytes(rt_on), ckpt_bytes(rt_off)
        assert on.keys() == off.keys() and len(on) > 0
        for name in on:
            assert on[name] == off[name]
        assert_no_segments()

    def test_pool_survives_elastic_park_unpark_without_leaks(self,
                                                             tmp_path):
        """Grow + shrink membership transitions with a forced-low
        threshold: slabs are leased on both sides of each transition and
        every segment is gone afterwards."""
        reg = build_default_registry()
        reg.register(MultiprocessBackend(plane_threshold=1 << 10),
                     replace=True)
        cfg = ExecConfig.distributed(2).with_backend("multiproc")
        plan = AdaptationPlan([
            AdaptStep(at=3, config=ExecConfig.distributed(4)
                      .with_backend("multiproc")),
            AdaptStep(at=7, config=cfg)])
        rt, res = run_sor(tmp_path, "elastic", cfg, reg, plan=plan)
        assert res.value == pytest.approx(REF)
        assert res.relaunches == 0
        assert len(res.in_place_reshapes) == 2
        assert_no_segments()

    def test_plane_survives_rank_failure_and_recovery(self, tmp_path):
        """An injected rank failure mid-phase: the driver restarts from
        the checkpoint and no slab or segment outlives the launch."""
        reg = build_default_registry()
        reg.register(MultiprocessBackend(plane_threshold=1 << 10),
                     replace=True)
        cfg = ExecConfig.distributed(3).with_backend("multiproc")
        rt, res = run_sor(tmp_path, "fail", cfg, reg,
                          injector=FailureInjector(fail_at=6, rank=1),
                          auto_recover=True)
        assert res.value == pytest.approx(REF)
        assert_no_segments()


# ---------------------------------------------------------------------------
# collective algorithms
# ---------------------------------------------------------------------------
class TestTreeCollectives:
    @pytest.mark.parametrize("nranks", [2, 3, 4, 5, 8])
    def test_tree_matches_flat_values(self, nranks):
        from repro.dsm.comm import current_rank
        from repro.dsm.simcluster import SimCluster

        def entry():
            ctx = current_rank()
            c = ctx.comm
            arr = np.arange(6.0) * (ctx.rank + 1)
            root = 1 if c.nranks > 1 else 0  # non-zero root exercised too
            b = c.bcast(np.arange(4.0) if ctx.rank == root else None,
                        root=root)
            g = c.gather(arr, root=0)
            r = c.reduce(float(ctx.rank + 1), root=0)
            ag = c.allgather(ctx.rank * 2)
            return (b.tolist(),
                    None if g is None else [x.tolist() for x in g],
                    r, ag)

        results = {}
        for algo in ("flat", "tree"):
            cl = SimCluster(nranks, MachineModel(coll_algo=algo))
            try:
                results[algo] = cl.run(entry)
            finally:
                cl.shutdown()
            assert cl.max_time > 0
        assert results["flat"] == results["tree"]

    def test_flat_remains_the_default_algorithm(self):
        from repro.dsm.comm import Communicator
        from repro.vtime.clock import VClock

        m = MachineModel()
        assert m.coll_algo == "flat"
        comm = Communicator(2, m, [VClock(), VClock()])
        assert comm.coll_algo == "flat"
        comm.close()

    def test_tree_bcast_scales_root_cost_sublinearly(self):
        """The point of the tree: the root's serialized egress stops
        growing linearly in P — a flat bcast pays P-1 back-to-back
        transfers on the root's link, the binomial tree ``log2 P``.
        (Gather is excluded on purpose: all contributions must
        physically reach the root, so no algorithm can shrink its
        ingress *bytes* — trees only shave its latency terms.)"""
        from repro.dsm.comm import current_rank
        from repro.dsm.simcluster import SimCluster

        def entry():
            ctx = current_rank()
            data = np.full(64 * 1024 // 8, float(ctx.rank))
            ctx.comm.barrier()  # align clocks: spawn stagger out of scope
            t0 = ctx.clock.now
            ctx.comm.bcast(data if ctx.rank == 0 else None, root=0)
            ctx.comm.barrier()
            return ctx.clock.now - t0

        cost = {}
        for algo in ("flat", "tree"):
            per_p = {}
            for p in (4, 16):
                cl = SimCluster(p, MachineModel(nodes=1, cores_per_node=32,
                                                coll_algo=algo))
                try:
                    per_p[p] = max(cl.run(entry))
                finally:
                    cl.shutdown()
            cost[algo] = per_p
        flat_growth = cost["flat"][16] / cost["flat"][4]
        tree_growth = cost["tree"][16] / cost["tree"][4]
        assert tree_growth < flat_growth, (cost, "tree lost its log-P edge")
        # and at fixed P the tree is outright cheaper than the funnel
        assert cost["tree"][16] < cost["flat"][16], cost


class TestAutoAlgorithmChoice:
    """``coll_algo="auto"``: the machine model picks flat vs tree per
    collective from its own network constants — no agreement round, and
    ``"flat"`` stays the bit-exact default for the paper runs."""

    def test_advisor_verdicts_track_the_modelled_critical_paths(self):
        m = MachineModel()
        # degenerate team sizes: nothing to fan out, flat by definition
        assert m.collective_algo(1) == "flat"
        assert m.collective_algo(2, nbytes=1 << 30) == "flat"
        # latency-bound: tree wins as soon as rounds < P - 1
        assert m.collective_algo(4, nbytes=0) == "tree"
        assert m.collective_algo(64, nbytes=0) == "tree"
        # bandwidth-bound at modest P: store-and-forward doubling loses
        # (P=5 -> 3 rounds, 2*3 >= 4 relay cost beats 4 serialised sends)
        assert m.collective_algo(5, nbytes=1 << 30) == "flat"
        # ... but enough ranks beat the doubling even for huge payloads
        assert m.collective_algo(64, nbytes=1 << 30) == "tree"

    def test_auto_is_consulted_per_call_with_payload_size(self):
        from repro.dsm.comm import Communicator
        from repro.vtime.clock import VClock

        m = MachineModel(coll_algo="auto")
        comm = Communicator(5, m, [VClock() for _ in range(5)])
        try:
            assert comm.coll_algo == "auto"
            assert comm._algo(nbytes=0) == "tree"
            assert comm._algo(nbytes=1 << 30) == "flat"
        finally:
            comm.close()

    @pytest.mark.parametrize("nranks", [3, 5, 8])
    def test_auto_matches_flat_values_bit_exactly(self, nranks):
        from repro.dsm.comm import current_rank
        from repro.dsm.simcluster import SimCluster

        def entry():
            ctx = current_rank()
            c = ctx.comm
            b = c.bcast(np.arange(4.0) if ctx.rank == 0 else None, root=0)
            g = c.gather(np.arange(3.0) * (ctx.rank + 1), root=0)
            r = c.reduce(float(ctx.rank + 1), root=0)
            return (b.tolist(),
                    None if g is None else [x.tolist() for x in g], r)

        results = {}
        for algo in ("flat", "auto"):
            cl = SimCluster(nranks, MachineModel(coll_algo=algo))
            try:
                results[algo] = cl.run(entry)
            finally:
                cl.shutdown()
        assert results["flat"] == results["auto"]
