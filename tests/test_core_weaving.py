"""Tests for templates, PlugSet composition and the weaver."""

import numpy as np
import pytest

from repro.core import (
    BarrierAfter,
    ExecConfig,
    ForMethod,
    IgnorableMethod,
    MasterMethod,
    ParallelMethod,
    Partitioned,
    PlugSet,
    SafeData,
    SafePointAfter,
    SingleMethod,
    SynchronizedMethod,
    ThreadLocal,
    WeaveError,
    is_woven,
    make_context,
    plug,
    unplug,
)
from repro.dsm.partition import BlockLayout


class Toy:
    """A minimal domain class for weaving tests."""

    def __init__(self, n=16):
        self.n = n
        self.data = np.zeros(n)
        self.hits = 0
        self.scratch = 0

    def work(self, lo, hi):
        self.data[lo:hi] += 1.0

    def bump(self):
        self.hits += 1

    def report(self):
        return "report"

    def step(self):
        pass


class TestPlugSet:
    def test_composition_order_preserved(self):
        a = PlugSet(ParallelMethod("work"), name="a")
        b = PlugSet(SafeData("data"), name="b")
        c = a + b
        assert len(c) == 2
        assert c.name == "a+b"

    def test_of_type_and_for_method(self):
        ps = PlugSet(ForMethod("work"), BarrierAfter("work"),
                     SafePointAfter("step"))
        assert len(ps.of_type(ForMethod)) == 1
        hits = ps.for_method("work")
        # sorted by order: ForMethod(40) before BarrierAfter(60)
        assert [type(t).__name__ for t in hits] == ["ForMethod", "BarrierAfter"]

    def test_methods_deduplicated(self):
        ps = PlugSet(ForMethod("work"), BarrierAfter("work"))
        assert ps.methods() == ["work"]

    def test_safedata_fields_union(self):
        ps = PlugSet(SafeData("a", "b"), SafeData("b", "c"))
        assert ps.safedata_fields() == ["a", "b", "c"]

    def test_partitioned_twice_rejected(self):
        ps = PlugSet(Partitioned("x", BlockLayout()),
                     Partitioned("x", BlockLayout()))
        with pytest.raises(WeaveError):
            ps.partitioned_fields()

    def test_non_template_rejected(self):
        with pytest.raises(WeaveError):
            PlugSet("not a template")

    def test_safedata_requires_fields(self):
        with pytest.raises(ValueError):
            SafeData()

    def test_iterable_flattening(self):
        ps = PlugSet([ForMethod("work"), BarrierAfter("work")])
        assert len(ps) == 2


class TestWeaver:
    def test_plug_creates_subclass(self):
        W = plug(Toy, PlugSet(ForMethod("work")))
        assert issubclass(W, Toy)
        assert W is not Toy
        assert is_woven(W)
        assert not is_woven(Toy)

    def test_unplug_returns_base(self):
        W = plug(Toy, PlugSet(ForMethod("work")))
        assert unplug(W) is Toy

    def test_unplug_non_woven_rejected(self):
        with pytest.raises(WeaveError):
            unplug(Toy)

    def test_double_weave_rejected(self):
        W = plug(Toy, PlugSet(ForMethod("work")))
        with pytest.raises(WeaveError):
            plug(W, PlugSet(BarrierAfter("work")))

    def test_missing_join_point_rejected(self):
        with pytest.raises(WeaveError, match="does not exist"):
            plug(Toy, PlugSet(ForMethod("no_such_method")))

    def test_duplicate_formethod_rejected(self):
        with pytest.raises(WeaveError, match="more than once"):
            plug(Toy, PlugSet(ForMethod("work"), ForMethod("work")))

    def test_base_class_untouched(self):
        before = Toy.__dict__["work"]
        plug(Toy, PlugSet(ForMethod("work"), SynchronizedMethod("bump")))
        assert Toy.__dict__["work"] is before
        assert "work" not in (k for k in []) or True

    def test_woven_without_context_behaves_like_base(self):
        """The pluggability guarantee: no context -> strict sequential."""
        W = plug(Toy, PlugSet(ForMethod("work"), BarrierAfter("work"),
                              SynchronizedMethod("bump"),
                              MasterMethod("report"),
                              IgnorableMethod("step")))
        t_plain, t_woven = Toy(), W()
        t_plain.work(0, 16)
        t_woven.work(0, 16)
        np.testing.assert_array_equal(t_plain.data, t_woven.data)
        assert t_woven.report() == "report"
        t_woven.bump()
        assert t_woven.hits == 1

    def test_thread_local_descriptor_installed(self):
        W = plug(Toy, PlugSet(ThreadLocal("scratch")))
        inst = W()
        inst.scratch = 42  # descriptor path, outside any team
        assert inst.scratch == 42
        assert "_tls__scratch" in inst.__dict__


class TestMakeContext:
    def test_context_inherits_declarations(self):
        W = plug(Toy, PlugSet(SafeData("data"),
                              Partitioned("data", BlockLayout())))
        ctx = make_context(W, ExecConfig.sequential())
        assert ctx.safedata == ["data"]
        assert "data" in ctx.partitioned

    def test_bind_validates_fields(self):
        W = plug(Toy, PlugSet(SafeData("data", "n")))
        ctx = make_context(W, ExecConfig.sequential())
        inst = W()
        ctx.bind(inst)
        assert inst.__pp_ctx__ is ctx

    def test_bind_missing_field_rejected(self):
        class Empty:
            def step(self):
                pass

        W = plug(Empty, PlugSet(SafeData("ghost"), SafePointAfter("step")))
        ctx = make_context(W, ExecConfig.sequential())
        with pytest.raises(WeaveError, match="ghost"):
            ctx.bind(W())


class TestExecConfig:
    def test_processing_elements(self):
        assert ExecConfig.sequential().processing_elements == 1
        assert ExecConfig.shared(8).processing_elements == 8
        assert ExecConfig.distributed(4).processing_elements == 4
        assert ExecConfig.hybrid(4, 8).processing_elements == 32

    def test_invalid_combinations(self):
        from repro.core.modes import Mode

        with pytest.raises(ValueError):
            ExecConfig(Mode.SEQUENTIAL, workers=2)
        with pytest.raises(ValueError):
            ExecConfig(Mode.SHARED, nranks=2)
        with pytest.raises(ValueError):
            ExecConfig(Mode.DISTRIBUTED, workers=2)
        with pytest.raises(ValueError):
            ExecConfig(Mode.SHARED, workers=0)


class TestSmpSemantics:
    """Shared-memory template semantics via a live runtime context."""

    def _run_shared(self, plugset, workers=4, n=32):
        from repro.core import Runtime

        W = plug(Toy, plugset)
        rt = Runtime()
        result = rt.run(W, ctor_args=(n,), entry="drive",
                        config=ExecConfig.shared(workers), fresh=True)
        return result

    def test_parallel_for_covers_range(self):
        class App(Toy):
            def drive(self):
                self.region()
                return self.data.copy()

            def region(self):
                self.work(0, self.n)

        ps = PlugSet(ParallelMethod("region"), ForMethod("work"))
        W = plug(App, ps)
        from repro.core import Runtime

        res = Runtime().run(W, ctor_args=(32,), entry="drive",
                            config=ExecConfig.shared(4), fresh=True)
        np.testing.assert_array_equal(res.value, np.ones(32))

    def test_synchronized_prevents_races(self):
        class App(Toy):
            def drive(self):
                self.region()
                return self.hits

            def region(self):
                for _ in range(200):
                    self.bump()

        ps = PlugSet(ParallelMethod("region"), SynchronizedMethod("bump"))
        W = plug(App, ps)
        from repro.core import Runtime

        res = Runtime().run(W, ctor_args=(4,), entry="drive",
                            config=ExecConfig.shared(4), fresh=True)
        assert res.value == 4 * 200  # every increment survived

    def test_master_and_single(self):
        import threading

        lock = threading.Lock()
        calls = {"master": 0, "single": 0}

        class App(Toy):
            def drive(self):
                self.region()
                return calls

            def region(self):
                self.master_part()
                self.single_part()

            def master_part(self):
                with lock:
                    calls["master"] += 1

            def single_part(self):
                with lock:
                    calls["single"] += 1

        ps = PlugSet(ParallelMethod("region"), MasterMethod("master_part"),
                     SingleMethod("single_part"))
        W = plug(App, ps)
        from repro.core import Runtime

        res = Runtime().run(W, ctor_args=(4,), entry="drive",
                            config=ExecConfig.shared(6), fresh=True)
        assert res.value == {"master": 1, "single": 1}

    def test_thread_local_isolates_writes(self):
        import threading

        seen = []
        lock = threading.Lock()

        class App(Toy):
            def drive(self):
                self.scratch = -1  # master/sequential value
                self.region()
                return sorted(seen)

            def region(self):
                from repro.smp.team import current_worker

                w = current_worker()
                self.scratch = w.tid * 100  # private per thread
                self.sync()
                with lock:
                    seen.append(self.scratch)

            def sync(self):
                pass

        ps = PlugSet(ParallelMethod("region"), ThreadLocal("scratch"),
                     BarrierAfter("sync"))
        W = plug(App, ps)
        from repro.core import Runtime

        res = Runtime().run(W, ctor_args=(4,), entry="drive",
                            config=ExecConfig.shared(3), fresh=True)
        assert res.value == [0, 100, 200]  # no thread saw another's write
