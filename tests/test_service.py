"""The persistent runtime service: fleet hygiene, isolation, steering.

What must hold for a warm world to be safe to share:

* **Parity** — a job through the service produces the bit-identical
  value a direct ``Runtime.run`` on the multiprocess backend produces.
* **Hygiene** — consecutive and concurrent jobs recycle pool slabs and
  arena segments instead of growing them; a drained fleet leaves no
  worker processes and no shared-memory segments behind; a cancelled
  job's workers come back idle and serve the next job.
* **Isolation** — two jobs checkpointing the *same field names* land
  distinct bytes in distinct per-job namespaces; two complete worlds
  built by one parent process never alias a segment name.
* **Steering** — a waiting higher-priority job shrinks a running
  elastic job in place (no relaunch) and both finish correct.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time

import pytest

from repro.apps.plugs.sor_plugs import SOR_ADAPTIVE
from repro.apps.sor import SOR
from repro.ckpt.policy import EveryN
from repro.core import ExecConfig, Runtime, plug
from repro.dsm import shm
from repro.service import JobQueue, RuntimeService, ServiceClient
from repro.service.scheduler import QueueFull
from repro.vtime import MachineModel

pytestmark = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="the service pre-forks its worker fleet")

MACHINE = MachineModel(nodes=2, cores_per_node=4)
WOVEN = plug(SOR, SOR_ADAPTIVE)
N, ITERS = 40, 12
REF = SOR(n=N, iterations=ITERS).execute()
KW = {"n": N, "iterations": ITERS}


def _no_leaks():
    left = shm.live_segments()
    assert left == [], f"leaked segments: {left}"


def _submit(client, **kw):
    kw.setdefault("ctor_kwargs", KW)
    kw.setdefault("entry", "execute")
    kw.setdefault("nranks", 2)
    return client.submit(WOVEN, **kw)


# ---------------------------------------------------------------------------
# parity + recycling
# ---------------------------------------------------------------------------

def test_single_job_matches_direct_run(tmp_path):
    """Acceptance: service value bit-identical to direct multiproc."""
    rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "direct")
    direct = rt.run(WOVEN, ctor_kwargs=KW, entry="execute",
                    config=ExecConfig.distributed(2).with_backend(
                        "multiproc"), fresh=True)
    with RuntimeService(workers=3, lanes=1, machine=MACHINE,
                        ckpt_dir=str(tmp_path / "svc")) as svc:
        client = ServiceClient(svc.address)
        out = client.result(_submit(client), timeout=120.0)
        assert out["status"] == "done", out
        assert out["value"] == direct.value
        assert out["value"] == REF
    _no_leaks()


def test_consecutive_jobs_recycle_not_grow(tmp_path):
    """Jobs 2..n re-lease the same arena segments and pool slabs."""
    with RuntimeService(workers=3, lanes=1, machine=MACHINE,
                        ckpt_dir=str(tmp_path / "svc")) as svc:
        client = ServiceClient(svc.address)
        out = client.result(_submit(client), timeout=120.0)
        assert out["status"] == "done" and out["value"] == REF
        segments_after_first = len(shm.live_segments())
        arena_after_first = client.stats()["arena"]["segments"]
        for _ in range(3):
            out = client.result(_submit(client), timeout=120.0)
            assert out["status"] == "done" and out["value"] == REF
        stats = client.stats()
        assert stats["arena"]["segments"] == arena_after_first
        assert stats["arena"]["leased"] == 0
        assert stats["idle_workers"] == 3
        assert len(shm.live_segments()) == segments_after_first
    _no_leaks()


def test_concurrent_jobs_both_lanes(tmp_path):
    """Four queued jobs drain over two lanes; all correct, all clean."""
    with RuntimeService(workers=4, lanes=2, machine=MACHINE,
                        ckpt_dir=str(tmp_path / "svc")) as svc:
        client = ServiceClient(svc.address)
        ids = [_submit(client) for _ in range(4)]
        for jid in ids:
            out = client.result(jid, timeout=120.0)
            assert out["status"] == "done", out
            assert out["value"] == REF
        stats = client.stats()
        assert stats["idle_workers"] == 4
        assert stats["arena"]["leased"] == 0
        # fleet still alive: every worker process parked, none dead
        assert all(p.is_alive() for p in svc.fleet.procs)
    left = [p.name for p in mp.active_children()
            if p.name.startswith(svc.fleet.proc_prefix)]
    assert left == [], f"workers survived fleet shutdown: {left}"
    _no_leaks()


# ---------------------------------------------------------------------------
# cancellation
# ---------------------------------------------------------------------------

def test_cancel_returns_workers_to_pool(tmp_path):
    """A cancelled job's workers park again and serve the next job."""
    with RuntimeService(workers=3, lanes=1, machine=MACHINE,
                        ckpt_dir=str(tmp_path / "svc")) as svc:
        client = ServiceClient(svc.address)
        jid = _submit(client, ctor_kwargs={"n": 64, "iterations": 200000})
        deadline = time.monotonic() + 30.0
        while client.status(jid)["status"] != "running":
            assert time.monotonic() < deadline, "job never started"
            time.sleep(0.05)
        time.sleep(0.2)
        assert client.cancel(jid)["was"] == "running"
        out = client.result(jid, timeout=60.0)
        assert out["status"] == "cancelled", out
        # the fleet recovered: same workers run the next job
        out = client.result(_submit(client), timeout=120.0)
        assert out["status"] == "done" and out["value"] == REF
        assert client.stats()["idle_workers"] == 3
    _no_leaks()


def test_cancel_queued_job(tmp_path):
    """Cancelling a job still in the queue never touches the fleet."""
    with RuntimeService(workers=3, lanes=1, machine=MACHINE,
                        ckpt_dir=str(tmp_path / "svc")) as svc:
        client = ServiceClient(svc.address)
        blocker = _submit(client, ctor_kwargs={"n": 64,
                                               "iterations": 200000})
        queued = _submit(client)
        assert client.cancel(queued)["was"] == "queued"
        assert client.result(queued, timeout=10.0)["status"] == "cancelled"
        client.cancel(blocker)
        client.result(blocker, timeout=60.0)
    _no_leaks()


# ---------------------------------------------------------------------------
# isolation
# ---------------------------------------------------------------------------

def test_checkpoint_namespaces_isolate_jobs(tmp_path):
    """Two jobs, same app, same field names -> distinct bytes in
    distinct namespaces, and nothing in the master namespace."""
    with RuntimeService(workers=3, lanes=1, machine=MACHINE,
                        ckpt_dir=str(tmp_path / "svc")) as svc:
        client = ServiceClient(svc.address)
        a = _submit(client, ctor_kwargs={**KW, "seed": 1},
                    policy=EveryN(4))
        b = _submit(client, ctor_kwargs={**KW, "seed": 2},
                    policy=EveryN(4))
        for jid in (a, b):
            assert client.result(jid, timeout=120.0)["status"] == "done"
        sa = svc.store.namespace(str(a))
        sb = svc.store.namespace(str(b))
        assert sa.counts() and sa.counts() == sb.counts()
        assert svc.store.counts() == [], \
            "job checkpoints leaked into the master namespace"
        for count in sa.counts():
            assert sa.path_for(count).read_bytes() != \
                sb.path_for(count).read_bytes(), \
                f"jobs aliased checkpoint bytes at count {count}"
    _no_leaks()


def test_two_worlds_one_parent(tmp_path):
    """Two complete multiproc worlds built concurrently by one parent:
    per-launch namespaced segment names never collide."""
    cfg = ExecConfig.distributed(2).with_backend("multiproc")
    results, errors = {}, []

    def run(tag):
        try:
            rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / tag)
            results[tag] = rt.run(WOVEN, ctor_kwargs=KW, entry="execute",
                                  config=cfg, fresh=True).value
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append((tag, exc))

    threads = [threading.Thread(target=run, args=(t,))
               for t in ("a", "b")]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120.0)
    assert not errors, errors
    assert results == {"a": REF, "b": REF}
    _no_leaks()


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------

def test_queue_admission_control():
    q = JobQueue(max_queue=2)
    q.submit({"nranks": 1})
    q.submit({"nranks": 1})
    with pytest.raises(QueueFull):
        q.submit({"nranks": 1})
    # draining one waiter re-opens admission
    first = q.peek()
    assert q.take(first.id) is not None
    q.submit({"nranks": 1})
    assert q.depth() == 2


def test_priority_orders_the_queue():
    q = JobQueue()
    low = q.submit({"nranks": 1}, priority=0)
    high = q.submit({"nranks": 1}, priority=5)
    assert q.peek().id == high.id
    assert q.cancel_waiting(high.id)
    assert q.peek().id == low.id


# ---------------------------------------------------------------------------
# elastic steering
# ---------------------------------------------------------------------------

def test_priority_job_shrinks_running_job(tmp_path):
    """A full-fleet elastic job yields workers to a waiting
    higher-priority job via an in-place membership shrink, then grows
    back — zero relaunches, correct values on both."""
    with RuntimeService(workers=4, lanes=2, machine=MACHINE,
                        ckpt_dir=str(tmp_path / "svc")) as svc:
        client = ServiceClient(svc.address)
        big = _submit(client, ctor_kwargs={"n": 48, "iterations": 2500},
                      nranks=4, min_ranks=2)
        deadline = time.monotonic() + 30.0
        while client.status(big)["status"] != "running":
            assert time.monotonic() < deadline, "job never started"
            time.sleep(0.05)
        time.sleep(0.3)
        small = _submit(client, priority=5)
        out_small = client.result(small, timeout=120.0)
        assert out_small["status"] == "done", out_small
        assert out_small["value"] == REF
        out_big = client.result(big, timeout=300.0)
        assert out_big["status"] == "done", out_big
        assert out_big["reshapes"] >= 1, \
            "the scheduler never steered a shrink"
        assert out_big["relaunches"] == 0
        assert out_big["value"] == SOR(n=48, iterations=2500).execute()
    _no_leaks()
