"""Delta checkpointing on the STRATEGY_LOCAL per-rank shard path, and
the adaptive anchor policy driven by the observed delta/full ratio."""

import numpy as np
import pytest

from repro.ckpt import AdaptiveAnchor, EveryN, IncrementalCheckpointStore
from repro.ckpt.snapshot import KIND_DELTA, KIND_FULL, Snapshot
from repro.core import (
    ExecConfig,
    PlugSet,
    Runtime,
    SafeData,
    SafePointAfter,
    STRATEGY_LOCAL,
    plug,
)
from repro.vtime import MachineModel

MACHINE = MachineModel(nodes=2, cores_per_node=4)


class Drift:
    """A large static table plus a small evolving state — the workload
    where delta checkpointing pays."""

    def __init__(self, n=20000, iterations=10):
        self.table = np.arange(n, dtype=np.float64)  # never changes
        self.state = np.zeros(8)
        self.step = 0
        self.iterations = iterations

    def execute(self):
        for _ in range(self.iterations):
            self.advance()
            self.tick()
        return float(self.state.sum())

    def advance(self):
        self.state += 1.0

    def tick(self):
        self.step += 1


PLUGS = PlugSet(SafeData("table", "state", "step"), SafePointAfter("tick"))
WOVEN = plug(Drift, PLUGS)


def run_local_delta(tmp_path, nranks=3, iterations=10, anchor=4):
    rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "c",
                 policy=EveryN(1), ckpt_strategy=STRATEGY_LOCAL,
                 ckpt_delta=True, ckpt_anchor_every=anchor)
    res = rt.run(WOVEN, ctor_kwargs={"iterations": iterations},
                 entry="execute", config=ExecConfig.distributed(nranks),
                 fresh=True)
    return rt, res


class TestLocalShardDeltas:
    def test_shards_write_deltas_between_anchors(self, tmp_path):
        rt, res = run_local_delta(tmp_path)
        evs = [e for e in res.events.of_kind("checkpoint")
               if e.data["strategy"] == "local"]
        assert evs, "no local checkpoints taken"
        kinds = {e.data["count"]: e.data["ckpt_kind"]
                 for e in evs if e.rank == 0}
        # anchor=4: counts 1 and 5 are full, the rest are deltas
        assert kinds[1] == KIND_FULL and kinds[5] == KIND_FULL
        assert all(kinds[c] == KIND_DELTA for c in (2, 3, 4, 6, 7, 8))
        # the delta skips the static table: far smaller than the anchor
        written = {e.data["count"]: e.data["written"]
                   for e in evs if e.rank == 0}
        assert written[2] < written[1] / 10

    def test_every_rank_writes_its_own_delta_chain(self, tmp_path):
        rt, res = run_local_delta(tmp_path, nranks=3)
        for rank in range(3):
            shard = rt.store.shard(rank)
            assert isinstance(shard, IncrementalCheckpointStore)
            counts = shard.counts()
            assert counts == list(range(1, 11))
            # chains resolve to complete, correct states
            snap = shard.read(7)
            assert snap.safepoint_count == 7
            assert snap.fields["step"] == 7
            np.testing.assert_array_equal(snap.fields["state"],
                                          np.full(8, 7.0))
            np.testing.assert_array_equal(
                snap.fields["table"], np.arange(20000, dtype=np.float64))
            assert shard.chain_of(7) == [7, 6, 5]

    def test_shard_files_live_beside_master_namespace(self, tmp_path):
        rt, _ = run_local_delta(tmp_path, nranks=2)
        shards = sorted(p.name for p in rt.store.dir.glob("ckpt_*.r*.pcr"))
        assert len(shards) == 20  # 10 checkpoints x 2 ranks
        # master-format listing must not see shard files
        assert rt.store.counts() == []

    def test_fresh_run_sweeps_stale_shards(self, tmp_path):
        rt, _ = run_local_delta(tmp_path, nranks=3)
        assert list(rt.store.dir.glob("ckpt_*.r*.pcr"))
        rt2, _ = run_local_delta(tmp_path, nranks=2)
        ranks = {p.name.split(".")[-2] for p in
                 rt2.store.dir.glob("ckpt_*.r*.pcr")}
        assert ranks == {"r0", "r1"}  # rank 2's stale shards are gone

    def test_shard_store_validation(self, tmp_path):
        rt, _ = run_local_delta(tmp_path, nranks=2)
        with pytest.raises(ValueError, match="sharded again"):
            rt.store.shard(0).shard(0)
        with pytest.raises(ValueError, match=">= 0"):
            rt.store.shard(-1)


class TestShardAssembly:
    """The STRATEGY_LOCAL *read* path: reassembling a master-format
    snapshot from same-shape per-rank shards, making the local strategy
    survivable (shards used to be write-only cost accounting)."""

    def _crash_sor(self, tmp_path, nranks=3, fail_at=7, delta=False):
        from repro.apps.plugs.sor_plugs import SOR_ADAPTIVE
        from repro.apps.sor import SOR
        from repro.ckpt import FailureInjector, InjectedFailure

        woven = plug(SOR, SOR_ADAPTIVE)
        rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "c",
                     policy=EveryN(3), ckpt_strategy=STRATEGY_LOCAL,
                     ckpt_delta=delta, ckpt_anchor_every=2)
        with pytest.raises(InjectedFailure):
            rt.run(woven, ctor_kwargs={"n": 24, "iterations": 10},
                   entry="execute", config=ExecConfig.distributed(nranks),
                   injector=FailureInjector(fail_at=fail_at), fresh=True)
        return rt, woven

    def test_assemble_matches_master_format(self, tmp_path):
        rt, woven = self._crash_sor(tmp_path)
        assert rt.store.counts() == []  # nothing in the master namespace
        assert sorted(rt.store.shard_counts()) == [3, 6]
        parts = woven.__pp_plugs__.partitioned_fields()
        snap = rt.store.assemble_from_shards(6, parts)
        assert snap is not None
        assert snap.safepoint_count == 6
        assert snap.meta["assembled_from_shards"] == 3
        # the reassembled grid equals a sequential reference at count 6
        from repro.apps.sor import SOR

        ref = SOR(n=24, iterations=6)
        ref.execute()
        assert np.array_equal(snap.fields["G"], ref.G)
        assert snap.fields["iterations_done"] == 6

    def test_restart_survives_on_shards_alone(self, tmp_path):
        """pcr replay after a crash finds no master file and recovers
        from the shard set — in a different execution mode."""
        from repro.apps.sor import SOR

        rt, woven = self._crash_sor(tmp_path)
        ref = SOR(n=24, iterations=10).execute()
        rt2 = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "c",
                      policy=EveryN(3), ckpt_strategy=STRATEGY_LOCAL)
        res = rt2.run(woven, ctor_kwargs={"n": 24, "iterations": 10},
                      entry="execute", config=ExecConfig.shared(2))
        assert res.value == ref
        assert res.events.of_kind("pcr_replay_engaged")

    def test_auto_recover_survives_on_shards_alone(self, tmp_path):
        from repro.apps.plugs.sor_plugs import SOR_ADAPTIVE
        from repro.apps.sor import SOR
        from repro.ckpt import FailureInjector

        ref = SOR(n=24, iterations=10).execute()
        woven = plug(SOR, SOR_ADAPTIVE)
        rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "c",
                     policy=EveryN(3), ckpt_strategy=STRATEGY_LOCAL)
        res = rt.run(woven, ctor_kwargs={"n": 24, "iterations": 10},
                     entry="execute", config=ExecConfig.distributed(3),
                     injector=FailureInjector(fail_at=7),
                     auto_recover=True, fresh=True)
        assert res.value == ref
        assert res.restarts == 1

    def test_delta_shards_assemble_through_their_chains(self, tmp_path):
        rt, woven = self._crash_sor(tmp_path, delta=True)
        parts = woven.__pp_plugs__.partitioned_fields()
        snap = rt.store.assemble_from_shards(6, parts)
        assert snap is not None
        from repro.apps.sor import SOR

        ref = SOR(n=24, iterations=6)
        ref.execute()
        assert np.array_equal(snap.fields["G"], ref.G)

    def test_incomplete_shard_set_returns_none(self, tmp_path):
        rt, woven = self._crash_sor(tmp_path)
        parts = woven.__pp_plugs__.partitioned_fields()
        # lose one member's shard: the set no longer reassembles
        rt.store.shard(1).path_for(6).unlink()
        assert rt.store.assemble_from_shards(6, parts) is None
        # ...but the older complete set still does
        older = rt.store.assemble_latest_from_shards(parts)
        assert older is not None and older.safepoint_count == 3

    def test_assemble_without_any_shards(self, tmp_path):
        store = IncrementalCheckpointStore(tmp_path / "empty")
        assert store.assemble_from_shards(1, {}) is None
        assert store.assemble_latest_from_shards({}) is None


class TestAdaptiveAnchor:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveAnchor(start=1, min_interval=2)
        with pytest.raises(ValueError):
            AdaptiveAnchor(smoothing=0.0)

    def test_starts_like_fixed_cadence(self):
        a = AdaptiveAnchor(start=8)
        assert not a.due(6)
        assert a.due(7)
        # warm-up: fulls alone (no delta observed yet) keep the start
        a.observe("full", 1_000_000)
        assert a.interval == 8

    def test_small_deltas_stretch_the_chain(self):
        a = AdaptiveAnchor(start=8, max_interval=64)
        a.observe("full", 1_000_000)
        a.observe("delta", 20_000)
        assert a.interval == 10  # sqrt(2 * 1e6 / 2e4)
        a.observe("delta", 100)  # EMA pulls the delta estimate down
        assert a.interval > 10

    def test_wholesale_deltas_shorten_the_chain(self):
        a = AdaptiveAnchor(start=8, min_interval=2)
        a.observe("full", 1000)
        a.observe("delta", 900)
        assert a.interval == 2

    def test_free_deltas_hit_the_cap(self):
        a = AdaptiveAnchor(start=8, max_interval=32)
        a.observe("full", 1000)
        a.observe("delta", 0)
        assert a.interval == 32

    def test_store_feeds_the_policy(self, tmp_path):
        """End to end: with tiny deltas the adaptive store writes fewer
        full anchors (fewer bytes) than the fixed default cadence."""
        def fill(store):
            app = Drift(n=20000)
            for count in range(1, 41):
                app.state += 1.0
                app.step = count
                store.write(Snapshot.capture(
                    app, ["table", "state", "step"], count))
            return store.total_bytes_written

        fixed = fill(IncrementalCheckpointStore(tmp_path / "fixed",
                                                anchor=8))
        adaptive_policy = AdaptiveAnchor()
        adaptive = fill(IncrementalCheckpointStore(tmp_path / "adaptive",
                                                   anchor=adaptive_policy))
        assert adaptive_policy.interval > 8  # it learned the ratio
        assert adaptive < fixed

    def test_runtime_accepts_adaptive_string(self, tmp_path):
        rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "c",
                     ckpt_delta=True, ckpt_anchor_every="adaptive")
        assert isinstance(rt.store.anchor, AdaptiveAnchor)
