"""Shared-memory segment lifecycle: allocate/attach/unlink, no leaks.

The multiprocessing backend's contract with ``/dev/shm``: every segment
a launch creates is gone when the launch is over — after clean exits,
after rank failures (including rank-scoped ones that strand peers in
collectives), and across PhaseDriver restart chains.  Leaks are
asserted through the package's own ``SharedMemory`` name tracking plus
a direct ``/dev/shm`` scan where the platform provides one.
"""

import multiprocessing
import os

import numpy as np
import pytest

from repro.apps.plugs.sor_plugs import SOR_ADAPTIVE
from repro.apps.sor import SOR
from repro.ckpt import EveryN
from repro.ckpt.failure import FailureInjector, InjectedFailure
from repro.core import ExecConfig, Runtime, plug
from repro.dsm import shm
from repro.vtime import MachineModel

MACHINE = MachineModel(nodes=2, cores_per_node=4)
N, ITERS = 24, 10
REF = SOR(n=N, iterations=ITERS).execute()
WOVEN = plug(SOR, SOR_ADAPTIVE)
MULTIPROC = ExecConfig.distributed(3).with_backend("multiproc")


def assert_no_segments():
    assert shm.live_segments() == []
    if os.path.isdir("/dev/shm"):
        left = [f for f in os.listdir("/dev/shm")
                if f.startswith(shm.SHM_PREFIX)]
        assert left == [], f"leaked /dev/shm segments: {left}"


def run(tmp_path, tag, **kw):
    rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / tag,
                 policy=kw.pop("policy", EveryN(3)))
    return rt, rt.run(WOVEN, ctor_kwargs={"n": N, "iterations": ITERS},
                      entry="execute", config=MULTIPROC, fresh=True, **kw)


# ---------------------------------------------------------------------------
# the segment manager itself
# ---------------------------------------------------------------------------
class TestSegmentPrimitives:
    def test_allocate_view_attach_roundtrip(self):
        launch = shm.new_launch_id()
        owner = shm.SegmentManager(launch)
        seg = owner.allocate("G", (5, 3), np.float64)
        view = seg.ndarray()
        view[...] = np.arange(15.0).reshape(5, 3)
        assert shm.segment_name(launch, "G") in shm.live_segments()

        peer = shm.SegmentManager(launch)
        mirror = peer.attach("G", (5, 3), np.float64).ndarray()
        assert np.array_equal(mirror, view)
        mirror[0, 0] = 99.0
        assert view[0, 0] == 99.0  # same physical pages

        del view, mirror
        peer.close_all()
        owner.close_all()
        assert shm.unlink_by_name(shm.segment_name(launch, "G"))
        assert_no_segments()

    def test_view_is_cached_per_segment(self):
        launch = shm.new_launch_id()
        seg = shm.SegmentManager(launch).allocate("x", (4,), np.int64)
        assert seg.ndarray() is seg.ndarray()
        seg.unlink()
        assert_no_segments()

    def test_unlink_is_idempotent(self):
        launch = shm.new_launch_id()
        seg = shm.ShmSegment.allocate(shm.segment_name(launch, "y"),
                                      (2,), np.float32)
        seg.unlink()
        seg.unlink()  # second time: no error
        assert not shm.unlink_by_name(seg.name)  # already gone
        assert_no_segments()

    def test_unlink_by_name_unknown_segment(self):
        assert shm.unlink_by_name(f"{shm.SHM_PREFIX}-nope-nope") is False

    def test_launch_ids_are_unique(self):
        assert shm.new_launch_id() != shm.new_launch_id()


# ---------------------------------------------------------------------------
# lifecycle through real launches
# ---------------------------------------------------------------------------
class TestLaunchLifecycle:
    def test_unlinked_on_clean_exit(self, tmp_path):
        _, res = run(tmp_path, "clean")
        assert res.value == REF
        assert_no_segments()
        assert [p for p in multiprocessing.active_children()
                if p.name.startswith("mp-rank-")] == []

    def test_unlinked_on_rank_failure(self, tmp_path):
        """An uninjected-recovery run: the failure unwinds the phase and
        the launch's segments must not survive it."""
        with pytest.raises(InjectedFailure):
            run(tmp_path, "fail", injector=FailureInjector(fail_at=4))
        assert_no_segments()

    def test_unlinked_on_rank_scoped_failure(self, tmp_path):
        """Only rank 1 fails; peers are terminated mid-collective — the
        parent's by-name cleanup must still reclaim every segment."""
        with pytest.raises(InjectedFailure):
            run(tmp_path, "fail-rank",
                injector=FailureInjector(fail_at=4, rank=1))
        assert_no_segments()

    def test_unlinked_across_driver_restart_chain(self, tmp_path):
        """PhaseDriver restart: fail, recover from checkpoint, finish —
        two launches, two segment generations, zero survivors."""
        rt, res = run(tmp_path, "restart",
                      injector=FailureInjector(fail_at=6),
                      auto_recover=True)
        assert res.value == REF
        assert res.restarts == 1
        assert_no_segments()
