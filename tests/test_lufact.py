"""Tests for the LUFact kernel across modes, restart and validation."""

import numpy as np
import pytest

from repro.apps.lufact import LUFact
from repro.apps.plugs.lufact_plugs import (
    LUFACT_CKPT,
    LUFACT_DIST,
    LUFACT_SHARED,
)
from repro.ckpt import EveryN, FailureInjector, InjectedFailure
from repro.core import ExecConfig, Runtime, plug
from repro.vtime import MachineModel

MACHINE = MachineModel(nodes=2, cores_per_node=4)
N = 48
REF = LUFact(n=N).execute()


class TestDomain:
    def test_factorisation_is_correct(self):
        lu = LUFact(n=32)
        lu.execute()
        assert lu.validate()

    def test_pivoting_happens(self):
        lu = LUFact(n=32, seed=3)
        lu.execute()
        # with a random matrix at least one swap is overwhelmingly likely
        assert not np.array_equal(lu.piv, np.arange(32))

    def test_deterministic(self):
        assert LUFact(n=N).execute() == REF

    def test_validation_error(self):
        with pytest.raises(ValueError):
            LUFact(n=1)


class TestModes:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_shared(self, tmp_path, workers):
        W = plug(LUFact, LUFACT_SHARED + LUFACT_CKPT)
        rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "c")
        res = rt.run(W, ctor_kwargs={"n": N}, entry="execute",
                     config=ExecConfig.shared(workers), fresh=True)
        assert res.value == REF

    @pytest.mark.parametrize("nranks", [2, 3, 5])
    def test_distributed(self, tmp_path, nranks):
        W = plug(LUFact, LUFACT_DIST + LUFACT_CKPT)
        rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "c")
        res = rt.run(W, ctor_kwargs={"n": N}, entry="execute",
                     config=ExecConfig.distributed(nranks), fresh=True)
        assert res.value == REF

    def test_distributed_result_still_a_valid_lu(self, tmp_path):
        """Beyond checksum equality: the distributed factors really
        satisfy P A0 == L U (exercised via a woven instance we keep)."""
        W = plug(LUFact, LUFACT_DIST + LUFACT_CKPT)
        rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "c")
        res = rt.run(W, ctor_kwargs={"n": 24}, entry="validate_after_run",
                     config=ExecConfig.distributed(3), fresh=True)
        assert res.value is True


class TestRestart:
    def test_crash_and_restart_sequential(self, tmp_path):
        W = plug(LUFact, LUFACT_CKPT)
        rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "c",
                     policy=EveryN(10))
        with pytest.raises(InjectedFailure):
            rt.run(W, ctor_kwargs={"n": N}, entry="execute",
                   config=ExecConfig.sequential(),
                   injector=FailureInjector(fail_at=25), fresh=True)
        res = rt.run(W, ctor_kwargs={"n": N}, entry="execute",
                     config=ExecConfig.sequential())
        assert res.value == REF

    def test_crash_and_restart_distributed(self, tmp_path):
        W = plug(LUFact, LUFACT_DIST + LUFACT_CKPT)
        rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "c",
                     policy=EveryN(10))
        with pytest.raises(InjectedFailure):
            rt.run(W, ctor_kwargs={"n": N}, entry="execute",
                   config=ExecConfig.distributed(3),
                   injector=FailureInjector(fail_at=30), fresh=True)
        res = rt.run(W, ctor_kwargs={"n": N}, entry="execute",
                     config=ExecConfig.distributed(3))
        assert res.value == REF
