"""Property-based tests of the adaptation protocol (DESIGN.md §6).

The paper's central correctness claim is implicit: reshaping the
parallelism structure at safe points must never change what the program
computes.  Hypothesis generates arbitrary adaptation schedules — mixes of
sequential / shared / distributed targets at arbitrary safe points — and
every schedule must leave SOR's result bit-identical to the fixed-mode
reference.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.plugs.sor_plugs import SOR_ADAPTIVE
from repro.apps.sor import SOR
from repro.ckpt import AtCounts, EveryN, FailureInjector, InjectedFailure
from repro.core import AdaptStep, AdaptationPlan, ExecConfig, Runtime, plug
from repro.vtime import MachineModel

MACHINE = MachineModel(nodes=2, cores_per_node=4)
N, ITERS = 36, 12
REF = SOR(n=N, iterations=ITERS).execute()
WOVEN = plug(SOR, SOR_ADAPTIVE)

CONFIGS = st.sampled_from([
    ExecConfig.sequential(),
    ExecConfig.shared(2),
    ExecConfig.shared(3),
    ExecConfig.distributed(2),
    ExecConfig.distributed(4),
])

SLOW = settings(deadline=None, max_examples=12,
                suppress_health_check=[HealthCheck.function_scoped_fixture])


@SLOW
@given(start=CONFIGS,
       steps=st.lists(
           st.tuples(st.integers(min_value=2, max_value=ITERS - 1), CONFIGS),
           min_size=0, max_size=3, unique_by=lambda t: t[0]))
def test_any_adaptation_schedule_preserves_result(tmp_path, start, steps):
    plan = AdaptationPlan([AdaptStep(at, cfg) for at, cfg in steps])
    rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "c")
    res = rt.run(WOVEN, ctor_kwargs={"n": N, "iterations": ITERS},
                 entry="execute", config=start, plan=plan, fresh=True)
    assert res.value == REF


@SLOW
@given(start=CONFIGS,
       fail_at=st.integers(min_value=2, max_value=ITERS),
       every=st.integers(min_value=1, max_value=5))
def test_any_crash_point_recovers(tmp_path, start, fail_at, every):
    """Failure at any safe point + any checkpoint cadence -> same result."""
    rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "c",
                 policy=EveryN(every))
    res = rt.run(WOVEN, ctor_kwargs={"n": N, "iterations": ITERS},
                 entry="execute", config=start,
                 injector=FailureInjector(fail_at=fail_at),
                 auto_recover=True, fresh=True)
    assert res.value == REF
    assert res.restarts == 1


@SLOW
@given(ckpt_at=st.integers(min_value=1, max_value=ITERS - 1),
       write_cfg=CONFIGS, read_cfg=CONFIGS)
def test_checkpoint_mode_independence(tmp_path, ckpt_at, write_cfg, read_cfg):
    """A checkpoint written under any mode restarts under any other."""
    rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "c",
                 policy=AtCounts([ckpt_at]))
    kw = dict(ctor_kwargs={"n": N, "iterations": ITERS}, entry="execute")
    try:
        rt.run(WOVEN, config=write_cfg,
               injector=FailureInjector(fail_at=ckpt_at + 1), fresh=True,
               **kw)
    except InjectedFailure:
        pass
    assert rt.store.read_latest().safepoint_count == ckpt_at
    res = rt.run(WOVEN, config=read_cfg, **kw)
    assert res.value == REF
