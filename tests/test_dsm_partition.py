"""Tests for data layouts and scatter/gather/halo movements."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsm import (
    BlockLayout,
    CyclicLayout,
    HybridLayout,
    SimCluster,
    gather_blocks,
    local_slice,
    scatter_blocks,
)
from repro.dsm.comm import current_rank
from repro.dsm.partition import (
    exchange_halo,
    gather_inplace,
    scatter_inplace,
)
from repro.vtime import MachineModel

MACHINE = MachineModel(nodes=2, cores_per_node=4)

LAYOUTS = [
    BlockLayout(axis=0),
    BlockLayout(axis=1),
    CyclicLayout(axis=0),
    HybridLayout(axis=0, block=3),
    HybridLayout(axis=1, block=2),
]


class TestLocalSlice:
    def test_even(self):
        assert local_slice(8, 0, 4) == (0, 2)
        assert local_slice(8, 3, 4) == (6, 8)

    def test_remainder(self):
        bounds = [local_slice(10, r, 3) for r in range(3)]
        assert bounds == [(0, 4), (4, 7), (7, 10)]

    @given(st.integers(0, 200), st.integers(1, 16))
    def test_tiles_range(self, n, p):
        idx = []
        for r in range(p):
            lo, hi = local_slice(n, r, p)
            idx.extend(range(lo, hi))
        assert idx == list(range(n))


class TestLayoutOwnership:
    @pytest.mark.parametrize("layout", LAYOUTS)
    @pytest.mark.parametrize("n,p", [(10, 1), (10, 3), (7, 7), (16, 4)])
    def test_owned_partitions_range(self, layout, n, p):
        """Every index owned by exactly one rank."""
        owned = [layout.owned(n, r, p) for r in range(p)]
        allidx = np.sort(np.concatenate(owned))
        np.testing.assert_array_equal(allidx, np.arange(n))

    def test_cyclic_is_round_robin(self):
        lay = CyclicLayout()
        np.testing.assert_array_equal(lay.owned(7, 1, 3), [1, 4])

    def test_hybrid_blocks(self):
        lay = HybridLayout(block=2)
        np.testing.assert_array_equal(lay.owned(8, 0, 2), [0, 1, 4, 5])
        np.testing.assert_array_equal(lay.owned(8, 1, 2), [2, 3, 6, 7])

    def test_hybrid_invalid_block(self):
        with pytest.raises(ValueError):
            HybridLayout(block=0).owned(8, 0, 2)

    def test_block_halo_bounds_clipped(self):
        lay = BlockLayout(halo=2)
        assert lay.halo_bounds(10, 0, 2) == (0, 7)
        assert lay.halo_bounds(10, 1, 2) == (3, 10)


class TestCompactMovements:
    @pytest.mark.parametrize("layout", LAYOUTS)
    @pytest.mark.parametrize("p", [1, 2, 3, 4])
    def test_gather_scatter_roundtrip(self, layout, p):
        full = np.arange(48.0).reshape(6, 8)

        def entry():
            ctx = current_rank()
            arr = full if ctx.rank == 0 else None
            part = scatter_blocks(ctx.comm, arr, layout, root=0)
            return gather_blocks(ctx.comm, part, layout, full.shape, root=0)

        res = SimCluster(p, MACHINE).run(entry)
        np.testing.assert_array_equal(res[0], full)
        assert all(r is None for r in res[1:])

    def test_scatter_block_sizes(self):
        lay = BlockLayout(axis=0)
        full = np.arange(10.0).reshape(10, 1)

        def entry():
            ctx = current_rank()
            arr = full if ctx.rank == 0 else None
            return scatter_blocks(ctx.comm, arr, lay, root=0).shape[0]

        res = SimCluster(3, MACHINE).run(entry)
        assert res == [4, 3, 3]


class TestInplaceMovements:
    @pytest.mark.parametrize("layout", LAYOUTS)
    @pytest.mark.parametrize("p", [2, 3, 5])
    def test_inplace_roundtrip_identity(self, layout, p):
        """scatter → local doubling of owned region → gather == doubled."""
        full = np.arange(60.0).reshape(10, 6)

        def entry():
            ctx = current_rank()
            arr = full.copy() if ctx.rank == 0 else np.zeros_like(full)
            owned = scatter_inplace(ctx.comm, arr, layout, root=0)
            if isinstance(owned, tuple):
                lo, hi = owned
                idx = np.arange(lo, hi)
            else:
                idx = owned
            sl = [slice(None)] * arr.ndim
            sl[layout.axis] = idx
            arr[tuple(sl)] *= 2.0
            gather_inplace(ctx.comm, arr, layout, root=0)
            return arr if ctx.rank == 0 else None

        res = SimCluster(p, MACHINE).run(entry)
        np.testing.assert_array_equal(res[0], full * 2.0)

    def test_halo_exchange_neighbours(self):
        lay = BlockLayout(axis=0, halo=1)
        n, p = 12, 4

        def entry():
            ctx = current_rank()
            arr = np.full((n, 3), -1.0)
            lo, hi = lay.bounds(n, ctx.rank, p)
            arr[lo:hi] = float(ctx.rank)  # own block carries rank id
            exchange_halo(ctx.comm, arr, lay)
            return arr

        res = SimCluster(p, MACHINE).run(entry)
        for r in range(p):
            lo, hi = lay.bounds(n, r, p)
            if r > 0:  # ghost row below mirrors the lower neighbour
                assert np.all(res[r][lo - 1] == float(r - 1))
            if r < p - 1:  # ghost row above mirrors the upper neighbour
                assert np.all(res[r][hi] == float(r + 1))

    def test_halo_noop_for_single_rank(self):
        lay = BlockLayout(axis=0, halo=1)

        def entry():
            ctx = current_rank()
            arr = np.ones((4, 2))
            exchange_halo(ctx.comm, arr, lay)
            return arr

        res = SimCluster(1, MACHINE).run(entry)
        np.testing.assert_array_equal(res[0], np.ones((4, 2)))

    @settings(deadline=None, max_examples=15)
    @given(n=st.integers(4, 40), p=st.integers(1, 4),
           axis=st.integers(0, 1))
    def test_inplace_roundtrip_property(self, n, p, axis):
        layout = BlockLayout(axis=axis)
        shape = (n, 5) if axis == 0 else (5, n)
        full = np.arange(float(np.prod(shape))).reshape(shape)

        def entry():
            ctx = current_rank()
            arr = full.copy() if ctx.rank == 0 else np.zeros_like(full)
            scatter_inplace(ctx.comm, arr, layout, root=0)
            gather_inplace(ctx.comm, arr, layout, root=0)
            return arr if ctx.rank == 0 else None

        res = SimCluster(p, MACHINE).run(entry)
        np.testing.assert_array_equal(res[0], full)


class TestAggregates:
    def test_invoke_all_and_reduce(self):
        from repro.dsm import AggregateMember, ObjectAggregate

        class Counter:
            def __init__(self, rank):
                self.rank = rank

            def score(self):
                return self.rank + 1

        def entry():
            ctx = current_rank()
            member = AggregateMember(Counter(ctx.rank), ctx)
            agg = ObjectAggregate(member, ctx.comm)
            total = agg.invoke_reduce("score")
            assert agg.size == ctx.nranks
            return total

        res = SimCluster(4, MACHINE).run(entry)
        assert res == [10, 10, 10, 10]

    def test_invoke_on_with_broadcast(self):
        from repro.dsm import AggregateMember, ObjectAggregate

        class Holder:
            def __init__(self, rank):
                self.rank = rank

            def ident(self):
                return f"member-{self.rank}"

        def entry():
            ctx = current_rank()
            agg = ObjectAggregate(AggregateMember(Holder(ctx.rank), ctx),
                                  ctx.comm)
            return agg.invoke_on(2, "ident", broadcast_result=True)

        res = SimCluster(4, MACHINE).run(entry)
        assert res == ["member-2"] * 4

    def test_invoke_scattered(self):
        from repro.dsm import AggregateMember, ObjectAggregate

        class Adder:
            def __init__(self, rank):
                self.rank = rank

            def add(self, x):
                return self.rank + x

        def entry():
            ctx = current_rank()
            agg = ObjectAggregate(AggregateMember(Adder(ctx.rank), ctx),
                                  ctx.comm)
            args = [(100,), (200,), (300,)] if ctx.rank == 0 else None
            return agg.invoke_scattered("add", args)

        res = SimCluster(3, MACHINE).run(entry)
        assert res == [100, 201, 302]

    def test_representative_is_member_zero(self):
        from repro.dsm import AggregateMember

        def entry():
            ctx = current_rank()
            m = AggregateMember(object(), ctx)
            return m.is_representative

        res = SimCluster(3, MACHINE).run(entry)
        assert res == [True, False, False]

    def test_partitioned_field_spec_needs_layout(self):
        from repro.dsm.aggregate import FieldRole, FieldSpec

        with pytest.raises(ValueError):
            FieldSpec("G", FieldRole.PARTITIONED)
        spec = FieldSpec("G", FieldRole.PARTITIONED, BlockLayout())
        assert spec.layout is not None
