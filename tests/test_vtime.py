"""Tests for the virtual-time substrate (clocks + machine model)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.vtime import MachineModel, NetworkModel, VClock
from repro.vtime.machine import EIGHT_CORE_CLUSTER, PAPER_CLUSTER


class TestVClock:
    def test_charges_accumulate_by_category(self):
        c = VClock()
        c.charge_compute(1.0)
        c.charge_comm(0.5)
        c.charge_io(0.25)
        assert c.now == pytest.approx(1.75)
        s = c.snapshot()
        assert s["compute"] == pytest.approx(1.0)
        assert s["comm"] == pytest.approx(0.5)
        assert s["io"] == pytest.approx(0.25)

    def test_contention_scales_compute_only(self):
        c = VClock()
        c.contention = 4
        c.charge_compute(1.0)
        c.charge_comm(1.0)
        assert c.compute_total == pytest.approx(4.0)
        assert c.comm_total == pytest.approx(1.0)

    def test_advance_to_is_monotone(self):
        c = VClock(5.0)
        c.advance_to(3.0)
        assert c.now == 5.0
        c.advance_to(7.0)
        assert c.now == 7.0

    def test_negative_charges_rejected(self):
        c = VClock()
        with pytest.raises(ValueError):
            c.charge_compute(-1)
        with pytest.raises(ValueError):
            c.charge_comm(-1)
        with pytest.raises(ValueError):
            c.charge_io(-1)

    def test_sync_max_lifts_all(self):
        clocks = [VClock(1.0), VClock(3.0), VClock(2.0)]
        t = VClock.sync_max(clocks, extra=0.5)
        assert t == pytest.approx(3.5)
        assert all(c.now == pytest.approx(3.5) for c in clocks)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1,
                    max_size=8),
           st.floats(min_value=0, max_value=10))
    def test_sync_max_property(self, starts, extra):
        clocks = [VClock(s) for s in starts]
        t = VClock.sync_max(clocks, extra=extra)
        assert t == pytest.approx(max(starts) + extra)
        assert all(c.now >= s for c, s in zip(clocks, starts))


class TestMachineModel:
    def test_paper_cluster_topology(self):
        assert PAPER_CLUSTER.total_cores == 48
        assert EIGHT_CORE_CLUSTER.total_cores == 32

    def test_node_placement_fills_in_order(self):
        m = MachineModel(nodes=2, cores_per_node=4)
        assert [m.node_of(r) for r in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]
        # over-subscription wraps around the core grid
        assert m.node_of(8) == 0
        assert m.node_of(12) == 1

    def test_same_node(self):
        m = MachineModel(nodes=2, cores_per_node=4)
        assert m.same_node(0, 3)
        assert not m.same_node(0, 4)

    def test_contention_under_subscription(self):
        m = MachineModel(nodes=2, cores_per_node=4)
        for r in range(8):
            assert m.contention(r, 8) == 1

    def test_contention_over_subscription(self):
        m = MachineModel(nodes=1, cores_per_node=4)
        # 10 ranks on 4 cores: cores 0,1 host 3 ranks; cores 2,3 host 2
        assert m.contention(0, 10) == 3
        assert m.contention(1, 10) == 3
        assert m.contention(2, 10) == 2
        assert m.contention(3, 10) == 2
        # total rank-slots must equal nranks
        assert sum(m.contention(c, 10) for c in range(4)) == 10

    def test_thread_contention_single_node(self):
        m = MachineModel(nodes=4, cores_per_node=8)
        assert m.thread_contention(0, 8) == 1
        assert m.thread_contention(0, 16) == 2  # threads cannot span nodes

    def test_barrier_cost_grows_with_parties(self):
        m = MachineModel()
        costs = [m.barrier_cost(p) for p in (1, 2, 8, 32, 256)]
        assert costs[0] == 0.0
        assert all(a < b for a, b in zip(costs, costs[1:]))

    def test_p2p_inter_node_slower(self):
        m = MachineModel(nodes=2, cores_per_node=4)
        intra = m.p2p_cost(1 << 20, 0, 1)
        inter = m.p2p_cost(1 << 20, 0, 4)
        assert inter > intra * 5

    def test_oversub_epoch_cost(self):
        m = MachineModel(nodes=1, cores_per_node=4)
        assert m.oversub_epoch_cost(4) == 0.0
        assert m.oversub_epoch_cost(5) > 0.0

    def test_with_replaces_fields(self):
        m = MachineModel(nodes=2, cores_per_node=4)
        m2 = m.with_(nodes=3)
        assert m2.nodes == 3 and m2.cores_per_node == 4
        assert m.nodes == 2  # original untouched

    def test_disk_model_costs(self):
        m = MachineModel()
        one_mb = 1 << 20
        assert m.disk.write_cost(one_mb) > m.disk.latency
        assert m.disk.read_cost(one_mb) < m.disk.write_cost(one_mb) + m.disk.latency

    @given(st.integers(min_value=1, max_value=512),
           st.integers(min_value=1, max_value=4),
           st.integers(min_value=1, max_value=32))
    def test_contention_partition_property(self, nranks, nodes, cores):
        """Contention slots across all cores always sum to nranks."""
        m = MachineModel(nodes=nodes, cores_per_node=cores)
        total = sum(m.contention(c, nranks) for c in range(m.total_cores))
        if nranks <= m.total_cores:
            # under-subscription: every rank has its own core
            assert all(m.contention(r, nranks) == 1 for r in range(nranks))
        else:
            assert total == nranks


class TestNetworkModel:
    def test_latency_dominates_small_messages(self):
        n = NetworkModel()
        assert n.p2p_cost(1, same_node=False) == pytest.approx(
            n.inter_latency, rel=1e-3)

    def test_bandwidth_dominates_large_messages(self):
        n = NetworkModel()
        big = 100 << 20
        assert n.p2p_cost(big, same_node=False) == pytest.approx(
            big / n.inter_bandwidth, rel=0.01)
