"""Tests for the self-adaptation advisor (the paper's future work)."""

import pytest

from repro.apps.plugs.sor_plugs import SOR_ADAPTIVE
from repro.apps.sor import SOR
from repro.core import ExecConfig, Runtime, plug
from repro.core.advisor import SelfAdaptationAdvisor
from repro.vtime import MachineModel

MACHINE = MachineModel(nodes=2, cores_per_node=4)


class TestLadder:
    def test_ladder_shape(self):
        adv = SelfAdaptationAdvisor(MachineModel(nodes=2, cores_per_node=4),
                                    max_pe=16)
        ladder = adv.ladder
        assert ladder[0] == ExecConfig.sequential()
        assert ExecConfig.shared(2) in ladder
        assert ExecConfig.shared(4) in ladder
        assert ExecConfig.distributed(8) in ladder
        assert ExecConfig.distributed(16) in ladder
        pes = [c.processing_elements for c in ladder]
        assert pes == sorted(pes)

    def test_ladder_respects_max_pe(self):
        adv = SelfAdaptationAdvisor(MACHINE, max_pe=4)
        assert all(c.processing_elements <= 4 for c in adv.ladder)

    def test_validation(self):
        with pytest.raises(ValueError):
            SelfAdaptationAdvisor(MACHINE, window=1)
        with pytest.raises(ValueError):
            SelfAdaptationAdvisor(MACHINE, tolerance=1.5)


class TestDecisionLogic:
    def _feed(self, adv, config, start_count, per_iter, start_vtime=0.0):
        """Feed `window+1` safe points at a synthetic per-iteration rate."""
        out = None
        for i in range(adv.window + 1):
            count = start_count + i
            vtime = start_vtime + i * per_iter
            out = adv.on_safepoint(count, vtime, config)
            if out is not None:
                return out, count, vtime
        return out, count, vtime

    def test_climbs_while_improving(self):
        adv = SelfAdaptationAdvisor(MACHINE, max_pe=4, window=3)
        step, count, vtime = self._feed(adv, ExecConfig.sequential(), 1, 1.0)
        assert step == ExecConfig.shared(2)

    def test_settles_when_no_improvement(self):
        adv = SelfAdaptationAdvisor(MACHINE, max_pe=4, window=3)
        step, count, vtime = self._feed(adv, ExecConfig.sequential(), 1, 1.0)
        # the "2 threads" trial turns out no faster:
        step2, count2, vtime2 = self._feed(adv, step, count + 1, 1.0,
                                           start_vtime=vtime)
        assert adv.settled
        # settled back to the best measured configuration (sequential)
        assert step2 == ExecConfig.sequential()

    def test_keeps_better_config_and_continues(self):
        adv = SelfAdaptationAdvisor(MACHINE, max_pe=4, window=3)
        s1, c1, v1 = self._feed(adv, ExecConfig.sequential(), 1, 1.0)
        s2, c2, v2 = self._feed(adv, s1, c1 + 1, 0.5, start_vtime=v1)
        assert s2 == ExecConfig.shared(4)  # kept climbing

    def test_dormant_in_distributed(self):
        adv = SelfAdaptationAdvisor(MACHINE, max_pe=8, window=2)
        assert adv.on_safepoint(1, 0.0, ExecConfig.distributed(8)) is None
        assert adv.on_safepoint(2, 1.0, ExecConfig.distributed(8)) is None

    def test_best_tracks_measurements(self):
        adv = SelfAdaptationAdvisor(MACHINE, max_pe=4, window=2)
        adv.measured[ExecConfig.sequential()] = 1.0
        adv.measured[ExecConfig.shared(2)] = 0.4
        assert adv.best() == ExecConfig.shared(2)


class TestEndToEnd:
    def test_advisor_accelerates_sor(self, tmp_path):
        """Starting sequentially, the advisor finds a parallel config and
        the result stays correct."""
        ref = SOR(n=400, iterations=40).execute()
        W = plug(SOR, SOR_ADAPTIVE)
        adv = SelfAdaptationAdvisor(MACHINE, max_pe=8, window=4)
        rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "c")
        res = rt.run(W, ctor_kwargs={"n": 400, "iterations": 40},
                     entry="execute", config=ExecConfig.sequential(),
                     advisor=adv, fresh=True)
        assert res.value == ref
        assert res.adaptations, "advisor never reshaped the run"
        assert res.final_config.processing_elements > 1
        # and it reached its decisions from measurements
        assert len(adv.measured) >= 2

    def test_advisor_survives_into_distributed(self, tmp_path):
        """If the ladder leads into distributed execution the run
        completes there (advisor dormant across ranks)."""
        ref = SOR(n=400, iterations=60).execute()
        W = plug(SOR, SOR_ADAPTIVE)
        adv = SelfAdaptationAdvisor(MACHINE, max_pe=8, window=3,
                                    tolerance=0.0)
        rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "c")
        res = rt.run(W, ctor_kwargs={"n": 400, "iterations": 60},
                     entry="execute", config=ExecConfig.sequential(),
                     advisor=adv, fresh=True)
        assert res.value == ref

    def test_advisor_decisions_recorded(self, tmp_path):
        W = plug(SOR, SOR_ADAPTIVE)
        adv = SelfAdaptationAdvisor(MACHINE, max_pe=4, window=4)
        rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "c")
        rt.run(W, ctor_kwargs={"n": 60, "iterations": 40},
               entry="execute", config=ExecConfig.sequential(),
               advisor=adv, fresh=True)
        for count, cfg in adv.decisions:
            assert count >= 1
            assert cfg.processing_elements >= 1
