"""Mode-equivalence and checkpoint tests for the full workload suite.

Every app must produce identical results in sequential, shared and
distributed execution, and must survive a crash + replay-restart cycle —
these are the claims the paper makes for its JGF / evolutionary / MD case
studies (Section V, first paragraph).
"""

import numpy as np
import pytest

from repro.apps import (
    Crypt,
    EvolutionaryOptimizer,
    MolDyn,
    MonteCarloPricer,
    Series,
    SparseMatMult,
    Sphere,
)
from repro.apps.plugs.crypt_plugs import CRYPT_CKPT, CRYPT_DIST, CRYPT_SHARED
from repro.apps.plugs.evo_plugs import EVO_CKPT, EVO_DIST, EVO_SHARED
from repro.apps.plugs.moldyn_plugs import (
    MOLDYN_CKPT,
    MOLDYN_DIST,
    MOLDYN_SHARED,
)
from repro.apps.plugs.montecarlo_plugs import MC_CKPT, MC_DIST, MC_SHARED
from repro.apps.plugs.series_plugs import (
    SERIES_CKPT,
    SERIES_DIST,
    SERIES_SHARED,
)
from repro.apps.plugs.sparse_plugs import (
    SPARSE_CKPT,
    SPARSE_DIST,
    SPARSE_SHARED,
)
from repro.ckpt import EveryN, FailureInjector, InjectedFailure
from repro.core import ExecConfig, Runtime, plug
from repro.vtime import MachineModel

MACHINE = MachineModel(nodes=2, cores_per_node=4)

# app registry: (cls, ctor kwargs, shared plugs, dist plugs, ckpt plugs)
APPS = {
    "series": (Series, {"n": 24, "integration_points": 200},
               SERIES_SHARED, SERIES_DIST, SERIES_CKPT),
    "crypt": (Crypt, {"n": 512},
              CRYPT_SHARED, CRYPT_DIST, CRYPT_CKPT),
    "sparse": (SparseMatMult, {"n": 60, "iterations": 8},
               SPARSE_SHARED, SPARSE_DIST, SPARSE_CKPT),
    "montecarlo": (MonteCarloPricer, {"npaths": 48, "steps": 30},
                   MC_SHARED, MC_DIST, MC_CKPT),
    "moldyn": (MolDyn, {"n": 27, "steps": 6},
               MOLDYN_SHARED, MOLDYN_DIST, MOLDYN_CKPT),
}


def sequential_reference(name):
    cls, kwargs = APPS[name][0], APPS[name][1]
    if name == "evo":
        return cls(Sphere(dim=4), **kwargs).execute()
    return cls(**kwargs).execute()


def run_app(name, plugset, config, tmp_path, **rt_kw):
    cls, kwargs = APPS[name][0], APPS[name][1]
    W = plug(cls, plugset)
    rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "ckpt", **rt_kw)
    return rt, rt.run(W, ctor_kwargs=kwargs, entry="execute", config=config,
                      fresh=True)


@pytest.mark.parametrize("name", list(APPS))
class TestSuiteModeEquivalence:
    def test_shared_matches_sequential(self, name, tmp_path):
        ref = sequential_reference(name)
        _, res = run_app(name, APPS[name][2] + APPS[name][4],
                         ExecConfig.shared(3), tmp_path)
        assert res.value == ref

    def test_distributed_matches_sequential(self, name, tmp_path):
        ref = sequential_reference(name)
        _, res = run_app(name, APPS[name][3] + APPS[name][4],
                         ExecConfig.distributed(3), tmp_path)
        assert res.value == ref

    def test_distributed_many_ranks(self, name, tmp_path):
        ref = sequential_reference(name)
        _, res = run_app(name, APPS[name][3] + APPS[name][4],
                         ExecConfig.distributed(5), tmp_path)
        assert res.value == ref


class TestSuiteCheckpointRestart:
    """Crash + replay for every iterative app (those with >1 safe point)."""

    @pytest.mark.parametrize("name,fail_at,every", [
        ("sparse", 5, 2),
        ("moldyn", 4, 2),
        ("crypt", 2, 1),
    ])
    def test_sequential_crash_restart(self, name, fail_at, every, tmp_path):
        ref = sequential_reference(name)
        cls, kwargs = APPS[name][0], APPS[name][1]
        W = plug(cls, APPS[name][4])
        rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "c",
                     policy=EveryN(every))
        with pytest.raises(InjectedFailure):
            rt.run(W, ctor_kwargs=kwargs, entry="execute",
                   config=ExecConfig.sequential(),
                   injector=FailureInjector(fail_at=fail_at), fresh=True)
        res = rt.run(W, ctor_kwargs=kwargs, entry="execute",
                     config=ExecConfig.sequential())
        assert res.value == ref

    @pytest.mark.parametrize("name", ["sparse", "moldyn"])
    def test_distributed_crash_restart(self, name, tmp_path):
        ref = sequential_reference(name)
        cls, kwargs = APPS[name][0], APPS[name][1]
        W = plug(cls, APPS[name][3] + APPS[name][4])
        rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "c",
                     policy=EveryN(2))
        with pytest.raises(InjectedFailure):
            rt.run(W, ctor_kwargs=kwargs, entry="execute",
                   config=ExecConfig.distributed(3),
                   injector=FailureInjector(fail_at=5), fresh=True)
        res = rt.run(W, ctor_kwargs=kwargs, entry="execute",
                     config=ExecConfig.distributed(3))
        assert res.value == ref


class TestEvolutionary:
    """The GA framework (paper ref [20]) across modes."""

    KW = {"pop_size": 32, "generations": 10, "seed": 77}

    def _ref(self):
        return EvolutionaryOptimizer(Sphere(dim=4), **self.KW).execute()

    def test_ga_improves(self):
        opt = EvolutionaryOptimizer(Sphere(dim=4), **self.KW)
        first_best = None
        opt.evaluate(0, opt.pop_size)
        first_best = opt.best_fitness()
        result = opt.execute()
        assert result <= first_best  # optimisation made progress

    @pytest.mark.parametrize("config", [ExecConfig.shared(3),
                                        ExecConfig.distributed(4)],
                             ids=["shared", "dist"])
    def test_mode_equivalence(self, config, tmp_path):
        plugset = (EVO_SHARED if config.mode.value == "shared"
                   else EVO_DIST) + EVO_CKPT
        W = plug(EvolutionaryOptimizer, plugset)
        rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "c")
        res = rt.run(W, ctor_args=(Sphere(dim=4),), ctor_kwargs=self.KW,
                     entry="execute", config=config, fresh=True)
        assert res.value == self._ref()

    def test_crash_restart(self, tmp_path):
        W = plug(EvolutionaryOptimizer, EVO_CKPT)
        rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "c",
                     policy=EveryN(3))
        with pytest.raises(InjectedFailure):
            rt.run(W, ctor_args=(Sphere(dim=4),), ctor_kwargs=self.KW,
                   entry="execute", config=ExecConfig.sequential(),
                   injector=FailureInjector(fail_at=7), fresh=True)
        res = rt.run(W, ctor_args=(Sphere(dim=4),), ctor_kwargs=self.KW,
                     entry="execute", config=ExecConfig.sequential())
        assert res.value == self._ref()


class TestDomainBehaviour:
    """Plain sequential sanity of each kernel (no weaving involved)."""

    def test_series_coefficients_reasonable(self):
        """Converged trapezoid values of the (x+1)^x Fourier series.

        (JGF's published constants differ in the third decimal because
        its TrapezoidIntegrate uses a cruder fixed-step accumulation.)
        """
        a0, a1, b1 = Series(n=8, integration_points=2000).execute()
        assert a0 == pytest.approx(2.88192, abs=2e-4)
        assert a1 == pytest.approx(1.13404, abs=2e-4)
        assert b1 == pytest.approx(-1.88208, abs=2e-4)

    def test_crypt_roundtrip(self):
        assert Crypt(n=256).execute() is True

    def test_crypt_ciphertext_differs(self):
        c = Crypt(n=256)
        c.do()
        assert not np.array_equal(c.plain, c.crypt)

    def test_sparse_converges_deterministically(self):
        a = SparseMatMult(n=40, iterations=5).execute()
        b = SparseMatMult(n=40, iterations=5).execute()
        assert a == b

    def test_moldyn_momentum_nearly_conserved(self):
        md = MolDyn(n=27, steps=10)
        md.execute()
        p = md.velocities.sum(axis=0)
        assert np.all(np.abs(p) < 1e-8)  # forces are equal-and-opposite

    def test_montecarlo_mean_near_drift(self):
        mc = MonteCarloPricer(npaths=400, steps=50)
        mean = mc.execute()
        expected = mc.r - 0.5 * mc.sigma ** 2
        assert mean == pytest.approx(expected, abs=0.05)

    def test_montecarlo_rank_invariant_streams(self):
        """Path p's result is identical however the range is chunked."""
        a = MonteCarloPricer(npaths=32, steps=20)
        a.simulate_paths(0, 32)
        b = MonteCarloPricer(npaths=32, steps=20)
        for lo in range(0, 32, 8):
            b.simulate_paths(lo, lo + 8)
        np.testing.assert_array_equal(a.returns, b.returns)

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            Series(n=1)
        with pytest.raises(ValueError):
            Crypt(n=4)
        with pytest.raises(ValueError):
            SparseMatMult(n=1)
        with pytest.raises(ValueError):
            MolDyn(n=4)
        with pytest.raises(ValueError):
            MonteCarloPricer(npaths=0)
        with pytest.raises(ValueError):
            EvolutionaryOptimizer(Sphere(), pop_size=2)
