"""Tests for the shared-memory substrate: barrier, schedulers, team."""

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smp import (
    AdaptiveBarrier,
    Schedule,
    ThreadTeam,
    current_worker,
    static_slice,
)
from repro.smp.barrier import BrokenTeamBarrier
from repro.smp.sched import SharedLoop
from repro.smp.team import CallbackOp, TeamError
from repro.vtime import MachineModel

MACHINE = MachineModel(nodes=2, cores_per_node=8)


# ---------------------------------------------------------------------------
# AdaptiveBarrier
# ---------------------------------------------------------------------------
class TestAdaptiveBarrier:
    def test_single_party_never_blocks(self):
        b = AdaptiveBarrier(1)
        assert b.wait() == 0

    def test_n_parties_rendezvous(self):
        b = AdaptiveBarrier(4)
        hits = []

        def go(i):
            b.wait()
            hits.append(i)

        ts = [threading.Thread(target=go, args=(i,)) for i in range(4)]
        for t in ts:
            t.start()
        for t in ts:
            t.join(5)
        assert sorted(hits) == [0, 1, 2, 3]

    def test_action_runs_once_while_parked(self):
        b = AdaptiveBarrier(3)
        ran = []

        def go():
            b.wait(action_override=lambda: ran.append(1))

        ts = [threading.Thread(target=go) for _ in range(3)]
        for t in ts:
            t.start()
        for t in ts:
            t.join(5)
        assert ran == [1]

    def test_generation_reuse(self):
        b = AdaptiveBarrier(2)
        done = []

        def go():
            for _ in range(10):
                b.wait()
            done.append(1)

        ts = [threading.Thread(target=go) for _ in range(2)]
        for t in ts:
            t.start()
        for t in ts:
            t.join(5)
        assert done == [1, 1]

    def test_grow_inside_action_keeps_generation_open(self):
        b = AdaptiveBarrier(2)
        order = []

        def newcomer():
            order.append("newcomer")
            b.wait()

        def grow_action():
            b.add_party()
            threading.Thread(target=newcomer).start()

        def member(i):
            b.wait(action_override=grow_action)
            order.append(f"m{i}")

        ts = [threading.Thread(target=member, args=(i,)) for i in range(2)]
        for t in ts:
            t.start()
        for t in ts:
            t.join(5)
        assert order[0] == "newcomer"  # members release only after newcomer

    def test_remove_party_releases_waiters(self):
        b = AdaptiveBarrier(2)
        released = threading.Event()

        def waiter():
            b.wait()
            released.set()

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.05)
        b.remove_party()
        t.join(5)
        assert released.is_set()

    def test_abort_raises_in_waiters(self):
        b = AdaptiveBarrier(2)
        errs = []

        def waiter():
            try:
                b.wait()
            except BrokenTeamBarrier:
                errs.append(1)

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.05)
        b.abort()
        t.join(5)
        assert errs == [1]

    def test_cannot_shrink_below_one(self):
        b = AdaptiveBarrier(1)
        with pytest.raises(ValueError):
            b.remove_party()

    def test_invalid_parties(self):
        with pytest.raises(ValueError):
            AdaptiveBarrier(0)


# ---------------------------------------------------------------------------
# schedulers
# ---------------------------------------------------------------------------
class TestStaticSlice:
    def test_even_split(self):
        assert static_slice(0, 8, 0, 4) == (0, 2)
        assert static_slice(0, 8, 3, 4) == (6, 8)

    def test_remainder_goes_to_low_tids(self):
        sizes = [static_slice(0, 10, t, 4) for t in range(4)]
        lens = [e - s for s, e in sizes]
        assert lens == [3, 3, 2, 2]

    def test_tiles_exactly(self):
        chunks = [static_slice(3, 40, t, 5) for t in range(5)]
        covered = []
        for s, e in chunks:
            covered.extend(range(s, e))
        assert covered == list(range(3, 40))

    def test_empty_range(self):
        assert static_slice(5, 5, 0, 3) == (5, 5)

    def test_more_threads_than_iterations(self):
        chunks = [static_slice(0, 2, t, 4) for t in range(4)]
        lens = [e - s for s, e in chunks]
        assert lens == [1, 1, 0, 0]

    @given(st.integers(0, 100), st.integers(0, 100), st.integers(1, 16))
    def test_partition_property(self, lo, n, threads):
        hi = lo + n
        seen = []
        for t in range(threads):
            s, e = static_slice(lo, hi, t, threads)
            assert lo <= s <= e <= hi
            seen.extend(range(s, e))
        assert seen == list(range(lo, hi))


class TestSharedLoop:
    def test_dynamic_covers_range(self):
        loop = SharedLoop(0, 25, Schedule.DYNAMIC, chunk=4, nthreads=3)
        got = []
        while (c := loop.grab()) is not None:
            got.extend(range(*c))
        assert got == list(range(25))

    def test_guided_chunks_decay(self):
        loop = SharedLoop(0, 1000, Schedule.GUIDED, chunk=1, nthreads=4)
        sizes = []
        while (c := loop.grab()) is not None:
            sizes.append(c[1] - c[0])
        assert sum(sizes) == 1000
        assert sizes[0] > sizes[-1]

    def test_concurrent_grab_no_overlap(self):
        loop = SharedLoop(0, 500, Schedule.DYNAMIC, chunk=7, nthreads=4)
        out = [[] for _ in range(4)]

        def work(i):
            while (c := loop.grab()) is not None:
                out[i].extend(range(*c))

        ts = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in ts:
            t.start()
        for t in ts:
            t.join(5)
        allit = sorted(x for sub in out for x in sub)
        assert allit == list(range(500))


# ---------------------------------------------------------------------------
# ThreadTeam
# ---------------------------------------------------------------------------
class TestTeamBasics:
    def test_region_runs_on_all_members(self):
        team = ThreadTeam(MACHINE, size=4)
        seen = []
        lock = threading.Lock()

        def region():
            w = current_worker()
            with lock:
                seen.append(w.tid)

        team.run_region(region)
        assert sorted(seen) == [0, 1, 2, 3]

    def test_master_return_value(self):
        team = ThreadTeam(MACHINE, size=3)

        def region():
            return current_worker().tid * 10

        assert team.run_region(region) == 0

    def test_worksharing_partitions_work(self):
        team = ThreadTeam(MACHINE, size=4)
        done = []
        lock = threading.Lock()

        def region():
            for s, e in team.worksharing(0, 100):
                with lock:
                    done.extend(range(s, e))

        team.run_region(region)
        assert sorted(done) == list(range(100))

    def test_worksharing_sequential_context(self):
        team = ThreadTeam(MACHINE, size=2)
        assert list(team.worksharing(0, 10)) == [(0, 10)]

    def test_dynamic_schedule_in_region(self):
        team = ThreadTeam(MACHINE, size=3)
        done = []
        lock = threading.Lock()

        def region():
            for s, e in team.worksharing(0, 50, Schedule.DYNAMIC, chunk=3):
                with lock:
                    done.extend(range(s, e))

        team.run_region(region)
        assert sorted(done) == list(range(50))

    def test_barrier_synchronises(self):
        team = ThreadTeam(MACHINE, size=4)
        phase1 = []
        phase2 = []
        lock = threading.Lock()

        def region():
            with lock:
                phase1.append(current_worker().tid)
            team.barrier()
            with lock:
                # all of phase1 must be complete before any phase2 entry
                assert len(phase1) == 4
                phase2.append(current_worker().tid)

        team.run_region(region)
        assert len(phase2) == 4

    def test_single_claim_exactly_one(self):
        team = ThreadTeam(MACHINE, size=4)
        winners = []
        lock = threading.Lock()

        def region():
            if team.single_claim("init"):
                with lock:
                    winners.append(current_worker().tid)
            team.barrier()

        team.run_region(region)
        assert len(winners) == 1

    def test_is_master_unique(self):
        team = ThreadTeam(MACHINE, size=4)
        masters = []
        lock = threading.Lock()

        def region():
            if team.is_master():
                with lock:
                    masters.append(current_worker().tid)

        team.run_region(region)
        assert masters == [0]

    def test_nested_region_rejected(self):
        team = ThreadTeam(MACHINE, size=2)

        def inner():
            pass

        def region():
            if team.is_master():
                with pytest.raises(TeamError):
                    team.run_region(inner)

        team.run_region(region)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            ThreadTeam(MACHINE, size=0)

    def test_worker_exception_propagates(self):
        team = ThreadTeam(MACHINE, size=3)

        def region():
            if current_worker().tid == 2:
                raise ValueError("boom")
            team.barrier()

        with pytest.raises(ValueError, match="boom"):
            team.run_region(region)

    def test_clock_advances_across_region(self):
        team = ThreadTeam(MACHINE, size=4)

        def region():
            current_worker().clock.charge_compute(0.1)

        before = team.clock.now
        team.run_region(region)
        # barrier at end: max of member clocks, so ~0.1 not 0.4
        assert team.clock.now >= before + 0.1
        assert team.clock.now < before + 0.2


class TestTeamSafepoints:
    def test_safepoint_action_runs_once_per_passage(self):
        team = ThreadTeam(MACHINE, size=4)
        counts = []

        def action(sp, t):
            counts.append(sp)

        def region():
            for _ in range(5):
                team.safepoint(action)

        team.run_region(region)
        assert counts == [1, 2, 3, 4, 5]

    def test_sequential_safepoint(self):
        team = ThreadTeam(MACHINE, size=1)
        hits = []
        team.safepoint(lambda sp, t: hits.append(sp))
        assert hits == [-1]

    def test_callback_op_applied_at_safepoint(self):
        team = ThreadTeam(MACHINE, size=3)
        fired = []

        def region():
            for i in range(4):
                if team.is_master() and i == 1:
                    team.request(CallbackOp(lambda t: fired.append(1)))
                team.barrier()
                team.safepoint()

        team.run_region(region)
        assert fired == [1]


class TestTeamMalleability:
    def _count_region(self, team, iters, sizes_seen):
        lock = threading.Lock()

        def region():
            for _ in range(iters):
                for s, e in team.worksharing(0, 64):
                    pass
                team.safepoint()
                if team.is_master():
                    with lock:
                        sizes_seen.append(team.active_size)

        return region

    def test_shrink_mid_region(self):
        team = ThreadTeam(MACHINE, size=4)
        sizes = []
        work = []
        lock = threading.Lock()

        def region():
            for i in range(6):
                if team.is_master() and i == 2:
                    team.request_resize(2)
                got = 0
                for s, e in team.worksharing(0, 64):
                    got += e - s
                with lock:
                    work.append(got)
                team.safepoint()
                if team.is_master():
                    sizes.append(team.active_size)

        team.run_region(region)
        assert sizes[0] == 4
        assert sizes[-1] == 2
        # every iteration's shares still cover the full range
        # (6 iterations x 64 iterations each)
        assert sum(work) == 6 * 64

    def test_grow_mid_region_with_replay(self):
        team = ThreadTeam(MACHINE, size=2)
        sizes = []
        work_per_iter = {}
        lock = threading.Lock()

        def region():
            for i in range(8):
                got = 0
                for s, e in team.worksharing(0, 60):
                    got += e - s
                with lock:
                    work_per_iter[i] = work_per_iter.get(i, 0) + got
                if team.is_master() and i == 3:
                    team.request_resize(4)
                team.safepoint()
                if team.is_master():
                    sizes.append(team.active_size)

        team.run_region(region)
        assert sizes[0] == 2
        assert sizes[-1] == 4
        assert team.present_size == 0  # region torn down
        # work conserved every iteration despite the resize
        assert all(v == 60 for v in work_per_iter.values())

    def test_grow_then_shrink(self):
        team = ThreadTeam(MACHINE, size=1)
        sizes = []

        def region():
            for i in range(9):
                for _ in team.worksharing(0, 8):
                    pass
                if team.is_master():
                    if i == 2:
                        team.request_resize(3)
                    elif i == 5:
                        team.request_resize(1)
                team.safepoint()
                if team.is_master():
                    sizes.append(team.active_size)

        team.run_region(region)
        assert 3 in sizes
        assert sizes[-1] == 1

    def test_resize_between_regions(self):
        team = ThreadTeam(MACHINE, size=2)
        team.request_resize(5)
        seen = []
        lock = threading.Lock()

        def region():
            with lock:
                seen.append(current_worker().tid)

        team.run_region(region)
        assert len(seen) == 5

    def test_next_region_uses_post_shrink_size(self):
        team = ThreadTeam(MACHINE, size=4)

        def region1():
            for i in range(3):
                if team.is_master() and i == 0:
                    team.request_resize(2)
                team.safepoint()

        team.run_region(region1)
        seen = []
        lock = threading.Lock()

        def region2():
            with lock:
                seen.append(current_worker().tid)

        team.run_region(region2)
        assert len(seen) == 2

    @settings(deadline=None, max_examples=10)
    @given(st.lists(st.integers(min_value=1, max_value=6), min_size=1,
                    max_size=4))
    def test_arbitrary_resize_schedule_conserves_work(self, targets):
        """Any schedule of resizes leaves per-iteration work intact."""
        team = ThreadTeam(MACHINE, size=2)
        iters = len(targets) + 2
        work = {}
        lock = threading.Lock()

        def region():
            for i in range(iters):
                got = sum(e - s for s, e in team.worksharing(0, 40))
                with lock:
                    work[i] = work.get(i, 0) + got
                if team.is_master() and i < len(targets):
                    team.request_resize(targets[i])
                team.safepoint()

        team.run_region(region)
        assert all(v == 40 for v in work.values())
