"""Recovery-path integration: corrupt-checkpoint degradation, the
restart-adaptation read-by-count fix, and crash recovery through the
incremental + async checkpointing subsystem."""

import pytest

from repro.apps.plugs.sor_plugs import SOR_ADAPTIVE, SOR_CKPT
from repro.apps.sor import SOR
from repro.ckpt import EveryN, FailureInjector, InjectedFailure
from repro.ckpt.delta import IncrementalCheckpointStore
from repro.ckpt.snapshot import KIND_DELTA, KIND_FULL
from repro.core import (
    AdaptStep,
    AdaptationPlan,
    ExecConfig,
    Runtime,
    WeaveError,
    plug,
)
from repro.vtime import MachineModel

MACHINE = MachineModel(nodes=2, cores_per_node=4)
N, ITERS = 40, 10
REF = SOR(n=N, iterations=ITERS).execute()
W_SEQ = plug(SOR, SOR_CKPT)
W_ADAPT = plug(SOR, SOR_ADAPTIVE)


def make_rt(tmp_path, **kw):
    kw.setdefault("machine", MACHINE)
    return Runtime(ckpt_dir=tmp_path / "ckpt", **kw)


def run_sor(rt, **kw):
    kw.setdefault("config", ExecConfig.sequential())
    return rt.run(W_SEQ, ctor_kwargs={"n": N, "iterations": ITERS},
                  entry="execute", **kw)


# ---------------------------------------------------------------------------
# corrupt-checkpoint degradation (store + full recovery loop)
# ---------------------------------------------------------------------------
class TestCorruptionDegradation:
    def _crash_with_two_checkpoints(self, tmp_path, **rt_kw):
        rt = make_rt(tmp_path, policy=EveryN(3), **rt_kw)
        with pytest.raises(InjectedFailure):
            run_sor(rt, injector=FailureInjector(fail_at=8), fresh=True)
        assert rt.store.counts() == [3, 6]
        return rt

    def test_truncated_newest_recovers_from_older(self, tmp_path):
        rt = self._crash_with_two_checkpoints(tmp_path)
        p = rt.store.path_for(6)
        p.write_bytes(p.read_bytes()[: 30])  # torn write
        latest = rt.store.read_latest()
        assert latest.safepoint_count == 3
        res = run_sor(rt)  # pcr sees the crash, replays from count 3
        assert res.value == REF
        assert res.events.of_kind("pcr_replay_engaged")[-1].data["count"] == 3

    def test_bitflipped_newest_recovers_from_older(self, tmp_path):
        rt = self._crash_with_two_checkpoints(tmp_path)
        p = rt.store.path_for(6)
        data = bytearray(p.read_bytes())
        data[len(data) // 2] ^= 0x10
        p.write_bytes(bytes(data))
        assert rt.store.read_latest().safepoint_count == 3
        assert run_sor(rt).value == REF

    def test_all_checkpoints_corrupt_recomputes_from_scratch(self, tmp_path):
        rt = self._crash_with_two_checkpoints(tmp_path)
        for c in (3, 6):
            rt.store.path_for(c).write_bytes(b"\x00" * 16)
        assert rt.store.read_latest() is None
        assert run_sor(rt).value == REF

    def test_corrupt_delta_chain_degrades_and_recovers(self, tmp_path):
        rt = self._crash_with_two_checkpoints(
            tmp_path, ckpt_delta=True, ckpt_anchor_every=2)
        # count 3 is the anchor, count 6 a delta on it
        assert isinstance(rt.store, IncrementalCheckpointStore)
        p = rt.store.path_for(6)
        data = bytearray(p.read_bytes())
        data[-5] ^= 0xFF
        p.write_bytes(bytes(data))
        assert rt.store.read_latest().safepoint_count == 3
        assert run_sor(rt).value == REF


# ---------------------------------------------------------------------------
# restart-based adaptation reads the checkpoint at its exit count
# ---------------------------------------------------------------------------
class TestRestartAdaptationByCount:
    def test_adapts_even_when_newer_checkpoints_exist(self, tmp_path):
        """Regression: the runtime demanded that the *latest* checkpoint
        match ``step.at`` and raised WeaveError when newer files (e.g.
        from an earlier, longer run in the same directory) were present —
        even though the checkpoint at ``step.at`` was sitting on disk."""
        rt1 = make_rt(tmp_path, policy=EveryN(2))
        assert run_sor(rt1, fresh=True).value == REF
        assert max(rt1.store.counts()) == 10  # stale newer checkpoints

        plan = AdaptationPlan(
            [AdaptStep(at=3, config=ExecConfig.shared(2), via_restart=True)])
        rt2 = make_rt(tmp_path)
        res = rt2.run(W_ADAPT, ctor_kwargs={"n": N, "iterations": ITERS},
                      entry="execute", config=ExecConfig.sequential(),
                      plan=plan)
        assert res.value == REF
        assert res.adaptations[0].via_restart
        assert res.adaptations[0].at_count == 3

    def test_missing_checkpoint_still_raises_weave_error(self, tmp_path,
                                                         monkeypatch):
        plan = AdaptationPlan(
            [AdaptStep(at=3, config=ExecConfig.shared(2), via_restart=True)])
        rt = make_rt(tmp_path)
        # simulate the adaptation checkpoint being lost before relaunch
        orig_write = rt.store.write
        monkeypatch.setattr(
            rt.store, "write",
            lambda snap: (orig_write(snap),
                          rt.store.path_for(snap.safepoint_count).unlink())[0])
        with pytest.raises(WeaveError, match="no checkpoint"):
            rt.run(W_ADAPT, ctor_kwargs={"n": N, "iterations": ITERS},
                   entry="execute", config=ExecConfig.sequential(),
                   plan=plan, fresh=True)


# ---------------------------------------------------------------------------
# incremental + async end-to-end
# ---------------------------------------------------------------------------
class TestDeltaAsyncRuntime:
    @pytest.mark.parametrize("kw", [
        dict(ckpt_delta=True, ckpt_anchor_every=3),
        dict(ckpt_async=True),
        dict(ckpt_delta=True, ckpt_async=True, ckpt_anchor_every=3),
        dict(ckpt_delta=True, ckpt_async=True,
             ckpt_compress_min_bytes=1024),
    ], ids=["delta", "async", "delta+async", "delta+async+zlib"])
    def test_crash_recovery_matches_reference(self, tmp_path, kw):
        rt = make_rt(tmp_path, policy=EveryN(2), **kw)
        res = run_sor(rt, injector=FailureInjector(fail_at=7),
                      auto_recover=True, fresh=True)
        assert res.value == REF
        assert res.restarts == 1

    def test_delta_checkpoints_written_between_anchors(self, tmp_path):
        rt = make_rt(tmp_path, policy=EveryN(1), ckpt_delta=True,
                     ckpt_anchor_every=4)
        res = run_sor(rt, fresh=True)
        assert res.value == REF
        kinds = [e.data["ckpt_kind"]
                 for e in res.events.of_kind("checkpoint")]
        assert kinds[0] == KIND_FULL
        assert KIND_DELTA in kinds
        # anchors recur: counts 1, 5, 9 with k=4
        assert kinds.count(KIND_FULL) == 3

    def test_async_events_tagged_and_cheaper(self, tmp_path):
        rt_sync = make_rt(tmp_path / "s", policy=EveryN(2))
        res_sync = run_sor(rt_sync, fresh=True)
        rt_async = make_rt(tmp_path / "a", policy=EveryN(2), ckpt_async=True)
        res_async = run_sor(rt_async, fresh=True)
        assert res_async.value == REF
        evs = res_async.events.of_kind("checkpoint")
        assert all(e.data["asynchronous"] for e in evs)
        # async can never be slower than sync (it degrades to sync pacing
        # at worst), and both runs do identical compute.
        assert res_async.vtime <= res_sync.vtime * 1.001

    def test_restart_adaptation_through_delta_store(self, tmp_path):
        plan = AdaptationPlan(
            [AdaptStep(at=5, config=ExecConfig.shared(2), via_restart=True)])
        rt = make_rt(tmp_path, policy=EveryN(2), ckpt_delta=True,
                     ckpt_anchor_every=3, ckpt_async=True)
        res = rt.run(W_ADAPT, ctor_kwargs={"n": N, "iterations": ITERS},
                     entry="execute", config=ExecConfig.sequential(),
                     plan=plan, fresh=True)
        assert res.value == REF
        assert res.adaptations[0].via_restart

    def test_distributed_recovery_with_delta_async(self, tmp_path):
        rt = make_rt(tmp_path, policy=EveryN(3), ckpt_delta=True,
                     ckpt_async=True)
        res = rt.run(W_ADAPT, ctor_kwargs={"n": N, "iterations": ITERS},
                     entry="execute", config=ExecConfig.distributed(2),
                     injector=FailureInjector(fail_at=5),
                     auto_recover=True, fresh=True)
        assert res.value == REF
