"""The pluggable execution-backend layer: registry, parity, lifecycle.

The load-bearing guarantees of the exec package:

* all six stock backends — the real multiprocessing one and the
  sockets-fabric one included — run the same woven app to bit-identical
  results, with identical checkpoint contents at matching safe points;
* virtual time is monotone across an adaptation chain that crosses
  every backend;
* backends own worker lifecycle — no team/rank threads, worker
  processes or shared-memory segments survive a phase;
* a backend registered at run time (no ``core/`` changes) runs an
  application end-to-end, resolved by name through ``ExecConfig``.
"""

import multiprocessing
import os
import threading

import pytest

from repro.apps.plugs.sor_plugs import SOR_ADAPTIVE
from repro.apps.sor import SOR
from repro.ckpt import EveryN
from repro.core import (
    AdaptStep,
    AdaptationPlan,
    Capabilities,
    ExecConfig,
    ExecutionContext,
    Mode,
    Runtime,
    WeaveError,
    plug,
)
from repro.core.advisor import SelfAdaptationAdvisor
from repro.dsm import shm
from repro.exec import (
    HybridBackend,
    MultiprocessBackend,
    SequentialBackend,
    SimClusterBackend,
    SocketsBackend,
    ThreadTeamBackend,
    build_default_registry,
    default_registry,
)
from repro.grid.manager import MappingPolicy
from repro.vtime import MachineModel

MACHINE = MachineModel(nodes=2, cores_per_node=4)
N, ITERS = 40, 12
REF = SOR(n=N, iterations=ITERS).execute()
WOVEN = plug(SOR, SOR_ADAPTIVE)

MULTIPROC = ExecConfig.distributed(3).with_backend("multiproc")
SOCKETS = ExecConfig.distributed(3).with_backend("sockets")

#: (label, config) for every stock backend; labels key result dicts
#: because several distributed configs share a Mode.
ALL_CONFIGS = [
    ("sequential", ExecConfig.sequential()),
    ("threads", ExecConfig.shared(3)),
    ("simcluster", ExecConfig.distributed(3)),
    ("hybrid", ExecConfig.hybrid(2, 2)),
    ("multiproc", MULTIPROC),
    ("sockets", SOCKETS),
]


def run_sor(tmp_path, config, tag, **kw):
    rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / tag,
                 policy=kw.pop("policy", None))
    res = rt.run(WOVEN, ctor_kwargs={"n": N, "iterations": ITERS},
                 entry="execute", config=config, fresh=True, **kw)
    return rt, res


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_default_registry_covers_all_modes(self):
        reg = default_registry()
        assert all(reg.supports(m) for m in Mode)
        assert isinstance(reg.resolve(ExecConfig.sequential()),
                          SequentialBackend)
        assert isinstance(reg.resolve(ExecConfig.shared(2)),
                          ThreadTeamBackend)
        resolved = reg.resolve(ExecConfig.distributed(2))
        assert isinstance(resolved, SimClusterBackend)
        assert not isinstance(resolved, HybridBackend)
        assert isinstance(reg.resolve(ExecConfig.hybrid(2, 2)),
                          HybridBackend)

    def test_name_resolution_beats_mode(self):
        reg = build_default_registry()
        cfg = ExecConfig.sequential().with_backend("threads")
        assert isinstance(reg.resolve(cfg), ThreadTeamBackend)

    def test_unknown_backend_name_rejected(self):
        reg = build_default_registry()
        with pytest.raises(WeaveError, match="no execution backend named"):
            reg.resolve(ExecConfig.sequential().with_backend("nope"))

    def test_unsupported_mode_rejected(self):
        reg = build_default_registry()
        reg.unregister("hybrid")
        assert not reg.supports(Mode.HYBRID)
        with pytest.raises(WeaveError, match="no execution backend"):
            reg.resolve(ExecConfig.hybrid(2, 2))

    def test_duplicate_name_needs_replace(self):
        reg = build_default_registry()
        with pytest.raises(WeaveError, match="already registered"):
            reg.register(SequentialBackend())
        reg.register(SequentialBackend(), replace=True)

    def test_replace_by_name_updates_mode_defaults(self):
        reg = build_default_registry()
        patched = ThreadTeamBackend()
        reg.register(patched, replace=True)  # same name "threads"
        assert reg.resolve(ExecConfig.shared(2)) is patched

    def test_capability_declarations(self):
        assert SequentialBackend().capabilities(ExecConfig.sequential()) \
            == Capabilities()
        # the team's workers are its elastic PE dimension (ResizeOp).
        assert ThreadTeamBackend().capabilities(ExecConfig.shared(2)) \
            == Capabilities(team_regions=True, elastic_ranks=True)
        # simulated nodes can be added/retired at safe points in place.
        assert SimClusterBackend().capabilities(ExecConfig.distributed(2)) \
            == Capabilities(rank_collectives=True, elastic_ranks=True)
        # hybrid reshapes its team dimension live but rank-count changes
        # still relaunch (no elastic protocol across team'd ranks yet).
        assert HybridBackend().capabilities(ExecConfig.hybrid(2, 2)) \
            == Capabilities(team_regions=True, rank_collectives=True)
        # honest multiprocessing capabilities: collectives and shared
        # fields yes, team regions no (one process = one line of
        # execution); elastic via parked pre-forked processes.
        assert MultiprocessBackend().capabilities(MULTIPROC) \
            == Capabilities(rank_collectives=True, shared_fields=True,
                            elastic_ranks=True)
        # the sockets fabric spans physical nodes: no page aliasing, so
        # no shared fields; rank-count changes go through relaunch.
        assert SocketsBackend().capabilities(SOCKETS) \
            == Capabilities(rank_collectives=True)

    def test_multiproc_registered_by_name_not_mode_default(self):
        reg = build_default_registry()
        assert reg.has("multiproc")
        assert isinstance(reg.resolve(MULTIPROC), MultiprocessBackend)
        # the simulated cluster stays the DISTRIBUTED default
        assert isinstance(reg.resolve(ExecConfig.distributed(2)),
                          SimClusterBackend)

    def test_named_backend_keeps_mode_launchable(self):
        """supports() and resolve() fall back to a named backend that
        declares the mode, so unregistering the simulated cluster does
        not strand distributed configurations."""
        reg = build_default_registry()
        reg.unregister("simcluster")
        assert reg.supports(Mode.DISTRIBUTED)
        assert isinstance(reg.resolve(ExecConfig.distributed(2)),
                          MultiprocessBackend)
        reg.unregister("multiproc")  # next name down the ladder
        assert isinstance(reg.resolve(ExecConfig.distributed(2)),
                          SocketsBackend)
        reg.unregister("sockets")
        assert not reg.supports(Mode.DISTRIBUTED)
        with pytest.raises(WeaveError, match="no execution backend"):
            reg.resolve(ExecConfig.distributed(2))

    def test_context_defaults_caps_from_mode(self):
        ctx = ExecutionContext(ExecConfig.sequential())
        assert ctx.caps == Capabilities()
        assert not ctx.distributed
        ctx = ExecutionContext(ExecConfig.shared(2))
        assert ctx.caps.team_regions and ctx.team is not None


# ---------------------------------------------------------------------------
# parity across backends
# ---------------------------------------------------------------------------
class TestBackendParity:
    def test_bit_identical_results(self, tmp_path):
        for label, config in ALL_CONFIGS:
            _, res = run_sor(tmp_path, config, f"par-{label}")
            assert res.value == REF, config

    def test_identical_checkpoints_at_matching_safepoints(self, tmp_path):
        """The master checkpoint format is mode-independent: at the same
        safe point every backend must write byte-identical field data."""
        stores = {}
        for label, config in ALL_CONFIGS:
            rt, res = run_sor(tmp_path, config, f"ck-{label}",
                              policy=EveryN(4))
            assert res.value == REF
            stores[label] = rt.store
        counts = stores["sequential"].counts()
        assert counts, "no checkpoints taken"
        for count in counts:
            blobs = {label: s.read(count).field_blobs()
                     for label, s in stores.items()}
            ref = blobs["sequential"]
            for label, b in blobs.items():
                assert b == ref, f"checkpoint {count} differs in {label}"

    def test_adaptation_chain_monotone_vtime(self, tmp_path):
        """One run crossing every backend — real processes included:
        correct result, monotone virtual time phase to phase and
        adaptation to adaptation."""
        plan = AdaptationPlan([
            AdaptStep(at=2, config=ExecConfig.shared(3)),
            AdaptStep(at=4, config=ExecConfig.distributed(3)),
            AdaptStep(at=6, config=MULTIPROC),
            AdaptStep(at=8, config=SOCKETS),
            AdaptStep(at=10, config=ExecConfig.hybrid(2, 2)),
        ])
        _, res = run_sor(tmp_path, ExecConfig.sequential(), "chain",
                         plan=plan)
        assert res.value == REF
        assert [a.to_config.mode for a in res.adaptations] == \
            [Mode.SHARED, Mode.DISTRIBUTED, Mode.DISTRIBUTED,
             Mode.DISTRIBUTED, Mode.HYBRID]
        assert res.adaptations[2].to_config.backend == "multiproc"
        assert res.adaptations[3].to_config.backend == "sockets"
        assert len(res.phases) == 6
        for ph in res.phases:
            assert ph.end_vtime >= ph.start_vtime
        for a, b in zip(res.phases, res.phases[1:]):
            assert a.end_vtime <= b.start_vtime
        vts = [a.vtime for a in res.adaptations]
        assert vts == sorted(vts)
        assert res.vtime >= res.phases[-1].start_vtime

    def test_no_leaked_workers_after_adaptation_chain(self, tmp_path):
        """Backends own worker lifecycle: after a run that created thread
        teams, cluster ranks and worker processes in every phase, none
        survive — and no shared-memory segment outlives its launch."""
        plan = AdaptationPlan([
            AdaptStep(at=3, config=ExecConfig.hybrid(2, 2)),
            AdaptStep(at=5, config=MULTIPROC),
            AdaptStep(at=7, config=ExecConfig.shared(4)),
            AdaptStep(at=9, config=SOCKETS),
            AdaptStep(at=11, config=ExecConfig.distributed(3)),
        ])
        _, res = run_sor(tmp_path, ExecConfig.shared(2), "leak", plan=plan)
        assert res.value == REF
        stray = [t.name for t in threading.enumerate()
                 if t.name.startswith(("team-w", "rank-"))]
        assert stray == [], f"leaked worker threads: {stray}"
        procs = [p.name for p in multiprocessing.active_children()
                 if p.name.startswith(("mp-rank-", "sk-rank-"))]
        assert procs == [], f"leaked worker processes: {procs}"
        assert shm.live_segments() == []
        if os.path.isdir("/dev/shm"):
            left = [f for f in os.listdir("/dev/shm")
                    if f.startswith(shm.SHM_PREFIX)]
            assert left == [], f"leaked /dev/shm segments: {left}"


class TestMultiprocStartMethods:
    def test_spawn_reweaves_dynamic_woven_class(self, tmp_path):
        """Under "spawn" the task is pickled: the dynamic woven subclass
        cannot travel, so the backend ships (base, plugset) and the
        child re-weaves — results stay bit-identical."""
        if "spawn" not in multiprocessing.get_all_start_methods():
            pytest.skip("platform has no spawn start method")
        reg = build_default_registry()
        reg.register(MultiprocessBackend(start_method="spawn"),
                     replace=True)
        rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "spawn",
                     registry=reg)
        res = rt.run(WOVEN, ctor_kwargs={"n": N, "iterations": ITERS},
                     entry="execute",
                     config=ExecConfig.distributed(2)
                     .with_backend("multiproc"), fresh=True)
        assert res.value == REF

    def test_sockets_backend_survives_spawn_pickling(self, tmp_path):
        """The sockets launch plumbing — rendezvous queue in the task,
        funnel address, transport construction in the child — must all
        survive the spawn pickling round trip."""
        if "spawn" not in multiprocessing.get_all_start_methods():
            pytest.skip("platform has no spawn start method")
        reg = build_default_registry()
        reg.register(SocketsBackend(start_method="spawn"), replace=True)
        rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "sk-spawn",
                     registry=reg)
        res = rt.run(WOVEN, ctor_kwargs={"n": N, "iterations": ITERS},
                     entry="execute",
                     config=ExecConfig.distributed(2)
                     .with_backend("sockets"), fresh=True)
        assert res.value == REF


# ---------------------------------------------------------------------------
# a backend registered at run time, no core/ changes
# ---------------------------------------------------------------------------
class CountingBackend(SequentialBackend):
    """Example drop-in backend: sequential semantics plus launch stats."""

    name = "counting"

    def __init__(self):
        self.launches = 0

    def launch(self, spec, services):
        self.launches += 1
        return super().launch(spec, services)


class TestFifthBackend:
    def test_runs_app_end_to_end_by_name(self, tmp_path):
        reg = build_default_registry()
        backend = reg.register(CountingBackend())
        rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "fifth",
                     registry=reg)
        res = rt.run(WOVEN, ctor_kwargs={"n": N, "iterations": ITERS},
                     entry="execute",
                     config=ExecConfig.sequential().with_backend("counting"),
                     fresh=True)
        assert res.value == REF
        assert backend.launches == 1
        assert res.final_config.backend == "counting"

    def test_adaptation_step_can_pick_a_backend(self, tmp_path):
        """An AdaptStep can reshape onto a named backend — adaptation
        decisions choose backends, not just shapes."""
        reg = build_default_registry()
        backend = reg.register(CountingBackend())
        plan = AdaptationPlan([AdaptStep(
            at=4, config=ExecConfig.sequential().with_backend("counting"))])
        rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "adapt",
                     registry=reg)
        res = rt.run(WOVEN, ctor_kwargs={"n": N, "iterations": ITERS},
                     entry="execute", config=ExecConfig.shared(2),
                     plan=plan, fresh=True)
        assert res.value == REF
        assert backend.launches == 1
        assert res.adaptations[0].to_config.backend == "counting"


# ---------------------------------------------------------------------------
# registry-aware selection policies
# ---------------------------------------------------------------------------
class TestRegistryAwareSelection:
    def test_advisor_ladder_skips_unregistered_modes(self):
        reg = build_default_registry()
        reg.unregister("simcluster")
        reg.unregister("multiproc")
        reg.unregister("sockets")  # all three distributed-capable backends
        adv = SelfAdaptationAdvisor(MACHINE, max_pe=16, registry=reg)
        assert all(c.mode is not Mode.DISTRIBUTED for c in adv.ladder)
        assert any(c.mode is Mode.SHARED for c in adv.ladder)

    def test_advisor_ladder_proposes_multiproc_backed_distributed(self):
        """With only the multiprocessing backend left for DISTRIBUTED,
        the ladder still climbs into distributed shapes — and the
        registry resolves them to real processes."""
        reg = build_default_registry()
        reg.unregister("simcluster")
        adv = SelfAdaptationAdvisor(MACHINE, max_pe=16, registry=reg)
        dist = [c for c in adv.ladder if c.mode is Mode.DISTRIBUTED]
        assert dist, "ladder lost its distributed rungs"
        assert all(isinstance(reg.resolve(c), MultiprocessBackend)
                   for c in dist)

    def test_runtime_syncs_advisor_to_its_registry(self, tmp_path):
        """A default-constructed advisor is re-anchored on the runtime's
        own registry, so it never proposes an unlaunchable config."""
        reg = build_default_registry()
        reg.unregister("threads")
        reg.unregister("simcluster")
        reg.unregister("multiproc")
        reg.unregister("sockets")
        adv = SelfAdaptationAdvisor(MACHINE, max_pe=8, window=3)
        assert any(c.mode is Mode.SHARED for c in adv.ladder)  # global view
        rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "sync",
                     registry=reg)
        res = rt.run(WOVEN, ctor_kwargs={"n": N, "iterations": ITERS},
                     entry="execute", config=ExecConfig.sequential(),
                     advisor=adv, fresh=True)
        assert res.value == REF
        assert adv.registry is reg
        assert all(c == ExecConfig.sequential() for c in adv.ladder)

    def test_mapping_policy_degrades_without_backends(self):
        reg = build_default_registry()
        full = MappingPolicy(MACHINE, allow_hybrid=True, registry=reg)
        assert full.config_for(8) == ExecConfig.hybrid(2, 4)
        reg.unregister("hybrid")
        assert full.config_for(8) == ExecConfig.distributed(8)
        reg.unregister("simcluster")
        # the named multiprocessing backend keeps DISTRIBUTED launchable
        assert full.config_for(8) == ExecConfig.distributed(8)
        reg.unregister("multiproc")
        reg.unregister("sockets")  # the last distributed-capable name
        assert full.config_for(8) == ExecConfig.shared(4)  # capped at node
        reg.unregister("threads")
        assert full.config_for(8) == ExecConfig.sequential()
