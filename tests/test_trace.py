"""The distributed tracing plane: rings, flows, flight recorder, export.

What must hold for a lock-free trace plane to be trustworthy:

* **No torn records** — a concurrent scraper hammering live rings
  (thread and forked-process writers, rings wrapping hundreds of times)
  only ever observes committed records whose payload is internally
  consistent, and once the writers are quiescent the scrape yields
  exactly the newest ``capacity`` generations.
* **Parity** — every stock backend produces a schema-valid Chrome
  trace document with the expected span names, results are
  bit-identical with tracing on or off, parked/un-parked rings survive
  their rank, and no trace segment outlives its launch.
* **Causality** — every flow arrow in a document pairs one send record
  with its matching receive, even when a restart re-counts sequence
  ids from zero.
* **Black box** — a failed launch's flight snapshot carries the last
  moments of *every* rank, including the one that died.
"""

from __future__ import annotations

import multiprocessing as mp
import threading

import pytest

from repro.apps.plugs.sor_plugs import SOR_ADAPTIVE
from repro.apps.sor import SOR
from repro.ckpt import EveryN, FailureInjector
from repro.core import AdaptStep, AdaptationPlan, ExecConfig, Runtime, plug
from repro.dsm import shm
from repro.trace import (
    TraceAssembler,
    TracePlane,
    schema,
    tracer,
    validate_chrome_trace,
)
from repro.util.events import EventLog
from repro.vtime import MachineModel

MACHINE = MachineModel(nodes=2, cores_per_node=4)
N, ITERS = 40, 12
REF = SOR(n=N, iterations=ITERS).execute()
WOVEN = plug(SOR, SOR_ADAPTIVE)

HAS_FORK = "fork" in mp.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="needs fork")

ALL_CONFIGS = [
    ("sequential", ExecConfig.sequential()),
    ("threads", ExecConfig.shared(3)),
    ("simcluster", ExecConfig.distributed(3)),
    ("hybrid", ExecConfig.hybrid(2, 2)),
    ("multiproc", ExecConfig.distributed(3).with_backend("multiproc")),
    ("sockets", ExecConfig.distributed(3).with_backend("sockets")),
]

WRITERS, RECS, CAP = 4, 20_000, 64


def _no_leaks():
    left = shm.live_segments()
    assert left == [], f"leaked segments: {left}"


def _check_records(records) -> int:
    """Every scraped record must be internally consistent — the
    seqlock's whole job.  Writers stamp ``(i, 2i, 3i, 5i)`` payloads,
    so any mix of two generations is detectable."""
    for g, kind, code, t0, dur, a, b, c, d in records:
        assert kind == schema.KIND_INSTANT
        assert b == 2 * a and c == 3 * a and d == 5 * a, \
            f"torn record at gen {g}: {(a, b, c, d)}"
        assert a == g, f"payload {a} does not match generation {g}"
    return len(records)


def _pound(plane, rank):
    w = plane.writer(rank)
    for i in range(RECS):
        w.instant(schema.EVENT, a=float(i), b=float(2 * i),
                  c=float(3 * i), d=float(5 * i))


def _run_sor(tmp_path, tag, config, trace=True, **kw):
    rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / tag,
                 policy=kw.pop("policy", EveryN(5)), telemetry=False,
                 trace=trace)
    return rt.run(WOVEN, ctor_kwargs={"n": N, "iterations": ITERS},
                  entry="execute", config=config, fresh=True, **kw)


def _names(doc) -> dict[str, int]:
    out: dict[str, int] = {}
    for ev in doc["traceEvents"]:
        if "name" in ev:
            out[ev["name"]] = out.get(ev["name"], 0) + 1
    return out


# ---------------------------------------------------------------------------
# hammers: wraparound exactness and torn-record protection
# ---------------------------------------------------------------------------
class TestHammer:
    def test_thread_hammer_wrap_and_exact_tail(self):
        plane = TracePlane.local(WRITERS, capacity=CAP)
        stop = threading.Event()
        threads = [threading.Thread(target=_pound, args=(plane, r))
                   for r in range(WRITERS)]
        scrapes = [0]

        def scraper():
            while not stop.is_set():
                for recs in plane.scrape().values():
                    scrapes[0] += _check_records(recs)

        s = threading.Thread(target=scraper)
        s.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        s.join()
        assert scrapes[0] > 0, "the concurrent scraper never ran"

        # quiescent writers: exactly the newest CAP generations survive
        # the ~300 wraps, per ring.
        final = plane.scrape()
        for r in range(WRITERS):
            recs = final[r]
            assert len(recs) == CAP
            assert [int(rec[0]) for rec in recs] \
                == list(range(RECS - CAP, RECS))
            _check_records(recs)

    @needs_fork
    def test_process_hammer_wrap_and_exact_tail(self):
        launch_id = shm.new_launch_id("tracehammer")
        plane = TracePlane.create(launch_id, WRITERS, capacity=CAP)
        ctx = mp.get_context("fork")
        barrier = ctx.Barrier(WRITERS)

        def pound(rank):
            child = TracePlane.attach(launch_id, WRITERS, capacity=CAP)
            barrier.wait()
            _pound(child, rank)
            child.close()

        procs = [ctx.Process(target=pound, args=(r,), daemon=True)
                 for r in range(WRITERS)]
        try:
            for p in procs:
                p.start()
            scrapes = 0
            while any(p.is_alive() for p in procs):
                for recs in plane.scrape().values():
                    scrapes += _check_records(recs)
            for p in procs:
                p.join(timeout=60.0)
            assert all(p.exitcode == 0 for p in procs)

            final = plane.scrape()
            for r in range(WRITERS):
                recs = final[r]
                assert len(recs) == CAP
                assert [int(rec[0]) for rec in recs] \
                    == list(range(RECS - CAP, RECS))
                _check_records(recs)
        finally:
            for p in procs:
                if p.is_alive():
                    p.terminate()
            plane.close()
            plane.unlink()
        _no_leaks()


# ---------------------------------------------------------------------------
# ring semantics: overwrite-oldest, park/resume, lifecycle states
# ---------------------------------------------------------------------------
class TestRingSemantics:
    def test_overwrite_oldest_keeps_newest_n(self):
        plane = TracePlane.local(1, capacity=8)
        w = plane.writer(0)
        for i in range(20):
            w.instant(schema.EVENT, a=float(i), b=float(2 * i),
                      c=float(3 * i), d=float(5 * i))
        recs = plane.scrape()[0]
        assert [int(r[0]) for r in recs] == list(range(12, 20))

    def test_park_resume_monotonic_generations_and_seqs(self):
        """A re-bound writer (un-park) resumes the published cursor and
        sequence counter: generations and message ids never repeat."""
        plane = TracePlane.local(1, capacity=32)
        w = plane.writer(0)
        w.instant(schema.EVENT)
        assert w.send(1, 7) == 1
        w.freeze()
        assert plane.scrape() == {}  # frozen: live scrapes skip it
        assert 0 in plane.scrape(include_frozen=True)

        w2 = plane.writer(0)  # thaw + resume
        w2.instant(schema.EVENT)
        assert w2.send(1, 7) == 2
        recs = plane.scrape()[0]
        assert [int(r[0]) for r in recs] == [0, 1, 2, 3]

    def test_empty_rings_never_scraped(self):
        plane = TracePlane.local(3, capacity=8)
        plane.writer(1).instant(schema.EVENT)
        assert set(plane.scrape()) == {1}

    def test_null_tracer_is_default_and_untraced_send(self):
        t = tracer()
        assert not t.active
        assert t.send(3, 9) == 0  # the "untraced" message id


# ---------------------------------------------------------------------------
# backend parity: valid documents, bit-identical on/off, leak-free
# ---------------------------------------------------------------------------
class TestBackendParity:
    @pytest.mark.parametrize("label,config", ALL_CONFIGS,
                             ids=[c[0] for c in ALL_CONFIGS])
    def test_documents_valid_and_results_identical(self, tmp_path,
                                                   label, config):
        if label in ("multiproc", "sockets") and not HAS_FORK:
            pytest.skip("needs fork")
        on = _run_sor(tmp_path, "on", config)
        off = _run_sor(tmp_path, "off", config, trace=False)
        # tracing is wall-side only: results are bit-identical with
        # the plane on or off (vtime is not comparable across runs —
        # region charges come from measured wall time).
        assert on.value == off.value == REF
        assert off.trace is None

        counts = validate_chrome_trace(on.trace)
        # the driver track plus at least one rank track
        assert counts["tracks"] >= 2
        names = _names(on.trace)
        assert names.get("phase", 0) >= 1          # driver span
        assert names.get("safepoint", 0) > 0       # rank spans
        assert names.get("checkpoint", 0) > 0      # EveryN(5) fired
        if config.nranks > 1:
            # cross-rank traffic reconstructed as flow arrows
            assert counts["flows"] > 0
            assert names.get("recv", 0) > 0
        _no_leaks()

    def test_checkpoint_spans_nest_inside_safepoints(self, tmp_path):
        """The interval sweep reproduces the call-stack nesting: a
        checkpoint span opens after its safe point's B and closes
        before the E."""
        res = _run_sor(tmp_path, "seq", ExecConfig.sequential())
        open_spans: list[str] = []
        saw_nested = False
        for ev in res.trace["traceEvents"]:
            if ev.get("pid") == 1:  # rank 0's track
                if ev["ph"] == "B":
                    if ev["name"] == "checkpoint" and \
                            "safepoint" in open_spans:
                        saw_nested = True
                    open_spans.append(ev["name"])
                elif ev["ph"] == "E":
                    open_spans.pop()
        assert saw_nested, "no checkpoint span nested in a safepoint"

    def test_spans_carry_vtime_args(self, tmp_path):
        res = _run_sor(tmp_path, "seq", ExecConfig.sequential())
        sp = [ev for ev in res.trace["traceEvents"]
              if ev.get("name") == "safepoint" and ev["ph"] == "B"]
        assert sp and all("vtime" in ev["args"] for ev in sp)
        assert sp[-1]["args"]["vtime"] > 0.0

    @needs_fork
    def test_park_unpark_rings_survive(self, tmp_path):
        """A grow/shrink chain: joiners' rings freeze at retirement and
        the drain-time scrape still folds their records in."""
        cfg = ExecConfig.distributed(2).with_backend("multiproc")
        hi = ExecConfig.distributed(4).with_backend("multiproc")
        plan = AdaptationPlan([AdaptStep(at=3, config=hi),
                               AdaptStep(at=7, config=cfg)])
        on = _run_sor(tmp_path, "on", cfg, plan=plan)
        off = _run_sor(tmp_path, "off", cfg, plan=plan, trace=False)
        assert on.value == off.value
        assert len(on.in_place_reshapes) == 2

        counts = validate_chrome_trace(on.trace)
        # driver + all four ranks left tracks (joiners wrote real
        # records between the grow and the shrink, scraped frozen)
        assert counts["tracks"] >= 5
        names = _names(on.trace)
        assert names.get("membership_switch", 0) > 0
        assert names.get("join_rendezvous", 0) > 0
        _no_leaks()

    @needs_fork
    def test_flight_recorder_black_box_on_failure(self, tmp_path):
        """An injected rank failure: the raised report and the final
        document both carry last-N decoded records for every rank —
        including the rank that died — and nothing leaks."""
        cfg = ExecConfig.distributed(2).with_backend("multiproc")
        with pytest.raises(Exception) as ei:
            _run_sor(tmp_path, "boom", cfg, trace="flight",
                     injector=FailureInjector(fail_at=6))
        box = getattr(ei.value, "flight", None)
        assert box is not None, "failure report carries no flight box"
        for rank in ("driver", "0", "1"):
            assert rank in box and box[rank], f"no black box for {rank}"
            for rec in box[rank]:
                assert {"kind", "name", "t0", "dur"} <= set(rec)
        _no_leaks()

        # ... and with auto-recovery the run completes, embedding the
        # snapshot in the assembled document.
        res = _run_sor(tmp_path, "recover", cfg, trace="flight",
                       injector=FailureInjector(fail_at=6),
                       auto_recover=True)
        assert res.value == REF and res.restarts == 1
        validate_chrome_trace(res.trace)
        snaps = res.trace["otherData"]["flight_snapshots"]
        assert len(snaps) == 1
        assert snaps[0]["ranks"]["0"] and snaps[0]["ranks"]["1"]
        assert res.trace["otherData"]["flight"] is True
        _no_leaks()


# ---------------------------------------------------------------------------
# assembler + schema gate: pairing, nesting, validation failures
# ---------------------------------------------------------------------------
class TestAssembler:
    def _send(self, g, t0, dst, tag=5, epoch=0, seq=1):
        return (g, schema.KIND_SEND, schema.SEND, t0, 0.0,
                float(dst), float(tag), float(epoch), float(seq))

    def _recv(self, g, t0, dur, src, tag=5, epoch=0, seq=1):
        return (g, schema.KIND_RECV, schema.RECV, t0, dur,
                float(src), float(tag), float(epoch), float(seq))

    def test_flow_pairing_survives_seq_restart(self):
        """Two launches re-count seq from 1: each recv pairs with the
        closest *preceding* send of its id, and the two arrows get
        distinct flow ids."""
        asm = TraceAssembler()
        asm.add(0, [self._send(0, 10.0, dst=1, seq=1),      # launch 1
                    self._send(1, 30.0, dst=1, seq=1)])     # launch 2
        asm.add(1, [self._recv(0, 10.5, 0.5, src=0, seq=1),
                    self._recv(1, 30.5, 0.5, src=0, seq=1)])
        doc = asm.emit()
        counts = validate_chrome_trace(doc)
        assert counts["flows"] == 2
        ids = [ev["id"] for ev in doc["traceEvents"] if ev["ph"] == "s"]
        assert len(set(ids)) == 2

    def test_lapped_send_leaves_no_dangling_flow(self):
        asm = TraceAssembler()
        asm.add(1, [self._recv(0, 5.0, 0.5, src=0, seq=9)])
        doc = asm.emit()  # the send record was lapped out of its ring
        counts = validate_chrome_trace(doc)
        assert counts["flows"] == 0
        assert _names(doc).get("recv") == 1  # the wait slice survives

    def test_validator_rejects_unbalanced_spans(self):
        doc = {"traceEvents": [
            {"name": "x", "ph": "B", "ts": 0.0, "pid": 1, "tid": 0}]}
        with pytest.raises(ValueError, match="unbalanced"):
            validate_chrome_trace(doc)
        doc = {"traceEvents": [{"ph": "E", "ts": 1.0, "pid": 1}]}
        with pytest.raises(ValueError, match="E without open B"):
            validate_chrome_trace(doc)

    def test_validator_rejects_bad_flows(self):
        doc = {"traceEvents": [
            {"name": "m", "ph": "f", "id": "0.1", "bp": "e",
             "ts": 1.0, "pid": 1}]}
        with pytest.raises(ValueError, match="without start"):
            validate_chrome_trace(doc)
        doc = {"traceEvents": [
            {"name": "m", "ph": "s", "id": "0.1", "ts": 0.0, "pid": 1},
            {"name": "m", "ph": "f", "id": "0.1", "ts": 1.0, "pid": 2}]}
        with pytest.raises(ValueError, match="bp"):
            validate_chrome_trace(doc)

    def test_validator_rejects_missing_keys(self):
        with pytest.raises(ValueError, match="no traceEvents"):
            validate_chrome_trace({"events": []})
        doc = {"traceEvents": [{"name": "x", "ph": "i", "pid": 1}]}
        with pytest.raises(ValueError, match="missing ts"):
            validate_chrome_trace(doc)


# ---------------------------------------------------------------------------
# unified timeline: EventLog entries ride the trace as instants
# ---------------------------------------------------------------------------
class TestEventUnification:
    def test_events_carry_wall_and_global_seq(self):
        log = EventLog()
        e1 = log.emit("checkpoint", vtime=1.0, count=5)
        e2 = log.emit("restore", vtime=2.0)
        assert e1.wall > 0.0 and e2.wall >= e1.wall
        assert e2.seq > e1.seq > 0

    def test_absorb_preserves_child_stamps(self):
        src, dst = EventLog(), EventLog()
        ev = src.emit("failure", vtime=3.0, count=7)
        dst.absorb(ev)
        got = dst.last("failure")
        assert (got.wall, got.seq) == (ev.wall, ev.seq)

    def test_log_events_become_trace_instants(self, tmp_path):
        res = _run_sor(tmp_path, "seq", ExecConfig.sequential())
        from_log = [ev for ev in res.trace["traceEvents"]
                    if ev.get("cat") == "event"]
        assert from_log, "no event-log instants in the document"
        names = {ev["name"] for ev in from_log}
        assert "checkpoint" in names
        assert all("vtime" in ev["args"] and "seq" in ev["args"]
                   for ev in from_log)


# ---------------------------------------------------------------------------
# service: the trace RPC
# ---------------------------------------------------------------------------
class TestServiceTrace:
    @needs_fork
    def test_trace_rpc_round_trip(self, tmp_path):
        from repro.service import RuntimeService, ServiceClient
        from repro.service.client import ServiceError

        with RuntimeService(workers=2, lanes=1, machine=MACHINE,
                            ckpt_dir=str(tmp_path)) as svc:
            client = ServiceClient(svc.address)
            jid = client.submit(WOVEN,
                                ctor_kwargs={"n": N, "iterations": ITERS},
                                entry="execute", nranks=2, trace=True)
            out = client.result(jid, timeout=120.0)
            assert out["status"] == "done" and out["value"] == REF
            doc = client.trace(jid)
            counts = validate_chrome_trace(doc)
            assert counts["tracks"] >= 3  # driver + both fleet ranks
            assert _names(doc).get("safepoint", 0) > 0

            # a job submitted without tracing has no document to give
            jid2 = client.submit(WOVEN,
                                 ctor_kwargs={"n": N, "iterations": ITERS},
                                 entry="execute", nranks=2)
            client.result(jid2, timeout=120.0)
            with pytest.raises(ServiceError, match="without tracing"):
                client.trace(jid2)
        _no_leaks()
