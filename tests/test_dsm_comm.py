"""Tests for the distributed substrate: mailbox, communicator, cluster."""

import numpy as np
import pytest

from repro.dsm import Communicator, Mailbox, Message, RankFailure, SimCluster
from repro.dsm.comm import current_rank
from repro.dsm.mailbox import ANY_SOURCE, MailboxClosed
from repro.vtime import MachineModel

MACHINE = MachineModel(nodes=2, cores_per_node=4)


def run_spmd(nranks, fn, *args, machine=MACHINE):
    cluster = SimCluster(nranks, machine)
    return cluster, cluster.run(fn, *args)


# ---------------------------------------------------------------------------
# Mailbox
# ---------------------------------------------------------------------------
class TestMailbox:
    def _msg(self, src=0, tag=0, payload="x"):
        return Message(src=src, dst=1, tag=tag, payload=payload, nbytes=1,
                       arrival=0.0)

    def test_fifo_per_source_tag(self):
        mb = Mailbox(1)
        mb.put(self._msg(payload="a"))
        mb.put(self._msg(payload="b"))
        assert mb.get(source=0, tag=0).payload == "a"
        assert mb.get(source=0, tag=0).payload == "b"

    def test_selective_receive_by_tag(self):
        mb = Mailbox(1)
        mb.put(self._msg(tag=1, payload="one"))
        mb.put(self._msg(tag=2, payload="two"))
        assert mb.get(tag=2).payload == "two"
        assert mb.get(tag=1).payload == "one"

    def test_selective_receive_by_source(self):
        mb = Mailbox(1)
        mb.put(self._msg(src=3, payload="from3"))
        mb.put(self._msg(src=5, payload="from5"))
        assert mb.get(source=5).payload == "from5"

    def test_wildcard_source(self):
        mb = Mailbox(1)
        mb.put(self._msg(src=7, payload="w"))
        assert mb.get(source=ANY_SOURCE).payload == "w"

    def test_poll(self):
        mb = Mailbox(1)
        assert not mb.poll()
        mb.put(self._msg(tag=4))
        assert mb.poll(tag=4)
        assert not mb.poll(tag=5)

    def test_get_timeout(self):
        mb = Mailbox(1)
        with pytest.raises(TimeoutError):
            mb.get(timeout=0.05)

    def test_closed_mailbox_raises(self):
        mb = Mailbox(1)
        mb.close()
        with pytest.raises(MailboxClosed):
            mb.get(timeout=1)
        with pytest.raises(MailboxClosed):
            mb.put(self._msg())


# ---------------------------------------------------------------------------
# point-to-point
# ---------------------------------------------------------------------------
class TestPointToPoint:
    def test_send_recv_pair(self):
        def entry():
            ctx = current_rank()
            if ctx.rank == 0:
                ctx.comm.send({"a": 7}, dest=1, tag=11)
                return None
            return ctx.comm.recv(source=0, tag=11)

        _, res = run_spmd(2, entry)
        assert res[1] == {"a": 7}

    def test_array_send_is_by_value(self):
        def entry():
            ctx = current_rank()
            if ctx.rank == 0:
                x = np.arange(4.0)
                ctx.comm.send(x, dest=1)
                x[:] = -1  # must not affect the receiver
                return None
            return ctx.comm.recv(source=0)

        _, res = run_spmd(2, entry)
        np.testing.assert_array_equal(res[1], np.arange(4.0))

    def test_recv_couples_clocks(self):
        def entry():
            ctx = current_rank()
            if ctx.rank == 0:
                ctx.clock.charge_compute(1.0)  # sender is late
                ctx.comm.send(b"x" * 1000, dest=1)
            else:
                ctx.comm.recv(source=0)
                return ctx.clock.now
            return None

        _, res = run_spmd(2, entry)
        assert res[1] > 1.0  # receiver waited for the sender

    def test_self_send_rejected(self):
        def entry():
            ctx = current_rank()
            if ctx.rank == 0:
                ctx.comm.send("x", dest=0)

        with pytest.raises(RankFailure) as ei:
            run_spmd(2, entry)
        assert isinstance(ei.value.cause, ValueError)

    def test_bad_destination_rejected(self):
        def entry():
            ctx = current_rank()
            if ctx.rank == 0:
                ctx.comm.send("x", dest=99)

        with pytest.raises(RankFailure):
            run_spmd(2, entry)

    def test_sendrecv_ring(self):
        def entry():
            ctx = current_rank()
            right = (ctx.rank + 1) % ctx.nranks
            left = (ctx.rank - 1) % ctx.nranks
            return ctx.comm.sendrecv(ctx.rank, dest=right, source=left, tag=5)

        _, res = run_spmd(4, entry)
        assert res == [3, 0, 1, 2]


# ---------------------------------------------------------------------------
# collectives
# ---------------------------------------------------------------------------
class TestCollectives:
    def test_bcast(self):
        def entry():
            ctx = current_rank()
            data = {"k": [1, 2]} if ctx.rank == 0 else None
            return ctx.comm.bcast(data, root=0)

        _, res = run_spmd(4, entry)
        assert all(r == {"k": [1, 2]} for r in res)

    def test_scatter_gather_roundtrip(self):
        def entry():
            ctx = current_rank()
            parts = [i * 10 for i in range(ctx.nranks)] if ctx.rank == 0 else None
            mine = ctx.comm.scatter(parts, root=0)
            assert mine == ctx.rank * 10
            return ctx.comm.gather(mine, root=0)

        _, res = run_spmd(4, entry)
        assert res[0] == [0, 10, 20, 30]
        assert res[1] is None

    def test_scatter_wrong_length_rejected(self):
        def entry():
            ctx = current_rank()
            parts = [1, 2] if ctx.rank == 0 else None
            ctx.comm.scatter(parts, root=0)

        with pytest.raises(RankFailure):
            run_spmd(3, entry)

    def test_reduce_sum_default(self):
        def entry():
            ctx = current_rank()
            return ctx.comm.reduce(ctx.rank + 1, root=0)

        _, res = run_spmd(4, entry)
        assert res[0] == 10
        assert res[1:] == [None, None, None]

    def test_reduce_custom_op(self):
        def entry():
            ctx = current_rank()
            return ctx.comm.reduce(ctx.rank + 1, op=max, root=0)

        _, res = run_spmd(5, entry)
        assert res[0] == 5

    def test_allreduce_arrays(self):
        def entry():
            ctx = current_rank()
            return ctx.comm.allreduce(np.full(3, float(ctx.rank)))

        _, res = run_spmd(3, entry)
        for r in res:
            np.testing.assert_array_equal(r, np.full(3, 3.0))

    def test_allgather(self):
        def entry():
            ctx = current_rank()
            return ctx.comm.allgather(ctx.rank * 2)

        _, res = run_spmd(3, entry)
        assert all(r == [0, 2, 4] for r in res)

    def test_alltoall(self):
        def entry():
            ctx = current_rank()
            parts = [f"{ctx.rank}->{d}" for d in range(ctx.nranks)]
            return ctx.comm.alltoall(parts)

        _, res = run_spmd(3, entry)
        assert res[1] == ["0->1", "1->1", "2->1"]

    def test_barrier_syncs_clocks(self):
        def entry():
            ctx = current_rank()
            ctx.clock.charge_compute(float(ctx.rank))  # rank r works r secs
            ctx.comm.barrier()
            return ctx.clock.now

        _, res = run_spmd(4, entry)
        assert all(t >= 3.0 for t in res)
        assert max(res) - min(res) < 1e-9

    def test_single_rank_collectives_trivial(self):
        def entry():
            ctx = current_rank()
            ctx.comm.barrier()
            assert ctx.comm.bcast("v", root=0) == "v"
            assert ctx.comm.gather(5, root=0) == [5]
            assert ctx.comm.allreduce(2) == 2
            return True

        _, res = run_spmd(1, entry)
        assert res == [True]


# ---------------------------------------------------------------------------
# SimCluster behaviour
# ---------------------------------------------------------------------------
class TestSimCluster:
    def test_per_rank_args(self):
        cluster = SimCluster(3, MACHINE)
        res = cluster.run(lambda x: x * 2, per_rank_args=[(1,), (2,), (3,)])
        assert res == [2, 4, 6]

    def test_rank_failure_wraps_cause(self):
        def entry():
            ctx = current_rank()
            if ctx.rank == 2:
                raise KeyError("bad")
            ctx.comm.barrier()  # would hang forever without teardown

        with pytest.raises(RankFailure) as ei:
            run_spmd(4, entry)
        assert ei.value.rank == 2
        assert isinstance(ei.value.cause, KeyError)

    def test_over_decomposition_sets_contention(self):
        m = MachineModel(nodes=1, cores_per_node=2)
        cluster = SimCluster(8, m)
        # 4 ranks per core, plus the cache-thrash penalty on the 3 extras
        expected = 4 + 3 * m.oversub_thrash
        assert all(c.contention == expected for c in cluster.clocks)

    def test_time_breakdown_keys(self):
        cluster = SimCluster(2, MACHINE)

        def entry():
            ctx = current_rank()
            ctx.clock.charge_compute(0.1)
            ctx.comm.barrier()

        cluster.run(entry)
        bd = cluster.time_breakdown()
        assert set(bd) == {"total", "compute", "comm", "io"}
        assert bd["total"] >= bd["compute"]

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            SimCluster(0, MACHINE)
        with pytest.raises(ValueError):
            Communicator(0, MACHINE, [])

    def test_inter_node_messages_cost_more(self):
        m = MachineModel(nodes=2, cores_per_node=2)
        payload = np.zeros(1 << 16)

        def entry(dest):
            ctx = current_rank()
            if ctx.rank == 0:
                ctx.comm.send(payload, dest=dest)
            elif ctx.rank == dest:
                ctx.comm.recv(source=0)
                return ctx.clock.comm_total
            return None

        c1 = SimCluster(4, m)
        t_intra = c1.run(entry, 1)[1]
        c2 = SimCluster(4, m)
        t_inter = c2.run(entry, 2)[2]
        assert t_inter > t_intra
