"""The one-sided data plane: put / get / fence over windows and heaps.

Three layers:

* **window protocol** — ``win_expose`` + ``put`` + ``fence(schedule)``
  on the process transport: values land exactly once, in disjoint
  regions, with the deterministic schedule coupling the clocks (the
  memory-ordering contract halo exchange and the elastic reshape are
  ported onto);
* **symmetric heap** — ``win_alloc`` places windows in per-rank shm
  segments at symmetric offsets, enabling direct remote writes
  (``PUT_APPLIED`` fast path) and one-sided ``get``;
* **topology-aware routing** — a 2-node x 2-rank
  :class:`~repro.dsm.socketmail.HierarchicalCommunicator` layout:
  co-located ranks exchange through queues/slabs with **zero TCP
  frames** between them (the ISSUE's acceptance assertion), remote
  ranks through frames; leader-per-node tree collectives put each
  payload on each inter-node link exactly once.
"""

import queue
import threading

import numpy as np
import pytest

from repro.dsm import shm
from repro.dsm.comm import RankContext, _bind
from repro.dsm.partition import BlockLayout, exchange_halo, local_slice
from repro.dsm.procmail import ProcCommunicator
from repro.dsm.socketmail import HierarchicalCommunicator, SocketTransport
from repro.vtime.clock import VClock
from repro.vtime.machine import MachineModel

MACHINE = MachineModel(nodes=2, cores_per_node=4)


def _run_ranks(nranks, fn, make_comm=None, machine=MACHINE):
    """Drive ``fn(rank, comm)`` on ``nranks`` bound rank threads."""
    channels = [queue.Queue() for _ in range(nranks)]
    if make_comm is None:
        def make_comm(rank):
            return ProcCommunicator(rank, nranks, machine, channels)
    results: list = [None] * nranks
    errors: list = []

    def main(rank):
        comm = make_comm(rank) if make_comm.__code__.co_argcount == 1 \
            else make_comm(rank, channels)
        _bind(RankContext(rank=rank, nranks=nranks, clock=VClock(),
                          comm=comm))
        try:
            results[rank] = fn(rank, comm)
        except BaseException as e:  # noqa: BLE001 - re-raised below
            errors.append((rank, e))
        finally:
            _bind(None)

    threads = [threading.Thread(target=main, args=(r,), daemon=True)
               for r in range(nranks)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60.0)
    assert not [t for t in threads if t.is_alive()], "rank thread hung"
    if errors:
        raise errors[0][1]
    return results


# ---------------------------------------------------------------------------
# the window protocol on the process transport
# ---------------------------------------------------------------------------
class TestPutFence:
    def test_put_lands_after_fence(self):
        def body(rank, comm):
            from repro.dsm.comm import current_rank
            ctx = current_rank()
            win = comm.win_expose("w", np.zeros(8))
            if rank == 0:
                comm.put("w", np.full(4, 7.0), 1, (4, 8))
                comm.fence([])
            else:
                comm.fence([0])
            assert ctx.clock.now >= 0.0
            comm.win_drop("w")
            return win.copy()

        r = _run_ranks(2, body)
        np.testing.assert_array_equal(r[1], [0, 0, 0, 0, 7, 7, 7, 7])
        np.testing.assert_array_equal(r[0], np.zeros(8))

    def test_fence_schedule_completes_each_source_in_order(self):
        """Disjoint-region puts from several origins: the fence drains
        them in schedule order (deterministic clock coupling) and every
        region lands exactly once."""
        def body(rank, comm):
            win = comm.win_expose("w", np.zeros(9))
            if rank == 0:
                comm.fence([1, 2, 1])  # rank 1 puts twice, rank 2 once
            else:
                lo = 0 if rank == 1 else 3
                comm.put("w", np.full(3, float(rank)), 0, (lo, lo + 3))
                if rank == 1:
                    comm.put("w", np.full(3, 10.0), 0, (6, 9))
                comm.fence([])
            return win.copy()

        r = _run_ranks(3, body)
        np.testing.assert_array_equal(
            r[0], [1, 1, 1, 2, 2, 2, 10, 10, 10])

    def test_put_charges_origin_like_a_send(self):
        def body(rank, comm):
            from repro.dsm.comm import current_rank
            ctx = current_rank()
            comm.win_expose("w", np.zeros(4))
            if rank == 0:
                before = ctx.clock.now
                comm.put("w", np.ones(4), 1, (0, 4))
                assert ctx.clock.now > before  # latency + transfer
                comm.fence([])
            else:
                before = ctx.clock.now
                comm.fence([0])
                assert ctx.clock.now > before  # ingress transfer
            return None

        _run_ranks(2, body)

    def test_index_vector_put_scatters_noncontiguous_regions(self):
        def body(rank, comm):
            win = comm.win_expose("w", np.zeros(6))
            if rank == 0:
                comm.put("w", np.array([5.0, 6.0]), 1,
                         np.array([1, 4]))
                comm.fence([])
            else:
                comm.fence([0])
            return win.copy()

        r = _run_ranks(2, body)
        np.testing.assert_array_equal(r[1], [0, 5, 0, 0, 6, 0])

    def test_self_put_and_bad_dest_are_rejected(self):
        def body(rank, comm):
            comm.win_expose("w", np.zeros(2))
            with pytest.raises(ValueError, match="self-put"):
                comm.put("w", np.ones(2), rank, (0, 2))
            with pytest.raises(ValueError, match="bad put destination"):
                comm.put("w", np.ones(2), 5, (0, 2))
            comm.barrier()
            return None

        _run_ranks(2, body)

    def test_fence_into_unexposed_window_raises(self):
        def body(rank, comm):
            if rank == 0:
                comm.put("nope", np.ones(2), 1, (0, 2))
                comm.fence([])
                return None
            with pytest.raises(RuntimeError, match="unexposed window"):
                comm.fence([0])
            return None

        _run_ranks(2, body)

    def test_self_get_reads_local_window(self):
        def body(rank, comm):
            comm.win_expose("w", np.arange(6.0))
            out = comm.get("w", rank, (2, 5))
            comm.barrier()
            return out

        r = _run_ranks(2, body)
        np.testing.assert_array_equal(r[0], [2, 3, 4])

    def test_remote_get_needs_a_heap_on_the_process_transport(self):
        def body(rank, comm):
            comm.win_expose("w", np.zeros(2))
            if rank == 1:
                with pytest.raises(RuntimeError, match="symmetric-heap"):
                    comm.get("w", 0, (0, 2))
            comm.barrier()
            return None

        _run_ranks(2, body)

    def test_quiet_is_a_valid_ordering_point(self):
        def body(rank, comm):
            comm.win_expose("w", np.zeros(2))
            if rank == 0:
                comm.put("w", np.ones(2), 1, (0, 2))
                comm.quiet()
                comm.fence([])
            else:
                comm.fence([0])
            return None

        _run_ranks(2, body)


# ---------------------------------------------------------------------------
# the symmetric heap
# ---------------------------------------------------------------------------
class TestSymmetricHeap:
    def test_symmetric_offsets_and_peer_views(self):
        launch = shm.new_launch_id()
        heaps = [shm.SymmetricHeap(launch, r) for r in range(2)]
        try:
            # identical SPMD alloc sequence -> identical offsets
            for h in heaps:
                h.alloc("a", (16,), np.float64)
                h.alloc("b", (4, 4), np.int64)
            heaps[0].window("a")[:] = 1.5
            heaps[1].window("b")[:] = 7
            # rank 0 reads rank 1's "b" through a peer view, in place
            np.testing.assert_array_equal(heaps[0].peer_view(1, "b"),
                                          np.full((4, 4), 7))
            # ... and writes rank 1's "a" one-sidedly
            heaps[0].peer_view(1, "a")[:] = 9.0
            np.testing.assert_array_equal(heaps[1].window("a"),
                                          np.full(16, 9.0))
        finally:
            for h in heaps:
                h.close()
            shm.unlink_heaps(launch, 2)

    def test_alloc_is_idempotent_but_spec_changes_are_errors(self):
        launch = shm.new_launch_id()
        h = shm.SymmetricHeap(launch, 0)
        try:
            a = h.alloc("x", (8,), np.float64)
            b = h.alloc("x", (8,), np.float64)
            assert a.__array_interface__["data"][0] \
                == b.__array_interface__["data"][0]
            with pytest.raises(ValueError, match="different spec"):
                h.alloc("x", (9,), np.float64)
        finally:
            h.close()
            shm.unlink_heaps(launch, 1)

    def test_exhaustion_raises_memory_error(self):
        launch = shm.new_launch_id()
        h = shm.SymmetricHeap(launch, 0, nbytes=1 << 12)
        try:
            with pytest.raises(MemoryError):
                h.alloc("big", (1 << 12,), np.float64)
        finally:
            h.close()
            shm.unlink_heaps(launch, 1)

    def test_win_alloc_put_get_fence_over_heap(self):
        """The full OpenSHMEM shape on the process transport: collective
        allocation, direct remote write (PUT_APPLIED fast path), fence
        observation, one-sided get."""
        launch = shm.new_launch_id()
        nranks = 2
        channels = [queue.Queue() for _ in range(nranks)]
        planes = [shm.DataPlane(shm.BufferPool(launch, r))
                  for r in range(nranks)]

        def make_comm(rank):
            return ProcCommunicator(rank, nranks, MACHINE, channels,
                                    plane=planes[rank])

        def body(rank, comm):
            win = comm.win_alloc("sym", (8,), np.float64)
            if rank == 0:
                comm.put("sym", np.full(4, 3.0), 1, (0, 4))
                comm.fence([])
            else:
                comm.fence([0])
                assert win[:4].tolist() == [3.0] * 4  # landed in my heap
            comm.barrier()
            # one-sided read of the peer's heap window
            peer = 1 - rank
            got = comm.get("sym", peer, (0, 4))
            comm.barrier()
            return got.copy()

        try:
            r = _run_ranks(nranks, body, make_comm=make_comm)
            np.testing.assert_array_equal(r[0], [3, 3, 3, 3])  # wrote it
            np.testing.assert_array_equal(r[1], np.zeros(4))
        finally:
            for p in planes:
                p.close()
            shm.unlink_pool(launch, nranks)
            shm.unlink_heaps(launch, nranks)


# ---------------------------------------------------------------------------
# topology-aware routing: 2 "physical nodes" x 2 ranks on loopback
# ---------------------------------------------------------------------------
def _hier_fabric(nranks, ranks_per_node, machine):
    """Per-rank factories for a loopback hierarchical fabric."""
    channels = [queue.Queue() for _ in range(nranks)]
    transports = [
        SocketTransport(r, channels, lambda x: x // ranks_per_node)
        for r in range(nranks)]
    addresses = {r: t.address for r, t in enumerate(transports)}
    for t in transports:
        t.set_addresses(addresses)

    def make_comm(rank):
        return HierarchicalCommunicator(rank, nranks, machine,
                                        transports[rank])

    return transports, make_comm


class TestHierarchicalTopology:
    def test_halo_exchange_routes_zero_tcp_frames_between_colocated(self):
        """The acceptance assertion: in a 2-node x 2-rank layout, a halo
        exchange sends no TCP frame between co-located ranks — their
        planes move through the queue fabric — while the node-boundary
        neighbours exchange exactly one frame each way."""
        nranks, n = 4, 16
        transports, make_comm = _hier_fabric(nranks, 2, MACHINE)
        layout = BlockLayout(halo=2)

        def body(rank, comm):
            arr = np.zeros(n)
            lo, hi = local_slice(n, rank, nranks)
            arr[lo:hi] = rank + 1.0
            exchange_halo(comm, arr, layout)
            return arr.copy()

        try:
            r = _run_ranks(nranks, body, make_comm=make_comm)
            for rank in range(nranks):
                lo, hi = local_slice(n, rank, nranks)
                if rank > 0:  # lower halo arrived from rank-1
                    np.testing.assert_array_equal(r[rank][lo - 2:lo],
                                                  np.full(2, float(rank)))
                if rank < nranks - 1:  # upper halo from rank+1
                    np.testing.assert_array_equal(r[rank][hi:hi + 2],
                                                  np.full(2, rank + 2.0))
            frames = {rank: t.frame_counts()
                      for rank, t in enumerate(transports)}
            # ranks 1 and 2 straddle the node boundary: one frame each
            # way; co-located pairs (0,1) and (2,3) never hit the wire.
            assert frames == {0: {}, 1: {2: 1}, 2: {1: 1}, 3: {}}, frames
        finally:
            for t in transports:
                t.close()

    @pytest.mark.parametrize("nranks,rpn", [(4, 2), (5, 2), (6, 3)])
    def test_tree_collectives_match_flat_values(self, nranks, rpn):
        machines = {algo: MachineModel(nodes=2, cores_per_node=4,
                                       coll_algo=algo)
                    for algo in ("flat", "tree")}

        def body(rank, comm):
            arr = np.arange(4.0) * (rank + 1)
            root = 1 if comm.nranks > 1 else 0
            b = comm.bcast(np.arange(5.0) if rank == root else None,
                           root=root)
            g = comm.gather(arr, root=0)
            s = comm.reduce(float(rank + 1), root=0)
            comm.barrier()
            return (b.tolist(),
                    None if g is None else [x.tolist() for x in g], s)

        results = {}
        for algo, machine in machines.items():
            transports, make_comm = _hier_fabric(nranks, rpn, machine)
            try:
                results[algo] = _run_ranks(nranks, body,
                                           make_comm=make_comm,
                                           machine=machine)
            finally:
                for t in transports:
                    t.close()
        assert results["flat"] == results["tree"]

    def test_tree_bcast_crosses_each_node_link_once(self):
        """Leader-per-node routing: a broadcast from rank 0 in a
        2-node x 2-rank layout puts exactly one frame on the wire —
        leader 0 -> leader 2 — and the members get queue copies."""
        machine = MachineModel(nodes=2, cores_per_node=4,
                               coll_algo="tree")
        transports, make_comm = _hier_fabric(4, 2, machine)

        def body(rank, comm):
            return comm.bcast(np.arange(8.0) if rank == 0 else None,
                              root=0).tolist()

        try:
            r = _run_ranks(4, body, make_comm=make_comm, machine=machine)
            assert all(v == list(np.arange(8.0)) for v in r)
            frames = {rank: t.frame_counts()
                      for rank, t in enumerate(transports)}
            assert frames == {0: {2: 1}, 1: {}, 2: {}, 3: {}}, frames
        finally:
            for t in transports:
                t.close()

    def test_remote_get_served_by_progress_thread(self):
        """A get across the node boundary: the target rank's CPU is
        busy elsewhere (parked in a barrier it will reach later); the
        progress thread serves the window read."""
        transports, make_comm = _hier_fabric(2, 1, MACHINE)

        def body(rank, comm):
            comm.win_expose("w", np.arange(10.0) * (rank + 1))
            comm.barrier()
            got = comm.get("w", 1 - rank, (2, 6))
            comm.barrier()
            comm.win_drop("w")
            return got.copy()

        try:
            r = _run_ranks(2, body, make_comm=make_comm)
            np.testing.assert_array_equal(r[0], [4, 6, 8, 10])   # rank 1's
            np.testing.assert_array_equal(r[1], [2, 3, 4, 5])    # rank 0's
        finally:
            for t in transports:
                t.close()
