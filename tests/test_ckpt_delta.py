"""Incremental (delta) checkpointing: anchors, chains, compression,
chain-aware pruning, and corruption degradation."""

import zlib

import numpy as np
import pytest

from repro.ckpt import (
    AlwaysAnchor,
    AnchorEvery,
    IncrementalCheckpointStore,
    Snapshot,
)
from repro.ckpt.snapshot import (
    KIND_DELTA,
    KIND_FULL,
    SnapshotCorrupt,
    decode_envelope,
)


class Sim:
    """Workload with a large static field and a small evolving one."""

    def __init__(self):
        self.params = np.arange(5000.0)  # never mutated between ckpts
        self.state = np.zeros(8)
        self.step = 0

    def advance(self, k):
        self.state += k
        self.step = k


def take(store, sim, count):
    store.write(Snapshot.capture(sim, ["params", "state", "step"], count))


# ---------------------------------------------------------------------------
# anchor cadence and delta contents
# ---------------------------------------------------------------------------
class TestDeltaEncoding:
    def test_first_write_is_full_anchor(self, tmp_path):
        store = IncrementalCheckpointStore(tmp_path, anchor=4)
        take(store, Sim(), 1)
        assert store.last_write_kind == KIND_FULL

    def test_anchor_cadence(self, tmp_path):
        store = IncrementalCheckpointStore(tmp_path, anchor=3)
        sim = Sim()
        kinds = []
        for c in range(1, 8):
            sim.advance(c)
            take(store, sim, c)
            kinds.append(store.last_write_kind)
        assert kinds == ["full", "delta", "delta",
                         "full", "delta", "delta", "full"]

    def test_delta_stores_only_changed_fields(self, tmp_path):
        store = IncrementalCheckpointStore(tmp_path, anchor=8)
        sim = Sim()
        take(store, sim, 1)
        sim.advance(2)  # params untouched
        take(store, sim, 2)
        header, sections = decode_envelope(store.path_for(2).read_bytes())
        assert header["kind"] == KIND_DELTA
        assert header["base"] == 1
        assert set(header["fields"]) == {"state", "step"}
        assert header["carry"] == ["params"]
        assert "params" not in sections

    def test_delta_bytes_much_smaller_than_full(self, tmp_path):
        store = IncrementalCheckpointStore(tmp_path, anchor=100)
        sim = Sim()
        take(store, sim, 1)
        full = store.last_write_nbytes
        sim.advance(2)
        take(store, sim, 2)
        assert store.last_write_nbytes * 2 < full

    def test_unchanged_state_produces_empty_delta(self, tmp_path):
        store = IncrementalCheckpointStore(tmp_path, anchor=100)
        sim = Sim()
        take(store, sim, 1)
        take(store, sim, 2)  # nothing mutated at all
        header, _ = decode_envelope(store.path_for(2).read_bytes())
        assert header["fields"] == []
        snap = store.read(2)
        np.testing.assert_array_equal(snap.fields["params"], sim.params)

    def test_always_anchor_disables_deltas(self, tmp_path):
        store = IncrementalCheckpointStore(tmp_path, anchor=AlwaysAnchor())
        sim = Sim()
        for c in (1, 2, 3):
            sim.advance(c)
            take(store, sim, c)
            assert store.last_write_kind == KIND_FULL

    def test_field_set_change_forces_anchor(self, tmp_path):
        store = IncrementalCheckpointStore(tmp_path, anchor=100)
        sim = Sim()
        take(store, sim, 1)
        store.write(Snapshot.capture(sim, ["state", "step"], 2))
        assert store.last_write_kind == KIND_FULL

    def test_rewriting_same_count_forces_anchor(self, tmp_path):
        """Deterministic re-execution after recovery re-writes counts it
        already wrote; those must anchor, never self-reference."""
        store = IncrementalCheckpointStore(tmp_path, anchor=100)
        sim = Sim()
        take(store, sim, 1)
        sim.advance(2)
        take(store, sim, 2)
        assert store.last_write_kind == KIND_DELTA
        sim.advance(9)
        take(store, sim, 2)  # same count again (replayed run)
        assert store.last_write_kind == KIND_FULL
        np.testing.assert_array_equal(store.read(2).fields["state"],
                                      sim.state)

    def test_anchor_every_validation(self):
        with pytest.raises(ValueError):
            AnchorEvery(0)


# ---------------------------------------------------------------------------
# chain restore correctness
# ---------------------------------------------------------------------------
class TestChainRestore:
    def test_chain_restores_bit_identically_to_full_snapshot(self, tmp_path):
        """A restore through a delta chain equals a direct full snapshot
        of the same state, bit for bit."""
        inc = IncrementalCheckpointStore(tmp_path / "inc", anchor=4)
        sim = Sim()
        for c in range(1, 11):
            sim.advance(c)
            take(inc, sim, c)
        resolved = inc.read(10)
        direct = Snapshot.capture(sim, ["params", "state", "step"], 10)
        assert list(resolved.fields) == list(direct.fields)
        for name in direct.fields:
            a = np.atleast_1d(resolved.fields[name])
            b = np.atleast_1d(direct.fields[name])
            assert a.dtype == b.dtype
            assert a.tobytes() == b.tobytes()

    def test_every_intermediate_count_restores(self, tmp_path):
        store = IncrementalCheckpointStore(tmp_path, anchor=3)
        sim, states = Sim(), {}
        for c in range(1, 9):
            sim.advance(c)
            states[c] = sim.state.copy()
            take(store, sim, c)
        for c, expected in states.items():
            np.testing.assert_array_equal(store.read(c).fields["state"],
                                          expected)

    def test_restore_into_instance(self, tmp_path):
        store = IncrementalCheckpointStore(tmp_path, anchor=4)
        sim = Sim()
        for c in (1, 2, 3):
            sim.advance(c)
            take(store, sim, c)
        fresh = Sim()
        store.read(3).restore_into(fresh)
        np.testing.assert_array_equal(fresh.state, sim.state)
        assert fresh.step == 3

    def test_read_latest_resolves_chain(self, tmp_path):
        store = IncrementalCheckpointStore(tmp_path, anchor=10)
        sim = Sim()
        for c in (1, 2, 3):
            sim.advance(c)
            take(store, sim, c)
        latest = store.read_latest()
        assert latest.safepoint_count == 3
        np.testing.assert_array_equal(latest.fields["params"], sim.params)

    def test_plain_decode_of_delta_rejected(self, tmp_path):
        store = IncrementalCheckpointStore(tmp_path, anchor=10)
        sim = Sim()
        take(store, sim, 1)
        sim.advance(2)
        take(store, sim, 2)
        with pytest.raises(SnapshotCorrupt, match="delta"):
            Snapshot.decode(store.path_for(2).read_bytes())


# ---------------------------------------------------------------------------
# corruption degradation
# ---------------------------------------------------------------------------
class TestChainCorruption:
    def _chain(self, tmp_path, upto=6, anchor=3):
        store = IncrementalCheckpointStore(tmp_path, anchor=anchor)
        sim = Sim()
        for c in range(1, upto + 1):
            sim.advance(c)
            take(store, sim, c)
        return store

    def test_corrupt_delta_falls_back_to_its_base(self, tmp_path):
        store = self._chain(tmp_path)  # anchors at 1, 4; deltas elsewhere
        p = store.path_for(6)
        data = bytearray(p.read_bytes())
        data[len(data) // 2] ^= 0xFF
        p.write_bytes(bytes(data))
        assert store.read_latest().safepoint_count == 5

    def test_corrupt_anchor_loses_its_whole_interval(self, tmp_path):
        store = self._chain(tmp_path)
        store.path_for(4).write_bytes(b"\x00" * 32)  # kill the anchor
        # deltas 5 and 6 depend on 4; recovery degrades to the delta at 3
        assert store.read_latest().safepoint_count == 3

    def test_missing_base_detected(self, tmp_path):
        store = self._chain(tmp_path)
        store.path_for(4).unlink()
        with pytest.raises((SnapshotCorrupt, OSError)):
            store.read(6)
        assert store.read_latest().safepoint_count == 3

    def test_truncated_newest_falls_back(self, tmp_path):
        store = self._chain(tmp_path)
        p = store.path_for(6)
        p.write_bytes(p.read_bytes()[: 20])
        assert store.read_latest().safepoint_count == 5

    def test_self_referencing_base_rejected(self, tmp_path):
        store = self._chain(tmp_path, upto=2, anchor=10)
        # hand-craft a delta whose base >= its own count
        header, _ = decode_envelope(store.path_for(2).read_bytes())
        from repro.ckpt.snapshot import encode_container

        header["base"] = 7
        header["safepoint_count"] = 7
        store.path_for(7).write_bytes(encode_container(header, {}))
        with pytest.raises(SnapshotCorrupt, match="base"):
            store.read(7)


# ---------------------------------------------------------------------------
# chain-aware pruning
# ---------------------------------------------------------------------------
class TestChainPrune:
    def test_prune_keeps_chain_dependencies(self, tmp_path):
        store = IncrementalCheckpointStore(tmp_path, anchor=4)
        sim = Sim()
        for c in range(1, 8):  # anchors at 1 and 5
            sim.advance(c)
            take(store, sim, c)
        store.prune(keep=1)
        # 7 is a delta on 6 on 5 (anchor): all three must survive
        assert store.counts() == [5, 6, 7]
        np.testing.assert_array_equal(store.read(7).fields["state"],
                                      sim.state)

    def test_prune_anchor_only_chain(self, tmp_path):
        store = IncrementalCheckpointStore(tmp_path, anchor=AlwaysAnchor())
        sim = Sim()
        for c in range(1, 6):
            sim.advance(c)
            take(store, sim, c)
        store.prune(keep=1)
        assert store.counts() == [5]

    def test_clear_resets_baseline(self, tmp_path):
        store = IncrementalCheckpointStore(tmp_path, anchor=100)
        sim = Sim()
        take(store, sim, 1)
        store.clear()
        sim.advance(2)
        take(store, sim, 2)
        assert store.last_write_kind == KIND_FULL  # no dangling base


# ---------------------------------------------------------------------------
# transparent compression
# ---------------------------------------------------------------------------
class TestCompression:
    def test_compressed_roundtrip(self, tmp_path):
        class Z:
            def __init__(self):
                self.big = np.zeros(50_000)  # highly compressible
                self.step = 3

        store = IncrementalCheckpointStore(tmp_path, anchor=2,
                                           compress_min_bytes=4096)
        z = Z()
        store.write(Snapshot.capture(z, ["big", "step"], 1))
        assert store.last_write_nbytes < 50_000 * 8 // 10
        snap = store.read(1)
        np.testing.assert_array_equal(snap.fields["big"], z.big)
        assert snap.fields["step"] == 3

    def test_small_sections_stay_raw(self, tmp_path):
        store = IncrementalCheckpointStore(tmp_path,
                                           compress_min_bytes=1 << 20)
        sim = Sim()
        take(store, sim, 1)
        header, sections = decode_envelope(store.path_for(1).read_bytes())
        assert all(flags == 0 for flags, _, _ in sections.values())

    def test_incompressible_sections_stay_raw(self, tmp_path):
        class R:
            def __init__(self):
                rng = np.random.default_rng(0)
                self.noise = rng.bytes(100_000)  # zlib cannot shrink this

        store = IncrementalCheckpointStore(tmp_path, compress_min_bytes=64)
        store.write(Snapshot.capture(R(), ["noise"], 1))
        _, sections = decode_envelope(store.path_for(1).read_bytes())
        (flags, blob, _crc) = sections["noise"]
        assert flags == 0  # negotiation declined: compressed >= raw
        store.read(1)

    def test_compressed_corruption_detected_before_decompress(self, tmp_path):
        store = IncrementalCheckpointStore(tmp_path, compress_min_bytes=64)
        sim = Sim()
        take(store, sim, 1)
        p = store.path_for(1)
        data = bytearray(p.read_bytes())
        data[len(data) - 40] ^= 0x01
        p.write_bytes(bytes(data))
        with pytest.raises(SnapshotCorrupt):
            store.read(1)

    def test_version1_files_still_readable(self, tmp_path):
        """Seed-format checkpoints (v1: (blob, crc) sections) load fine."""
        from repro.util.serialization import crc32_of, dumps_portable

        sim = Sim()
        blob = dumps_portable(sim.params)
        envelope = {
            "header": {"version": 1, "app": "Sim", "safepoint_count": 5,
                       "mode": "sequential", "meta": {},
                       "fields": ["params"]},
            "sections": {"params": (blob, crc32_of(blob))},
        }
        store = IncrementalCheckpointStore(tmp_path)
        store.path_for(5).write_bytes(dumps_portable(envelope))
        snap = store.read(5)
        assert snap.safepoint_count == 5
        np.testing.assert_array_equal(snap.fields["params"], sim.params)

    def test_compression_actually_uses_zlib_format(self, tmp_path):
        store = IncrementalCheckpointStore(tmp_path, compress_min_bytes=64)
        z = Sim()
        z.params = np.zeros(10_000)
        store.write(Snapshot.capture(z, ["params"], 1))
        _, sections = decode_envelope(store.path_for(1).read_bytes())
        flags, blob, _ = sections["params"]
        assert flags & 0x1
        zlib.decompress(blob)  # must be a valid zlib stream


class TestContentHashValue:
    """The buffer-direct digest must never collide where the old
    blob digest (over the full .npy encoding) could not."""

    def test_matches_change_detection_of_blob_hash(self):
        from repro.ckpt.delta import content_hash_value

        a = np.arange(12.0).reshape(3, 4)
        assert content_hash_value(a) == content_hash_value(a.copy())
        b = a.copy()
        b[1, 2] += 1e-9
        assert content_hash_value(a) != content_hash_value(b)
        # shape and dtype are part of the identity, not just the bytes
        assert content_hash_value(a) != content_hash_value(a.reshape(4, 3))
        assert content_hash_value(np.zeros(4, np.int64)) \
            != content_hash_value(np.zeros(4, np.float64))
        # non-contiguous views hash by value, like their encoding does
        assert content_hash_value(a[:, ::2]) \
            == content_hash_value(np.ascontiguousarray(a[:, ::2]))

    def test_structured_dtypes_of_equal_itemsize_do_not_collide(self):
        from repro.ckpt.delta import content_hash_value

        ab = np.zeros(4, dtype=[("a", "<i4"), ("b", "<i4")])
        xy = np.zeros(4, dtype=[("x", "<f4"), ("y", "<i4")])
        # dtype.str collapses both to "|V8"; the digest must not
        assert content_hash_value(ab) != content_hash_value(xy)

    def test_non_array_values_hash_via_portable_encoding(self):
        from repro.ckpt.delta import content_hash, content_hash_value
        from repro.util.serialization import dumps_portable

        v = {"k": [1, 2, 3]}
        assert content_hash_value(v) == content_hash(dumps_portable(v))

    def test_memory_order_flip_with_equal_values_is_a_change(self):
        from repro.ckpt.delta import content_hash_value

        c = np.arange(12.0).reshape(3, 4)
        f = np.asfortranarray(c)
        assert np.array_equal(c, f)
        # np.save records fortran_order, so the encodings differ; the
        # digest must treat the order flip as a change or a delta would
        # carry the stale-order blob across a recovery.
        assert content_hash_value(c) != content_hash_value(f)
        # 1-D arrays are both C- and F-contiguous: one identity
        assert content_hash_value(np.arange(5.0)) \
            == content_hash_value(np.asfortranarray(np.arange(5.0)))
