"""End-to-end tests: SOR woven with the paper's plug modules.

These are the load-bearing reproduction invariants from DESIGN.md §6:
mode equivalence (bit-identical results in every execution mode), replay
equivalence (crash + restart == uninterrupted run), mode-independent
checkpoints, and adaptation correctness.
"""

import numpy as np
import pytest

from repro.apps.plugs.sor_plugs import (
    SOR_ADAPTIVE,
    SOR_CKPT,
    SOR_DIST,
    SOR_HYBRID,
    SOR_SHARED,
)
from repro.apps.sor import SOR
from repro.ckpt import AtCounts, EveryN, FailureInjector, InjectedFailure
from repro.core import (
    AdaptStep,
    AdaptationPlan,
    ExecConfig,
    Runtime,
    plug,
)
from repro.vtime import MachineModel

MACHINE = MachineModel(nodes=2, cores_per_node=4)
N, ITERS = 40, 12


def reference_checksum(n=N, iters=ITERS):
    app = SOR(n=n, iterations=iters)
    return app.execute()


REF = reference_checksum()


def make_runtime(tmp_path, **kw):
    kw.setdefault("machine", MACHINE)
    return Runtime(ckpt_dir=tmp_path / "ckpt", **kw)


class TestSequentialBase:
    def test_plain_class_is_deterministic(self):
        assert reference_checksum() == REF

    def test_iterations_progress(self):
        app = SOR(n=10, iterations=3)
        app.execute()
        assert app.iterations_done == 3

    def test_validation_bounds(self):
        with pytest.raises(ValueError):
            SOR(n=2)


class TestModeEquivalence:
    """One code base, four modes, identical results (bit-for-bit)."""

    def test_sequential_mode(self, tmp_path):
        W = plug(SOR, SOR_CKPT)
        res = make_runtime(tmp_path).run(
            W, ctor_kwargs={"n": N, "iterations": ITERS}, entry="execute",
            config=ExecConfig.sequential(), fresh=True)
        assert res.value == REF

    @pytest.mark.parametrize("workers", [1, 2, 3, 5])
    def test_shared_mode(self, tmp_path, workers):
        W = plug(SOR, SOR_SHARED + SOR_CKPT)
        res = make_runtime(tmp_path).run(
            W, ctor_kwargs={"n": N, "iterations": ITERS}, entry="execute",
            config=ExecConfig.shared(workers), fresh=True)
        assert res.value == REF

    @pytest.mark.parametrize("nranks", [1, 2, 4, 7])
    def test_distributed_mode(self, tmp_path, nranks):
        W = plug(SOR, SOR_DIST + SOR_CKPT)
        res = make_runtime(tmp_path).run(
            W, ctor_kwargs={"n": N, "iterations": ITERS}, entry="execute",
            config=ExecConfig.distributed(nranks), fresh=True)
        assert res.value == REF

    @pytest.mark.parametrize("nranks,workers", [(2, 2), (2, 3), (4, 2)])
    def test_hybrid_mode(self, tmp_path, nranks, workers):
        W = plug(SOR, SOR_HYBRID + SOR_CKPT)
        res = make_runtime(tmp_path).run(
            W, ctor_kwargs={"n": N, "iterations": ITERS}, entry="execute",
            config=ExecConfig.hybrid(nranks, workers), fresh=True)
        assert res.value == REF

    def test_adaptive_weave_runs_everywhere(self, tmp_path):
        """A single woven class (SOR_ADAPTIVE) handles every mode."""
        W = plug(SOR, SOR_ADAPTIVE)
        for config in (ExecConfig.sequential(), ExecConfig.shared(3),
                       ExecConfig.distributed(3), ExecConfig.hybrid(2, 2)):
            res = make_runtime(tmp_path).run(
                W, ctor_kwargs={"n": N, "iterations": ITERS},
                entry="execute", config=config, fresh=True)
            assert res.value == REF, f"mismatch in {config}"


class TestCheckpointRestart:
    """Replay equivalence: crash + replay-restart == uninterrupted run."""

    @pytest.mark.parametrize("config", [
        ExecConfig.sequential(),
        ExecConfig.shared(3),
        ExecConfig.distributed(3),
    ], ids=["seq", "shared", "dist"])
    def test_crash_and_restart(self, tmp_path, config):
        plugset = {
            "sequential": SOR_CKPT,
            "shared": SOR_SHARED + SOR_CKPT,
            "distributed": SOR_DIST + SOR_CKPT,
        }[config.mode.value]
        W = plug(SOR, plugset)
        rt = make_runtime(tmp_path, policy=EveryN(4))
        kw = dict(ctor_kwargs={"n": N, "iterations": ITERS},
                  entry="execute", config=config)

        with pytest.raises(InjectedFailure):
            rt.run(W, injector=FailureInjector(fail_at=9), fresh=True, **kw)
        # ledger says "running" -> pcr engages replay from checkpoint at 8
        assert rt.ledger.previous_run_failed()
        assert rt.store.read_latest().safepoint_count == 8

        res = rt.run(W, **kw)
        assert res.value == REF
        assert not rt.ledger.previous_run_failed()

    def test_restore_event_emitted_once(self, tmp_path):
        W = plug(SOR, SOR_CKPT)
        rt = make_runtime(tmp_path, policy=EveryN(5))
        kw = dict(ctor_kwargs={"n": N, "iterations": ITERS},
                  entry="execute", config=ExecConfig.sequential())
        with pytest.raises(InjectedFailure):
            rt.run(W, injector=FailureInjector(fail_at=7), fresh=True, **kw)
        res = rt.run(W, **kw)
        restores = res.events.of_kind("restore")
        assert len(restores) == 1
        assert restores[0].data["count"] == 5

    def test_auto_recover(self, tmp_path):
        W = plug(SOR, SOR_CKPT)
        rt = make_runtime(tmp_path, policy=EveryN(4))
        res = rt.run(W, ctor_kwargs={"n": N, "iterations": ITERS},
                     entry="execute", config=ExecConfig.sequential(),
                     injector=FailureInjector(fail_at=10),
                     auto_recover=True, fresh=True)
        assert res.value == REF
        assert res.restarts == 1
        assert [p.outcome for p in res.phases] == ["failed", "completed"]

    def test_failure_without_checkpoint_recomputes(self, tmp_path):
        W = plug(SOR, SOR_CKPT)
        rt = make_runtime(tmp_path)  # Never policy: no checkpoints
        res = rt.run(W, ctor_kwargs={"n": N, "iterations": ITERS},
                     entry="execute", config=ExecConfig.sequential(),
                     injector=FailureInjector(fail_at=6),
                     auto_recover=True, fresh=True)
        assert res.value == REF

    def test_mode_independent_checkpoint(self, tmp_path):
        """Checkpoint under DISTRIBUTED, restart in every other mode."""
        W = plug(SOR, SOR_ADAPTIVE)
        kw = dict(ctor_kwargs={"n": N, "iterations": ITERS}, entry="execute")
        for restart_config in (ExecConfig.sequential(), ExecConfig.shared(2),
                               ExecConfig.distributed(2),
                               ExecConfig.hybrid(2, 2)):
            rt = make_runtime(tmp_path, policy=AtCounts([6]))
            with pytest.raises(InjectedFailure):
                rt.run(W, config=ExecConfig.distributed(4),
                       injector=FailureInjector(fail_at=8), fresh=True, **kw)
            snap = rt.store.read_latest()
            assert snap.safepoint_count == 6
            assert snap.mode == "distributed"
            res = rt.run(W, config=restart_config, **kw)
            assert res.value == REF, f"restart in {restart_config} diverged"

    def test_checkpoint_captures_consistent_iteration(self, tmp_path):
        W = plug(SOR, SOR_CKPT)
        rt = make_runtime(tmp_path, policy=AtCounts([7]))
        rt.run(W, ctor_kwargs={"n": N, "iterations": ITERS}, entry="execute",
               config=ExecConfig.sequential(), fresh=True)
        snap = rt.store.read_latest()
        assert snap.fields["iterations_done"] == 7
        # the checkpointed grid equals an uninterrupted 7-iteration run
        ref7 = SOR(n=N, iterations=7)
        ref7.execute()
        np.testing.assert_array_equal(snap.fields["G"], ref7.G)


class TestAdaptation:
    def test_live_team_resize(self, tmp_path):
        """Fig. 7's run-time path: grow the team mid-region, same result."""
        W = plug(SOR, SOR_SHARED + SOR_CKPT)
        plan = AdaptationPlan([AdaptStep(at=5, config=ExecConfig.shared(4))])
        rt = make_runtime(tmp_path)
        res = rt.run(W, ctor_kwargs={"n": N, "iterations": ITERS},
                     entry="execute", config=ExecConfig.shared(2),
                     plan=plan, fresh=True)
        assert res.value == REF
        grows = res.events.of_kind("team_grow")
        assert len(grows) == 1 and grows[0].data["size"] == 4

    def test_live_team_shrink(self, tmp_path):
        W = plug(SOR, SOR_SHARED + SOR_CKPT)
        plan = AdaptationPlan([AdaptStep(at=4, config=ExecConfig.shared(1))])
        rt = make_runtime(tmp_path)
        res = rt.run(W, ctor_kwargs={"n": N, "iterations": ITERS},
                     entry="execute", config=ExecConfig.shared(4),
                     plan=plan, fresh=True)
        assert res.value == REF
        assert res.events.of_kind("team_shrink")

    def test_seq_to_distributed_live(self, tmp_path):
        """Expansion: sequential -> cluster via the run-time protocol."""
        W = plug(SOR, SOR_ADAPTIVE)
        plan = AdaptationPlan(
            [AdaptStep(at=6, config=ExecConfig.distributed(4))])
        rt = make_runtime(tmp_path)
        res = rt.run(W, ctor_kwargs={"n": N, "iterations": ITERS},
                     entry="execute", config=ExecConfig.sequential(),
                     plan=plan, fresh=True)
        assert res.value == REF
        assert res.adapted
        assert res.adaptations[0].to_config == ExecConfig.distributed(4)
        assert [p.outcome for p in res.phases] == ["adapted", "completed"]

    def test_distributed_to_seq_contraction(self, tmp_path):
        W = plug(SOR, SOR_ADAPTIVE)
        plan = AdaptationPlan(
            [AdaptStep(at=6, config=ExecConfig.sequential())])
        rt = make_runtime(tmp_path)
        res = rt.run(W, ctor_kwargs={"n": N, "iterations": ITERS},
                     entry="execute", config=ExecConfig.distributed(4),
                     plan=plan, fresh=True)
        assert res.value == REF
        assert res.final_config == ExecConfig.sequential()

    def test_rank_count_change(self, tmp_path):
        """Fig. 6 shape: 2 ranks -> more ranks mid-run."""
        W = plug(SOR, SOR_ADAPTIVE)
        plan = AdaptationPlan(
            [AdaptStep(at=5, config=ExecConfig.distributed(6))])
        rt = make_runtime(tmp_path)
        res = rt.run(W, ctor_kwargs={"n": N, "iterations": ITERS},
                     entry="execute", config=ExecConfig.distributed(2),
                     plan=plan, fresh=True)
        assert res.value == REF

    def test_restart_based_adaptation(self, tmp_path):
        """Fig. 7's restart path: through the checkpoint file on disk."""
        W = plug(SOR, SOR_ADAPTIVE)
        plan = AdaptationPlan(
            [AdaptStep(at=6, config=ExecConfig.shared(4), via_restart=True)])
        rt = make_runtime(tmp_path, policy=AtCounts([6]))
        res = rt.run(W, ctor_kwargs={"n": N, "iterations": ITERS},
                     entry="execute", config=ExecConfig.shared(2),
                     plan=plan, fresh=True)
        assert res.value == REF
        assert res.adaptations[0].via_restart

    def test_multi_step_adaptation(self, tmp_path):
        """seq -> shared -> distributed -> shared, result intact."""
        W = plug(SOR, SOR_ADAPTIVE)
        plan = AdaptationPlan([
            AdaptStep(at=3, config=ExecConfig.shared(3)),
            AdaptStep(at=6, config=ExecConfig.distributed(3)),
            AdaptStep(at=9, config=ExecConfig.shared(2)),
        ])
        rt = make_runtime(tmp_path)
        res = rt.run(W, ctor_kwargs={"n": N, "iterations": ITERS},
                     entry="execute", config=ExecConfig.sequential(),
                     plan=plan, fresh=True)
        assert res.value == REF
        assert len(res.adaptations) >= 2

    def test_async_request_in_shared_mode(self, tmp_path):
        """External (unplanned) request picked up at the next safe point."""
        W = plug(SOR, SOR_ADAPTIVE)
        plan = AdaptationPlan()
        plan.request(ExecConfig.distributed(3))
        rt = make_runtime(tmp_path)
        res = rt.run(W, ctor_kwargs={"n": N, "iterations": ITERS},
                     entry="execute", config=ExecConfig.sequential(),
                     plan=plan, fresh=True)
        assert res.value == REF
        assert res.adaptations and res.adaptations[0].at_count == 1

    def test_adaptation_vtime_monotone(self, tmp_path):
        W = plug(SOR, SOR_ADAPTIVE)
        plan = AdaptationPlan(
            [AdaptStep(at=5, config=ExecConfig.distributed(4))])
        rt = make_runtime(tmp_path)
        res = rt.run(W, ctor_kwargs={"n": N, "iterations": ITERS},
                     entry="execute", config=ExecConfig.sequential(),
                     plan=plan, fresh=True)
        assert res.phases[0].end_vtime <= res.phases[1].start_vtime
        assert res.vtime >= res.phases[1].start_vtime
