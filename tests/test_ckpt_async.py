"""Asynchronous checkpoint writer: durability barrier, error stickiness,
the double-buffer vtime model, and RunLedger write durability."""

import os

import numpy as np
import pytest

from repro.ckpt import (
    AsyncCheckpointWriter,
    AsyncWriteFailed,
    CheckpointStore,
    RunLedger,
    Snapshot,
)
from repro.core.context import ExecutionContext
from repro.core.modes import ExecConfig
from repro.vtime.machine import MachineModel


class Thing:
    def __init__(self):
        self.G = np.arange(12.0).reshape(3, 4)
        self.step = 7


# ---------------------------------------------------------------------------
# writer
# ---------------------------------------------------------------------------
class TestWriter:
    def test_flush_is_durability_barrier(self, tmp_path):
        w = AsyncCheckpointWriter()
        w.submit(tmp_path / "a.bin", b"payload")
        w.flush()
        assert (tmp_path / "a.bin").read_bytes() == b"payload"
        w.close()

    def test_many_writes_all_land(self, tmp_path):
        w = AsyncCheckpointWriter(depth=2)
        for i in range(20):
            w.submit(tmp_path / f"f{i}.bin", bytes([i]) * 100)
        w.flush()
        for i in range(20):
            assert (tmp_path / f"f{i}.bin").read_bytes() == bytes([i]) * 100
        assert w.writes_completed == 20
        w.close()

    def test_error_is_sticky_and_raised_at_flush(self, tmp_path):
        w = AsyncCheckpointWriter()
        w.submit(tmp_path / "missing-dir" / "x.bin", b"data")
        with pytest.raises(AsyncWriteFailed):
            w.flush()
        w.close()

    def test_no_tmp_litter(self, tmp_path):
        w = AsyncCheckpointWriter()
        for i in range(5):
            w.submit(tmp_path / f"f{i}.bin", b"x" * 50)
        w.flush()
        w.close()
        assert not list(tmp_path.glob("*.tmp"))

    def test_close_idempotent(self, tmp_path):
        w = AsyncCheckpointWriter()
        w.submit(tmp_path / "a.bin", b"z")
        w.close()
        w.close()
        with pytest.raises(RuntimeError):
            w.submit(tmp_path / "b.bin", b"z")

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            AsyncCheckpointWriter(depth=0)


# ---------------------------------------------------------------------------
# store + writer integration
# ---------------------------------------------------------------------------
class TestAsyncStore:
    def test_write_visible_after_flush(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.attach_writer(AsyncCheckpointWriter())
        store.write(Snapshot.capture(Thing(), ["G", "step"], count=4))
        store.flush()
        snap = store.read_latest()
        assert snap.safepoint_count == 4
        np.testing.assert_array_equal(snap.fields["G"],
                                      np.arange(12.0).reshape(3, 4))
        store.close()

    def test_submission_is_immune_to_later_mutation(self, tmp_path):
        """The bytes handed to the writer are an immutable copy: mutating
        the live object after write() cannot tear the file."""
        store = CheckpointStore(tmp_path)
        store.attach_writer(AsyncCheckpointWriter())
        t = Thing()
        store.write(Snapshot.capture(t, ["G"], count=1))
        t.G[:] = -1.0
        store.flush()
        np.testing.assert_array_equal(
            store.read(1).fields["G"], np.arange(12.0).reshape(3, 4))
        store.close()

    def test_prune_flushes_first(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.attach_writer(AsyncCheckpointWriter())
        for c in (1, 2, 3):
            store.write(Snapshot.capture(Thing(), ["step"], count=c))
        store.prune(keep=1)  # must not race the in-flight writes
        assert store.counts() == [3]
        store.close()

    def test_sync_store_flush_is_noop(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.flush()  # no writer attached: must not fail
        assert not store.is_async


# ---------------------------------------------------------------------------
# the double-buffer vtime cost model
# ---------------------------------------------------------------------------
class TestAsyncVtimeModel:
    def _ctx(self, tmp_path, asynchronous, depth=2):
        store = CheckpointStore(tmp_path)
        if asynchronous:
            store.attach_writer(AsyncCheckpointWriter(depth=depth))
        machine = MachineModel()
        ctx = ExecutionContext(config=ExecConfig.sequential(),
                               machine=machine, store=store)
        return ctx, machine

    def test_sync_write_charges_full_disk_cost(self, tmp_path):
        ctx, machine = self._ctx(tmp_path, asynchronous=False)
        ctx._charge_write(1_000_000)
        assert ctx.clock().now == pytest.approx(
            machine.disk.write_cost(1_000_000))

    def test_async_write_charges_only_the_copy(self, tmp_path):
        ctx, machine = self._ctx(tmp_path, asynchronous=True)
        ctx._charge_write(1_000_000)
        assert ctx.clock().now == pytest.approx(
            machine.disk.copy_cost(1_000_000))
        assert ctx.clock().now < machine.disk.write_cost(1_000_000) / 10

    def test_queue_absorbs_writes_up_to_depth(self, tmp_path):
        """Submissions only pay the copy while the bounded queue has
        room: depth images queued behind the one in flight."""
        ctx, machine = self._ctx(tmp_path, asynchronous=True, depth=2)
        nb = 1_000_000
        for _ in range(3):  # 1 in flight + 2 queued: no stall yet
            ctx._charge_write(nb)
        assert ctx.clock().now == pytest.approx(
            3 * machine.disk.copy_cost(nb))

    def test_full_queue_stalls_until_a_write_lands(self, tmp_path):
        """With the queue full, submit waits for the earliest pending
        write — async degrades gracefully to disk pacing, never to
        unbounded queueing."""
        ctx, machine = self._ctx(tmp_path, asynchronous=True, depth=1)
        nb = 1_000_000
        copy = machine.disk.copy_cost(nb)
        write = machine.disk.write_cost(nb)
        ctx._charge_write(nb)   # in flight
        ctx._charge_write(nb)   # queued
        assert ctx.clock().now == pytest.approx(2 * copy)
        ctx._charge_write(nb)   # queue full: waits for the first write
        assert ctx.clock().now == pytest.approx(copy + write)

    def test_deeper_queue_defers_stalls(self, tmp_path):
        """ckpt_async_depth is part of the cost model: a deeper queue
        absorbs the same burst with less critical-path time."""
        nb = 1_000_000

        def burst(depth):
            ctx, _ = self._ctx(tmp_path / f"d{depth}",
                               asynchronous=True, depth=depth)
            for _ in range(5):
                ctx._charge_write(nb)
            return ctx.clock().now

        assert burst(4) < burst(1)

    def test_overlapped_write_is_free_after_enough_compute(self, tmp_path):
        ctx, machine = self._ctx(tmp_path, asynchronous=True)
        nb = 1_000_000
        ctx._charge_write(nb)
        ctx.clock().charge_compute(10.0)  # plenty to hide the write
        before = ctx.clock().now
        ctx._charge_write(nb)
        assert ctx.clock().now == pytest.approx(
            before + machine.disk.copy_cost(nb))

    def test_flush_barrier_charges_the_remainder(self, tmp_path):
        ctx, machine = self._ctx(tmp_path, asynchronous=True)
        nb = 1_000_000
        ctx._charge_write(nb)
        ctx.ckpt_flush_barrier()
        assert ctx.clock().now == pytest.approx(
            machine.disk.copy_cost(nb) + machine.disk.write_cost(nb))

    def test_flush_barrier_after_overlap_charges_nothing(self, tmp_path):
        ctx, machine = self._ctx(tmp_path, asynchronous=True)
        ctx._charge_write(1_000_000)
        ctx.clock().charge_compute(10.0)
        before = ctx.clock().now
        ctx.ckpt_flush_barrier()
        assert ctx.clock().now == before


# ---------------------------------------------------------------------------
# RunLedger durability
# ---------------------------------------------------------------------------
class TestLedgerDurability:
    def test_status_write_fsyncs_before_rename(self, tmp_path, monkeypatch):
        """Regression: the ledger renamed without fsync, so a crash could
        tear the very file that exists to witness crashes."""
        synced = []
        real_fsync = os.fsync
        real_replace = os.replace

        def spy_fsync(fd):
            synced.append("fsync")
            real_fsync(fd)

        def spy_replace(src, dst):
            synced.append("replace")
            real_replace(src, dst)

        monkeypatch.setattr(os, "fsync", spy_fsync)
        monkeypatch.setattr(os, "replace", spy_replace)
        ledger = RunLedger(tmp_path)
        ledger.mark_running()
        assert "fsync" in synced
        assert synced.index("fsync") < synced.index("replace")
        assert ledger.status() == RunLedger.RUNNING

    def test_failed_write_leaves_no_tmp(self, tmp_path, monkeypatch):
        ledger = RunLedger(tmp_path)

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            ledger.mark_running()
        assert not list(tmp_path.glob("*.tmp"))
