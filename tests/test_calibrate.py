"""Tests for the compute-cost calibrator."""

import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.vtime.calibrate import (
    _MIN_SAMPLE_SECONDS,
    _MIN_SAMPLE_UNITS,
    CostCalibrator,
    GLOBAL_CALIBRATOR,
)


class TestObserve:
    def test_min_rate_wins(self):
        c = CostCalibrator()
        c.observe("k", 100, 1.0)    # 10 ms/unit
        c.observe("k", 100, 0.5)    # 5 ms/unit (less contended)
        c.observe("k", 100, 2.0)    # contended: must not raise the rate
        assert c.rate("k") == pytest.approx(0.005)

    def test_tiny_samples_ignored(self):
        c = CostCalibrator()
        c.observe("k", _MIN_SAMPLE_UNITS - 1, 1.0)   # too few units
        c.observe("k", 100, _MIN_SAMPLE_SECONDS / 2)  # too short
        assert c.rate("k") is None
        assert c.samples("k") == 0

    def test_empty_chunk_cannot_zero_the_rate(self):
        """The regression that motivated the floors: a body that
        early-returns measures ~0 seconds over >0 units."""
        c = CostCalibrator()
        c.observe("k", 50, 0.5)
        c.observe("k", 50, 0.0)  # early-returned chunk
        assert c.rate("k") == pytest.approx(0.01)

    def test_keys_independent(self):
        c = CostCalibrator()
        c.observe("a", 10, 1.0)
        c.observe("b", 10, 0.1)
        assert c.rate("a") == pytest.approx(0.1)
        assert c.rate("b") == pytest.approx(0.01)


class TestCost:
    def test_calibrated_charge(self):
        c = CostCalibrator()
        c.observe("k", 100, 1.0)
        assert c.cost("k", 50, measured=99.0) == pytest.approx(0.5)

    def test_fallback_to_measured(self):
        c = CostCalibrator()
        assert c.cost("unknown", 50, measured=0.123) == pytest.approx(0.123)

    def test_zero_units_returns_measured(self):
        c = CostCalibrator()
        c.observe("k", 100, 1.0)
        assert c.cost("k", 0, measured=0.2) == pytest.approx(0.2)

    def test_charge_for_combines(self):
        c = CostCalibrator()
        first = c.charge_for("k", 100, 1.0)
        assert first == pytest.approx(1.0)  # observed and charged
        second = c.charge_for("k", 100, 3.0)  # contended chunk
        assert second == pytest.approx(1.0)  # charged at the min rate

    def test_reset(self):
        c = CostCalibrator()
        c.observe("k", 100, 1.0)
        c.reset()
        assert c.rate("k") is None

    @given(st.lists(st.floats(min_value=1e-4, max_value=10.0), min_size=1,
                    max_size=20))
    def test_rate_is_min_property(self, samples):
        c = CostCalibrator()
        for s in samples:
            c.observe("k", 100, s)
        assert c.rate("k") == pytest.approx(min(samples) / 100)

    def test_thread_safety_smoke(self):
        c = CostCalibrator()

        def hammer(i):
            for j in range(200):
                c.charge_for("k", 100, 0.001 * (i + 1))

        ts = [threading.Thread(target=hammer, args=(i,)) for i in range(4)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert c.rate("k") == pytest.approx(0.001 / 100)


def test_global_calibrator_exists():
    assert isinstance(GLOBAL_CALIBRATOR, CostCalibrator)
