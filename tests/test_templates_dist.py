"""Tests for the remaining distributed templates: OnMaster, ReduceResult,
and the aggregate field-role declarations used by adaptation."""

import pytest

from repro.core import (
    ExecConfig,
    OnMaster,
    ParallelMethod,
    PlugSet,
    ReduceResult,
    Runtime,
    SafeData,
    SafePointAfter,
    WeaveError,
    plug,
)
from repro.vtime import MachineModel

MACHINE = MachineModel(nodes=2, cores_per_node=4)


class Summer:
    """Each member contributes its rank-dependent share."""

    def __init__(self):
        self.calls = []
        self.done = 0

    def execute(self):
        part = self.partial()
        self.report("finished")
        self.finish()
        return part

    def partial(self):
        # rank-dependent value injected by the context (monkey-style read)
        ctx = getattr(self, "__pp_ctx__", None)
        return (ctx.rank + 1) if ctx is not None else 1

    def report(self, msg):
        self.calls.append(msg)
        return f"reported:{msg}"

    def finish(self):
        self.done += 1


class TestReduceResult:
    def _woven(self, combine=None):
        return plug(Summer, PlugSet(
            ReduceResult("partial", combine=combine),
            SafeData("done"), SafePointAfter("finish")))

    def test_default_sum_across_members(self, tmp_path):
        W = self._woven()
        rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "c")
        res = rt.run(W, entry="execute", config=ExecConfig.distributed(4),
                     fresh=True)
        assert res.value == 1 + 2 + 3 + 4  # allreduce of rank+1

    def test_custom_combine(self, tmp_path):
        W = self._woven(combine=max)
        rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "c")
        res = rt.run(W, entry="execute", config=ExecConfig.distributed(3),
                     fresh=True)
        assert res.value == 3

    def test_sequential_passthrough(self, tmp_path):
        W = self._woven()
        rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "c")
        res = rt.run(W, entry="execute", config=ExecConfig.sequential(),
                     fresh=True)
        assert res.value == 1

    def test_rejected_inside_hybrid_region(self, tmp_path):
        class App(Summer):
            def region(self):
                return self.partial()

            def execute(self):
                out = self.region()
                self.finish()
                return out

        W = plug(App, PlugSet(ParallelMethod("region"),
                              ReduceResult("partial"),
                              SafeData("done"), SafePointAfter("finish")))
        rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "c")
        with pytest.raises(Exception) as ei:
            rt.run(W, entry="execute", config=ExecConfig.hybrid(2, 2),
                   fresh=True)
        assert "ReduceResult" in str(ei.value) or isinstance(
            ei.value, WeaveError)


class TestOnMaster:
    def test_only_member_zero_executes(self, tmp_path):
        W = plug(Summer, PlugSet(OnMaster("report"),
                                 SafeData("done"), SafePointAfter("finish")))

        calls_by_rank = {}

        class Spy(W):
            def execute(self):
                out = self.report("hello")
                self.finish()
                ctx = self.__pp_ctx__
                calls_by_rank[ctx.rank] = list(self.calls)
                return out

        Spy.__pp_base__ = W.__pp_base__  # keep weaver metadata coherent
        rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "c")
        rt.run(Spy, entry="execute", config=ExecConfig.distributed(3),
               fresh=True)
        assert calls_by_rank[0] == ["hello"]
        assert calls_by_rank[1] == [] and calls_by_rank[2] == []

    def test_broadcast_result(self, tmp_path):
        W = plug(Summer, PlugSet(OnMaster("report", broadcast=True),
                                 SafeData("done"), SafePointAfter("finish")))

        returned = {}

        class Spy(W):
            def execute(self):
                out = self.report("msg")
                self.finish()
                returned[self.__pp_ctx__.rank] = out
                return out

        Spy.__pp_base__ = W.__pp_base__
        rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "c")
        rt.run(Spy, entry="execute", config=ExecConfig.distributed(3),
               fresh=True)
        assert all(v == "reported:msg" for v in returned.values())

    def test_sequential_executes_normally(self, tmp_path):
        W = plug(Summer, PlugSet(OnMaster("report"),
                                 SafeData("done"), SafePointAfter("finish")))
        rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "c")
        res = rt.run(W, entry="execute", config=ExecConfig.sequential(),
                     fresh=True)
        assert res.value == 1


class TestFieldRoles:
    def test_replicated_and_local_markers_weave(self):
        from repro.core import LocalField, Replicated

        class Obj:
            def step(self):
                pass

        ps = PlugSet(Replicated("a"), LocalField("b"),
                     SafePointAfter("step"))
        W = plug(Obj, ps)
        assert len(W.__pp_plugs__.of_type(Replicated)) == 1
        assert len(W.__pp_plugs__.of_type(LocalField)) == 1
