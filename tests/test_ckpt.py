"""Tests for the checkpoint substrate: snapshot, store, ledger, policy,
replay, failure injection."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ckpt import (
    AtCounts,
    CheckpointStore,
    EveryN,
    FailureInjector,
    InjectedFailure,
    Never,
    ReplayState,
    RunLedger,
    SafePointCounter,
    Snapshot,
)
from repro.ckpt.snapshot import SnapshotCorrupt


class Thing:
    def __init__(self):
        self.G = np.arange(12.0).reshape(3, 4)
        self.step = 7
        self.name = "thing"


# ---------------------------------------------------------------------------
# Snapshot
# ---------------------------------------------------------------------------
class TestSnapshot:
    def test_capture_and_restore(self):
        t = Thing()
        snap = Snapshot.capture(t, ["G", "step"], count=42)
        t.G[:] = 0
        t.step = -1
        snap.restore_into(t)
        np.testing.assert_array_equal(t.G, np.arange(12.0).reshape(3, 4))
        assert t.step == 7

    def test_capture_is_deep(self):
        """Mutating the live object after capture must not change the snap."""
        t = Thing()
        snap = Snapshot.capture(t, ["G"], count=1)
        t.G[0, 0] = 999.0
        assert snap.fields["G"][0, 0] == 0.0

    def test_capture_missing_field_rejected(self):
        with pytest.raises(AttributeError, match="nope"):
            Snapshot.capture(Thing(), ["G", "nope"], count=1)

    def test_encode_decode_roundtrip(self):
        t = Thing()
        snap = Snapshot.capture(t, ["G", "step", "name"], count=10,
                                mode="distributed", nranks=4)
        snap2 = Snapshot.decode(snap.encode())
        assert snap2.safepoint_count == 10
        assert snap2.mode == "distributed"
        assert snap2.meta == {"nranks": 4}
        assert snap2.app == "Thing"
        np.testing.assert_array_equal(snap2.fields["G"], t.G)
        assert snap2.fields["step"] == 7 and snap2.fields["name"] == "thing"

    def test_decode_detects_corruption(self):
        snap = Snapshot.capture(Thing(), ["G"], count=1)
        data = bytearray(snap.encode())
        data[len(data) // 2] ^= 0xFF
        with pytest.raises(SnapshotCorrupt):
            Snapshot.decode(bytes(data))

    def test_decode_rejects_garbage(self):
        with pytest.raises(SnapshotCorrupt):
            Snapshot.decode(b"not a snapshot at all")

    def test_nbytes_counts_payload(self):
        snap = Snapshot.capture(Thing(), ["G"], count=1)
        assert snap.nbytes >= 96  # 12 float64s

    @given(st.integers(0, 1000), st.lists(st.floats(allow_nan=False,
                                                    allow_infinity=False),
                                          min_size=1, max_size=20))
    def test_roundtrip_property(self, count, values):
        class Obj:
            pass

        o = Obj()
        o.data = np.asarray(values)
        snap = Snapshot.decode(Snapshot.capture(o, ["data"], count).encode())
        assert snap.safepoint_count == count
        np.testing.assert_array_equal(snap.fields["data"], o.data)


# ---------------------------------------------------------------------------
# CheckpointStore
# ---------------------------------------------------------------------------
class TestStore:
    def test_write_read_latest(self, tmp_path):
        store = CheckpointStore(tmp_path)
        t = Thing()
        store.write(Snapshot.capture(t, ["G"], count=5))
        t.G[:] = 1.0
        store.write(Snapshot.capture(t, ["G"], count=9))
        latest = store.read_latest()
        assert latest.safepoint_count == 9
        np.testing.assert_array_equal(latest.fields["G"], np.ones((3, 4)))

    def test_empty_store(self, tmp_path):
        assert CheckpointStore(tmp_path).read_latest() is None

    def test_counts_sorted(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for c in (30, 10, 20):
            store.write(Snapshot.capture(Thing(), ["step"], count=c))
        assert store.counts() == [10, 20, 30]

    def test_corrupt_latest_falls_back(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write(Snapshot.capture(Thing(), ["step"], count=1))
        store.write(Snapshot.capture(Thing(), ["step"], count=2))
        # corrupt the newest file
        p = store.path_for(2)
        p.write_bytes(b"\x00" * 10)
        latest = store.read_latest()
        assert latest.safepoint_count == 1

    def test_prune_keeps_newest(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for c in range(1, 6):
            store.write(Snapshot.capture(Thing(), ["step"], count=c))
        store.prune(keep=2)
        assert store.counts() == [4, 5]

    def test_clear(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write(Snapshot.capture(Thing(), ["step"], count=1))
        store.clear()
        assert store.counts() == []

    def test_last_write_nbytes(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write(Snapshot.capture(Thing(), ["G"], count=1))
        assert store.last_write_nbytes > 96

    def test_no_tmp_litter(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write(Snapshot.capture(Thing(), ["G"], count=1))
        assert not list(tmp_path.glob("*.tmp"))


# ---------------------------------------------------------------------------
# RunLedger (pcr)
# ---------------------------------------------------------------------------
class TestRunLedger:
    def test_fresh_start(self, tmp_path):
        ledger = RunLedger(tmp_path)
        assert ledger.status() == RunLedger.FRESH
        assert not ledger.previous_run_failed()

    def test_clean_run_cycle(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.mark_running()
        ledger.mark_completed()
        assert not RunLedger(tmp_path).previous_run_failed()

    def test_crash_detected(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.mark_running()
        # process dies here; a new "process" checks the ledger:
        assert RunLedger(tmp_path).previous_run_failed()

    def test_attempts_count(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.mark_running()
        ledger.mark_running()
        assert ledger.attempts() == 2
        ledger.mark_completed()
        assert ledger.attempts() == 2

    def test_torn_status_counts_as_crash(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.path.write_text("{not json")
        assert ledger.previous_run_failed()

    def test_reset(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.mark_running()
        ledger.reset()
        assert ledger.status() == RunLedger.FRESH


# ---------------------------------------------------------------------------
# policies
# ---------------------------------------------------------------------------
class TestPolicies:
    def test_every_n(self):
        p = EveryN(5)
        due = [c for c in range(1, 21) if p.due(c) and (p.mark_taken(c) or True)]
        assert due == [5, 10, 15, 20]

    def test_every_n_idempotent_at_count(self):
        p = EveryN(2)
        assert p.due(2)
        p.mark_taken(2)
        assert not p.due(2)  # barrier action re-run must not re-checkpoint
        assert p.due(4)

    def test_every_n_phase(self):
        p = EveryN(10, phase=3)
        assert p.due(13)
        assert not p.due(10)

    def test_every_n_validation(self):
        with pytest.raises(ValueError):
            EveryN(0)

    def test_at_counts(self):
        p = AtCounts([7, 11])
        assert [c for c in range(1, 15) if p.due(c)] == [7, 11]

    def test_never(self):
        p = Never()
        assert not any(p.due(c) for c in range(1, 100))

    def test_reset_rearms(self):
        p = EveryN(5)
        p.mark_taken(10)
        assert not p.due(5)
        p.reset()
        assert p.due(5)

    @given(st.integers(1, 20), st.integers(1, 200))
    def test_every_n_deterministic(self, n, count):
        """Two fresh policies agree — the SPMD no-communication rule."""
        assert EveryN(n).due(count) == EveryN(n).due(count)


# ---------------------------------------------------------------------------
# SafePointCounter / ReplayState
# ---------------------------------------------------------------------------
class TestReplay:
    def test_counter_monotone(self):
        c = SafePointCounter()
        assert c.increment() == 1
        assert c.increment() == 2
        with pytest.raises(ValueError):
            c.set(1)
        c.set(10)
        assert c.count == 10

    def test_replay_restores_at_target(self):
        t = Thing()
        snap = Snapshot.capture(t, ["G", "step"], count=3)
        t.G[:] = -5.0
        t.step = 0
        restored = []
        rs = ReplayState.from_snapshot(
            snap, on_restore=lambda s: (s.restore_into(t),
                                        restored.append(True)))
        assert rs.active
        assert not rs.observe_safepoint(1)
        assert not rs.observe_safepoint(2)
        assert rs.observe_safepoint(3)  # fires exactly here
        assert not rs.active and rs.restored
        assert restored == [True]
        assert t.step == 7
        np.testing.assert_array_equal(t.G, np.arange(12.0).reshape(3, 4))

    def test_restore_fires_once(self):
        rs = ReplayState(target=2, snapshot=None)
        assert not rs.observe_safepoint(1)
        assert rs.observe_safepoint(2)
        assert not rs.observe_safepoint(3)

    def test_target_zero_never_active(self):
        rs = ReplayState(target=0)
        assert not rs.active
        assert not rs.observe_safepoint(1)

    def test_overshoot_still_restores(self):
        """If replay skips past the exact count, the next safe point fires."""
        rs = ReplayState(target=5)
        assert rs.observe_safepoint(6)

    def test_negative_target_rejected(self):
        with pytest.raises(ValueError):
            ReplayState(target=-1)


# ---------------------------------------------------------------------------
# failure injection
# ---------------------------------------------------------------------------
class TestFailureInjector:
    def test_fires_at_safepoint(self):
        inj = FailureInjector(fail_at=3)
        inj.check(1)
        inj.check(2)
        with pytest.raises(InjectedFailure) as ei:
            inj.check(3)
        assert ei.value.safepoint == 3

    def test_fires_once(self):
        inj = FailureInjector(fail_at=2)
        with pytest.raises(InjectedFailure):
            inj.check(2)
        inj.check(2)  # restarted run survives the same point
        assert not inj.armed

    def test_repeat_mode(self):
        inj = FailureInjector(fail_at=1, repeat=True)
        for _ in range(3):
            with pytest.raises(InjectedFailure):
                inj.check(1)
        assert inj.armed

    def test_rank_scoping(self):
        inj = FailureInjector(fail_at=1, rank=2)
        inj.check(1, rank=0)  # other ranks unaffected
        with pytest.raises(InjectedFailure):
            inj.check(1, rank=2)

    def test_overshoot_fires(self):
        inj = FailureInjector(fail_at=5)
        with pytest.raises(InjectedFailure):
            inj.check(9)

    def test_disarm(self):
        inj = FailureInjector(fail_at=1)
        inj.disarm()
        inj.check(1)
        assert not inj.armed

    def test_rearm(self):
        inj = FailureInjector()
        assert not inj.armed
        inj.arm(4)
        assert inj.armed
        with pytest.raises(InjectedFailure):
            inj.check(4)
