"""The shared-memory telemetry plane: the unified metrics API.

What must hold for a lock-free metrics plane to be trustworthy:

* **No torn reads** — concurrent scrapes under a 4-writer hammer
  (threads and forked processes) only ever observe internally
  consistent histogram triples, and the final totals are exact:
  4 writers x 100k increments is 400k, not approximately 400k.
* **Parity** — every stock backend populates the same schema, results
  are bit-identical with telemetry on or off (wall-side only, never a
  virtual clock), parked/un-parked and failed-rank paths account
  correctly, and no telemetry segment outlives its launch.
* **Coupling** — the advisor's reshape-vs-relaunch ranking demonstrably
  consumes measured safe-point rates: an injected load skew flips the
  decision exactly when (and only when) measured rates are enabled.
* **Exposition** — the Prometheus text round-trips a strict
  conformance parser, from both the registry and the service's
  ``serve_metrics`` endpoint; the ``stats`` RPC carries the snapshot
  with the legacy flat keys still present as the deprecated adapter.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
from urllib.request import urlopen

import pytest

from repro.apps.plugs.sor_plugs import SOR_ADAPTIVE
from repro.apps.sor import SOR
from repro.ckpt import EveryN, FailureInjector
from repro.core import AdaptStep, AdaptationPlan, ExecConfig, Runtime, plug
from repro.core.advisor import SelfAdaptationAdvisor
from repro.dsm import shm
from repro.telemetry import (
    MeasuredRates,
    MetricsRegistry,
    TelemetryPlane,
    parse_prometheus,
    schema,
)
from repro.vtime import MachineModel

MACHINE = MachineModel(nodes=2, cores_per_node=4)
N, ITERS = 40, 12
REF = SOR(n=N, iterations=ITERS).execute()
WOVEN = plug(SOR, SOR_ADAPTIVE)

HAS_FORK = "fork" in mp.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="needs fork")

ALL_CONFIGS = [
    ("sequential", ExecConfig.sequential()),
    ("threads", ExecConfig.shared(3)),
    ("simcluster", ExecConfig.distributed(3)),
    ("hybrid", ExecConfig.hybrid(2, 2)),
    ("multiproc", ExecConfig.distributed(3).with_backend("multiproc")),
    ("sockets", ExecConfig.distributed(3).with_backend("sockets")),
]

WRITERS, INCS = 4, 100_000
#: constant observation: 0.5 is a binary power, so the concurrent-sum
#: invariant ``sum == 0.5 * count`` holds in exact float64 arithmetic.
OBS = 0.5


def _no_leaks():
    left = shm.live_segments()
    assert left == [], f"leaked segments: {left}"


def _registry_of(res) -> MetricsRegistry:
    assert res.metrics is not None
    reg = MetricsRegistry()
    reg.absorb_snapshot(res.metrics)
    return reg


def _check_hist_consistency(samples) -> int:
    """Every scraped histogram triple must be internally consistent —
    the seqlock's whole job.  Returns the number of triples checked."""
    checked = 0
    for s in samples:
        if s.hist is None:
            continue
        count, total, per = s.hist
        assert count == sum(per), \
            f"torn histogram: count {count} != buckets {per}"
        assert total == OBS * count, \
            f"torn histogram: sum {total} != {OBS} * {count}"
        checked += 1
    return checked


def _run_sor(tmp_path, tag, config, telemetry=True, **kw):
    rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / tag,
                 policy=kw.pop("policy", EveryN(5)), telemetry=telemetry)
    res = rt.run(WOVEN, ctor_kwargs={"n": N, "iterations": ITERS},
                 entry="execute", config=config, fresh=True, **kw)
    return res


# ---------------------------------------------------------------------------
# hammers: exactness and torn-read protection under concurrency
# ---------------------------------------------------------------------------
class TestHammer:
    def test_thread_hammer_exact_totals(self):
        plane = TelemetryPlane.local(WRITERS, backend="hammer")
        stop = threading.Event()

        def pound(rank):
            w = plane.writer(rank)
            for _ in range(INCS):
                w.inc(schema.SAFEPOINTS)
                w.observe(schema.SAFEPOINT_LATENCY, OBS)

        threads = [threading.Thread(target=pound, args=(r,))
                   for r in range(WRITERS)]
        scrapes = [0]

        def scraper():
            while not stop.is_set():
                scrapes[0] += _check_hist_consistency(plane.scrape())

        s = threading.Thread(target=scraper)
        s.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        s.join()
        assert scrapes[0] > 0, "the concurrent scraper never ran"

        reg = MetricsRegistry()
        reg.absorb(plane.scrape())
        assert reg.value("repro_exec_safepoints_total") == WRITERS * INCS
        count, total = reg.hist_totals(
            "repro_exec_safepoint_latency_seconds")
        assert count == WRITERS * INCS
        assert total == OBS * WRITERS * INCS

    @needs_fork
    def test_process_hammer_exact_totals(self):
        launch_id = shm.new_launch_id("hammer")
        plane = TelemetryPlane.create(launch_id, WRITERS,
                                      backend="hammer")
        ctx = mp.get_context("fork")
        barrier = ctx.Barrier(WRITERS)

        def pound(rank):
            child = TelemetryPlane.attach(launch_id, WRITERS)
            w = child.writer(rank)
            barrier.wait()
            for _ in range(INCS):
                w.inc(schema.SAFEPOINTS)
                w.observe(schema.SAFEPOINT_LATENCY, OBS)
            child.close()

        procs = [ctx.Process(target=pound, args=(r,), daemon=True)
                 for r in range(WRITERS)]
        try:
            for p in procs:
                p.start()
            scrapes = 0
            while any(p.is_alive() for p in procs):
                scrapes += _check_hist_consistency(plane.scrape())
            for p in procs:
                p.join(timeout=60.0)
            assert all(p.exitcode == 0 for p in procs)

            reg = MetricsRegistry()
            reg.absorb(plane.scrape())
            assert reg.value("repro_exec_safepoints_total") \
                == WRITERS * INCS
            count, total = reg.hist_totals(
                "repro_exec_safepoint_latency_seconds")
            assert count == WRITERS * INCS
            assert total == OBS * WRITERS * INCS
            # per-rank attribution survives the shared segment
            for r in range(WRITERS):
                assert reg.value("repro_exec_safepoints_total",
                                 {"rank": str(r)}) == INCS
        finally:
            for p in procs:
                if p.is_alive():
                    p.terminate()
            plane.close()
            plane.unlink()
        _no_leaks()


# ---------------------------------------------------------------------------
# backend parity: populated, bit-identical on/off, leak-free
# ---------------------------------------------------------------------------
class TestBackendParity:
    @pytest.mark.parametrize("label,config", ALL_CONFIGS,
                             ids=[c[0] for c in ALL_CONFIGS])
    def test_metrics_populated_and_results_identical(self, tmp_path,
                                                     label, config):
        if label in ("multiproc", "sockets") and not HAS_FORK:
            pytest.skip("needs fork")
        on = _run_sor(tmp_path, "on", config)
        off = _run_sor(tmp_path, "off", config, telemetry=False)
        # telemetry is wall-side only: results are bit-identical with
        # the plane on or off.  (vtime is *not* comparable across runs:
        # region compute charges come from measured wall time, so any
        # two runs — telemetry or not — differ in the last digits.)
        assert on.value == off.value == REF
        assert off.metrics is None

        reg = _registry_of(on)
        # one rank per processing element (sequential / distributed):
        # every rank passed every safe point, exactly.  Team modes
        # coalesce a passage into one count per team, and how many
        # passages a region sees depends on its chunking — so there the
        # plane need only show real traffic.
        if config.workers == 1:
            assert reg.value("repro_exec_safepoints_total") \
                == config.nranks * ITERS
            # ... which is enough passes for EveryN(5) to have fired
            assert reg.value("repro_ckpt_writes_total") > 0
        else:
            assert reg.value("repro_exec_safepoints_total") > 0
        # the run-level counters rode along
        assert reg.value("repro_runtime_runs_total") == 1
        # vtime/wall gauges were stamped for rank 0
        assert reg.value("repro_exec_vtime_seconds",
                         {"rank": "0"}) > 0.0
        _no_leaks()

    @needs_fork
    def test_park_unpark_pages_accounted(self, tmp_path):
        """A grow/shrink chain: joiners born parked leave empty pages
        (no noise), write while active, freeze at retirement — and the
        drain-time scrape still folds their counts in."""
        cfg = ExecConfig.distributed(2).with_backend("multiproc")
        hi = ExecConfig.distributed(4).with_backend("multiproc")
        plan = AdaptationPlan([AdaptStep(at=3, config=hi),
                               AdaptStep(at=7, config=cfg)])
        on = _run_sor(tmp_path, "on", cfg, plan=plan)
        off = _run_sor(tmp_path, "off", cfg, plan=plan, telemetry=False)
        assert on.value == off.value
        assert len(on.in_place_reshapes) == 2

        reg = _registry_of(on)
        assert reg.value("repro_runtime_in_place_reshapes_total") == 2
        assert reg.value("repro_elastic_reshapes_total") > 0
        # the un-parked joiners (ranks 2, 3) wrote real safe points
        # between the grow and the shrink, scraped from frozen pages.
        for r in (2, 3):
            assert reg.value("repro_exec_safepoints_total",
                             {"rank": str(r)}) > 0
        _no_leaks()

    @needs_fork
    def test_rank_failure_path_accounted(self, tmp_path):
        """An injected failure + auto-recovery: the restart chain's
        phases accumulate (counters add across absorbed launches) and
        the failed launch's segment is still swept."""
        cfg = ExecConfig.distributed(2).with_backend("multiproc")
        on = _run_sor(tmp_path, "on", cfg,
                      injector=FailureInjector(fail_at=6),
                      auto_recover=True)
        off = _run_sor(tmp_path, "off", cfg, telemetry=False,
                       injector=FailureInjector(fail_at=6),
                       auto_recover=True)
        assert on.value == off.value == REF
        assert on.restarts == 1

        reg = _registry_of(on)
        assert reg.value("repro_runtime_restarts_total") == 1
        assert reg.value("repro_runtime_relaunches_total") \
            == on.relaunches
        # both phases' safe points landed: the pre-failure launch was
        # scraped before its teardown, the recovery launch after.
        assert reg.value("repro_exec_safepoints_total") > 2 * ITERS
        _no_leaks()

    def test_run_result_counters_match_derived(self, tmp_path):
        """RunResult.metrics re-exports exactly what the result derives
        from its phase records, under the unified names."""
        res = _run_sor(tmp_path, "seq", ExecConfig.sequential(),
                       plan=AdaptationPlan([
                           AdaptStep(at=4, config=ExecConfig.shared(2))]))
        assert res.relaunches == 1  # cross-mode step = one relaunch
        reg = _registry_of(res)
        assert reg.value("repro_runtime_runs_total") == 1
        assert reg.value("repro_runtime_relaunches_total") \
            == res.relaunches
        assert reg.value("repro_runtime_restarts_total") == res.restarts
        assert reg.value("repro_runtime_in_place_reshapes_total") \
            == len(res.in_place_reshapes)


# ---------------------------------------------------------------------------
# idempotent mid-run scrapes: source-keyed delta absorption
# ---------------------------------------------------------------------------
class TestIdempotentScrapes:
    def _plane(self, n=10):
        plane = TelemetryPlane.local(1, backend="idem")
        w = plane.writer(0)
        for _ in range(n):
            w.inc(schema.SAFEPOINTS)
            w.observe(schema.SAFEPOINT_LATENCY, OBS)
        return plane, w

    def test_same_scrape_absorbed_twice_counts_once(self):
        plane, w = self._plane(10)
        reg = MetricsRegistry()
        snap = plane.scrape()
        reg.absorb(snap, source="live")
        reg.absorb(snap, source="live")  # a poll loop re-reading
        assert reg.value("repro_exec_safepoints_total") == 10
        count, total = reg.hist_totals(
            "repro_exec_safepoint_latency_seconds")
        assert (count, total) == (10, OBS * 10)

        # progress between polls folds in exactly the delta
        for _ in range(5):
            w.inc(schema.SAFEPOINTS)
            w.observe(schema.SAFEPOINT_LATENCY, OBS)
        reg.absorb(plane.scrape(), source="live")
        reg.absorb(plane.scrape(), source="live")
        assert reg.value("repro_exec_safepoints_total") == 15
        assert reg.hist_totals(
            "repro_exec_safepoint_latency_seconds")[0] == 15

    def test_shrunk_cumulative_restarts_baseline(self):
        """A fresh launch reusing the source key starts its counters at
        zero again: the full new value absorbs, never a negative delta."""
        reg = MetricsRegistry()
        plane, _w = self._plane(10)
        reg.absorb(plane.scrape(), source="live")
        fresh, _w2 = self._plane(4)  # new plane, same source identity
        reg.absorb(fresh.scrape(), source="live")
        assert reg.value("repro_exec_safepoints_total") == 14

    def test_without_source_stays_additive(self):
        """The launch-drain contract is unchanged: absorbing the same
        finished plane twice without a source double-counts (callers
        absorb each launch exactly once)."""
        plane, _w = self._plane(10)
        reg = MetricsRegistry()
        snap = plane.scrape()
        reg.absorb(snap)
        reg.absorb(snap)
        assert reg.value("repro_exec_safepoints_total") == 20

    def test_sources_are_independent(self):
        plane, _w = self._plane(10)
        reg = MetricsRegistry()
        snap = plane.scrape()
        reg.absorb(snap, source="a")
        reg.absorb(snap, source="b")  # a different plane's identity
        assert reg.value("repro_exec_safepoints_total") == 20
        reg.absorb(snap, source="a")  # but each source dedups itself
        reg.absorb(snap, source="b")
        assert reg.value("repro_exec_safepoints_total") == 20

    def test_snapshot_absorb_with_source(self):
        plane, _w = self._plane(10)
        live = MetricsRegistry()
        live.absorb(plane.scrape())
        snap = live.snapshot()
        reg = MetricsRegistry()
        reg.absorb_snapshot(snap, source="svc")
        reg.absorb_snapshot(snap, source="svc")
        assert reg.snapshot() == snap


# ---------------------------------------------------------------------------
# advisor coupling: measured rates flip the reshape-vs-relaunch ranking
# ---------------------------------------------------------------------------
class TestMeasuredRates:
    def _skewed_registry(self, latency=0.5, samples=50) -> MetricsRegistry:
        plane = TelemetryPlane.local(1, backend="skew")
        w = plane.writer(0)
        for _ in range(samples):
            w.observe(schema.SAFEPOINT_LATENCY, latency)
        reg = MetricsRegistry()
        reg.absorb(plane.scrape())
        return reg

    def test_skew_flips_ranking_only_when_enabled(self):
        """A world measuring 0.5 s to quiesce makes the in-place
        reshape (two quiesce barriers) more expensive than a clean
        relaunch — but only the measured-rates advisor can see it."""
        cur, target = ExecConfig.distributed(2), ExecConfig.distributed(4)
        calibrated = SelfAdaptationAdvisor(MACHINE)
        measured = SelfAdaptationAdvisor(
            MACHINE, measured=MeasuredRates(self._skewed_registry()))

        ip_c, rl_c = calibrated.rank_reshape_vs_relaunch(cur, target)
        ip_m, rl_m = measured.rank_reshape_vs_relaunch(cur, target)
        # the relaunch price never blends: a fresh world has no history
        assert rl_m == rl_c
        # calibration alone prefers the in-place reshape ...
        assert ip_c < rl_c
        # ... the measured skew flips it
        assert ip_m > rl_m
        assert ip_m > ip_c

    def test_cold_start_is_calibration_passthrough(self):
        reg = MetricsRegistry()  # zero observations
        adv = SelfAdaptationAdvisor(MACHINE, measured=MeasuredRates(reg))
        bare = SelfAdaptationAdvisor(MACHINE)
        cur, target = ExecConfig.distributed(2), ExecConfig.distributed(4)
        assert adv.rank_reshape_vs_relaunch(cur, target) \
            == bare.rank_reshape_vs_relaunch(cur, target)

    def test_few_samples_blend_proportionally(self):
        reg = self._skewed_registry(latency=0.5, samples=4)
        rates = MeasuredRates(reg, min_samples=16)
        # w = 4/16: a quarter of the way from calibration to measurement
        assert rates.quiesce_cost(0.1) == pytest.approx(
            0.75 * 0.1 + 0.25 * 0.5)

    def test_runtime_wires_measured_rates_into_advisor(self, tmp_path):
        advisor = SelfAdaptationAdvisor(MACHINE, max_pe=2)
        assert advisor.measured_rates is None
        _run_sor(tmp_path, "adv", ExecConfig.sequential(),
                 advisor=advisor)
        assert isinstance(advisor.measured_rates, MeasuredRates)


# ---------------------------------------------------------------------------
# exposition: Prometheus conformance, service RPC + scrape endpoint
# ---------------------------------------------------------------------------
class TestExposition:
    def test_prometheus_round_trips_conformance_parser(self, tmp_path):
        res = _run_sor(tmp_path, "seq", ExecConfig.shared(2))
        reg = _registry_of(res)
        reg.gauge_fn("repro_service_workers_idle", lambda: 3.0,
                     help="idle workers")
        text = reg.to_prometheus()
        rows = parse_prometheus(text)
        assert rows, "empty exposition"
        # spot-check: the parsed totals agree with the registry
        safepoints = sum(v for name, labels, v in rows
                         if name == "repro_exec_safepoints_total")
        assert safepoints == reg.value("repro_exec_safepoints_total")
        lat_counts = [v for name, labels, v in rows
                      if name == "repro_exec_safepoint_latency_seconds"
                      "_count"]
        assert sum(lat_counts) == reg.hist_totals(
            "repro_exec_safepoint_latency_seconds")[0]

    def test_snapshot_round_trips_absorb(self, tmp_path):
        res = _run_sor(tmp_path, "seq", ExecConfig.sequential())
        reg = _registry_of(res)
        again = MetricsRegistry()
        again.absorb_snapshot(reg.snapshot())
        assert again.snapshot() == reg.snapshot()

    @needs_fork
    def test_service_stats_and_scrape_endpoint(self, tmp_path):
        from repro.service import RuntimeService, ServiceClient

        with RuntimeService(workers=2, lanes=1, machine=MACHINE,
                            ckpt_dir=str(tmp_path)) as svc:
            host, port = svc.serve_metrics()
            client = ServiceClient(svc.address)
            jid = client.submit(WOVEN,
                                ctor_kwargs={"n": N, "iterations": ITERS},
                                entry="execute", nranks=2)
            out = client.result(jid, timeout=120.0)
            assert out["status"] == "done" and out["value"] == REF
            # the job's own snapshot rides the result ...
            assert out["metrics"]["version"] == 1

            stats = client.stats()
            assert stats["ok"]
            # ... the stats RPC returns the service-wide registry with
            # per-job labels, plus the deprecated flat-key adapter.
            reg = MetricsRegistry()
            reg.absorb_snapshot(stats["metrics"])
            assert reg.value("repro_exec_safepoints_total",
                             {"job": f"j{jid}"}) == 2 * ITERS
            assert reg.value("repro_service_workers_total") == 2
            for legacy in ("idle_workers", "queued", "running",
                           "workers", "lanes", "arena"):
                assert legacy in stats

            # curl-style scrape, conformance-parsed off the wire
            body = urlopen(f"http://{host}:{port}/metrics",
                           timeout=10).read().decode()
            rows = parse_prometheus(body)
            assert any(name == "repro_service_workers_total" and v == 2
                       for name, _labels, v in rows)
            assert any(name == "repro_exec_safepoints_total"
                       for name, _labels, v in rows)

            # a telemetry-off job: same value, no metrics, and nothing
            # folded into the service registry under its tag.
            jid2 = client.submit(WOVEN,
                                 ctor_kwargs={"n": N,
                                              "iterations": ITERS},
                                 entry="execute", nranks=2,
                                 telemetry=False)
            out2 = client.result(jid2, timeout=120.0)
            assert out2["status"] == "done" and out2["value"] == REF
            assert out2["metrics"] is None
            reg2 = MetricsRegistry()
            reg2.absorb_snapshot(client.stats()["metrics"])
            assert reg2.value("repro_exec_safepoints_total",
                              {"job": f"j{jid2}"}) == 0.0
        _no_leaks()
