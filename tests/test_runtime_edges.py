"""Runtime edge cases: validation, recovery limits, strategies, results."""

import pytest

from repro.apps.plugs.sor_plugs import SOR_ADAPTIVE, SOR_CKPT, SOR_DIST
from repro.apps.sor import SOR
from repro.ckpt import AtCounts, EveryN, FailureInjector, InjectedFailure
from repro.core import (
    AdaptStep,
    AdaptationPlan,
    ExecConfig,
    Runtime,
    STRATEGY_LOCAL,
    WeaveError,
    plug,
)
from repro.vtime import MachineModel

MACHINE = MachineModel(nodes=2, cores_per_node=4)
N, ITERS = 40, 10
REF = SOR(n=N, iterations=ITERS).execute()


def make_rt(tmp_path, **kw):
    kw.setdefault("machine", MACHINE)
    return Runtime(ckpt_dir=tmp_path / "ckpt", **kw)


class TestValidation:
    def test_non_woven_class_rejected(self, tmp_path):
        with pytest.raises(WeaveError, match="not woven"):
            make_rt(tmp_path).run(SOR)

    def test_restart_adaptation_self_saves(self, tmp_path):
        """via_restart writes its own checkpoint at the adaptation point
        (the paper: "adaptation can be performed by checkpointing the
        application and restarting on a different mode") — no checkpoint
        policy needs to be active."""
        W = plug(SOR, SOR_ADAPTIVE)
        plan = AdaptationPlan(
            [AdaptStep(at=5, config=ExecConfig.shared(2), via_restart=True)])
        rt = make_rt(tmp_path)  # Never policy: no periodic checkpoints
        res = rt.run(W, ctor_kwargs={"n": N, "iterations": ITERS},
                     entry="execute", config=ExecConfig.sequential(),
                     plan=plan, fresh=True)
        assert res.value == REF
        assert rt.store.read_latest().safepoint_count == 5
        assert res.adaptations[0].via_restart

    def test_duplicate_plan_steps_rejected(self):
        with pytest.raises(ValueError, match="two adaptation steps"):
            AdaptationPlan([AdaptStep(3, ExecConfig.shared(2)),
                            AdaptStep(3, ExecConfig.shared(4))])

    def test_step_at_zero_rejected(self):
        with pytest.raises(ValueError):
            AdaptStep(0, ExecConfig.shared(2))


class TestRecoveryLimits:
    def test_max_restarts_exceeded(self, tmp_path):
        W = plug(SOR, SOR_CKPT)
        rt = make_rt(tmp_path, policy=EveryN(3))
        # repeat=True: the failure re-fires on every attempt
        inj = FailureInjector(fail_at=5, repeat=True)
        with pytest.raises(InjectedFailure):
            rt.run(W, ctor_kwargs={"n": N, "iterations": ITERS},
                   entry="execute", config=ExecConfig.sequential(),
                   injector=inj, auto_recover=True, max_restarts=2,
                   fresh=True)

    def test_recover_config_applied(self, tmp_path):
        W = plug(SOR, SOR_ADAPTIVE)
        rt = make_rt(tmp_path, policy=EveryN(3))
        res = rt.run(W, ctor_kwargs={"n": N, "iterations": ITERS},
                     entry="execute", config=ExecConfig.distributed(2),
                     injector=FailureInjector(fail_at=5),
                     auto_recover=True,
                     recover_config=lambda r: ExecConfig.distributed(4),
                     fresh=True)
        assert res.value == REF
        assert res.final_config == ExecConfig.distributed(4)

    def test_fresh_ignores_stale_state(self, tmp_path):
        W = plug(SOR, SOR_CKPT)
        rt = make_rt(tmp_path, policy=EveryN(3))
        with pytest.raises(InjectedFailure):
            rt.run(W, ctor_kwargs={"n": N, "iterations": ITERS},
                   entry="execute", config=ExecConfig.sequential(),
                   injector=FailureInjector(fail_at=5), fresh=True)
        # a fresh run must not replay the crashed run's checkpoint
        res = rt.run(W, ctor_kwargs={"n": N, "iterations": ITERS},
                     entry="execute", config=ExecConfig.sequential(),
                     fresh=True)
        assert res.value == REF
        assert not res.events.of_kind("pcr_replay_engaged") or \
            res.events.of_kind("restore") == []


class TestLocalStrategy:
    def test_local_shards_written_and_restored(self, tmp_path):
        W = plug(SOR, SOR_DIST + SOR_CKPT)
        rt = make_rt(tmp_path, policy=AtCounts([4]),
                     ckpt_strategy=STRATEGY_LOCAL)
        kw = dict(ctor_kwargs={"n": N, "iterations": ITERS},
                  entry="execute", config=ExecConfig.distributed(3))
        with pytest.raises(InjectedFailure):
            rt.run(W, injector=FailureInjector(fail_at=7), fresh=True, **kw)
        shards = list(rt.store.dir.glob("ckpt_*.r*.pcr"))
        assert len(shards) == 3  # one shard per rank

    def test_local_strategy_events_tagged(self, tmp_path):
        W = plug(SOR, SOR_DIST + SOR_CKPT)
        rt = make_rt(tmp_path, policy=AtCounts([4]),
                     ckpt_strategy=STRATEGY_LOCAL)
        res = rt.run(W, ctor_kwargs={"n": N, "iterations": ITERS},
                     entry="execute", config=ExecConfig.distributed(3),
                     fresh=True)
        assert res.value == REF
        evs = res.events.of_kind("checkpoint")
        assert evs and all(e.data["strategy"] == "local" for e in evs)

    def test_unknown_strategy_rejected(self, tmp_path):
        from repro.core.context import ExecutionContext

        with pytest.raises(ValueError):
            ExecutionContext(ExecConfig.sequential(), ckpt_strategy="nope")


class TestRunResult:
    def test_phase_accounting_plain_run(self, tmp_path):
        W = plug(SOR, SOR_CKPT)
        res = make_rt(tmp_path).run(
            W, ctor_kwargs={"n": N, "iterations": ITERS}, entry="execute",
            config=ExecConfig.sequential(), fresh=True)
        assert len(res.phases) == 1
        assert res.phases[0].outcome == "completed"
        assert not res.adapted
        assert res.restarts == 0

    def test_vtime_positive_and_monotone_phases(self, tmp_path):
        W = plug(SOR, SOR_ADAPTIVE)
        plan = AdaptationPlan([AdaptStep(4, ExecConfig.distributed(3))])
        res = make_rt(tmp_path).run(
            W, ctor_kwargs={"n": N, "iterations": ITERS}, entry="execute",
            config=ExecConfig.sequential(), plan=plan, fresh=True)
        assert res.vtime > 0
        for a, b in zip(res.phases, res.phases[1:]):
            assert a.end_vtime <= b.start_vtime

    def test_ledger_completed_after_success(self, tmp_path):
        W = plug(SOR, SOR_CKPT)
        rt = make_rt(tmp_path)
        rt.run(W, ctor_kwargs={"n": N, "iterations": ITERS},
               entry="execute", config=ExecConfig.sequential(), fresh=True)
        assert rt.ledger.status() == rt.ledger.COMPLETED

    def test_default_tmp_ckpt_dir(self):
        rt = Runtime(machine=MACHINE)  # no ckpt_dir given
        assert rt.store.dir.exists()


class TestHybridEdges:
    def test_hybrid_crash_restart(self, tmp_path):
        from repro.apps.plugs.sor_plugs import SOR_HYBRID, SOR_CKPT

        W = plug(SOR, SOR_HYBRID + SOR_CKPT)
        rt = make_rt(tmp_path, policy=EveryN(3))
        kw = dict(ctor_kwargs={"n": N, "iterations": ITERS},
                  entry="execute", config=ExecConfig.hybrid(2, 2))
        with pytest.raises(InjectedFailure):
            rt.run(W, injector=FailureInjector(fail_at=7), fresh=True, **kw)
        res = rt.run(W, **kw)
        assert res.value == REF

    def test_hybrid_into_sequential_adaptation(self, tmp_path):
        W = plug(SOR, SOR_ADAPTIVE)
        plan = AdaptationPlan([AdaptStep(5, ExecConfig.sequential())])
        res = make_rt(tmp_path).run(
            W, ctor_kwargs={"n": N, "iterations": ITERS}, entry="execute",
            config=ExecConfig.hybrid(2, 2), plan=plan, fresh=True)
        assert res.value == REF

    def test_sequential_into_hybrid_adaptation(self, tmp_path):
        W = plug(SOR, SOR_ADAPTIVE)
        plan = AdaptationPlan([AdaptStep(5, ExecConfig.hybrid(2, 2))])
        res = make_rt(tmp_path).run(
            W, ctor_kwargs={"n": N, "iterations": ITERS}, entry="execute",
            config=ExecConfig.sequential(), plan=plan, fresh=True)
        assert res.value == REF
