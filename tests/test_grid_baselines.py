"""Tests for the grid substrate and the hand-written baselines."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.apps.sor import SOR
from repro.baselines import (
    run_mpi_sor,
    run_overdecomposed_sor,
    run_sequential_sor,
    run_threads_sor,
)
from repro.ckpt.store import CheckpointStore
from repro.core import ExecConfig, Mode
from repro.grid import MappingPolicy, ResourceEvent, ResourceManager, \
    ResourceTrace
from repro.vtime import MachineModel

MACHINE = MachineModel(nodes=2, cores_per_node=4)
REF = SOR(n=40, iterations=10).execute()


class TestResourceTrace:
    def test_pe_at_follows_changes(self):
        tr = ResourceTrace([ResourceEvent(5, 8), ResourceEvent(10, 2)],
                           initial_pe=4)
        assert tr.pe_at(1) == 4
        assert tr.pe_at(5) == 8
        assert tr.pe_at(12) == 2

    def test_failures_separated(self):
        tr = ResourceTrace([ResourceEvent(3, 4, kind="failure"),
                            ResourceEvent(6, 2)], initial_pe=4)
        assert len(tr.failures()) == 1
        assert len(tr.changes()) == 1

    def test_generators(self):
        assert ResourceTrace.stable(4).pe_at(100) == 4
        exp = ResourceTrace.expansion(2, 8, at=26)
        assert exp.pe_at(25) == 2 and exp.pe_at(26) == 8
        con = ResourceTrace.contraction(8, 2, at=5)
        assert con.pe_at(5) == 2
        fail = ResourceTrace.failure(4, at=100)
        assert fail.failures()[0].at_safepoint == 100

    def test_random_walk_deterministic(self):
        a = ResourceTrace.random_walk(3, horizon=50, max_pe=8, n_events=5)
        b = ResourceTrace.random_walk(3, horizon=50, max_pe=8, n_events=5)
        assert [(e.at_safepoint, e.available_pe, e.kind) for e in a.events] \
            == [(e.at_safepoint, e.available_pe, e.kind) for e in b.events]

    def test_validation(self):
        with pytest.raises(ValueError):
            ResourceEvent(0, 4)
        with pytest.raises(ValueError):
            ResourceEvent(1, 0)
        with pytest.raises(ValueError):
            ResourceEvent(1, 4, kind="meteor")
        with pytest.raises(ValueError):
            ResourceTrace(initial_pe=0)


class TestMappingPolicy:
    def test_paper_rule(self):
        pol = MappingPolicy(MachineModel(nodes=4, cores_per_node=8))
        assert pol.config_for(1) == ExecConfig.sequential()
        assert pol.config_for(4) == ExecConfig.shared(4)
        assert pol.config_for(8) == ExecConfig.shared(8)
        assert pol.config_for(16) == ExecConfig.distributed(16)

    def test_hybrid_when_enabled(self):
        pol = MappingPolicy(MachineModel(nodes=4, cores_per_node=8),
                            allow_hybrid=True)
        cfg = pol.config_for(16)
        assert cfg.mode is Mode.HYBRID
        assert cfg.nranks == 2 and cfg.workers == 8

    @given(st.integers(1, 64))
    def test_total_pe_preserved(self, pe):
        pol = MappingPolicy(MachineModel(nodes=8, cores_per_node=8))
        assert pol.config_for(pe).processing_elements == pe


class TestResourceManager:
    def test_plan_from_trace(self):
        tr = ResourceTrace.expansion(2, 8, at=26)
        mgr = ResourceManager(tr, MACHINE)
        assert mgr.initial_config() == ExecConfig.shared(2)
        plan = mgr.plan()
        step = plan.step_at(26)
        assert step is not None
        assert step.config == ExecConfig.distributed(8)

    def test_no_step_for_unchanged_allocation(self):
        tr = ResourceTrace([ResourceEvent(5, 4)], initial_pe=4)
        assert len(ResourceManager(tr, MACHINE).plan().steps) == 0

    def test_injector_from_failure(self):
        mgr = ResourceManager(ResourceTrace.failure(4, at=7), MACHINE)
        inj = mgr.injector()
        assert inj.armed and inj.fail_at == 7

    def test_injector_disarmed_without_failures(self):
        mgr = ResourceManager(ResourceTrace.stable(4), MACHINE)
        assert not mgr.injector().armed

    def test_recover_config(self):
        tr = ResourceTrace([ResourceEvent(4, 8),
                            ResourceEvent(9, 8, kind="failure")],
                           initial_pe=2)
        mgr = ResourceManager(tr, MACHINE)
        assert mgr.recover_config(1) == ExecConfig.distributed(8)

    def test_via_restart_flag(self):
        tr = ResourceTrace.expansion(2, 8, at=5)
        plan = ResourceManager(tr, MACHINE, via_restart=True).plan()
        assert plan.steps[0].via_restart


class TestHandwrittenBaselines:
    """The invasive versions must agree numerically with the plain app."""

    def test_sequential_matches_domain_code(self):
        res = run_sequential_sor(n=40, iterations=10, machine=MACHINE)
        assert res.checksum == REF
        assert res.safepoints == 10
        assert res.checkpoints == 0

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_threads_match(self, workers):
        res = run_threads_sor(workers, n=40, iterations=10, machine=MACHINE)
        assert res.checksum == REF

    @pytest.mark.parametrize("nranks", [1, 2, 4])
    def test_mpi_matches(self, nranks):
        res = run_mpi_sor(nranks, n=40, iterations=10, machine=MACHINE)
        assert res.checksum == REF

    def test_invasive_checkpointing_writes_files(self, tmp_path):
        store = CheckpointStore(tmp_path)
        res = run_sequential_sor(n=40, iterations=10, machine=MACHINE,
                                 store=store, ckpt_every=4)
        assert res.checkpoints == 2
        assert store.counts() == [4, 8]
        assert res.checksum == REF  # checkpointing didn't corrupt compute

    def test_threads_checkpointing(self, tmp_path):
        store = CheckpointStore(tmp_path)
        res = run_threads_sor(2, n=40, iterations=10, machine=MACHINE,
                              store=store, ckpt_every=5)
        assert res.checkpoints == 2
        assert res.checksum == REF

    def test_mpi_checkpointing_master_collects(self, tmp_path):
        store = CheckpointStore(tmp_path)
        res = run_mpi_sor(3, n=40, iterations=10, machine=MACHINE,
                          store=store, ckpt_every=10)
        assert res.checkpoints == 1
        snap = store.read_latest()
        assert snap.safepoint_count == 10
        assert res.checksum == REF

    def test_checkpoint_overhead_is_small_without_saves(self):
        """Figure 3's claim: counting safe points costs ~nothing.

        The counting charge is deterministic (safepoints x fixed cost),
        so assert its share of a realistically-sized run directly instead
        of differencing two noisy measurements.
        """
        res = run_sequential_sor(n=250, iterations=20, machine=MACHINE)
        counting_cost = res.safepoints * 5e-8
        assert res.vtime > 0
        assert counting_cost / res.vtime < 0.01

    def test_overdecomposition_slower_than_one_per_core(self):
        """Figure 8's shape: of=4 is visibly worse than of=1."""
        m = MachineModel(nodes=1, cores_per_node=4)
        base = run_overdecomposed_sor(1, m, n=60, iterations=5)
        over = run_overdecomposed_sor(4, m, n=60, iterations=5)
        assert base.checksum == over.checksum  # still correct
        assert over.vtime > base.vtime  # but slower

    def test_overdecomp_validation(self):
        with pytest.raises(ValueError):
            run_overdecomposed_sor(0, MACHINE)
