"""Smoke tests: every shipped example must run to completion.

The examples are the library's living documentation; each asserts its own
correctness internally (result == sequential reference), so a zero exit
code is a meaningful check, not just an import test.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script):
    proc = subprocess.run([sys.executable, str(script)],
                          capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, (
        f"{script.name} failed:\n{proc.stdout[-2000:]}\n{proc.stderr[-2000:]}")


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "sor_adaptive", "checkpoint_restart",
            "grid_volatility", "evolutionary"} <= names
