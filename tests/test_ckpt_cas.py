"""The chunked checkpoint object store: CDC chunker, dedup CAS,
recipe checkpoints, chunk-ref funnel, GC, corruption isolation.

The load-bearing guarantees:

* chunking is deterministic in the bytes alone, boundaries respect
  min/max, and an insertion re-chunks only its neighbourhood — every
  later chunk keeps its digest (that locality IS the dedup);
* restored values are bit-identical with the CAS on or off, on every
  stock backend, through shard reassembly and across restart and
  adaptation chains;
* flipping one byte of one stored chunk damages exactly the fields
  referencing that chunk; everything else still restores and recovery
  degrades to the previous checkpoint;
* GC leaves zero unreferenced chunks after pruning and after a job
  namespace is torn down — and never frees a chunk another namespace
  still references.
"""

import multiprocessing as mp

import numpy as np
import pytest

from repro.apps.plugs.sor_plugs import SOR_ADAPTIVE
from repro.apps.sor import SOR
from repro.ckpt import (
    CasCheckpointStore,
    CheckpointStore,
    ChunkCorrupt,
    ChunkParams,
    ChunkStore,
    EveryN,
    FailureInjector,
    InjectedFailure,
)
from repro.ckpt.chunker import (
    WINDOW,
    chunk_bounds,
    chunk_digest,
    chunk_refs,
)
from repro.ckpt.snapshot import KIND_RECIPE, Snapshot, SnapshotCorrupt
from repro.core import (
    STRATEGY_LOCAL,
    AdaptStep,
    AdaptationPlan,
    ExecConfig,
    PlugSet,
    Runtime,
    SafeData,
    SafePointAfter,
    plug,
)
from repro.vtime import MachineModel

MACHINE = MachineModel(nodes=2, cores_per_node=4)
N, ITERS = 40, 12
REF = SOR(n=N, iterations=ITERS).execute()
WOVEN = plug(SOR, SOR_ADAPTIVE)

MULTIPROC = ExecConfig.distributed(3).with_backend("multiproc")
SOCKETS = ExecConfig.distributed(3).with_backend("sockets")
ALL_CONFIGS = [
    ("sequential", ExecConfig.sequential()),
    ("threads", ExecConfig.shared(3)),
    ("simcluster", ExecConfig.distributed(3)),
    ("hybrid", ExecConfig.hybrid(2, 2)),
    ("multiproc", MULTIPROC),
    ("sockets", SOCKETS),
]

HAS_FORK = "fork" in mp.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="needs fork")

#: small boundaries so modest buffers produce many chunks in tests.
SMALL = ChunkParams(min_size=1 << 6, avg_size=1 << 8, max_size=1 << 10)


def run_sor(tmp_path, config, tag, **kw):
    rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / tag,
                 policy=kw.pop("policy", EveryN(4)),
                 ckpt_cas=kw.pop("ckpt_cas", True), **{
                     k: kw.pop(k) for k in ("ckpt_strategy", "telemetry",
                                            "trace", "ckpt_cas_params")
                     if k in kw})
    res = rt.run(WOVEN, ctor_kwargs={"n": N, "iterations": ITERS},
                 entry="execute", config=config, fresh=True, **kw)
    return rt, res


# ---------------------------------------------------------------------------
# the chunker
# ---------------------------------------------------------------------------
class TestChunker:
    def _data(self, n=50_000, seed=7):
        return np.random.default_rng(seed).bytes(n)

    def test_bounds_partition_the_payload(self):
        data = self._data()
        bounds = chunk_bounds(data, SMALL)
        assert bounds[0] == 0 and bounds[-1] == len(data)
        assert bounds == sorted(set(bounds))
        sizes = [b - a for a, b in zip(bounds, bounds[1:])]
        assert all(s <= SMALL.max_size for s in sizes)
        # every chunk but the tail respects the minimum
        assert all(s >= SMALL.min_size for s in sizes[:-1])
        assert len(sizes) > 20  # ~n / avg_size, not a degenerate split

    def test_deterministic_in_the_bytes_alone(self):
        data = self._data()
        assert chunk_bounds(data, SMALL) == chunk_bounds(data, SMALL)
        r1 = chunk_refs(data, SMALL)
        r2 = chunk_refs(bytes(data), SMALL)
        assert r1 == r2

    def test_refs_concatenate_back_to_the_blob(self):
        data = self._data()
        refs = chunk_refs(data, SMALL)
        assert b"".join(data[a:b] for _, a, b in refs) == data
        for digest, a, b in refs:
            assert chunk_digest(data[a:b]) == digest

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_insertion_keeps_later_digests(self, seed):
        """The CDC property: a front insertion shifts every byte, yet
        all chunks past the edit's neighbourhood keep their identity."""
        data = self._data(seed=seed)
        before = {d for d, _, _ in chunk_refs(data, SMALL)}
        after = {d for d, _, _ in chunk_refs(b"wedge" + data, SMALL)}
        shared = len(before & after)
        assert shared >= 0.8 * len(before), \
            f"only {shared}/{len(before)} digests survived a front insert"

    def test_constant_data_degrades_to_fixed_split(self):
        """Pathological payload (no window ever matches the mask): the
        max_size force-cut turns it into a fixed-size split."""
        bounds = chunk_bounds(b"\x00" * 10_000, SMALL)
        sizes = {b - a for a, b in zip(bounds, bounds[1:-1])}
        assert sizes == {SMALL.max_size}

    def test_small_payload_is_a_single_chunk(self):
        assert chunk_bounds(b"x" * SMALL.min_size, SMALL) == \
            [0, SMALL.min_size]
        assert chunk_bounds(b"", SMALL) == [0]
        assert chunk_refs(b"", SMALL) == []

    def test_params_validation(self):
        with pytest.raises(ValueError, match="power of two"):
            ChunkParams(avg_size=3000)
        with pytest.raises(ValueError, match="min <= avg"):
            ChunkParams(min_size=1 << 13, avg_size=1 << 12)
        with pytest.raises(ValueError):
            ChunkParams(min_size=WINDOW - 1, avg_size=1 << 12)


# ---------------------------------------------------------------------------
# the chunk store
# ---------------------------------------------------------------------------
class TestChunkStore:
    def test_roundtrip_and_dedup(self, tmp_path):
        cas = ChunkStore(tmp_path / "cas")
        payload = np.random.default_rng(0).bytes(4096)
        digest = chunk_digest(payload)
        new, stored = cas.put(digest, payload)
        assert new and stored > 0
        again, _ = cas.put(digest, payload)
        assert not again
        assert cas.chunks_stored == 1 and cas.chunks_deduped == 1
        assert cas.bytes_deduped == len(payload)
        got, _ = cas.fetch(digest)
        assert got == payload
        assert cas.missing([digest, "ab" * 20]) == ["ab" * 20]

    def test_missing_chunk_raises(self, tmp_path):
        cas = ChunkStore(tmp_path / "cas")
        with pytest.raises(ChunkCorrupt, match="missing"):
            cas.fetch("00" * 20)

    def test_flipped_bit_is_detected(self, tmp_path):
        cas = ChunkStore(tmp_path / "cas")
        payload = np.random.default_rng(1).bytes(4096)
        digest = chunk_digest(payload)
        cas.put(digest, payload)
        path = cas.path_for(digest)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0x40
        path.write_bytes(bytes(raw))
        with pytest.raises(ChunkCorrupt):
            cas.fetch(digest)

    def test_refcounts_and_sweep(self, tmp_path):
        cas = ChunkStore(tmp_path / "cas")
        digests = []
        for i in range(4):
            payload = bytes([i]) * 1000
            d = chunk_digest(payload)
            cas.put(d, payload)
            digests.append(d)
        cas.incref(digests)
        cas.incref(digests[:2])
        assert cas.refcount(digests[0]) == 2
        cas.decref(digests)
        assert cas.refcount(digests[0]) == 1
        assert cas.refcount(digests[2]) == 0
        live = set(digests[:2])
        n, nbytes = cas.sweep(live)
        assert n == 2 and nbytes > 0
        assert cas.digests() == live
        assert cas.chunks_swept == 2


# ---------------------------------------------------------------------------
# the recipe store, directly
# ---------------------------------------------------------------------------
class Drift:
    """A large mostly-static grid plus a small evolving state."""

    def __init__(self, n=300):
        rng = np.random.default_rng(42)
        self.grid = rng.standard_normal((n, n))
        self.state = np.zeros(8)
        self.step = 0


def snap_of(app, count):
    return Snapshot.capture(app, ["grid", "state", "step"], count)


class TestCasStore:
    def test_roundtrip_matches_plain_store(self, tmp_path):
        app = Drift()
        plain = CheckpointStore(tmp_path / "plain")
        cas = CasCheckpointStore(tmp_path / "cas")
        plain.write(snap_of(app, 1))
        cas.write(snap_of(app, 1))
        assert cas.read(1).field_blobs() == plain.read(1).field_blobs()
        assert cas.read(1).safepoint_count == 1

    def test_recipe_kind_and_cost_accounting(self, tmp_path):
        store = CasCheckpointStore(tmp_path / "c")
        store.write(snap_of(Drift(), 1))
        assert store.last_write_kind == KIND_RECIPE
        first = store.last_write_nbytes
        assert first > 0
        stats = store.last_write_stats
        assert stats["chunks_new"] > 0 and stats["chunks_dedup"] == 0

    def test_one_element_touch_writes_a_few_chunks(self, tmp_path):
        """The sub-field contract the delta store can't make: touch one
        element of a 720 KB grid and the next write costs kilobytes."""
        store = CasCheckpointStore(tmp_path / "c")
        app = Drift(n=300)
        store.write(snap_of(app, 1))
        first = store.last_write_nbytes
        app.grid[150, 150] += 1.0
        app.step = 2
        store.write(snap_of(app, 2))
        assert store.last_write_nbytes < first / 10
        stats = store.last_write_stats
        assert 0 < stats["chunks_new"] <= 4
        assert stats["dedup_saved_bytes"] > first / 2
        np.testing.assert_array_equal(store.read(2).fields["grid"],
                                      app.grid)

    def test_unchanged_rewrite_stores_nothing(self, tmp_path):
        store = CasCheckpointStore(tmp_path / "c")
        app = Drift()
        store.write(snap_of(app, 1))
        store.write(snap_of(app, 2))
        assert store.last_write_stats["chunks_new"] == 0

    def test_prune_gc_leaves_zero_unreferenced(self, tmp_path):
        store = CasCheckpointStore(tmp_path / "c")
        app = Drift(n=200)
        for count in range(1, 5):
            app.grid += np.random.default_rng(count).standard_normal(
                app.grid.shape)
            store.write(snap_of(app, count))
        store.prune(keep=1)
        assert store.counts() == [4]
        assert store.unreferenced() == set()
        assert store.cas.digests() == store.live_digests()
        assert store.cas.chunks_swept > 0

    def test_clear_empties_the_cas(self, tmp_path):
        store = CasCheckpointStore(tmp_path / "c")
        store.write(snap_of(Drift(), 1))
        store.clear()
        assert store.counts() == []
        assert store.cas.digests() == set()

    def test_gc_is_correct_across_a_restart(self, tmp_path):
        """The disk scan, not the in-memory counter, decides what dies:
        a fresh store object over the same directory GCs correctly."""
        store = CasCheckpointStore(tmp_path / "c")
        store.write(snap_of(Drift(), 1))
        reopened = CasCheckpointStore(tmp_path / "c")
        assert reopened.unreferenced() == set()
        reopened.gc()
        assert reopened.read(1).safepoint_count == 1  # nothing freed
        reopened.path_for(1).unlink()
        reopened.gc()
        assert reopened.cas.digests() == set()

    def test_namespaces_share_one_cas(self, tmp_path):
        """Multi-tenancy: a second tenant checkpointing the same state
        stores almost nothing, and one tenant's teardown never frees
        chunks the other still references."""
        root = CasCheckpointStore(tmp_path / "c")
        app = Drift()
        j1, j2 = root.namespace("j1"), root.namespace("j2")
        j1.write(snap_of(app, 1))
        stored_after_first = root.cas.chunks_stored
        j2.write(snap_of(app, 1))
        assert j2.last_write_stats["chunks_new"] == 0
        assert root.cas.chunks_stored == stored_after_first
        j1.clear()  # tenant one gone; tenant two must still restore
        snap = j2.read(1)
        np.testing.assert_array_equal(snap.fields["grid"], app.grid)
        j2.clear()
        assert root.cas.digests() == set()

    def test_plain_files_still_read(self, tmp_path):
        """A directory switched to CAS mid-life: pre-existing full
        snapshots read through the recipe store unchanged."""
        CheckpointStore(tmp_path / "c").write(snap_of(Drift(), 1))
        store = CasCheckpointStore(tmp_path / "c")
        assert store.read(1).field_blobs() == \
            CheckpointStore(tmp_path / "c").read(1).field_blobs()


# ---------------------------------------------------------------------------
# corruption isolation
# ---------------------------------------------------------------------------
class TestCorruptionIsolation:
    @pytest.mark.parametrize("seed", [11, 23, 37])
    def test_one_flipped_byte_damages_exactly_its_fields(self, tmp_path,
                                                         seed):
        """Flip one byte of one stored chunk: ``verify`` names exactly
        the fields referencing that chunk, other checkpoints restore,
        and ``read_latest`` degrades to the previous good one."""
        store = CasCheckpointStore(tmp_path / "c", chunk_params=SMALL)
        rng = np.random.default_rng(seed)
        app = Drift(n=120)
        store.write(snap_of(app, 1))
        # fully new grid at count 2: its chunks are not shared with 1
        app.grid = rng.standard_normal(app.grid.shape)
        app.state = rng.standard_normal(8)
        app.step = 2
        store.write(snap_of(app, 2))
        snap2 = store.read(2)
        per_field = {
            name: {d for d, _, _ in chunk_refs(blob, SMALL)}
            for name, blob in snap2.field_blobs().items()}
        fresh = per_field["grid"] - per_field["state"] - per_field["step"]
        victim = sorted(fresh)[len(fresh) // 2]
        expected = sorted(name for name, ds in per_field.items()
                          if victim in ds)
        path = store.cas.path_for(victim)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0x01
        path.write_bytes(bytes(raw))

        assert store.verify(2) == expected == ["grid"]
        assert store.verify(1) == []  # count 1 references other chunks
        with pytest.raises(SnapshotCorrupt, match="grid"):
            store.read(2)
        # the rest restores: count 1 intact, recovery degrades to it
        assert store.read(1).safepoint_count == 1
        latest = store.read_latest()
        assert latest is not None and latest.safepoint_count == 1


# ---------------------------------------------------------------------------
# parity across backends: bit-identical with the CAS on or off
# ---------------------------------------------------------------------------
class TestBackendParity:
    def test_bit_identical_values_and_checkpoints(self, tmp_path):
        """Every stock backend: same value, and at every safe point the
        restored field bytes equal a CAS-off sequential reference."""
        rt_off, res_off = run_sor(tmp_path, ExecConfig.sequential(),
                                  "off", ckpt_cas=False)
        assert res_off.value == REF
        counts = rt_off.store.counts()
        assert counts, "reference run took no checkpoints"
        ref_blobs = {c: rt_off.store.read(c).field_blobs() for c in counts}
        for label, config in ALL_CONFIGS:
            if label in ("multiproc", "sockets") and not HAS_FORK:
                continue
            rt, res = run_sor(tmp_path, config, f"cas-{label}")
            assert res.value == REF, label
            assert isinstance(rt.store, CasCheckpointStore)
            assert rt.store.counts() == counts, label
            for c in counts:
                assert rt.store.read(c).field_blobs() == ref_blobs[c], \
                    f"checkpoint {c} differs in {label}"

    def test_adaptation_chain_across_backends(self, tmp_path):
        steps = [AdaptStep(at=3, config=ExecConfig.shared(3)),
                 AdaptStep(at=6, config=ExecConfig.distributed(3)),
                 AdaptStep(at=9, config=ExecConfig.hybrid(2, 2))]
        if HAS_FORK:
            steps.insert(2, AdaptStep(at=7, config=MULTIPROC))
        _, res = run_sor(tmp_path, ExecConfig.sequential(), "chain",
                         plan=AdaptationPlan(steps))
        assert res.value == REF

    def test_restart_adaptation_keeps_parity(self, tmp_path):
        """A via_restart step restores from a recipe checkpoint — the
        chain's final value stays bit-identical to the reference."""
        plan = AdaptationPlan([AdaptStep(
            at=6, config=ExecConfig.shared(2), via_restart=True)])
        _, res = run_sor(tmp_path, ExecConfig.sequential(), "restart",
                         plan=plan)
        assert res.value == REF

    def test_crash_recovery_from_recipes(self, tmp_path):
        _, res = run_sor(tmp_path, ExecConfig.distributed(3), "recover",
                         policy=EveryN(3),
                         injector=FailureInjector(fail_at=7),
                         auto_recover=True)
        assert res.value == REF
        assert res.restarts == 1


# ---------------------------------------------------------------------------
# STRATEGY_LOCAL: shard recipes, cross-rank dedup, reassembly
# ---------------------------------------------------------------------------
class TestLocalStrategy:
    def _crash(self, tmp_path, config, fail_at=7):
        rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "c",
                     policy=EveryN(3), ckpt_strategy=STRATEGY_LOCAL,
                     ckpt_cas=True, ckpt_cas_params=SMALL)
        with pytest.raises(InjectedFailure):
            rt.run(WOVEN, ctor_kwargs={"n": N, "iterations": ITERS},
                   entry="execute", config=config,
                   injector=FailureInjector(fail_at=fail_at), fresh=True)
        return rt

    def test_cross_rank_dedup_on_shard_writes(self, tmp_path):
        """Each rank's STRATEGY_LOCAL shard is a full-shape array; the
        regions a rank doesn't own are byte-identical across shards and
        must store once in the shared CAS."""
        rt = self._crash(tmp_path, ExecConfig.distributed(3))
        assert sorted(rt.store.shard_counts()) == [3, 6]
        assert rt.store.cas.chunks_deduped > 0
        assert rt.store.cas.bytes_deduped > 0
        # dedup hits mean fewer distinct chunks than total references
        live = rt.store.live_digests()
        refs = rt.store.cas.chunks_stored + rt.store.cas.chunks_deduped
        assert len(live) < refs

    def test_assembled_shards_match_reference(self, tmp_path):
        rt = self._crash(tmp_path, ExecConfig.distributed(3))
        parts = WOVEN.__pp_plugs__.partitioned_fields()
        snap = rt.store.assemble_from_shards(6, parts)
        assert snap is not None
        ref = SOR(n=N, iterations=6)
        ref.execute()
        assert np.array_equal(snap.fields["G"], ref.G)
        assert snap.fields["iterations_done"] == 6

    @needs_fork
    def test_restart_on_shards_through_the_funnel(self, tmp_path):
        """Crash a real-process run (shard recipes arrive through the
        chunk-ref funnel), then recover from the shard set alone."""
        self._crash(tmp_path, MULTIPROC)
        rt2 = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "c",
                      policy=EveryN(3), ckpt_strategy=STRATEGY_LOCAL,
                      ckpt_cas=True)
        res = rt2.run(WOVEN, ctor_kwargs={"n": N, "iterations": ITERS},
                      entry="execute", config=ExecConfig.shared(2))
        assert res.value == REF
        assert res.events.of_kind("pcr_replay_engaged")


# ---------------------------------------------------------------------------
# the chunk-ref funnel (real processes)
# ---------------------------------------------------------------------------
@needs_fork
class TestChunkFunnel:
    @pytest.mark.parametrize("label,config",
                             [("multiproc", MULTIPROC),
                              ("sockets", SOCKETS)])
    def test_funnelled_checkpoints_bit_identical(self, tmp_path, label,
                                                 config):
        rt_off, res_off = run_sor(tmp_path, config, f"{label}-off",
                                  ckpt_cas=False)
        rt_on, res_on = run_sor(tmp_path, config, f"{label}-on")
        assert res_on.value == res_off.value == REF
        counts = rt_off.store.counts()
        assert rt_on.store.counts() == counts and counts
        for c in counts:
            assert rt_on.store.read(c).field_blobs() == \
                rt_off.store.read(c).field_blobs()
        # steady-state saves shipped only changed chunks
        assert rt_on.store.cas.chunks_stored > 0

    def test_presence_handshake_ships_missing_only(self, tmp_path):
        """Two identical runs into one directory: the second run's
        workers find every chunk already present and ship nothing new
        (fresh=True clears recipes; the CAS keeps its chunks only while
        referenced, so compare within one directory's first run)."""
        rt, _ = run_sor(tmp_path, MULTIPROC, "m1")
        stored_digests = rt.store.cas.digests()
        # every stored chunk is referenced by some recipe — the funnel
        # never shipped a chunk the parent then orphaned
        assert rt.store.unreferenced() == set()
        assert stored_digests


# ---------------------------------------------------------------------------
# telemetry and trace ride-alongs
# ---------------------------------------------------------------------------
class DriftApp:
    """A static table plus a tiny moving state — every save after the
    first is nearly all dedup, which the counters must show."""

    def __init__(self, n=20000, iterations=6):
        self.table = np.arange(n, dtype=np.float64)
        self.state = np.zeros(8)
        self.step = 0
        self.iterations = iterations

    def execute(self):
        for _ in range(self.iterations):
            self.advance()
            self.tick()
        return float(self.state.sum())

    def advance(self):
        self.state += 1.0

    def tick(self):
        self.step += 1


DRIFT_WOVEN = plug(DriftApp, PlugSet(SafeData("table", "state", "step"),
                                     SafePointAfter("tick")))


class TestObservability:
    def test_chunk_counters_and_cas_gauges(self, tmp_path):
        from repro.telemetry import MetricsRegistry

        rt = Runtime(machine=MACHINE, ckpt_dir=tmp_path / "tele",
                     policy=EveryN(1), ckpt_cas=True)
        res = rt.run(DRIFT_WOVEN, ctor_kwargs={}, entry="execute",
                     config=ExecConfig.sequential(), fresh=True)
        assert res.value == DriftApp().execute()
        reg = MetricsRegistry()
        reg.absorb_snapshot(res.metrics)
        assert reg.value("repro_ckpt_chunks_written_total") > 0
        assert reg.value("repro_ckpt_chunks_deduped_total") > 0
        assert reg.value("repro_ckpt_dedup_bytes_saved_total") > 0
        assert reg.value("repro_ckpt_cas_chunks_stored") > 0
        assert reg.value("repro_ckpt_cas_bytes_stored") > 0

    def test_restore_fetch_counters(self, tmp_path):
        from repro.telemetry import MetricsRegistry

        _, res = run_sor(tmp_path, ExecConfig.sequential(), "fetch",
                         telemetry=True, policy=EveryN(3),
                         injector=FailureInjector(fail_at=7),
                         auto_recover=True)
        assert res.value == REF
        reg = MetricsRegistry()
        reg.absorb_snapshot(res.metrics)
        assert reg.value("repro_ckpt_restore_fetches_total") > 0
        assert reg.value("repro_ckpt_restore_fetches") > 0
        assert reg.value("repro_ckpt_restore_seconds") > 0.0

    def test_chunk_and_fetch_spans_in_the_trace(self, tmp_path):
        from repro.trace.assemble import validate_chrome_trace

        _, res = run_sor(tmp_path, ExecConfig.sequential(), "trace",
                         trace=True, policy=EveryN(3),
                         injector=FailureInjector(fail_at=7),
                         auto_recover=True)
        assert res.value == REF
        validate_chrome_trace(res.trace)
        names = {ev.get("name") for ev in res.trace["traceEvents"]}
        assert "ckpt_chunk" in names, "no chunking span recorded"
        assert "ckpt_fetch" in names, "no restore fan-out span recorded"


# ---------------------------------------------------------------------------
# the multi-tenant service shares one CAS
# ---------------------------------------------------------------------------
@needs_fork
class TestServiceCas:
    def test_jobs_checkpoint_through_the_cas_and_teardown_gcs(
            self, tmp_path):
        import time

        from repro.service import RuntimeService, ServiceClient

        with RuntimeService(workers=3, lanes=1, machine=MACHINE,
                            ckpt_dir=str(tmp_path / "svc"),
                            ckpt_cas=True) as svc:
            assert isinstance(svc.store, CasCheckpointStore)
            client = ServiceClient(svc.address)
            for _ in range(2):
                jid = client.submit(
                    WOVEN, ctor_kwargs={"n": N, "iterations": ITERS},
                    entry="execute", nranks=2, policy=EveryN(4))
                out = client.result(jid, timeout=120.0)
                assert out["status"] == "done", out
                assert out["value"] == REF
            assert svc.store.cas.chunks_stored > 0  # recipes were chunked
            # job-namespace teardown GC'd every chunk the jobs wrote:
            # nothing unreferenced may survive (the acceptance gate)
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline and svc.store.cas.digests():
                time.sleep(0.2)
            assert svc.store.unreferenced() == set()
            assert svc.store.cas.digests() == set()
