"""Grid resource volatility substrate.

The paper's premise (Section I): "In Grid systems resources committed to
the application can change during application execution ... resource
failure, requests to release allocated resources ... availability of new
resources."  It explicitly delegates *deciding* the right resource set to
external tools and contributes the *mechanism* that reshapes the
application.

This package is the synthetic stand-in for those externals: resource
traces (when does the allocation change / fail), the mapping policy that
turns "k processing elements" into an execution configuration (the rule
behind the paper's Figure 9 adaptive line), and the
:class:`ResourceManager` that compiles a trace into an
:class:`~repro.core.AdaptationPlan` plus a failure injector.
"""

from repro.grid.manager import MappingPolicy, ResourceManager
from repro.grid.resources import ResourceEvent, ResourceTrace

__all__ = [
    "MappingPolicy",
    "ResourceEvent",
    "ResourceManager",
    "ResourceTrace",
]
