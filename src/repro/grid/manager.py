"""Resource manager: trace -> (initial config, adaptation plan, injector).

:class:`MappingPolicy` encodes the paper's Figure 9 selection rule: one
processing element runs sequentially, up to a node's worth of cores runs
the shared-memory parallelisation, anything larger runs distributed (or
hybrid, when enabled) — "by activating the parallelisation according to
resources committed to execution".

:class:`ResourceManager` compiles a :class:`ResourceTrace` into the
runtime's inputs so a volatile-Grid scenario becomes one ``Runtime.run``
call.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ckpt.failure import FailureInjector
from repro.core.adaptation import AdaptationPlan, AdaptStep
from repro.core.modes import ExecConfig, Mode
from repro.exec.registry import BackendRegistry, default_registry
from repro.grid.resources import ResourceTrace
from repro.vtime.machine import MachineModel


@dataclass(frozen=True)
class MappingPolicy:
    """Map an allocation of k processing elements to an ExecConfig.

    Selection consults the execution-backend ``registry`` (default: the
    process-wide one): a mode with no registered backend is skipped and
    the policy degrades to the best launchable shape, so a deployment
    that unregisters (say) the hybrid backend still maps every
    allocation to something the PhaseDriver can actually run.
    """

    machine: MachineModel
    allow_hybrid: bool = False
    registry: BackendRegistry | None = None

    def _registry(self) -> BackendRegistry:
        return self.registry if self.registry is not None \
            else default_registry()

    def config_for(self, pe: int) -> ExecConfig:
        if pe < 1:
            raise ValueError("allocation must be >= 1 PE")
        reg = self._registry()
        cores = self.machine.cores_per_node
        if pe == 1:
            return ExecConfig.sequential()
        if pe <= cores and reg.supports(Mode.SHARED):
            return ExecConfig.shared(pe)
        if self.allow_hybrid and pe > cores and pe % cores == 0 \
                and reg.supports(Mode.HYBRID):
            return ExecConfig.hybrid(pe // cores, cores)
        if reg.supports(Mode.DISTRIBUTED):
            return ExecConfig.distributed(pe)
        if reg.supports(Mode.SHARED):  # degraded: cap at one node's team
            return ExecConfig.shared(min(pe, cores))
        return ExecConfig.sequential()


class ResourceManager:
    """Compile a trace into runtime inputs."""

    def __init__(self, trace: ResourceTrace, machine: MachineModel,
                 policy: MappingPolicy | None = None,
                 via_restart: bool = False) -> None:
        self.trace = trace
        self.machine = machine
        self.policy = policy if policy is not None else MappingPolicy(machine)
        self.via_restart = via_restart

    # ------------------------------------------------------------------
    def initial_config(self) -> ExecConfig:
        return self.policy.config_for(self.trace.initial_pe)

    def plan(self) -> AdaptationPlan:
        """Adaptation steps for every allocation change in the trace."""
        steps = []
        pe = self.trace.initial_pe
        for e in self.trace.changes():
            if e.available_pe == pe:
                continue  # no reshaping needed
            pe = e.available_pe
            steps.append(AdaptStep(at=e.at_safepoint,
                                   config=self.policy.config_for(pe),
                                   via_restart=self.via_restart))
        return AdaptationPlan(steps)

    def injector(self) -> FailureInjector:
        """Failure injector armed at the trace's first failure event."""
        fails = self.trace.failures()
        if not fails:
            return FailureInjector()
        return FailureInjector(fail_at=fails[0].at_safepoint)

    def recover_config(self, restarts: int) -> ExecConfig:
        """Configuration to restart with after the given failure count.

        Uses the allocation in force at the first (not yet recovered)
        failure — i.e. the trace tells us what survived the crash.
        """
        fails = self.trace.failures()
        if not fails:
            return self.initial_config()
        idx = min(restarts - 1, len(fails) - 1)
        return self.policy.config_for(self.trace.pe_at(fails[idx].at_safepoint))
