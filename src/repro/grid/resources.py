"""Resource availability traces.

A trace is an ordered list of :class:`ResourceEvent`, each anchored at a
safe-point count (the only points the adaptation protocol can act on).
Three event kinds cover the paper's volatility taxonomy:

* ``change``  — the allocation becomes ``available_pe`` processing
  elements (expansion or contraction);
* ``failure`` — a resource crashes; the application must restart from the
  last checkpoint;
* ``release`` — a polite contraction request (handled like ``change``
  but recorded distinctly for reporting).

Synthetic generators provide the deterministic traces the benchmarks use
and a seeded random walk for stress tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.rng import seeded_rng

KINDS = ("change", "failure", "release")


@dataclass(frozen=True)
class ResourceEvent:
    at_safepoint: int
    available_pe: int
    kind: str = "change"

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}")
        if self.at_safepoint < 1:
            raise ValueError("events anchor at safe points >= 1")
        if self.available_pe < 1 and self.kind != "failure":
            raise ValueError("allocation must keep at least one PE")


class ResourceTrace:
    """Ordered resource events over one application run."""

    def __init__(self, events: list[ResourceEvent] | None = None,
                 initial_pe: int = 1) -> None:
        if initial_pe < 1:
            raise ValueError("initial allocation must be >= 1 PE")
        self.initial_pe = initial_pe
        self.events = sorted(events or [], key=lambda e: e.at_safepoint)

    # ------------------------------------------------------------------
    def changes(self) -> list[ResourceEvent]:
        return [e for e in self.events if e.kind in ("change", "release")]

    def failures(self) -> list[ResourceEvent]:
        return [e for e in self.events if e.kind == "failure"]

    def pe_at(self, count: int) -> int:
        """Allocation in force after safe point ``count``."""
        pe = self.initial_pe
        for e in self.changes():
            if e.at_safepoint <= count:
                pe = e.available_pe
        return pe

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    # synthetic generators
    # ------------------------------------------------------------------
    @classmethod
    def stable(cls, pe: int) -> "ResourceTrace":
        return cls([], initial_pe=pe)

    @classmethod
    def expansion(cls, start_pe: int, to_pe: int, at: int) -> "ResourceTrace":
        """The Figure 6/7 scenario: more resources arrive mid-run."""
        return cls([ResourceEvent(at, to_pe)], initial_pe=start_pe)

    @classmethod
    def contraction(cls, start_pe: int, to_pe: int, at: int) -> "ResourceTrace":
        return cls([ResourceEvent(at, to_pe, kind="release")],
                   initial_pe=start_pe)

    @classmethod
    def failure(cls, pe: int, at: int) -> "ResourceTrace":
        """The Figure 5 scenario: a crash at safe point ``at``."""
        return cls([ResourceEvent(at, pe, kind="failure")], initial_pe=pe)

    @classmethod
    def random_walk(cls, seed: int, horizon: int, max_pe: int,
                    n_events: int, failure_prob: float = 0.1,
                    initial_pe: int | None = None) -> "ResourceTrace":
        """Seeded volatility: ``n_events`` changes over ``horizon`` safe
        points, each a fresh allocation in [1, max_pe], occasionally a
        failure."""
        if horizon < 2 or n_events < 0 or max_pe < 1:
            raise ValueError("bad random-walk parameters")
        rng = seeded_rng(seed)
        ats = sorted(rng.choice(range(1, horizon), size=min(n_events,
                                                            horizon - 1),
                                replace=False).tolist())
        events = []
        for at in ats:
            if rng.random() < failure_prob:
                events.append(ResourceEvent(at, 1, kind="failure"))
            else:
                events.append(ResourceEvent(at, int(rng.integers(1, max_pe + 1))))
        start = initial_pe or int(rng.integers(1, max_pe + 1))
        return cls(events, initial_pe=start)
