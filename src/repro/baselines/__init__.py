"""Hand-written comparators the paper's evaluation measures against.

* :mod:`repro.baselines.sor_handwritten` — SOR written *directly* against
  the substrates (no weaver), with checkpointing hand-inlined: the
  "classic invasive techniques" bar of Figure 3, and (with checkpointing
  off) the fixed "JGF Sequential / Threads / MPI" versions of Figure 9.
* :mod:`repro.baselines.overdecomp` — adaptation by over-decomposition
  (more processes than processors), the overhead Figure 8 quantifies.
"""

from repro.baselines.overdecomp import run_overdecomposed_sor
from repro.baselines.sor_handwritten import (
    HandwrittenResult,
    run_mpi_sor,
    run_sequential_sor,
    run_threads_sor,
)

__all__ = [
    "HandwrittenResult",
    "run_mpi_sor",
    "run_overdecomposed_sor",
    "run_sequential_sor",
    "run_threads_sor",
]
