"""Hand-written SOR against the raw substrates (no weaver).

Three functions — sequential, thread-team, SPMD cluster — each optionally
with checkpointing *inlined* into the domain loop, exactly the "invasive"
programming style the paper's Figure 3 compares pluggable
parallelisation against.  With ``ckpt_every=None`` they are the paper's
fixed JGF versions (original benchmark, no fault tolerance): the
comparators of Figure 9.

These functions intentionally duplicate the SOR numerics: the point of
the baseline is that a practitioner writing directly against the
substrates produces tangled code (look at how checkpoint bookkeeping
threads through every function here, versus the three declarations in
``repro/apps/plugs/sor_plugs.py``), yet gains no performance over the
woven version — which is the paper's headline claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ckpt.snapshot import Snapshot
from repro.ckpt.store import CheckpointStore
from repro.dsm.comm import current_rank
from repro.dsm.partition import BlockLayout, exchange_halo, gather_inplace, \
    local_slice, scatter_inplace
from repro.dsm.simcluster import SimCluster
from repro.smp.team import ThreadTeam, current_worker
from repro.util.rng import seeded_rng
from repro.util.timing import WallTimer
from repro.vtime.calibrate import GLOBAL_CALIBRATOR
from repro.vtime.clock import VClock
from repro.vtime.machine import MachineModel

#: shared with the woven SOR so baseline and PP virtual times are charged
#: from the same calibrated kernel rate (no cross-version noise bias).
_RELAX_KEY = "SOR.relax"


def _charge_relax(clock, lo: int, hi: int, seconds: float) -> None:
    """Charge one relax chunk; one unit = one row of one colour phase."""
    clock.charge_compute(
        GLOBAL_CALIBRATOR.charge_for(_RELAX_KEY, max(hi - lo, 0), seconds))


@dataclass
class HandwrittenResult:
    checksum: float
    vtime: float
    safepoints: int
    checkpoints: int
    breakdown: dict = field(default_factory=dict)


def _init_grid(n: int, seed: int) -> np.ndarray:
    return seeded_rng(seed).random((n, n)) * 1e-6


def _relax_rows(G: np.ndarray, lo: int, hi: int, parity: int,
                omega: float) -> None:
    n = G.shape[0]
    lo = max(lo, 1)
    hi = min(hi, n - 1)
    start = lo + ((parity - lo) % 2)
    if start >= hi:
        return
    r = np.arange(start, hi, 2)
    G[r, 1:-1] = ((1.0 - omega) * G[r, 1:-1]
                  + omega * 0.25 * (G[r - 1, 1:-1] + G[r + 1, 1:-1]
                                    + G[r, :-2] + G[r, 2:]))


def _checksum(G: np.ndarray) -> float:
    n = G.shape[0]
    return float(np.abs(G).sum() / (n * n))


# ---------------------------------------------------------------------------
# sequential
# ---------------------------------------------------------------------------
def run_sequential_sor(n: int = 100, iterations: int = 100,
                       omega: float = 1.25, seed: int = 17,
                       machine: MachineModel | None = None,
                       store: CheckpointStore | None = None,
                       ckpt_every: int | None = None) -> HandwrittenResult:
    machine = machine if machine is not None else MachineModel()
    clock = VClock()
    G = _init_grid(n, seed)
    count = 0
    checkpoints = 0
    for _ in range(iterations):
        with WallTimer() as t:
            _relax_rows(G, 1, n - 1, 0, omega)
            _relax_rows(G, 1, n - 1, 1, omega)
        _charge_relax(clock, 1, 2 * n - 3, t.elapsed)
        # --- invasive checkpoint code tangled into the domain loop ----
        count += 1
        clock.charge_compute(5e-8)  # safe-point counting
        if store is not None and ckpt_every and count % ckpt_every == 0:
            snap = Snapshot.capture(_SnapShim(G, count), ["G", "count"],
                                    count, app="SOR-invasive")
            store.write(snap)
            clock.charge_io(machine.disk.write_cost(store.last_write_nbytes))
            checkpoints += 1
    return HandwrittenResult(_checksum(G), clock.now, count, checkpoints,
                             clock.snapshot())


class _SnapShim:
    """Invasive code has no object model to hang SafeData on: improvise."""

    def __init__(self, G: np.ndarray, count: int) -> None:
        self.G = G
        self.count = count


# ---------------------------------------------------------------------------
# thread team
# ---------------------------------------------------------------------------
def run_threads_sor(workers: int, n: int = 100, iterations: int = 100,
                    omega: float = 1.25, seed: int = 17,
                    machine: MachineModel | None = None,
                    store: CheckpointStore | None = None,
                    ckpt_every: int | None = None) -> HandwrittenResult:
    machine = machine if machine is not None else MachineModel()
    team = ThreadTeam(machine, size=workers)
    G = _init_grid(n, seed)
    state = {"count": 0, "checkpoints": 0}

    def save_if_due(sp_index: int, tm: ThreadTeam) -> bool:
        state["count"] = sp_index
        if store is None or not ckpt_every or sp_index % ckpt_every != 0:
            return False
        snap = Snapshot.capture(_SnapShim(G, sp_index), ["G", "count"],
                                sp_index, app="SOR-invasive-smp")
        store.write(snap)
        current_worker().clock.charge_io(
            machine.disk.write_cost(store.last_write_nbytes))
        state["checkpoints"] += 1
        return True

    def region() -> None:
        for _ in range(iterations):
            for parity in (0, 1):
                for s, e in team.worksharing(1, n - 1):
                    with WallTimer() as t:
                        _relax_rows(G, s, e, parity, omega)
                    _charge_relax(current_worker().clock, s, e, t.elapsed)
                team.barrier()
            team.safepoint(save_if_due)

    team.run_region(region)
    return HandwrittenResult(_checksum(G), team.clock.now, state["count"],
                             state["checkpoints"], team.clock.snapshot())


# ---------------------------------------------------------------------------
# SPMD cluster
# ---------------------------------------------------------------------------
def run_mpi_sor(nranks: int, n: int = 100, iterations: int = 100,
                omega: float = 1.25, seed: int = 17,
                machine: MachineModel | None = None,
                store: CheckpointStore | None = None,
                ckpt_every: int | None = None) -> HandwrittenResult:
    machine = machine if machine is not None else MachineModel()
    cluster = SimCluster(nranks, machine)
    layout = BlockLayout(axis=0, halo=1)

    def rank_entry():
        ctx = current_rank()
        G = _init_grid(n, seed)
        lo, hi = local_slice(n, ctx.rank, nranks)
        scatter_inplace(ctx.comm, G, layout, root=0)
        count = 0
        checkpoints = 0
        for _ in range(iterations):
            for parity in (0, 1):
                exchange_halo(ctx.comm, G, layout)
                with WallTimer() as t:
                    _relax_rows(G, lo, hi, parity, omega)
                _charge_relax(ctx.clock, lo, hi, t.elapsed)
            count += 1
            ctx.clock.charge_compute(5e-8)
            if store is not None and ckpt_every and count % ckpt_every == 0:
                # master-collect strategy, hand-coded
                gather_inplace(ctx.comm, G, layout, root=0)
                if ctx.rank == 0:
                    snap = Snapshot.capture(_SnapShim(G, count),
                                            ["G", "count"], count,
                                            app="SOR-invasive-mpi")
                    store.write(snap)
                    ctx.clock.charge_io(
                        machine.disk.write_cost(store.last_write_nbytes))
                checkpoints += 1
        gather_inplace(ctx.comm, G, layout, root=0)
        if ctx.rank == 0:
            return _checksum(G), count, checkpoints
        return None

    results = cluster.run(rank_entry)
    checksum, count, checkpoints = results[0]
    return HandwrittenResult(checksum, cluster.max_time, count, checkpoints,
                             cluster.time_breakdown())
