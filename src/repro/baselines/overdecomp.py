"""Adaptation by over-decomposition — the Figure 8 comparator.

"With MPI it is only possible to use over-decomposition to support
adaptive applications, leading to an additional overhead when multiple
processes are mapped into the same physical resource" (Section II).
This baseline runs the hand-written SPMD SOR with ``of`` times more
ranks than the machine has cores: co-located ranks time-slice their
cores (compute contention), every barrier/halo involves ``of`` times
more participants, and each synchronisation epoch pays the context-
switch cost — the three ingredients of the paper's measured blow-up.
"""

from __future__ import annotations

from repro.baselines.sor_handwritten import HandwrittenResult, run_mpi_sor
from repro.vtime.machine import MachineModel


def run_overdecomposed_sor(of: int, machine: MachineModel,
                           n: int = 100, iterations: int = 100,
                           seed: int = 17) -> HandwrittenResult:
    """SOR with ``of`` ranks per core (``of=1`` = one rank per core)."""
    if of < 1:
        raise ValueError("over-decomposition factor must be >= 1")
    nranks = of * machine.total_cores
    return run_mpi_sor(nranks, n=n, iterations=iterations, seed=seed,
                       machine=machine)
