"""ExecutionContext: the per-execution state behind every woven method.

A context binds one application instance to one execution configuration:
the mode, the thread team and/or rank identity, the checkpoint machinery
(store, policy, safe-point counter, replay state, failure injector) and
the adaptation plan.  Template wrappers fetch it from the instance
(``instance.__pp_ctx__``) and delegate all mode-dependent behaviour here,
which is what lets a single woven class execute sequentially, on a thread
team, on a simulated cluster, or on both at once.

The safe-point protocol (:meth:`on_safepoint`) is the paper's Figure 2 in
code — counting, checkpoint-taking, replay/restore, failure injection and
adaptation all happen at safe points:

* sequential — run the protocol inline;
* shared memory — rendezvous the team (``ThreadTeam.safepoint``) and run
  the protocol once while everyone is parked, barriers included exactly
  where the paper inserts them;
* distributed — every rank runs the protocol in lockstep; saving gathers
  partitioned fields at member 0 (no barriers — the paper's preferred
  alternative) or writes per-rank shards between two global barriers (the
  first alternative, kept for the ablation study);
* hybrid — the team protocol per rank, with rank-level collectives run by
  one thread per rank.
"""

from __future__ import annotations

import copy
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable

from repro.ckpt.failure import FailureInjector
from repro.ckpt.policy import CheckpointPolicy, Never
from repro.ckpt.replay import ReplayState, SafePointCounter
from repro.ckpt.snapshot import Snapshot
from repro.ckpt.store import CheckpointStore
from repro.core.adaptation import AdaptationPlan, AdaptStep
from repro.core.errors import AdaptationExit, WeaveError
from repro.core.modes import Capabilities, ExecConfig, Mode
from repro.dsm.comm import RankContext
from repro.dsm.partition import (
    BlockLayout,
    exchange_halo,
    gather_inplace,
    scatter_inplace,
)
from repro.smp.team import ThreadTeam, current_worker
from repro.telemetry import schema as _ts
from repro.telemetry.plane import writer as telemetry_writer
from repro.trace import schema as _tc
from repro.trace.plane import tracer as trace_writer
from repro.util.events import EventLog
from repro.vtime.clock import VClock
from repro.vtime.machine import MachineModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.templates import ForMethod, Partitioned

#: checkpoint placement strategies for distributed runs (Section IV.A).
STRATEGY_MASTER = "master"  # collect at member 0; mode-independent file
STRATEGY_LOCAL = "local"    # per-rank shards between two barriers


class ExecutionContext:
    """Everything a woven instance needs to execute in one configuration."""

    def __init__(self,
                 config: ExecConfig,
                 machine: MachineModel | None = None,
                 log: EventLog | None = None,
                 store: CheckpointStore | None = None,
                 policy: CheckpointPolicy | None = None,
                 injector: FailureInjector | None = None,
                 plan: AdaptationPlan | None = None,
                 replay: ReplayState | None = None,
                 safedata: list[str] | None = None,
                 partitioned: "dict[str, Partitioned] | None" = None,
                 ckpt_strategy: str = STRATEGY_MASTER,
                 team: ThreadTeam | None = None,
                 rankctx: RankContext | None = None,
                 start_count: int = 0,
                 advisor=None,
                 caps: Capabilities | None = None,
                 reshaper=None) -> None:
        if ckpt_strategy not in (STRATEGY_MASTER, STRATEGY_LOCAL):
            raise ValueError(f"unknown checkpoint strategy {ckpt_strategy!r}")
        self.config = config
        #: coordination services the execution backend provides; contexts
        #: built outside a backend default to the mode's stock set.
        self.caps = caps if caps is not None \
            else config.mode.default_capabilities()
        self.machine = machine if machine is not None else MachineModel()
        self.log = log if log is not None else EventLog()
        self.store = store
        self.policy = policy if policy is not None else Never()
        self.injector = injector if injector is not None else FailureInjector()
        self.plan = plan if plan is not None else AdaptationPlan()
        self.replay = replay
        self.safedata = list(safedata or [])
        self.partitioned = dict(partitioned or {})
        self.ckpt_strategy = ckpt_strategy
        self.rankctx = rankctx
        #: names of partitioned fields the backend actually placed in
        #: cross-process shared memory (set by shared-field backends
        #: after instantiation; always a subset of ``partitioned``).
        #: Data movement for these degenerates to synchronisation.
        self.shared_fields: set[str] = set()
        #: ``whole_at_safepoints`` fields backed by a shared commit slab:
        #: field -> whole-size shared view.  Each rank computes into its
        #: *private* scratch array (replicated whole-array writes cannot
        #: alias), but gather/allgather commit only the owned regions
        #: into the slab and read the assembled whole back — no
        #: root-funnelled payload bytes, and joiners refresh from the
        #: slab instead of a root send.
        self.slab_whole: dict[str, Any] = {}
        #: optional external steering hook (the runtime service): polled
        #: at rank 0 each safe point, verdict broadcast to every member.
        self.steer = None
        #: optional SelfAdaptationAdvisor (sequential/shared phases only).
        self.advisor = advisor
        #: optional backend RankReshaper — the in-place rank-membership
        #: hook behind ``Capabilities.elastic_ranks``.
        self.reshaper = reshaper
        #: AdaptationRecords of in-place reshapes (rank membership
        #: transitions and worker resizes) applied during this phase;
        #: collected by the backend into the PhaseOutcome, so reshapes
        #: that never unwind still reach RunResult.adaptations.
        self.reshapes: list = []
        self.counter = SafePointCounter(start_count)
        self.instance: Any = None
        self._seq_clock = VClock()
        self._last_counted: tuple[int, int] = (-1, -1)  # (region_gen, sp)
        #: completion vtimes (ascending) of async checkpoint writes not
        #: yet finished; mirrors the writer's bounded queue so the model
        #: stalls exactly when the real submit() would block.
        self._async_pending: list[float] = []

        if self.caps.team_regions:
            self.team = team if team is not None else ThreadTeam(
                self.machine, size=config.workers, log=self.log)
        else:
            self.team = None

    # ------------------------------------------------------------------
    @property
    def mode(self) -> Mode:
        return self.config.mode

    @property
    def distributed(self) -> bool:
        """Are rank-level collectives live for this execution?

        True only when the backend declared the capability *and* bound a
        rank identity — the single predicate behind every collective, so
        nothing else needs to branch on mode identity.
        """
        return self.caps.rank_collectives and self.rankctx is not None

    @property
    def rank(self) -> int:
        return self.rankctx.rank if self.rankctx is not None else 0

    @property
    def nranks(self) -> int:
        return self.rankctx.nranks if self.rankctx is not None else 1

    def seed_clock(self, start_vtime: float) -> None:
        """Start this context's base clock at the phase's start time.

        Backends call this so virtual time is continuous across phases;
        rank clocks are seeded by the cluster launcher instead.
        """
        if self.team is not None:
            self.team.clock.advance_to(start_vtime)
        else:
            self._seq_clock.advance_to(start_vtime)

    def clock(self) -> VClock:
        """The virtual clock of the calling thread's line of execution."""
        w = current_worker()
        if w is not None:
            return w.clock
        if self.rankctx is not None:
            return self.rankctx.clock
        if self.team is not None:
            return self.team.clock
        return self._seq_clock

    def max_time(self) -> float:
        if self.rankctx is not None:
            return self.rankctx.clock.now
        if self.team is not None:
            return self.team.clock.now
        return self._seq_clock.now

    def bind(self, instance: Any) -> None:
        """Attach this context to a woven instance (validates fields)."""
        for f in self.safedata:
            if not hasattr(instance, f):
                raise WeaveError(f"SafeData field {f!r} missing on instance")
        for f in self.partitioned:
            if not hasattr(instance, f):
                raise WeaveError(f"Partitioned field {f!r} missing")
        instance.__pp_ctx__ = self
        self.instance = instance

    # ------------------------------------------------------------------
    # wrapper services: replay / region / barriers / locks
    # ------------------------------------------------------------------
    def replay_active(self) -> bool:
        """Should ignorable methods be skipped right now?

        True during application-level restart replay and during a new
        team thread's region replay.
        """
        w = current_worker()
        if w is not None and w.replaying:
            return True
        return self.replay is not None and self.replay.active

    def in_region(self) -> bool:
        return self.team is not None and self.team.in_region()

    def barrier(self) -> None:
        if self.in_region():
            self.team.barrier()  # type: ignore[union-attr]
        elif self.distributed:
            if not self.replay_active():
                self.rankctx.comm.barrier()

    def lock(self, name: str):
        if self.team is not None:
            return self.team.locks().lock(name)
        import threading

        return threading.RLock()

    def is_master_thread(self) -> bool:
        return self.team.is_master() if self.team is not None else True

    def is_master_rank(self) -> bool:
        return self.rank == 0

    # ------------------------------------------------------------------
    # work sharing (ForMethod)
    # ------------------------------------------------------------------
    def for_ranges(self, lo: int, hi: int, tmpl: "ForMethod"):
        """The sub-ranges of ``[lo, hi)`` this line of execution runs.

        Distributed modes first restrict to the rank's partition (aligned
        with a Partitioned field's layout when declared); team modes then
        split among threads.  Replay consumes work-sharing occurrences but
        receives no work.

        Returns an *iterable*; for dynamic/guided schedules it is lazy, so
        chunk grabs interleave with chunk execution — draining the shared
        loop up front would hand all the work to the first-arriving
        thread and defeat the schedule.
        """
        ranges = [(lo, hi)]
        if self.distributed:
            ranges = self._rank_restrict(lo, hi, tmpl)
        if self.team is not None and self.team.in_region():
            # worksharing registers the occurrence eagerly (at call time),
            # which keeps replaying members' counters aligned even though
            # consumption below is lazy.
            shares = [self.team.worksharing(s, e, tmpl.schedule, tmpl.chunk)
                      for s, e in ranges]
            if self.replay_active():
                return []
            import itertools

            return itertools.chain.from_iterable(shares)
        if self.replay_active():
            return []
        return ranges

    def _rank_restrict(self, lo: int, hi: int, tmpl: "ForMethod"
                       ) -> list[tuple[int, int]]:
        from repro.dsm.partition import local_slice

        r, p = self.rank, self.nranks
        part = self.partitioned.get(tmpl.align) if tmpl.align else None
        if part is None:
            s, e = local_slice(hi - lo, r, p)
            return [(lo + s, lo + e)] if s < e else []
        layout = part.layout
        arr = getattr(self.instance, tmpl.align)
        n = arr.shape[layout.axis]
        owned = layout.owned(n, r, p)
        owned = owned[(owned >= lo) & (owned < hi)]
        return _contiguous_runs(owned)

    # ------------------------------------------------------------------
    # distributed data movement (Scatter / Gather / Halo templates)
    # ------------------------------------------------------------------
    def _part(self, field: str) -> "Partitioned":
        part = self.partitioned.get(field)
        if part is None:
            raise WeaveError(
                f"field {field!r} is not declared Partitioned; Scatter/"
                f"Gather/Halo templates require a Partitioned declaration")
        return part

    def _rank_comm_guarded(self, op: Callable[[], None]) -> None:
        """Run a rank-level collective exactly once per rank.

        Outside a team region the rank thread runs it directly.  Inside a
        hybrid region only the team master performs communication, with
        team barriers fencing it so every thread observes the moved data.
        """
        if self.team is not None and self.team.in_region():
            self.team.barrier()
            if self.team.is_master():
                op()
            self.team.barrier()
        else:
            op()

    def _shared(self, field: str) -> bool:
        """Is ``field`` one physically shared copy across ranks?"""
        return self.caps.shared_fields and field in self.shared_fields

    def _shared_sync(self, kind: str, field: str) -> None:
        """Data movement on a shared field: synchronisation only.

        Every rank reads and writes the same pages, so scatter / gather
        / halo reduce to a barrier that orders the writes of the
        producing ranks before the reads of the consuming ones.
        """
        def _do() -> None:
            self.rankctx.comm.barrier()
            self.log.emit(kind, vtime=self.rankctx.clock.now,
                          rank=self.rank, field=field, shared=True)

        self._rank_comm_guarded(_do)

    def _slab_sync(self, kind: str, field: str, part) -> None:
        """Data movement on a slab-backed ``whole_at_safepoints`` field.

        Every member computes into its private scratch array; the shared
        slab carries the committed whole.  One movement is: barrier
        (fences every peer's reads of the previous committed state),
        writers commit — each owner its owned region for gather /
        allgather, the root the whole for scatter — barrier (commits
        landed), readers copy slab into scratch.  Values are
        bit-identical to the message path: the owned regions tile the
        partition axis, so the committed whole equals the
        gathered-then-broadcast whole.
        """
        view = self.slab_whole[field]

        def _do() -> None:
            comm = self.rankctx.comm
            arr = getattr(self.instance, field)
            layout = part.layout
            axis = layout.axis
            idx = layout.owned(arr.shape[axis], self.rank, self.nranks)
            sl = (slice(None),) * axis + (idx,)
            comm.barrier()
            if kind == "scatter":
                if self.rank == 0:
                    view[...] = arr
            else:
                view[sl] = arr[sl]
            comm.barrier()
            if kind == "allgather":
                arr[...] = view
            elif kind == "gather" and self.rank == 0:
                arr[...] = view
            elif kind == "scatter" and self.rank != 0:
                arr[sl] = view[sl]
            self.log.emit(kind, vtime=self.rankctx.clock.now,
                          rank=self.rank, field=field, slab=True)

        self._rank_comm_guarded(_do)

    def scatter_field(self, field: str) -> None:
        if not (self.distributed):
            return
        if self.replay_active():
            return  # data will come from the snapshot at the restore point
        part = self._part(field)
        if self._shared(field):
            self._shared_sync("scatter", field)
            return
        if field in self.slab_whole:
            self._slab_sync("scatter", field, part)
            return

        def _do() -> None:
            arr = getattr(self.instance, field)
            scatter_inplace(self.rankctx.comm, arr, part.layout, root=0)
            self.log.emit("scatter", vtime=self.rankctx.clock.now,
                          rank=self.rank, field=field)

        self._rank_comm_guarded(_do)

    def gather_field(self, field: str) -> None:
        if not (self.distributed):
            return
        if self.replay_active():
            return
        part = self._part(field)
        if self._shared(field):
            self._shared_sync("gather", field)
            return
        if field in self.slab_whole:
            self._slab_sync("gather", field, part)
            return

        def _do() -> None:
            arr = getattr(self.instance, field)
            gather_inplace(self.rankctx.comm, arr, part.layout, root=0)
            self.log.emit("gather", vtime=self.rankctx.clock.now,
                          rank=self.rank, field=field)

        self._rank_comm_guarded(_do)

    def allgather_field(self, field: str) -> None:
        """Whole-array refresh of a partitioned field on every member."""
        if not (self.distributed):
            return
        if self.replay_active():
            return
        part = self._part(field)
        if self._shared(field):
            self._shared_sync("allgather", field)
            return
        if field in self.slab_whole:
            self._slab_sync("allgather", field, part)
            return

        def _do() -> None:
            comm = self.rankctx.comm
            arr = getattr(self.instance, field)
            gather_inplace(comm, arr, part.layout, root=0)
            full = comm.bcast(arr if self.rank == 0 else None, root=0)
            if self.rank != 0:
                arr[...] = full
            self.log.emit("allgather", vtime=self.rankctx.clock.now,
                          rank=self.rank, field=field)

        self._rank_comm_guarded(_do)

    def halo_field(self, field: str) -> None:
        if not (self.distributed):
            return
        if self.replay_active():
            return
        part = self._part(field)
        if not isinstance(part.layout, BlockLayout) or part.layout.halo < 1:
            raise WeaveError(
                f"HaloExchange needs BlockLayout(halo>=1) on {field!r}")
        if self._shared(field):
            # neighbour planes are the same physical pages: the exchange
            # is purely the ordering barrier.
            self._shared_sync("halo", field)
            return

        def _do() -> None:
            exchange_halo(self.rankctx.comm, getattr(self.instance, field),
                          part.layout)

        self._rank_comm_guarded(_do)

    def reduce_result(self, value: Any,
                      combine: Callable[[Any, Any], Any] | None) -> Any:
        if not (self.distributed):
            return value
        if self.replay_active():
            return value
        if self.team is not None and self.team.in_region():
            raise WeaveError(
                "ReduceResult inside a hybrid parallel region is not "
                "supported; call the reduced method at rank level")
        return self.rankctx.comm.allreduce(value, op=combine)

    # ------------------------------------------------------------------
    # the safe-point protocol
    # ------------------------------------------------------------------
    def on_safepoint(self) -> None:
        """Pass one safe point (Figure 2 of the paper)."""
        if self.team is not None and self.team.in_region():
            self.team.safepoint(self._team_action)
            return
        # sequential or rank-level safe point
        count = self.counter.increment()
        self.clock().charge_compute(5e-8)
        self._protocol(count)

    def _team_action(self, sp_index: int, team: ThreadTeam) -> bool:
        """Runs once per team passage, all members parked."""
        key = (team.region_gen, sp_index)
        if key > self._last_counted:
            self._last_counted = key
            count = self.counter.increment()
        else:
            count = self.counter.count  # barrier-growth re-run: idempotent
        return self._protocol(count)

    def _protocol(self, count: int) -> bool:
        """Counting done; apply injection, replay, checkpointing, adaptation.

        Returns True if real work happened (the team charges its barrier
        pair only in that case).
        """
        tele = telemetry_writer()
        tr = trace_writer()
        if not tele.active and not tr.active:
            return self._protocol_body(count)
        t0 = perf_counter()
        try:
            return self._protocol_body(count)
        finally:
            # wall-side only: the histogram feeds the advisor's measured
            # quiesce cost; adaptation/failure unwinds still count — they
            # are safe-point passes the world paid for.
            dt = perf_counter() - t0
            if tele.active:
                tele.inc(_ts.SAFEPOINTS)
                tele.inc(_ts.SAFEPOINT_SECONDS, dt)
                tele.observe(_ts.SAFEPOINT_LATENCY, dt)
                tele.clocks(self.clock().now)
            if tr.active:
                tr.span(_tc.SAFEPOINT, t0, a=self.clock().now,
                        b=float(count))

    def _protocol_body(self, count: int) -> bool:
        acted = False
        if self.rank == 0:
            # one timestamped event per safe point: the per-iteration
            # timeline of the paper's Figure 6 is reconstructed from these.
            self.log.emit("safepoint", vtime=self.clock().now, count=count)
        self.injector.check(count, rank=self.rank if self.rankctx else None)
        if self.replay is not None and self.replay.active:
            if self.replay.observe_safepoint(count):
                # restore from the snapshot, or — for an elastic
                # JoinReplay — enter the membership rendezvous.
                self.replay.complete(self, count)
                acted = True
            return acted
        steer_step = None
        if self.steer is not None and self.distributed:
            # external steering (the runtime service's scheduler): rank 0
            # polls the shared control block and the verdict is broadcast
            # *unconditionally* every safe point — conditional polling
            # cannot be made deadlock-free against neighbour-only
            # collectives, a plain consensus bcast trivially is.  Placed
            # after the replay branch, which returns early on every rank
            # symmetrically, so the bcast stays collective.  A resize
            # verdict rides the normal adaptation slot at the *end* of
            # the protocol, exactly like a planned step, so nothing
            # collective runs between the membership switch and the next
            # safe point.
            directive = self.steer.poll(count) if self.rank == 0 else None
            directive = self.rankctx.comm.bcast(directive, root=0)
            if directive is not None:
                op, arg = directive
                if op == "cancel":
                    self.steer.raise_cancelled(count)  # raises, all ranks
                if op == "resize" and arg != self.config.nranks:
                    from dataclasses import replace as _replace

                    steer_step = AdaptStep(
                        at=count, config=_replace(self.config, nranks=arg))
        if self.policy.due(count):
            self.policy.mark_taken(count)
            self._take_checkpoint(count)
            acted = True
        step = self.plan.step_at(count)
        if step is None:
            pending = self.plan.take_pending()
            if pending is not None:
                step = AdaptStep(at=count, config=pending)
        if step is None and self.advisor is not None \
                and self.rankctx is None:
            target = self.advisor.on_safepoint(count, self.clock().now,
                                               self.config)
            if target is not None:
                step = AdaptStep(at=count, config=target)
        if step is None:
            step = steer_step
        if step is not None and step.config != self.config:
            self._adapt(step, count)  # may raise AdaptationExit
            acted = True
        return acted

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def capture_snapshot(self, count: int, collect: bool = True) -> Snapshot:
        """Build the mode-independent (master-format) snapshot.

        In distributed modes, partitioned fields are first collected at
        member 0 so the snapshot is whole — "collecting the data and
        taking the snapshot at the master process ... mak[es] it possible
        to restart the application on any of the execution modes".
        All ranks return a Snapshot object but only member 0's holds data.
        """
        tr = trace_writer()
        tw0 = perf_counter() if tr.active else 0.0
        shared_involved = False
        if collect and self.distributed:
            shared_involved = any(self._shared(f) for f in self.safedata)
            if shared_involved:
                # fence writers: every rank's updates to the shared
                # pages must land before member 0 copies them out.
                self.rankctx.comm.barrier()
            for f in self.safedata:
                part = self.partitioned.get(f)
                if part is not None and not part.whole_at_safepoints \
                        and not self._shared(f):
                    gather_inplace(self.rankctx.comm,
                                   getattr(self.instance, f),
                                   part.layout, root=0)
        snap = Snapshot.capture(
            self.instance, self.safedata, count,
            mode=self.mode.value, nranks=self.nranks,
            workers=self.config.workers)
        if shared_involved:
            # fence readers: no rank resumes mutating the shared pages
            # until member 0's capture (an immediate encode) is done.
            self.rankctx.comm.barrier()
        if tr.active:
            tr.span(_tc.CAPTURE, tw0, a=self.clock().now, b=float(count))
        return snap

    def _take_checkpoint(self, count: int) -> None:
        if self.store is None:
            raise WeaveError("checkpoint due but no CheckpointStore configured")
        if self.ckpt_strategy == STRATEGY_LOCAL and self.distributed:
            self._take_checkpoint_local(count)
            return
        t0 = self.clock().now
        tr = trace_writer()
        tw0 = perf_counter() if tr.active else 0.0
        snap = self.capture_snapshot(count)
        if self.rank == 0:
            self.store.write(snap)
            self._charge_write(self.store.last_write_nbytes)
            tele = telemetry_writer()
            tele.inc(_ts.CKPT_BYTES, float(self.store.last_write_nbytes))
            tele.inc(_ts.CKPT_WRITES)
            self._count_chunk_stats(tele, self.store)
        if tr.active:
            tr.span(_tc.CHECKPOINT, tw0, a=self.clock().now,
                    b=float(count))
        self.log.emit("checkpoint", vtime=self.clock().now, rank=self.rank,
                      count=count, nbytes=snap.nbytes,
                      written=self.store.last_write_nbytes,
                      ckpt_kind=self.store.last_write_kind,
                      asynchronous=self.store.is_async,
                      strategy=self.ckpt_strategy,
                      save_seconds=self.clock().now - t0)

    def _charge_write(self, nbytes: int,
                      store: CheckpointStore | None = None) -> None:
        """Charge one checkpoint write to the calling line of execution.

        Synchronous stores pay the full disk write inline.  With an async
        writer the critical path pays only the in-memory buffer copy; the
        disk time overlaps the compute that follows.  The model mirrors
        the writer's real backpressure — ``depth`` images may be queued
        behind the one in flight, writes are serialised, and a submission
        into a full queue stalls until the earliest pending write lands —
        so ``ckpt_async_depth`` changes modelled cost exactly as it
        changes the real writer's blocking.

        ``store`` selects the store whose write is being charged (a
        per-rank shard store under STRATEGY_LOCAL); default is the master
        store.
        """
        store = store if store is not None else self.store
        clk = self.clock()
        cost = self.machine.disk.write_cost(nbytes)
        if not store.is_async:
            clk.charge_io(cost)
            return
        clk.charge_io(self.machine.disk.copy_cost(nbytes))
        pending = [d for d in self._async_pending if d > clk.now]
        if len(pending) > store.writer.depth:
            clk.charge_io(pending[0] - clk.now)  # queue full: wait one out
            pending = pending[1:]
        start = max(clk.now, pending[-1] if pending else 0.0)
        pending.append(start + cost)
        self._async_pending = pending

    def ckpt_flush_barrier(self) -> None:
        """Make every submitted checkpoint durable, charging the
        non-overlapped remainder of the pending writes.

        Called at the boundaries where recovery may need to read what was
        written: adaptation exits, end of a phase, and (by the runtime,
        without a live clock) after failures.
        """
        if self.store is None or not self.store.is_async:
            return
        clk = self.clock()
        if self._async_pending and self._async_pending[-1] > clk.now:
            clk.charge_io(self._async_pending[-1] - clk.now)
        self._async_pending = []
        self.store.flush()

    def _take_checkpoint_local(self, count: int) -> None:
        """Per-rank shards with the paper's two global barriers.

        Each rank writes through its own shard sub-store
        (:meth:`CheckpointStore.shard`), so shard files get the master
        path's atomic-write discipline and — under an incremental master
        store — per-rank delta encoding with the same anchor policy.
        """
        assert self.rankctx is not None and self.store is not None
        shard = self.store.shard(self.rank)
        t0 = self.clock().now
        tr = trace_writer()
        tw0 = perf_counter() if tr.active else 0.0
        self.rankctx.comm.barrier()
        snap = Snapshot.capture(
            self.instance, self.safedata, count,
            mode=self.mode.value, nranks=self.nranks, shard=self.rank)
        shard.write(snap)
        self._charge_write(shard.last_write_nbytes, store=shard)
        tele = telemetry_writer()
        tele.inc(_ts.CKPT_BYTES, float(shard.last_write_nbytes))
        tele.inc(_ts.CKPT_WRITES)
        self._count_chunk_stats(tele, shard)
        self.rankctx.comm.barrier()
        if tr.active:
            tr.span(_tc.CHECKPOINT_LOCAL, tw0, a=self.clock().now,
                    b=float(count))
        self.log.emit("checkpoint", vtime=self.clock().now, rank=self.rank,
                      count=count, nbytes=snap.nbytes,
                      written=shard.last_write_nbytes,
                      ckpt_kind=shard.last_write_kind,
                      asynchronous=shard.is_async,
                      strategy="local",
                      save_seconds=self.clock().now - t0)

    @staticmethod
    def _count_chunk_stats(tele, store) -> None:
        """Mirror a CAS store's per-write chunk stats into this rank's
        telemetry page (no-op for plain/delta stores)."""
        stats = getattr(store, "last_write_stats", None)
        if not stats:
            return
        tele.inc(_ts.CKPT_CHUNKS_NEW, float(stats.get("chunks_new", 0)))
        tele.inc(_ts.CKPT_CHUNKS_DEDUP, float(stats.get("chunks_dedup", 0)))
        tele.inc(_ts.CKPT_DEDUP_SAVED,
                 float(stats.get("dedup_saved_bytes", 0)))

    def _restore(self, snap: Snapshot | None, count: int) -> None:
        """Load checkpoint data at the replay target (Figure 2b, step 4).

        In distributed modes *every* rank participates in the scatter /
        broadcast collectives even though only member 0 holds the snapshot
        (non-root members receive their partitions over the wire).
        """
        t0 = self.clock().now
        tr = trace_writer()
        tw0 = perf_counter() if tr.active else 0.0
        if self.distributed:
            comm = self.rankctx.comm
            if self.rank == 0 and snap is not None:
                if snap.meta.get("from_disk"):
                    self.clock().charge_io(self.machine.disk.read_cost(
                        snap.meta.get("disk_nbytes", snap.nbytes)))
                if snap.meta.get("cas_fetches"):
                    telemetry_writer().inc(
                        _ts.CKPT_FETCHES, float(snap.meta["cas_fetches"]))
                self._restore_into_root(snap)
            for f in self.safedata:
                if self._shared(f):
                    continue  # one shared copy, restored in place above
                part = self.partitioned.get(f)
                if part is not None and not part.whole_at_safepoints:
                    scatter_inplace(comm, getattr(self.instance, f),
                                    part.layout, root=0)
                else:
                    setattr(self.instance, f,
                            comm.bcast(getattr(self.instance, f), root=0))
            if any(self._shared(f) for f in self.safedata):
                # every rank waits for member 0's in-place refresh of the
                # shared pages before touching them again.
                comm.barrier()
        else:
            if snap is None:
                return  # pure call-stack replay: data is already in place
            if snap.meta.get("from_disk"):
                self.clock().charge_io(self.machine.disk.read_cost(
                    snap.meta.get("disk_nbytes", snap.nbytes)))
            if snap.meta.get("cas_fetches"):
                telemetry_writer().inc(
                    _ts.CKPT_FETCHES, float(snap.meta["cas_fetches"]))
            snap.restore_into(self.instance)
        if tr.active:
            tr.span(_tc.RESTORE, tw0, a=self.clock().now, b=float(count))
        self.log.emit("restore", vtime=self.clock().now, rank=self.rank,
                      count=count, nbytes=snap.nbytes if snap else 0,
                      load_seconds=self.clock().now - t0)

    def _restore_into_root(self, snap: Snapshot) -> None:
        """Member 0's restore, keeping shared views bound.

        A shared field's array *object* is the mapping onto the shared
        pages: rebinding it (plain ``restore_into``) would silently
        detach member 0 from its peers, so saved data is copied into the
        existing view instead.
        """
        for name, value in snap.fields.items():
            if self._shared(name):
                getattr(self.instance, name)[...] = value
            else:
                setattr(self.instance, name, value)

    # ------------------------------------------------------------------
    # adaptation
    # ------------------------------------------------------------------
    def _adapt(self, step: AdaptStep, count: int) -> None:
        new = step.config
        cur = self.config
        in_place_ok = not step.via_restart and step.in_place is not False \
            and new.mode == cur.mode \
            and new.backend == cur.backend  # backend switch must relaunch
        live_team_resize = (
            in_place_ok
            and new.nranks == cur.nranks
            and self.caps.team_regions
            and self.team is not None)
        if live_team_resize:
            # run-time protocol, thread dimension: reshape in place.
            from repro.core.adaptation import AdaptationRecord

            self.team.request_resize(new.workers)
            self.config = new
            tr = trace_writer()
            if tr.active:
                tr.instant(_tc.TEAM_RESIZE, a=self.clock().now,
                           b=float(new.workers))
            self.log.emit("adapt_resize", vtime=self.clock().now,
                          count=count, workers=new.workers)
            if self.rank == 0:
                self.reshapes.append(AdaptationRecord(
                    at_count=count, from_config=cur, to_config=new,
                    via_restart=False, vtime=self.clock().now,
                    extra={"in_place": True, "kind": "team_resize"}))
            return
        elastic_rank_reshape = (
            in_place_ok
            and new.nranks != cur.nranks
            and self.caps.elastic_ranks
            and self.reshaper is not None
            and self.rankctx is not None)
        if elastic_rank_reshape and self.reshaper.reshape(self, step, count):
            # membership transition done in place (retiring ranks never
            # reach here: they unwound via RankRetired inside reshape).
            return
        # Reshaping across modes/backends (or an elastic transition the
        # backend declined): unwind and relaunch.
        snap = self.capture_snapshot(count)
        if step.via_restart:
            # checkpoint/restart path: persist, then the relaunch reads
            # the file back (charging disk both ways).
            if self.store is None:
                raise WeaveError("restart-based adaptation needs a store")
            if self.rank == 0:
                self.store.write(snap)
                self._charge_write(self.store.last_write_nbytes)
                # the relaunch reads this file straight back: it must be
                # durable (and its vtime fully paid) before we unwind.
                self.ckpt_flush_barrier()
            snap.meta["from_disk"] = True
        tr = trace_writer()
        if tr.active:
            tr.instant(_tc.ADAPT_EXIT, a=self.clock().now, b=float(count))
        self.log.emit("adapt_exit", vtime=self.clock().now, rank=self.rank,
                      count=count, to=str(new), restart=step.via_restart)
        raise AdaptationExit(snap if self.rank == 0 else None, step)


def _contiguous_runs(indices) -> list[tuple[int, int]]:
    """Collapse a sorted index vector into [start, stop) runs."""
    runs: list[tuple[int, int]] = []
    start = prev = None
    for i in indices:
        i = int(i)
        if start is None:
            start = prev = i
        elif i == prev + 1:
            prev = i
        else:
            runs.append((start, prev + 1))
            start = prev = i
    if start is not None:
        runs.append((start, prev + 1))
    return runs


def clone_policy(policy: CheckpointPolicy) -> CheckpointPolicy:
    """Fresh per-rank copy of a policy (policies hold idempotence state)."""
    return copy.deepcopy(policy)
