"""Execution modes and backend capabilities.

Pluggable parallelisation deploys one code base in multiple execution
modes (Section III.A): strict sequential, shared-memory threads,
distributed-memory aggregates, and the hybrid composition.  The mode is a
property of the *execution context*, not the woven class: the same woven
class runs in any mode, which is what makes run-time adaptation possible.

A mode names a *semantic* shape; the machinery that realises it is an
:class:`repro.exec.ExecutionBackend` resolved through a backend registry.
:class:`Capabilities` is the contract between the two: the backend
declares which coordination services (team regions, rank collectives) the
:class:`~repro.core.context.ExecutionContext` may use, so the context
never has to branch on mode identity.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass


@dataclass(frozen=True)
class Capabilities:
    """Coordination services an execution backend provides.

    * ``team_regions`` — parallel regions on a thread team: team
      barriers, work sharing, team locks, single/master arbitration.
    * ``rank_collectives`` — rank-level communication: cluster barrier,
      scatter/gather/halo/allreduce, master-rank collection.
    * ``shared_fields`` — partitioned fields live in memory physically
      shared by all ranks (e.g. ``multiprocessing.shared_memory``
      segments): scatter/gather/halo data movement degenerates to
      synchronisation barriers, and checkpoint capture/restore touches
      the one shared copy in place instead of moving partitions over
      the wire.
    * ``elastic_ranks`` — the backend can grow/shrink its set of
      processing elements at a safe point *within* a phase: the
      safe-point protocol turns a rank-count adaptation into a
      membership transition (see :mod:`repro.elastic`) instead of an
      unwind-and-relaunch.  Thread teams resize their worker dimension
      in place under the same flag; relaunch remains the fallback for
      mode/backend switches and the recovery path.
    """

    team_regions: bool = False
    rank_collectives: bool = False
    shared_fields: bool = False
    elastic_ranks: bool = False


class Mode(enum.Enum):
    SEQUENTIAL = "sequential"
    SHARED = "shared"          # threads on one node (OpenMP-like)
    DISTRIBUTED = "distributed"  # object aggregates across nodes (MPI-like)
    HYBRID = "hybrid"          # aggregates of thread teams

    @property
    def uses_team(self) -> bool:
        return self in (Mode.SHARED, Mode.HYBRID)

    @property
    def uses_cluster(self) -> bool:
        return self in (Mode.DISTRIBUTED, Mode.HYBRID)

    def default_capabilities(self) -> Capabilities:
        """The capability set the mode's stock backend provides."""
        return Capabilities(team_regions=self.uses_team,
                            rank_collectives=self.uses_cluster)


@dataclass(frozen=True)
class ExecConfig:
    """A concrete resource shape: mode + worker/rank counts.

    ``processing_elements`` is the figure-of-merit the paper's plots use
    ("lines of execution" for threads, processes for MPI).

    ``backend`` optionally pins the configuration to a *named* execution
    backend in the registry instead of the mode's stock one, which is how
    an adaptation step (or a user) selects an alternative implementation
    of the same semantic shape.  ``None`` resolves by mode.
    """

    mode: Mode = Mode.SEQUENTIAL
    workers: int = 1   # threads per team (SHARED / HYBRID)
    nranks: int = 1    # aggregate members (DISTRIBUTED / HYBRID)
    backend: str | None = None  # registry name; None = resolve by mode

    def __post_init__(self) -> None:
        if self.workers < 1 or self.nranks < 1:
            raise ValueError("workers and nranks must be >= 1")
        if self.mode is Mode.SEQUENTIAL and (self.workers > 1 or self.nranks > 1):
            raise ValueError("sequential mode is single-worker by definition")
        if self.mode is Mode.SHARED and self.nranks > 1:
            raise ValueError("shared-memory mode cannot have multiple ranks")
        if self.mode is Mode.DISTRIBUTED and self.workers > 1:
            raise ValueError(
                "distributed mode is one worker per rank (use HYBRID)")

    @property
    def processing_elements(self) -> int:
        return self.workers * self.nranks

    def with_backend(self, name: str | None) -> "ExecConfig":
        """The same shape, resolved through the named backend."""
        return dataclasses.replace(self, backend=name)

    @classmethod
    def sequential(cls) -> "ExecConfig":
        return cls(Mode.SEQUENTIAL)

    @classmethod
    def shared(cls, workers: int) -> "ExecConfig":
        if workers == 1:
            return cls(Mode.SHARED, workers=1)
        return cls(Mode.SHARED, workers=workers)

    @classmethod
    def distributed(cls, nranks: int) -> "ExecConfig":
        return cls(Mode.DISTRIBUTED, nranks=nranks)

    @classmethod
    def hybrid(cls, nranks: int, workers: int) -> "ExecConfig":
        return cls(Mode.HYBRID, workers=workers, nranks=nranks)
