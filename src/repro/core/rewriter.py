"""The weaver: plug/unplug templates onto domain classes.

``plug(cls, plugset)`` returns a generated subclass of ``cls`` whose
join-point methods are wrapped according to the plug set — the Python
equivalent of the paper's compile/load-time rewriting (AspectJ weaving in
the original system; here decorator stacking on a subclass, which the
reproduction brief explicitly sanctions as the aspect substitute).

Properties the paper requires and tests verify:

* the base class is never mutated — ``unplug`` gives it back unchanged;
* a woven instance with **no execution context** behaves exactly like the
  base class (templates all no-op), so woven code still runs "strictly
  sequentially" when nothing is plugged at run time;
* wrappers dispatch on the context's *current* mode at call time, which
  is what allows the same woven object to be reshaped while running.

Wrapper nesting order follows ``Template.order`` (ascending = innermost):
synchronized < master/single < halo < for < reduce < barrier < scatter/
gather < safe point < parallel region < ignorable.
"""

from __future__ import annotations

import functools
from typing import Any, Callable

from repro.core.context import ExecutionContext
from repro.core.errors import WeaveError
from repro.core.plugs import PlugSet
from repro.core.templates import (
    AllGatherAfter,
    BarrierAfter,
    BarrierBefore,
    ForMethod,
    GatherAfter,
    HaloExchangeBefore,
    IgnorableMethod,
    MasterMethod,
    OnMaster,
    ParallelMethod,
    ReduceResult,
    SafePointAfter,
    SafePointBefore,
    ScatterBefore,
    SingleMethod,
    SynchronizedMethod,
    ThreadLocal,
)
from repro.smp.team import current_worker
from repro.smp.tls import ThreadLocalField
from repro.util.timing import WallTimer
from repro.vtime.calibrate import GLOBAL_CALIBRATOR


def _ctx_of(instance: Any) -> ExecutionContext | None:
    return getattr(instance, "__pp_ctx__", None)


def _tid_getter():
    w = current_worker()
    return w.tid if w is not None else None


# ---------------------------------------------------------------------------
# wrapper factories, one per method-join-point template
# ---------------------------------------------------------------------------
def _wrap_parallel(tmpl: ParallelMethod, inner: Callable) -> Callable:
    @functools.wraps(inner)
    def wrapper(self, *args, **kwargs):
        ctx = _ctx_of(self)
        if ctx is None or ctx.team is None or ctx.team.in_region():
            return inner(self, *args, **kwargs)

        def region_body():
            # hybrid: every team thread needs the rank identity for the
            # collectives funnelled through the team master.
            if ctx.rankctx is not None:
                from repro.dsm.comm import _bind

                _bind(ctx.rankctx)
            return inner(self, *args, **kwargs)

        return ctx.team.run_region(region_body)

    return wrapper


def _wrap_for(tmpl: ForMethod, inner: Callable) -> Callable:
    @functools.wraps(inner)
    def wrapper(self, lo, hi, *args, **kwargs):
        ctx = _ctx_of(self)
        if ctx is None:
            return inner(self, lo, hi, *args, **kwargs)
        base = getattr(type(self), "__pp_base__", type(self))
        key = f"{base.__name__}.{tmpl.method}"
        calibrated = tmpl.cost_model == "calibrated"
        result = None
        for s, e in ctx.for_ranges(int(lo), int(hi), tmpl):
            with WallTimer() as t:
                result = inner(self, s, e, *args, **kwargs)
            if calibrated:
                units = tmpl.units(s, e) if tmpl.units is not None else e - s
                cost = GLOBAL_CALIBRATOR.charge_for(key, units, t.elapsed)
            else:
                cost = t.elapsed
            ctx.clock().charge_compute(cost)
        return result

    return wrapper


def _wrap_synchronized(tmpl: SynchronizedMethod, inner: Callable) -> Callable:
    lock_name = tmpl.lock or tmpl.method

    @functools.wraps(inner)
    def wrapper(self, *args, **kwargs):
        ctx = _ctx_of(self)
        if ctx is None:
            return inner(self, *args, **kwargs)
        with ctx.lock(lock_name):
            return inner(self, *args, **kwargs)

    return wrapper


def _wrap_master(tmpl: MasterMethod, inner: Callable) -> Callable:
    @functools.wraps(inner)
    def wrapper(self, *args, **kwargs):
        ctx = _ctx_of(self)
        if ctx is None or ctx.is_master_thread():
            return inner(self, *args, **kwargs)
        return None

    return wrapper


def _wrap_single(tmpl: SingleMethod, inner: Callable) -> Callable:
    @functools.wraps(inner)
    def wrapper(self, *args, **kwargs):
        ctx = _ctx_of(self)
        if ctx is None or ctx.team is None:
            return inner(self, *args, **kwargs)
        if ctx.team.single_claim(tmpl.method):
            return inner(self, *args, **kwargs)
        return None

    return wrapper


def _wrap_barrier_before(tmpl: BarrierBefore, inner: Callable) -> Callable:
    @functools.wraps(inner)
    def wrapper(self, *args, **kwargs):
        ctx = _ctx_of(self)
        if ctx is not None:
            ctx.barrier()
        return inner(self, *args, **kwargs)

    return wrapper


def _wrap_barrier_after(tmpl: BarrierAfter, inner: Callable) -> Callable:
    @functools.wraps(inner)
    def wrapper(self, *args, **kwargs):
        result = inner(self, *args, **kwargs)
        ctx = _ctx_of(self)
        if ctx is not None:
            ctx.barrier()
        return result

    return wrapper


def _wrap_scatter_before(tmpl: ScatterBefore, inner: Callable) -> Callable:
    @functools.wraps(inner)
    def wrapper(self, *args, **kwargs):
        ctx = _ctx_of(self)
        if ctx is not None:
            ctx.scatter_field(tmpl.field)
        return inner(self, *args, **kwargs)

    return wrapper


def _wrap_gather_after(tmpl: GatherAfter, inner: Callable) -> Callable:
    @functools.wraps(inner)
    def wrapper(self, *args, **kwargs):
        result = inner(self, *args, **kwargs)
        ctx = _ctx_of(self)
        if ctx is not None:
            ctx.gather_field(tmpl.field)
        return result

    return wrapper


def _wrap_allgather_after(tmpl: AllGatherAfter, inner: Callable) -> Callable:
    @functools.wraps(inner)
    def wrapper(self, *args, **kwargs):
        result = inner(self, *args, **kwargs)
        ctx = _ctx_of(self)
        if ctx is not None:
            ctx.allgather_field(tmpl.field)
        return result

    return wrapper


def _wrap_halo_before(tmpl: HaloExchangeBefore, inner: Callable) -> Callable:
    @functools.wraps(inner)
    def wrapper(self, *args, **kwargs):
        ctx = _ctx_of(self)
        if ctx is not None:
            ctx.halo_field(tmpl.field)
        return inner(self, *args, **kwargs)

    return wrapper


def _wrap_reduce(tmpl: ReduceResult, inner: Callable) -> Callable:
    @functools.wraps(inner)
    def wrapper(self, *args, **kwargs):
        result = inner(self, *args, **kwargs)
        ctx = _ctx_of(self)
        if ctx is None:
            return result
        return ctx.reduce_result(result, tmpl.combine)

    return wrapper


def _wrap_on_master(tmpl: OnMaster, inner: Callable) -> Callable:
    @functools.wraps(inner)
    def wrapper(self, *args, **kwargs):
        ctx = _ctx_of(self)
        if ctx is None:
            return inner(self, *args, **kwargs)
        result = None
        if ctx.is_master_rank() and ctx.is_master_thread():
            result = inner(self, *args, **kwargs)
        if tmpl.broadcast and ctx.rankctx is not None \
                and not ctx.replay_active() and not ctx.in_region():
            result = ctx.rankctx.comm.bcast(result, root=0)
        return result

    return wrapper


def _wrap_safepoint_after(tmpl: SafePointAfter, inner: Callable) -> Callable:
    @functools.wraps(inner)
    def wrapper(self, *args, **kwargs):
        result = inner(self, *args, **kwargs)
        ctx = _ctx_of(self)
        if ctx is not None:
            ctx.on_safepoint()
        return result

    return wrapper


def _wrap_safepoint_before(tmpl: SafePointBefore, inner: Callable) -> Callable:
    @functools.wraps(inner)
    def wrapper(self, *args, **kwargs):
        ctx = _ctx_of(self)
        if ctx is not None:
            ctx.on_safepoint()
        return inner(self, *args, **kwargs)

    return wrapper


def _wrap_ignorable(tmpl: IgnorableMethod, inner: Callable) -> Callable:
    @functools.wraps(inner)
    def wrapper(self, *args, **kwargs):
        ctx = _ctx_of(self)
        if ctx is not None and ctx.replay_active():
            return None
        return inner(self, *args, **kwargs)

    return wrapper


_FACTORIES: dict[type, Callable[[Any, Callable], Callable]] = {
    AllGatherAfter: _wrap_allgather_after,
    ParallelMethod: _wrap_parallel,
    ForMethod: _wrap_for,
    SynchronizedMethod: _wrap_synchronized,
    MasterMethod: _wrap_master,
    SingleMethod: _wrap_single,
    BarrierBefore: _wrap_barrier_before,
    BarrierAfter: _wrap_barrier_after,
    ScatterBefore: _wrap_scatter_before,
    GatherAfter: _wrap_gather_after,
    HaloExchangeBefore: _wrap_halo_before,
    ReduceResult: _wrap_reduce,
    OnMaster: _wrap_on_master,
    SafePointAfter: _wrap_safepoint_after,
    SafePointBefore: _wrap_safepoint_before,
    IgnorableMethod: _wrap_ignorable,
}


# ---------------------------------------------------------------------------
# plug / unplug
# ---------------------------------------------------------------------------
def plug(cls: type, plugset: PlugSet) -> type:
    """Weave ``plugset`` onto ``cls``; returns the woven subclass."""
    if getattr(cls, "__pp_base__", None) is not None:
        raise WeaveError(
            f"{cls.__name__} is already woven; unplug first or compose "
            f"plug sets with '+' before weaving")
    namespace: dict[str, Any] = {}
    for method in plugset.methods():
        orig = getattr(cls, method, None)
        if orig is None or not callable(orig):
            raise WeaveError(
                f"join point {cls.__name__}.{method} does not exist")
        tmpls = plugset.for_method(method)
        # exactly-once templates: stacking two work-sharing or two region
        # declarations on one method silently mis-schedules work.
        for kind in (ForMethod, ParallelMethod):
            if sum(1 for t in tmpls if isinstance(t, kind)) > 1:
                raise WeaveError(
                    f"{kind.__name__} declared more than once for "
                    f"{cls.__name__}.{method}")
        wrapped: Callable = orig
        for tmpl in tmpls:
            factory = _FACTORIES.get(type(tmpl))
            if factory is None:
                raise WeaveError(f"no wrapper for template {tmpl!r}")
            wrapped = factory(tmpl, wrapped)
        namespace[method] = wrapped
    for tls in plugset.of_type(ThreadLocal):
        namespace[tls.field] = ThreadLocalField(tls.field, _tid_getter)
    woven = type(f"{cls.__name__}_PP", (cls,), namespace)
    woven.__pp_base__ = cls
    woven.__pp_plugs__ = plugset
    woven.__module__ = cls.__module__
    return woven


def unplug(woven: type) -> type:
    """Recover the untouched base class of a woven class."""
    base = getattr(woven, "__pp_base__", None)
    if base is None:
        raise WeaveError(f"{woven.__name__} is not a woven class")
    return base


def is_woven(cls: type) -> bool:
    return getattr(cls, "__pp_base__", None) is not None


def make_context(woven: type, config, **kwargs) -> ExecutionContext:
    """Build an :class:`ExecutionContext` pre-loaded with the woven class's
    checkpoint/partition declarations."""
    plugset: PlugSet = getattr(woven, "__pp_plugs__", PlugSet())
    kwargs.setdefault("safedata", plugset.safedata_fields())
    kwargs.setdefault("partitioned", plugset.partitioned_fields())
    return ExecutionContext(config, **kwargs)
