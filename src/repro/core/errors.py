"""Core exception types."""

from __future__ import annotations


class WeaveError(TypeError):
    """A template refers to a missing method/field, or weaving is invalid."""


class AdaptationExit(BaseException):
    """Control-flow signal: unwind the current execution for reshaping.

    Raised at a safe point when the requested adaptation cannot be applied
    in place (e.g. changing the rank count).  Carries the in-memory
    snapshot captured at that safe point so the runtime can relaunch in
    the new configuration and replay to it without touching disk — the
    paper's *run-time* adaptation path, as opposed to checkpoint/restart.

    Derives from ``BaseException`` so application-level ``except
    Exception`` handlers in domain code cannot swallow it.

    ``cooperative_unwind`` tells the SimCluster that every rank raises
    this on its own at the same safe point: the cluster must NOT tear the
    communicator down early (member 0 may still be draining the state
    gather that the other members already sent).
    """

    cooperative_unwind = True

    def __init__(self, snapshot, new_config) -> None:
        super().__init__(f"adapt to {new_config}")
        self.snapshot = snapshot
        self.new_config = new_config
