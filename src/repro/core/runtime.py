"""The Runtime: launching, restarting and reshaping woven applications.

``Runtime.run(...)`` is the rewritten "main" of the paper's Figure 2: it
performs the pcr start-up check (did the previous execution fail? is
there a checkpoint to replay to?), launches the application in the
requested configuration, and loops on the two unwind events:

* :class:`AdaptationExit` — a safe point decided to reshape across ranks
  or modes.  The runtime relaunches in the new configuration with a
  replay state targeting the exit safe point.  Live adaptations hand the
  captured snapshot over in memory; restart-based ones read it back from
  the checkpoint store and additionally pay the restart penalty.
* failures (:class:`InjectedFailure`, or a rank failure wrapping one) —
  with ``auto_recover`` the runtime restarts from the newest checkpoint,
  optionally in a different configuration (``recover_config``), which is
  exactly the paper's Figure 6 experiment.

Virtual time is continuous across phases: each relaunch's clocks start at
the previous phase's end time plus the modelled transition overhead.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.ckpt.delta import IncrementalCheckpointStore
from repro.ckpt.failure import FailureInjector, InjectedFailure
from repro.ckpt.policy import CheckpointPolicy, Never
from repro.ckpt.replay import ReplayState
from repro.ckpt.snapshot import Snapshot, SnapshotCorrupt
from repro.ckpt.store import CheckpointStore, RunLedger
from repro.ckpt.writer import AsyncCheckpointWriter
from repro.core.adaptation import AdaptationPlan, AdaptationRecord
from repro.core.context import (
    STRATEGY_MASTER,
    ExecutionContext,
    clone_policy,
)
from repro.core.errors import AdaptationExit, WeaveError
from repro.core.modes import ExecConfig, Mode
from repro.core.plugs import PlugSet
from repro.core.rewriter import is_woven
from repro.dsm.comm import current_rank
from repro.dsm.simcluster import RankFailure, SimCluster
from repro.smp.team import ThreadTeam
from repro.util.events import EventLog
from repro.vtime.machine import MachineModel


@dataclass
class PhaseReport:
    """One launch segment between adaptations/restarts."""

    config: ExecConfig
    start_vtime: float
    end_vtime: float
    outcome: str  # "completed" | "adapted" | "failed"


@dataclass
class RunResult:
    """What a :meth:`Runtime.run` invocation produced."""

    value: Any
    vtime: float
    events: EventLog
    final_config: ExecConfig
    phases: list[PhaseReport] = field(default_factory=list)
    restarts: int = 0
    adaptations: list[AdaptationRecord] = field(default_factory=list)

    @property
    def adapted(self) -> bool:
        return bool(self.adaptations)


class Runtime:
    """Launcher bound to a machine model and a checkpoint directory."""

    def __init__(self,
                 machine: MachineModel | None = None,
                 ckpt_dir: str | os.PathLike | None = None,
                 policy: CheckpointPolicy | None = None,
                 ckpt_strategy: str = STRATEGY_MASTER,
                 log: EventLog | None = None,
                 restart_penalty: float = 0.02,
                 adapt_penalty: float = 0.01,
                 ckpt_delta: bool = False,
                 ckpt_anchor_every: int = 8,
                 ckpt_compress_min_bytes: int | None = None,
                 ckpt_async: bool = False,
                 ckpt_async_depth: int = 2) -> None:
        self.machine = machine if machine is not None else MachineModel()
        if ckpt_dir is None:
            ckpt_dir = tempfile.mkdtemp(prefix="repro-ckpt-")
        # checkpointing subsystem knobs: incremental (delta) snapshots
        # with periodic full anchors, per-section zlib compression, and
        # an asynchronous double-buffered writer.  Defaults reproduce
        # the paper's full synchronous snapshot at every checkpoint.
        if ckpt_delta:
            self.store: CheckpointStore = IncrementalCheckpointStore(
                ckpt_dir, anchor=ckpt_anchor_every,
                compress_min_bytes=ckpt_compress_min_bytes)
        else:
            self.store = CheckpointStore(
                ckpt_dir, compress_min_bytes=ckpt_compress_min_bytes)
        if ckpt_async:
            self.store.attach_writer(AsyncCheckpointWriter(
                depth=ckpt_async_depth))
        self.ledger = RunLedger(ckpt_dir)
        self.policy = policy if policy is not None else Never()
        self.ckpt_strategy = ckpt_strategy
        self.log = log if log is not None else EventLog()
        #: modelled process-teardown + relaunch cost (JVM/job-submit class).
        self.restart_penalty = restart_penalty
        #: modelled coordination cost of a live cross-mode adaptation.
        self.adapt_penalty = adapt_penalty

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain and stop the async checkpoint writer (if any).

        Call when done with the runtime in long-lived processes; with
        ``ckpt_async`` each runtime otherwise keeps one idle daemon
        thread alive.  A closed runtime cannot checkpoint again.
        """
        self.store.close()

    def __enter__(self) -> "Runtime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def run(self,
            woven: type,
            ctor_args: tuple = (),
            ctor_kwargs: dict | None = None,
            entry: str = "run",
            entry_args: tuple = (),
            config: ExecConfig = ExecConfig.sequential(),
            plan: AdaptationPlan | None = None,
            injector: FailureInjector | None = None,
            auto_recover: bool = False,
            max_restarts: int = 8,
            recover_config: Callable[[int], ExecConfig] | None = None,
            advisor=None,
            fresh: bool = False) -> RunResult:
        """Execute ``woven(*ctor_args).entry(*entry_args)`` to completion.

        ``fresh`` wipes ledger + checkpoints first (ignore earlier runs).
        """
        if not is_woven(woven):
            raise WeaveError(
                f"{woven.__name__} is not woven; call plug(cls, plugset)")
        ctor_kwargs = ctor_kwargs or {}
        self._advisor = advisor
        plan = plan if plan is not None else AdaptationPlan()
        injector = injector if injector is not None else FailureInjector()
        if fresh:
            self.ledger.reset()
            self.store.clear()

        # --- pcr start-up check (Figure 2 step 1) ----------------------
        replay: ReplayState | None = None
        if self.ledger.previous_run_failed():
            self.store.flush()  # surviving async writes become readable
            snap = self.store.read_latest()
            if snap is not None:
                snap.meta["from_disk"] = True
                replay = ReplayState.from_snapshot(snap)
                self.log.emit("pcr_replay_engaged",
                              count=snap.safepoint_count)

        vtime = 0.0
        phases: list[PhaseReport] = []
        adaptations: list[AdaptationRecord] = []
        restarts = 0

        while True:
            self.ledger.mark_running()
            probe: dict[str, float] = {"end": vtime}
            try:
                value = self._launch_phase(
                    woven, ctor_args, ctor_kwargs, entry, entry_args,
                    config, plan, injector, replay, vtime, probe)
                self.store.flush()  # all checkpoints durable before "done"
                self.ledger.mark_completed()
                phases.append(PhaseReport(config, vtime, probe["end"],
                                          "completed"))
                return RunResult(value=value, vtime=probe["end"],
                                 events=self.log, final_config=config,
                                 phases=phases, restarts=restarts,
                                 adaptations=adaptations)
            except AdaptationExit as ae:
                phases.append(PhaseReport(config, vtime, probe["end"],
                                          "adapted"))
                step = ae.new_config
                snap = ae.snapshot
                if step.via_restart:
                    self.store.flush()
                    try:
                        # the checkpoint at the exit point, regardless of
                        # whether newer checkpoints exist on disk.
                        disk = self.store.read(step.at)
                    except (SnapshotCorrupt, OSError):
                        raise WeaveError(
                            "restart-based adaptation found no checkpoint "
                            f"at safe point {step.at}") from ae
                    disk.meta["from_disk"] = True
                    snap = disk
                    vtime = probe["end"] + self.restart_penalty
                else:
                    vtime = probe["end"] + self.adapt_penalty
                adaptations.append(AdaptationRecord(
                    at_count=step.at, from_config=config,
                    to_config=step.config, via_restart=step.via_restart,
                    vtime=vtime))
                replay = ReplayState(target=step.at, snapshot=snap)
                config = step.config
                continue
            except InjectedFailure as fail:
                phases.append(PhaseReport(config, vtime, probe["end"],
                                          "failed"))
                self.log.emit("failure", vtime=probe["end"],
                              count=fail.safepoint)
                # recovery (this run's or a later one's) must only ever
                # see fully-written files.
                self.store.flush()
                if not auto_recover:
                    raise  # ledger stays "running": next run() replays
                restarts += 1
                if restarts > max_restarts:
                    raise
                snap = self.store.read_latest()
                if snap is not None:
                    snap.meta["from_disk"] = True
                    replay = ReplayState.from_snapshot(snap)
                else:
                    replay = None  # no checkpoint: recompute from scratch
                if recover_config is not None:
                    config = recover_config(restarts)
                vtime = probe["end"] + self.restart_penalty
                continue

    # ------------------------------------------------------------------
    def _launch_phase(self, woven: type, ctor_args: tuple, ctor_kwargs: dict,
                      entry: str, entry_args: tuple, config: ExecConfig,
                      plan: AdaptationPlan, injector: FailureInjector,
                      replay: ReplayState | None, start_vtime: float,
                      probe: dict[str, float]) -> Any:
        if config.mode.uses_cluster:
            return self._launch_cluster(
                woven, ctor_args, ctor_kwargs, entry, entry_args, config,
                plan, injector, replay, start_vtime, probe)
        return self._launch_local(
            woven, ctor_args, ctor_kwargs, entry, entry_args, config,
            plan, injector, replay, start_vtime, probe)

    def _make_context(self, woven: type, config: ExecConfig,
                      plan: AdaptationPlan, injector: FailureInjector,
                      replay: ReplayState | None, rankctx=None,
                      team: ThreadTeam | None = None) -> ExecutionContext:
        plugset: PlugSet = getattr(woven, "__pp_plugs__", PlugSet())
        rep = None
        if replay is not None:
            # each rank/phase needs its own replay cursor over the shared
            # snapshot (replay state is consumed as safe points pass).
            rep = ReplayState(
                target=replay.target,
                snapshot=replay.snapshot
                if (rankctx is None or rankctx.rank == 0) else None)
        return ExecutionContext(
            config=config, machine=self.machine, log=self.log,
            store=self.store, policy=clone_policy(self.policy),
            injector=injector, plan=plan, replay=rep,
            safedata=plugset.safedata_fields(),
            partitioned=plugset.partitioned_fields(),
            ckpt_strategy=self.ckpt_strategy, rankctx=rankctx, team=team,
            advisor=getattr(self, "_advisor", None))

    def _launch_local(self, woven, ctor_args, ctor_kwargs, entry, entry_args,
                      config, plan, injector, replay, start_vtime, probe):
        """Sequential or shared-memory phase (single simulated node)."""
        ctx = self._make_context(woven, config, plan, injector, replay)
        if ctx.team is not None:
            ctx.team.clock.advance_to(start_vtime)
        else:
            ctx._seq_clock.advance_to(start_vtime)
        try:
            instance = woven(*ctor_args, **ctor_kwargs)
            ctx.bind(instance)
            value = getattr(instance, entry)(*entry_args)
            ctx.ckpt_flush_barrier()  # pay the in-flight write remainder
            return value
        finally:
            probe["end"] = max(probe["end"], ctx.max_time())

    def _launch_cluster(self, woven, ctor_args, ctor_kwargs, entry,
                        entry_args, config, plan, injector, replay,
                        start_vtime, probe):
        """Distributed or hybrid phase on a fresh SimCluster."""
        cluster = SimCluster(config.nranks, self.machine, self.log,
                             start_time=start_vtime)

        def rank_entry():
            rankctx = current_rank()
            team = None
            if config.mode is Mode.HYBRID:
                team = ThreadTeam(self.machine, size=config.workers,
                                  log=self.log)
                team.clock.advance_to(rankctx.clock.now)
            ctx = self._make_context(woven, config, plan, injector, replay,
                                     rankctx=rankctx, team=team)
            instance = woven(*ctor_args, **ctor_kwargs)
            ctx.bind(instance)
            result = getattr(instance, entry)(*entry_args)
            if team is not None:
                rankctx.clock.advance_to(team.clock.now)
            if rankctx.rank == 0:
                ctx.ckpt_flush_barrier()
            return result

        try:
            results = cluster.run(rank_entry)
            return results[0]
        except RankFailure as rf:
            # unwrap the interesting causes gathered across ranks
            causes = [e.cause for e in cluster.errors]
            exits = [c for c in causes if isinstance(c, AdaptationExit)]
            with_snap = [c for c in exits if c.snapshot is not None]
            if with_snap:
                raise with_snap[0] from None
            if exits:
                raise exits[0] from None
            fails = [c for c in causes if isinstance(c, InjectedFailure)]
            if fails:
                raise fails[0] from None
            raise rf
        finally:
            probe["end"] = max(probe["end"], cluster.max_time)
