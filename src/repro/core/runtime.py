"""The Runtime: launching, restarting and reshaping woven applications.

``Runtime.run(...)`` is the rewritten "main" of the paper's Figure 2: it
performs the pcr start-up check (did the previous execution fail? is
there a checkpoint to replay to?) and hands the run to a
:class:`~repro.exec.driver.PhaseDriver`, which loops phases through the
execution-backend registry.  The runtime itself contains no launch code
and no mode conditionals: *how* a configuration executes is entirely the
resolved :class:`~repro.exec.base.ExecutionBackend`'s concern, which is
what makes a new execution substrate a drop-in backend module instead of
a launcher rewrite.

The driver reacts to the two unwind outcomes a backend can report:

* adaptation — a safe point decided to reshape across ranks, modes or
  backends.  The run relaunches in the new configuration with a replay
  state targeting the exit safe point.  Live adaptations hand the
  captured snapshot over in memory; restart-based ones read it back from
  the checkpoint store and additionally pay the restart penalty.
* failure — with ``auto_recover`` the run restarts from the newest
  checkpoint, optionally in a different configuration
  (``recover_config``), which is exactly the paper's Figure 6 experiment.

Virtual time is continuous across phases: each relaunch's clocks start at
the previous phase's end time plus the modelled transition overhead.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.ckpt.delta import IncrementalCheckpointStore
from repro.ckpt.failure import FailureInjector
from repro.ckpt.policy import AdaptiveAnchor, AnchorPolicy, CheckpointPolicy, Never
from repro.ckpt.replay import ReplayState
from repro.ckpt.store import CheckpointStore, RunLedger
from repro.ckpt.writer import AsyncCheckpointWriter
from repro.core.adaptation import AdaptationPlan, AdaptationRecord
from repro.core.context import STRATEGY_MASTER
from repro.core.errors import WeaveError
from repro.core.modes import ExecConfig
from repro.core.rewriter import is_woven
from repro.util.events import EventLog
from repro.vtime.machine import MachineModel


@dataclass
class PhaseReport:
    """One launch segment between adaptations/restarts."""

    config: ExecConfig
    start_vtime: float
    end_vtime: float
    outcome: str  # "completed" | "adapted" | "failed"


@dataclass
class RunResult:
    """What a :meth:`Runtime.run` invocation produced."""

    value: Any
    vtime: float
    events: EventLog
    final_config: ExecConfig
    phases: list[PhaseReport] = field(default_factory=list)
    restarts: int = 0
    adaptations: list[AdaptationRecord] = field(default_factory=list)
    #: serialized :meth:`~repro.telemetry.registry.MetricsRegistry.
    #: snapshot` of the run's metrics (``None`` with telemetry off) —
    #: the same wire shape the service ``stats`` RPC returns and
    #: ``FigureReport.emit_json`` embeds.
    metrics: dict | None = None
    #: assembled Chrome trace-event document (``None`` with tracing
    #: off): one track per rank plus the driver track, nested safe-point
    #: /checkpoint spans, cross-rank message flow arrows — load it
    #: straight into Perfetto / ``chrome://tracing``.
    trace: dict | None = None

    @property
    def adapted(self) -> bool:
        return bool(self.adaptations)

    @property
    def relaunches(self) -> int:
        """Phase relaunches the run paid (0 = everything ran in place).

        Every phase after the first is one teardown + relaunch —
        adaptation unwinds and failure restarts alike.  Elastic in-place
        reshapes never add a phase, which is the whole point of
        :mod:`repro.elastic`.
        """
        return max(0, len(self.phases) - 1)

    @property
    def in_place_reshapes(self) -> list[AdaptationRecord]:
        """Adaptations applied without a relaunch (membership
        transitions and live team resizes)."""
        return [a for a in self.adaptations if a.extra.get("in_place")]


class Runtime:
    """Launcher bound to a machine model and a checkpoint directory."""

    def __init__(self,
                 machine: MachineModel | None = None,
                 ckpt_dir: str | os.PathLike | None = None,
                 policy: CheckpointPolicy | None = None,
                 ckpt_strategy: str = STRATEGY_MASTER,
                 log: EventLog | None = None,
                 restart_penalty: float = 0.02,
                 adapt_penalty: float = 0.01,
                 ckpt_delta: bool = False,
                 ckpt_anchor_every: int | str | AnchorPolicy = 8,
                 ckpt_compress_min_bytes: int | None = None,
                 ckpt_async: bool = False,
                 ckpt_async_depth: int = 2,
                 ckpt_cas: bool = False,
                 ckpt_cas_params=None,
                 registry=None,
                 store: CheckpointStore | None = None,
                 ledger: RunLedger | None = None,
                 telemetry: bool = True,
                 metrics=None,
                 trace: bool | str = False) -> None:
        self.machine = machine if machine is not None else MachineModel()
        if ckpt_dir is None:
            ckpt_dir = tempfile.mkdtemp(prefix="repro-ckpt-")
        # checkpointing subsystem knobs: incremental (delta) snapshots
        # with periodic full anchors (fixed cadence, an AnchorPolicy, or
        # "adaptive" for the delta/full-ratio-driven policy), per-section
        # zlib compression, and an asynchronous double-buffered writer.
        # Defaults reproduce the paper's full synchronous snapshot at
        # every checkpoint.  An injected ``store``/``ledger`` (the
        # service's per-job namespaced sub-stores) overrides all of the
        # construction knobs above — the caller owns its configuration.
        if ckpt_anchor_every == "adaptive":
            ckpt_anchor_every = AdaptiveAnchor()
        if store is not None:
            self.store: CheckpointStore = store
        elif ckpt_cas:
            # the checkpoint object store: content-defined chunk recipes
            # over a dedup CAS (takes precedence over ckpt_delta — a
            # recipe already writes only the chunks that changed).
            from repro.ckpt.cas import CasCheckpointStore
            from repro.ckpt.chunker import DEFAULT_PARAMS

            self.store = CasCheckpointStore(
                ckpt_dir,
                chunk_params=(ckpt_cas_params if ckpt_cas_params is not None
                              else DEFAULT_PARAMS),
                compress_min_bytes=ckpt_compress_min_bytes)
        elif ckpt_delta:
            self.store = IncrementalCheckpointStore(
                ckpt_dir, anchor=ckpt_anchor_every,
                compress_min_bytes=ckpt_compress_min_bytes)
        else:
            self.store = CheckpointStore(
                ckpt_dir, compress_min_bytes=ckpt_compress_min_bytes)
        if ckpt_async and store is None:
            self.store.attach_writer(AsyncCheckpointWriter(
                depth=ckpt_async_depth))
        self.ledger = ledger if ledger is not None else RunLedger(ckpt_dir)
        self.policy = policy if policy is not None else Never()
        self.ckpt_strategy = ckpt_strategy
        self.log = log if log is not None else EventLog()
        #: modelled process-teardown + relaunch cost (JVM/job-submit class).
        self.restart_penalty = restart_penalty
        #: modelled coordination cost of a live cross-mode adaptation.
        self.adapt_penalty = adapt_penalty
        #: execution-backend registry (None = the process-wide default).
        self.registry = registry
        # the run's metrics plane: wall-side only (never consulted by a
        # virtual clock), so results are bit-identical with telemetry on
        # or off.  ``metrics`` injects a shared registry (the service
        # aggregates per-job runtimes into one); ``telemetry=False``
        # disables scraping entirely.
        if metrics is not None:
            self.metrics = metrics
        elif telemetry:
            from repro.telemetry import MetricsRegistry

            self.metrics = MetricsRegistry()
        else:
            self.metrics = None
        # the run's trace plane: ``trace=True`` records full-depth rings
        # (Perfetto-loadable timelines), ``trace="flight"`` keeps them
        # small so only the last-N events per rank survive — the crash
        # flight recorder.  Wall-side only, like telemetry: results are
        # bit-identical with tracing on or off.
        self.trace = trace
        if self.metrics is not None:
            writer = getattr(self.store, "writer", None)
            if writer is not None:
                # async-writer overlap: cumulative attrs surface as
                # callback gauges so repeated runs never double-count.
                self.metrics.gauge_fn(
                    "repro_ckpt_writer_bytes_submitted",
                    lambda: float(writer.bytes_submitted),
                    help="Checkpoint bytes handed to the async writer")
                self.metrics.gauge_fn(
                    "repro_ckpt_writer_writes_completed",
                    lambda: float(writer.writes_completed),
                    help="Checkpoint files the async writer made durable")
                self.metrics.gauge_fn(
                    "repro_ckpt_writer_busy_seconds",
                    lambda: float(writer.busy_seconds),
                    help="Wall seconds the async writer spent in disk "
                         "writes (the overlap it buys)")
            cas = getattr(self.store, "cas", None)
            if cas is not None:
                # the chunk store's cumulative counters, parent-side:
                # restore fan-out and GC happen in the driver, where no
                # rank telemetry page is bound.
                st = self.store
                self.metrics.gauge_fn(
                    "repro_ckpt_cas_chunks_stored",
                    lambda: float(cas.chunks_stored),
                    help="Distinct chunks the CAS stored")
                self.metrics.gauge_fn(
                    "repro_ckpt_cas_bytes_stored",
                    lambda: float(cas.bytes_stored),
                    help="On-disk bytes of stored chunks")
                self.metrics.gauge_fn(
                    "repro_ckpt_cas_dedup_bytes_saved",
                    lambda: float(cas.bytes_deduped),
                    help="Payload bytes satisfied by already-stored chunks")
                self.metrics.gauge_fn(
                    "repro_ckpt_cas_chunks_swept",
                    lambda: float(cas.chunks_swept),
                    help="Unreferenced chunks reclaimed by GC")
                self.metrics.gauge_fn(
                    "repro_ckpt_restore_fetches",
                    lambda: float(st.restore_fetches_total),
                    help="Chunk fetches performed by parallel restores")
                self.metrics.gauge_fn(
                    "repro_ckpt_restore_seconds",
                    lambda: float(st.restore_seconds_total),
                    help="Wall seconds spent fetching + decoding chunks "
                         "on restores")

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain and stop the async checkpoint writer (if any).

        Call when done with the runtime in long-lived processes; with
        ``ckpt_async`` each runtime otherwise keeps one idle daemon
        thread alive.  A closed runtime cannot checkpoint again.
        """
        self.store.close()

    def __enter__(self) -> "Runtime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def run(self,
            woven: type,
            ctor_args: tuple = (),
            ctor_kwargs: dict | None = None,
            entry: str = "run",
            entry_args: tuple = (),
            config: ExecConfig = ExecConfig.sequential(),
            plan: AdaptationPlan | None = None,
            injector: FailureInjector | None = None,
            auto_recover: bool = False,
            max_restarts: int = 8,
            recover_config: Callable[[int], ExecConfig] | None = None,
            advisor=None,
            fresh: bool = False) -> RunResult:
        """Execute ``woven(*ctor_args).entry(*entry_args)`` to completion.

        ``fresh`` wipes ledger + checkpoints first (ignore earlier runs).
        """
        # Imported lazily: repro.exec depends on repro.core modules, so a
        # top-level import here would re-enter this package mid-init.
        from repro.exec.base import PhaseServices
        from repro.exec.driver import PhaseDriver

        if not is_woven(woven):
            raise WeaveError(
                f"{woven.__name__} is not woven; call plug(cls, plugset)")
        if advisor is not None and self.registry is not None:
            # the advisor must only propose configurations THIS runtime's
            # registry can launch, not the process-wide default's.
            sync = getattr(advisor, "use_registry", None)
            if sync is not None:
                sync(self.registry)
        if advisor is not None and self.metrics is not None \
                and getattr(advisor, "measured_rates", None) is None:
            # close the loop: the advisor's transition ranking blends
            # the live measured rates scraped into this run's registry
            # (calibration remains the cold-start fallback).
            wire = getattr(advisor, "use_measured", None)
            if wire is not None:
                from repro.telemetry import MeasuredRates

                wire(MeasuredRates(self.metrics))
        ctor_kwargs = ctor_kwargs or {}
        plan = plan if plan is not None else AdaptationPlan()
        injector = injector if injector is not None else FailureInjector()
        if fresh:
            self.ledger.reset()
            self.store.clear()

        # --- pcr start-up check (Figure 2 step 1) ----------------------
        replay: ReplayState | None = None
        if self.ledger.previous_run_failed():
            self.store.flush()  # surviving async writes become readable
            snap = self.store.read_latest()
            if snap is None:
                # STRATEGY_LOCAL runs may only have per-rank shards on
                # disk; reassemble the newest complete set (the layouts
                # travel with the woven class's plug declarations).
                plugset = getattr(woven, "__pp_plugs__", None)
                snap = self.store.assemble_latest_from_shards(
                    plugset.partitioned_fields() if plugset else {})
            if snap is not None:
                snap.meta["from_disk"] = True
                replay = ReplayState.from_snapshot(snap)
                self.log.emit("pcr_replay_engaged",
                              count=snap.safepoint_count)

        collector = None
        if self.trace:
            from repro.trace import TraceCollector

            collector = TraceCollector(flight=(self.trace == "flight"))
        services = PhaseServices(
            machine=self.machine, log=self.log, store=self.store,
            policy=self.policy, ckpt_strategy=self.ckpt_strategy,
            advisor=advisor, metrics=self.metrics, trace=collector)
        driver = PhaseDriver(services, self.ledger, registry=self.registry,
                             restart_penalty=self.restart_penalty,
                             adapt_penalty=self.adapt_penalty)
        result = driver.drive(
            woven, ctor_args, ctor_kwargs, entry, entry_args, config,
            plan, injector, replay, auto_recover=auto_recover,
            max_restarts=max_restarts, recover_config=recover_config)
        if self.metrics is not None:
            # run-level counters: the same facts RunResult derives from
            # its phase/adaptation records, re-exported under the unified
            # naming scheme so every consumer reads one vocabulary.
            self.metrics.counter_inc(
                "repro_runtime_runs_total", 1.0,
                help="Completed Runtime.run invocations")
            self.metrics.counter_inc(
                "repro_runtime_relaunches_total", float(result.relaunches),
                help="Phase relaunches paid (teardown + restart chains)")
            self.metrics.counter_inc(
                "repro_runtime_restarts_total", float(result.restarts),
                help="Failure-recovery restarts")
            self.metrics.counter_inc(
                "repro_runtime_in_place_reshapes_total",
                float(len(result.in_place_reshapes)),
                help="Adaptations applied without a relaunch")
            result.metrics = self.metrics.snapshot()
        if collector is not None:
            result.trace = collector.assemble(events=self.log)
        return result
