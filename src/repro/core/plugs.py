"""PlugSet: a composable module of templates.

"The key of this work is the concept of pluggable parallelisation, which
localises parallelisation issues into multiple modules that can be
(un)plugged" — a :class:`PlugSet` is one such module (typically one per
concern: shared-memory parallelisation, distributed parallelisation,
checkpointing).  Sets compose with ``+`` ("the modules can also be
composed to attain complex forms of parallelisation").
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.errors import WeaveError
from repro.core.templates import (
    Partitioned,
    Replicate,
    SafeData,
    Template,
)


class PlugSet:
    """An ordered, immutable collection of templates."""

    def __init__(self, *templates: Template | Iterable[Template],
                 name: str = "") -> None:
        flat: list[Template] = []
        for t in templates:
            if isinstance(t, Template):
                flat.append(t)
            else:
                flat.extend(t)
        for t in flat:
            if not isinstance(t, Template):
                raise WeaveError(f"not a template: {t!r}")
        self._templates = tuple(flat)
        self.name = name

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Template]:
        return iter(self._templates)

    def __len__(self) -> int:
        return len(self._templates)

    def __add__(self, other: "PlugSet") -> "PlugSet":
        if not isinstance(other, PlugSet):
            return NotImplemented
        name = "+".join(n for n in (self.name, other.name) if n)
        return PlugSet(*self._templates, *other._templates, name=name)

    def __repr__(self) -> str:
        inner = ", ".join(type(t).__name__ for t in self._templates)
        label = f" {self.name!r}" if self.name else ""
        return f"PlugSet{label}({inner})"

    # ------------------------------------------------------------------
    def of_type(self, kind: type) -> list[Template]:
        return [t for t in self._templates if isinstance(t, kind)]

    def for_method(self, method: str) -> list[Template]:
        """Templates whose join point is ``method``, in weaving order."""
        hits = [t for t in self._templates if method in t.join_points()]
        return sorted(hits, key=lambda t: t.order)

    def methods(self) -> list[str]:
        """All join-point method names, deduplicated, declaration order."""
        seen: dict[str, None] = {}
        for t in self._templates:
            for m in t.join_points():
                seen.setdefault(m)
        return list(seen)

    # -- concern summaries used by the weaver / context -----------------
    def safedata_fields(self) -> list[str]:
        out: list[str] = []
        for t in self.of_type(SafeData):
            for f in t.fields:
                if f not in out:
                    out.append(f)
        return out

    def partitioned_fields(self) -> dict[str, Partitioned]:
        out: dict[str, Partitioned] = {}
        for t in self.of_type(Partitioned):
            if t.field in out:
                raise WeaveError(f"field {t.field!r} partitioned twice")
            out[t.field] = t
        return out

    def is_replicated_class(self) -> bool:
        return bool(self.of_type(Replicate))
