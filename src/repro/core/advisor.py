"""Self-adaptation advisor — the paper's stated future work.

Conclusion of the paper: "Current implementation of this approach rel[ies]
on external tools [to] determine the optimal set of resources ...  A
natural evolution is to incorporate mechanisms to find opportunities for
self-adaptation to improve execution time, by monitoring the application
and the system state."

:class:`SelfAdaptationAdvisor` is that mechanism: it watches the
application's own safe-point timestamps (no external monitor needed),
measures the per-iteration time of the current configuration over a
window, and greedily climbs a ladder of candidate configurations —
sequential → growing thread teams → distributed — keeping each step only
if it actually improved throughput by more than ``tolerance``.  When a
step stops paying, it settles on the best configuration seen and goes
dormant.

Scope: decisions are taken at safe points of sequential / shared-memory
phases (where a single decision point exists — the parked team).  The
advisor may well *move* the application into distributed execution; once
there it stays until the run ends or an explicit plan reshapes it again
(asynchronous self-decisions across independent ranks would need a
consensus round the paper does not describe).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.modes import ExecConfig, Mode
from repro.vtime.machine import MachineModel


@dataclass
class _Trial:
    config: ExecConfig
    start_count: int
    start_vtime: float


class SelfAdaptationAdvisor:
    """Measure-and-climb configuration search over the run's own timeline.

    Candidate rungs are filtered through the execution-backend
    ``registry`` (default: the process-wide one), so the advisor only
    ever proposes configurations whose mode actually has a registered
    backend — an adaptation decision is a backend choice, not just a
    shape.
    """

    def __init__(self, machine: MachineModel, max_pe: int | None = None,
                 window: int = 5, tolerance: float = 0.05,
                 registry=None, transition_aware: bool = False,
                 measured=None) -> None:
        from repro.exec.registry import default_registry

        if window < 2:
            raise ValueError("need at least 2 safe points per measurement")
        if not (0.0 <= tolerance < 1.0):
            raise ValueError("tolerance must be in [0, 1)")
        self.machine = machine
        self.window = window
        self.tolerance = tolerance
        #: gate ladder climbs on the modelled cost of *getting there*:
        #: a rung whose transition costs more than a whole measurement
        #: window of the current configuration cannot pay for its own
        #: trial and is skipped (the advisor settles instead).  Uses the
        #: per-backend calibrated machine model, so e.g. process-rank
        #: relaunches (fork-class spawn costs) are priced honestly while
        #: elastic in-place reshapes stay cheap.
        self.transition_aware = transition_aware
        #: a :class:`~repro.telemetry.measured.MeasuredRates` view over
        #: the run's metrics registry, or ``None`` for calibration-only
        #: ranking (the cold-start default; results are then identical
        #: to the pre-telemetry advisor).
        self.measured_rates = measured
        self.max_pe = max_pe if max_pe is not None else machine.total_cores
        self.registry = registry if registry is not None else default_registry()
        self.ladder = self._build_ladder()
        #: measured seconds-per-iteration per tried configuration.
        self.measured: dict[ExecConfig, float] = {}
        self._trial: _Trial | None = None
        self._settled = False
        self.decisions: list[tuple[int, ExecConfig]] = []

    def use_registry(self, registry) -> None:
        """Re-anchor the candidate ladder on ``registry``.

        The runtime calls this when it launches with its own backend
        registry, so the advisor never proposes a configuration the
        driver cannot resolve.  Keeps measurements; rebuilds the ladder.
        """
        if registry is None or registry is self.registry:
            return
        self.registry = registry
        self.ladder = self._build_ladder()

    def use_measured(self, measured) -> None:
        """Adopt a live measured-rates view (the runtime wires the
        telemetry registry's view in when telemetry is enabled)."""
        self.measured_rates = measured

    # ------------------------------------------------------------------
    def _build_ladder(self) -> list[ExecConfig]:
        """Candidate configurations in increasing parallelism, restricted
        to modes the backend registry can actually launch."""
        ladder = [ExecConfig.sequential()]
        if self.registry.supports(Mode.SHARED):
            w = 2
            while w <= min(self.max_pe, self.machine.cores_per_node):
                ladder.append(ExecConfig.shared(w))
                w *= 2
        if self.registry.supports(Mode.DISTRIBUTED):
            p = self.machine.cores_per_node * 2
            while p <= self.max_pe:
                ladder.append(ExecConfig.distributed(p))
                p *= 2
        return ladder

    # ------------------------------------------------------------------
    # transition ranking (per-backend calibrated cost model)
    # ------------------------------------------------------------------
    def _quiesce_cost(self, m: MachineModel, pe: int) -> float:
        """The barrier (quiesce) term of an in-place reshape: the
        calibrated prior, blended with the measured mean safe-point
        latency when a :meth:`use_measured` view is wired in."""
        calibrated = m.barrier_cost(pe)
        if self.measured_rates is None:
            return calibrated
        return self.measured_rates.quiesce_cost(calibrated)

    def rank_reshape_vs_relaunch(self, cur: ExecConfig,
                                 target: ExecConfig
                                 ) -> tuple[float, float]:
        """Price both ways of reaching ``target``: ``(in_place_cost,
        relaunch_cost)``.

        The in-place price is a quiesce pair (measured-rate blended —
        a load-skewed world pays real wall time to reach a safe point,
        which calibration alone cannot see) plus spawns for grown
        members only; the relaunch price re-spawns every processing
        element and re-scatters state, and stays purely calibrated —
        a fresh world has no measured history by definition.
        """
        from repro.core.errors import WeaveError

        try:
            backend = self.registry.resolve(target)
        except WeaveError:
            return float("inf"), float("inf")
        m = backend.calibrate(self.machine)
        pe_cur, pe_new = cur.processing_elements, target.processing_elements
        # grown members are un-parked / thread-spawned, never forked
        # (the elastic fabric pre-forks at launch), so the *base*
        # spawn cost applies even on backends whose calibration
        # prices rank creation at fork class.
        in_place = (2 * self._quiesce_cost(m, max(pe_cur, pe_new))
                    + self.machine.spawn_cost * max(0, pe_new - pe_cur))
        relaunch = (m.spawn_cost * pe_new + 2 * m.barrier_cost(pe_new)
                    + (pe_new - 1) * m.network.p2p_cost(0, same_node=False))
        return in_place, relaunch

    def transition_cost(self, cur: ExecConfig, target: ExecConfig) -> float:
        """Modelled one-off cost of moving ``cur`` -> ``target``.

        The target's backend supplies its calibrated
        :class:`MachineModel` (``ExecutionBackend.calibrate``) and its
        capabilities decide the transition kind: same mode and backend
        with ``elastic_ranks`` (or a pure team resize) is an *in-place
        reshape* — barrier pair plus spawns for the grown members only —
        while everything else is a *relaunch* that re-spawns every
        processing element and re-scatters state.  Both prices come from
        :meth:`rank_reshape_vs_relaunch`, so measured safe-point rates
        (when wired in) shift this ranking exactly as they shift the
        explicit reshape-vs-relaunch comparison.
        """
        from repro.core.errors import WeaveError

        try:
            backend = self.registry.resolve(target)
        except WeaveError:
            return float("inf")
        caps = backend.capabilities(target)
        in_place_cost, relaunch_cost = self.rank_reshape_vs_relaunch(
            cur, target)
        in_place = (
            target.mode is cur.mode and target.backend == cur.backend
            and (caps.elastic_ranks
                 or (caps.team_regions and target.nranks == cur.nranks)))
        return in_place_cost if in_place else relaunch_cost

    def _transition_affordable(self, cur: ExecConfig, target: ExecConfig,
                               per_iter: float) -> bool:
        if not self.transition_aware:
            return True
        return self.transition_cost(cur, target) <= self.window * per_iter

    def _next_candidate(self, current: ExecConfig) -> ExecConfig | None:
        try:
            i = self.ladder.index(current)
        except ValueError:
            # current config isn't on the ladder: insert conceptually by PE
            bigger = [c for c in self.ladder
                      if c.processing_elements > current.processing_elements]
            return bigger[0] if bigger else None
        return self.ladder[i + 1] if i + 1 < len(self.ladder) else None

    # ------------------------------------------------------------------
    @property
    def settled(self) -> bool:
        return self._settled

    def best(self) -> ExecConfig | None:
        if not self.measured:
            return None
        return min(self.measured, key=lambda c: self.measured[c])

    def on_safepoint(self, count: int, vtime: float,
                     config: ExecConfig) -> ExecConfig | None:
        """Feed one safe point; returns a new target config or ``None``.

        Must be called from a single decision point per safe point (the
        runtime guarantees this in sequential/shared phases).
        """
        if self._settled or config.mode is Mode.DISTRIBUTED \
                or config.mode is Mode.HYBRID:
            return None
        if self._trial is None or self._trial.config != config:
            self._trial = _Trial(config, count, vtime)
            return None
        done = count - self._trial.start_count
        if done < self.window:
            return None
        per_iter = (vtime - self._trial.start_vtime) / done
        if per_iter <= 0.0:
            # degenerate sample (clock granularity / replay tail): extend
            # the trial instead of deciding on garbage.
            self._trial = _Trial(config, count, vtime)
            return None
        self.measured[config] = per_iter
        candidate = self._next_candidate(config)
        prev_best = min((v for c, v in self.measured.items() if c != config),
                        default=None)
        improved = prev_best is None or per_iter < prev_best * (
            1.0 - self.tolerance)
        if candidate is not None and improved \
                and not self._transition_affordable(config, candidate,
                                                    per_iter):
            candidate = None  # the climb cannot pay for its own trial
        if candidate is not None and improved:
            self.decisions.append((count, candidate))
            self._trial = None
            return candidate
        # climbing stopped paying: settle on the best configuration seen
        self._settled = True
        best = self.best()
        if best is not None and best != config:
            self.decisions.append((count, best))
            return best
        return None
