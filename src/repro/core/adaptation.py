"""Adaptation plans: when and how the parallelism structure changes.

The paper assumes an external resource-selection tool decides *what*
resources the application should use (Section I cites [3]); the
contribution is the mechanism that reshapes the application.  An
:class:`AdaptationPlan` is the interface between the two: a deterministic
map from safe-point counts to target configurations (every thread/rank
evaluates it locally and agrees without communication — the same rule as
checkpoint policies), with each step flagged as *live* (run-time protocol:
in-memory state transfer plus replay) or *restart* (checkpoint to disk,
tear down, relaunch from the file).

Figure 7 of the paper is exactly the comparison of those two flags.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.core.modes import ExecConfig


@dataclass(frozen=True)
class AdaptStep:
    """One planned reshaping: at safe point ``at``, become ``config``.

    ``in_place`` selects the reshape kind within the run-time protocol:

    * ``None`` (default) — automatic: reshape in place when the backend
      advertises ``Capabilities.elastic_ranks`` and only the processing-
      element counts change; unwind and relaunch otherwise;
    * ``True`` — request the in-place membership transition; if the
      backend cannot honour it the step degrades to a relaunch (the
      documented fallback), never to an error;
    * ``False`` — force the unwind-and-relaunch path even where an
      in-place reshape is possible (the reshape-vs-relaunch benchmarks
      use this to measure both sides of the same step).

    ``via_restart=True`` always relaunches through the checkpoint file;
    ``in_place`` is ignored for such steps.
    """

    at: int
    config: ExecConfig
    #: True = checkpoint/restart through disk; False = run-time protocol.
    via_restart: bool = False
    #: None = auto, True = prefer in-place, False = force relaunch.
    in_place: bool | None = None

    def __post_init__(self) -> None:
        if self.at < 1:
            raise ValueError("adaptation steps fire at safe points >= 1")


class AdaptationPlan:
    """An ordered set of :class:`AdaptStep`, plus live external requests.

    ``step_at(count)`` is the deterministic lookup used on the hot path.
    ``request(config)`` injects an asynchronous external request (only
    honoured in sequential / shared-memory execution, where a single
    decision point exists — the parked team; distributed runs must use
    planned steps so all ranks agree).
    """

    def __init__(self, steps: list[AdaptStep] | None = None) -> None:
        steps = sorted(steps or [], key=lambda s: s.at)
        seen: set[int] = set()
        for s in steps:
            if s.at in seen:
                raise ValueError(f"two adaptation steps at safe point {s.at}")
            seen.add(s.at)
        self.steps = steps
        self._lock = threading.Lock()
        self._pending: ExecConfig | None = None

    # ------------------------------------------------------------------
    def step_at(self, count: int) -> AdaptStep | None:
        for s in self.steps:
            if s.at == count:
                return s
        return None

    def next_step_after(self, count: int) -> AdaptStep | None:
        for s in self.steps:
            if s.at > count:
                return s
        return None

    # -- pickling (the lock is process-local state) ---------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- asynchronous requests ------------------------------------------
    def request(self, config: ExecConfig) -> None:
        with self._lock:
            self._pending = config

    def take_pending(self) -> ExecConfig | None:
        with self._lock:
            p, self._pending = self._pending, None
            return p

    def __bool__(self) -> bool:
        with self._lock:
            return bool(self.steps) or self._pending is not None


@dataclass
class AdaptationRecord:
    """What the runtime actually did (for tests and bench reporting)."""

    at_count: int
    from_config: ExecConfig
    to_config: ExecConfig
    via_restart: bool
    vtime: float = 0.0
    extra: dict = field(default_factory=dict)
