"""Template declarations — the paper's pluggable programming abstractions.

A *template* names a join point in the domain-specific class (a method
execution or a field) and a parallelisation / checkpointing behaviour to
weave there.  Templates are pure declarations: the weaver
(:mod:`repro.core.rewriter`) turns them into method wrappers and field
descriptors on a generated subclass, leaving the base class untouched.

Shared-memory templates (Section III.B) mirror OpenMP:
``ParallelMethod``, ``ForMethod`` (work sharing), ``SynchronizedMethod``,
``MasterMethod``, ``SingleMethod``, ``BarrierBefore/After``,
``ThreadLocal``.

Distributed-memory templates (Section III.C) mirror the aggregate model:
``Replicate``, ``Partitioned``, ``ScatterBefore``, ``GatherAfter``,
``HaloExchangeBefore``, ``ReduceResult``, ``OnMaster``.

Checkpoint templates (Section IV.A): ``SafeData``, ``SafePointAfter`` /
``SafePointBefore``, ``IgnorableMethod``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.dsm.partition import Layout
from repro.smp.sched import Schedule


class Template:
    """Base marker for all templates."""

    #: weaving priority: lower wraps closer to the original method.
    order: int = 50

    def join_points(self) -> list[str]:
        """Method names this template wraps (empty for field templates)."""
        return []


# ---------------------------------------------------------------------------
# shared-memory templates
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ParallelMethod(Template):
    """Execute ``method`` as a parallel region (a team runs the body)."""

    method: str
    order = 90  # outermost: the region owns everything inside

    def join_points(self) -> list[str]:
        return [self.method]


@dataclass(frozen=True)
class ForMethod(Template):
    """Work-share ``method``'s iteration range among workers/ranks.

    The method's first two positional parameters (after ``self``) must be
    the half-open iteration bounds ``lo, hi``.  In shared memory the range
    is split among team threads per ``schedule``; in distributed memory it
    is restricted to the rank's partition of the layout of field
    ``align`` (or block-split over ranks when ``align`` is None); hybrid
    composes both.
    """

    method: str
    schedule: Schedule = Schedule.STATIC
    chunk: int = 1
    align: str | None = None  # name of a Partitioned field to align with
    #: "calibrated" charges chunks at the kernel's calibrated uncontended
    #: rate (uniform cost per unit — right for regular kernels);
    #: "measured" charges the raw per-chunk timing.
    cost_model: str = "calibrated"
    #: optional work metric: units(lo, hi) -> work units in the chunk.
    #: Defaults to ``hi - lo``.  Declare it when per-index cost varies
    #: (e.g. triangular loops, skewed workloads) so the virtual-time model
    #: sees the imbalance the schedule is supposed to handle.
    units: Callable[[int, int], int] | None = None
    order = 40

    def __post_init__(self) -> None:
        if self.cost_model not in ("calibrated", "measured"):
            raise ValueError(f"unknown cost model {self.cost_model!r}")

    def join_points(self) -> list[str]:
        return [self.method]


@dataclass(frozen=True)
class SynchronizedMethod(Template):
    """Execute ``method`` in mutual exclusion within the team."""

    method: str
    lock: str | None = None  # lock name; defaults to the method name
    order = 20

    def join_points(self) -> list[str]:
        return [self.method]


@dataclass(frozen=True)
class MasterMethod(Template):
    """Only the team's master thread executes ``method``."""

    method: str
    order = 30

    def join_points(self) -> list[str]:
        return [self.method]


@dataclass(frozen=True)
class SingleMethod(Template):
    """Exactly one team thread executes each occurrence of ``method``."""

    method: str
    order = 30

    def join_points(self) -> list[str]:
        return [self.method]


@dataclass(frozen=True)
class BarrierBefore(Template):
    """Insert a barrier before ``method`` executes."""

    method: str
    order = 60

    def join_points(self) -> list[str]:
        return [self.method]


@dataclass(frozen=True)
class BarrierAfter(Template):
    """Insert a barrier after ``method`` executes."""

    method: str
    order = 60

    def join_points(self) -> list[str]:
        return [self.method]


@dataclass(frozen=True)
class ThreadLocal(Template):
    """Give each team thread a private copy of object field ``field``."""

    field: str


# ---------------------------------------------------------------------------
# distributed-memory templates
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Replicate(Template):
    """Class-level marker: instances become object aggregates.

    Under distributed execution each rank holds one member; member 0
    transparently plays the original instance.
    """


@dataclass(frozen=True)
class Partitioned(Template):
    """Field ``field`` is partitioned among aggregate members by ``layout``.

    Also consulted by run-time adaptation (Section IV.B): partitioned
    fields are scattered/gathered when the aggregate is created/merged,
    replicated fields are copied, local fields left alone.

    ``whole_at_safepoints`` declares that by the time any safe point is
    reached the field has been re-assembled on every member (e.g. an
    AllGatherAfter runs before the step ends) — checkpoints then skip the
    gather and restores broadcast instead of scattering.
    """

    field: str
    layout: Layout
    whole_at_safepoints: bool = False


@dataclass(frozen=True)
class Replicated(Template):
    """Field ``field`` holds the same value on every aggregate member."""

    field: str


@dataclass(frozen=True)
class LocalField(Template):
    """Field ``field`` is private to each member (adaptation ignores it)."""

    field: str


@dataclass(frozen=True)
class ScatterBefore(Template):
    """Update each member's partition of ``field`` before ``method`` runs.

    Data flows from member 0 (which holds the authoritative full array),
    per the field's ``Partitioned`` layout — the paper's Figure 1 example.
    """

    method: str
    field: str
    order = 70

    def join_points(self) -> list[str]:
        return [self.method]


@dataclass(frozen=True)
class GatherAfter(Template):
    """Collect every member's partition of ``field`` after ``method``."""

    method: str
    field: str
    order = 70

    def join_points(self) -> list[str]:
        return [self.method]


@dataclass(frozen=True)
class AllGatherAfter(Template):
    """Make every member's copy of partitioned ``field`` whole after
    ``method`` (gather at member 0, then broadcast).

    Needed when the next phase reads the entire field on every member —
    e.g. an iterated mat-vec whose output vector feeds back as input.
    """

    method: str
    field: str
    order = 70

    def join_points(self) -> list[str]:
        return [self.method]


@dataclass(frozen=True)
class HaloExchangeBefore(Template):
    """Swap ghost planes of block-partitioned ``field`` before ``method``.

    The stencil-code companion of ``Partitioned(..., BlockLayout(halo=h))``.
    """

    method: str
    field: str
    order = 35

    def join_points(self) -> list[str]:
        return [self.method]


@dataclass(frozen=True)
class ReduceResult(Template):
    """Combine per-member return values of ``method`` into one value."""

    method: str
    combine: Callable[[Any, Any], Any] | None = None  # None = operator +
    order = 45

    def join_points(self) -> list[str]:
        return [self.method]


@dataclass(frozen=True)
class OnMaster(Template):
    """Delegate ``method`` to member 0 (and team master in hybrid).

    Other members skip it and receive the result only when ``broadcast``
    is set.  Typical use: progress reporting, result output.
    """

    method: str
    broadcast: bool = False
    order = 30

    def join_points(self) -> list[str]:
        return [self.method]


# ---------------------------------------------------------------------------
# checkpoint templates
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SafeData(Template):
    """Object fields to include in checkpoints (the SafeData template)."""

    fields: tuple[str, ...]

    def __init__(self, *fields: str) -> None:
        object.__setattr__(self, "fields", tuple(fields))
        if not self.fields:
            raise ValueError("SafeData needs at least one field")


@dataclass(frozen=True)
class SafePointAfter(Template):
    """A safe point occurs after each execution of ``method``."""

    method: str
    order = 80

    def join_points(self) -> list[str]:
        return [self.method]


@dataclass(frozen=True)
class SafePointBefore(Template):
    """A safe point occurs before each execution of ``method``."""

    method: str
    order = 80

    def join_points(self) -> list[str]:
        return [self.method]


@dataclass(frozen=True)
class IgnorableMethod(Template):
    """``method`` may be skipped while replaying (restart / adaptation)."""

    method: str
    order = 95  # outermost of all: replay skips everything beneath

    def join_points(self) -> list[str]:
        return [self.method]
