"""Pluggable parallelisation core — the paper's primary contribution.

Public API tour::

    from repro.core import (
        plug, PlugSet, Runtime, ExecConfig, Mode,
        ParallelMethod, ForMethod, Partitioned, ScatterBefore, GatherAfter,
        SafeData, SafePointAfter, IgnorableMethod,
        AdaptationPlan, AdaptStep,
    )

    # 1. plain domain class (runs sequentially, unaware of parallelism)
    class App: ...

    # 2. separate plug modules
    SHARED = PlugSet(ParallelMethod("run"), ForMethod("kernel"))
    CKPT = PlugSet(SafeData("state"), SafePointAfter("step"),
                   IgnorableMethod("kernel"))

    # 3. weave and launch in any mode; checkpoint + adaptation included
    Woven = plug(App, SHARED + CKPT)
    rt = Runtime(policy=EveryN(10), ckpt_dir="ckpts")
    result = rt.run(Woven, config=ExecConfig.shared(8))
"""

from repro.core.adaptation import AdaptationPlan, AdaptationRecord, AdaptStep
from repro.core.context import (
    STRATEGY_LOCAL,
    STRATEGY_MASTER,
    ExecutionContext,
)
from repro.core.errors import AdaptationExit, WeaveError
from repro.core.modes import Capabilities, ExecConfig, Mode
from repro.core.plugs import PlugSet
from repro.core.rewriter import is_woven, make_context, plug, unplug
from repro.core.runtime import PhaseReport, RunResult, Runtime
from repro.core.templates import (
    AllGatherAfter,
    BarrierAfter,
    BarrierBefore,
    ForMethod,
    GatherAfter,
    HaloExchangeBefore,
    IgnorableMethod,
    LocalField,
    MasterMethod,
    OnMaster,
    ParallelMethod,
    Partitioned,
    ReduceResult,
    Replicate,
    Replicated,
    SafeData,
    SafePointAfter,
    SafePointBefore,
    ScatterBefore,
    SingleMethod,
    SynchronizedMethod,
    Template,
    ThreadLocal,
)

__all__ = [
    "AdaptStep",
    "AllGatherAfter",
    "AdaptationExit",
    "AdaptationPlan",
    "AdaptationRecord",
    "BarrierAfter",
    "BarrierBefore",
    "Capabilities",
    "ExecConfig",
    "ExecutionContext",
    "ForMethod",
    "GatherAfter",
    "HaloExchangeBefore",
    "IgnorableMethod",
    "LocalField",
    "MasterMethod",
    "Mode",
    "OnMaster",
    "ParallelMethod",
    "Partitioned",
    "PhaseReport",
    "PlugSet",
    "ReduceResult",
    "Replicate",
    "Replicated",
    "RunResult",
    "Runtime",
    "STRATEGY_LOCAL",
    "STRATEGY_MASTER",
    "SafeData",
    "SafePointAfter",
    "SafePointBefore",
    "ScatterBefore",
    "SingleMethod",
    "SynchronizedMethod",
    "Template",
    "ThreadLocal",
    "WeaveError",
    "is_woven",
    "make_context",
    "plug",
    "unplug",
]
