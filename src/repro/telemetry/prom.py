"""Prometheus text exposition (0.0.4) — emitter and conformance parser.

The emitter flattens the registry's samples into the standard text
format: ``# HELP`` / ``# TYPE`` headers per metric family, one sample
line per labeled series, histograms expanded to cumulative
``_bucket{le=...}`` / ``_sum`` / ``_count`` series.  The parser is the
round-trip conformance check the test suite runs — a strict reader of
the subset this project emits (and of what a stock Prometheus scraper
would accept), kept dependency-free on purpose.
"""

from __future__ import annotations

from repro.telemetry.plane import MetricSample
from repro.telemetry.schema import HISTOGRAM

#: the content type a scrape endpoint must declare for this format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _fmt_value(v: float) -> str:
    if v == float("inf"):
        return "+Inf"
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


def _labels_text(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in labels)
    return "{" + inner + "}"


def to_prometheus(samples: list[MetricSample],
                  helps: dict[str, str] | None = None) -> str:
    """Render samples as one exposition document.

    Samples are grouped per metric family (HELP/TYPE emitted once, on
    first appearance) in sorted order, so the output is deterministic.
    """
    helps = helps or {}
    lines: list[str] = []
    seen: set[str] = set()
    for s in sorted(samples, key=lambda s: (s.name, s.labels)):
        if s.name not in seen:
            seen.add(s.name)
            text = helps.get(s.name) or s.help
            if text:
                lines.append(f"# HELP {s.name} {_escape_label(text)}")
            lines.append(f"# TYPE {s.name} {s.kind}")
        if s.kind == HISTOGRAM and s.hist is not None:
            count, total, per = s.hist
            cum = 0.0
            bounds = list(s.buckets) + [float("inf")]
            for bound, n in zip(bounds, per):
                cum += n
                lab = dict(s.labels)
                lab["le"] = _fmt_value(bound)
                lines.append(f"{s.name}_bucket"
                             f"{_labels_text(tuple(sorted(lab.items())))}"
                             f" {_fmt_value(cum)}")
            lines.append(f"{s.name}_sum{_labels_text(s.labels)}"
                         f" {repr(float(total))}")
            lines.append(f"{s.name}_count{_labels_text(s.labels)}"
                         f" {_fmt_value(count)}")
        else:
            lines.append(f"{s.name}{_labels_text(s.labels)}"
                         f" {_fmt_value(s.value)}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# conformance parser
# ---------------------------------------------------------------------------
class PromParseError(ValueError):
    """The document is not valid 0.0.4 text exposition."""


def _parse_labels(text: str, line: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    i = 0
    while i < len(text):
        j = text.index("=", i)
        key = text[i:j].strip()
        if not key or not key.replace("_", "a").isalnum():
            raise PromParseError(f"bad label name in: {line}")
        if text[j + 1] != '"':
            raise PromParseError(f"unquoted label value in: {line}")
        k = j + 2
        value = []
        while True:
            if k >= len(text):
                raise PromParseError(f"unterminated label value in: {line}")
            ch = text[k]
            if ch == "\\":
                esc = text[k + 1]
                value.append({"n": "\n", "\\": "\\", '"': '"'}[esc])
                k += 2
                continue
            if ch == '"':
                break
            value.append(ch)
            k += 1
        labels[key] = "".join(value)
        i = k + 1
        if i < len(text) and text[i] == ",":
            i += 1
    return labels


def parse_prometheus(doc: str) -> list[tuple[str, dict[str, str], float]]:
    """Parse a text-exposition document into (name, labels, value) rows.

    Validates the structural rules a Prometheus scraper enforces:
    TYPE lines declare known types, sample lines reference a declared
    family (allowing the histogram suffixes), label syntax is sound,
    values parse as floats, and histogram ``_bucket`` series are
    cumulative and consistent with their ``_count``.
    """
    types: dict[str, str] = {}
    rows: list[tuple[str, dict[str, str], float]] = []
    for raw in doc.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) != 4:
                raise PromParseError(f"malformed TYPE line: {line}")
            _, _, name, kind = parts
            if kind not in ("counter", "gauge", "histogram",
                            "summary", "untyped"):
                raise PromParseError(f"unknown type {kind!r}: {line}")
            types[name] = kind
            continue
        if line.startswith("#"):
            continue
        # sample line: name[{labels}] value
        brace = line.find("{")
        if brace >= 0:
            end = line.rindex("}")
            name = line[:brace]
            labels = _parse_labels(line[brace + 1:end], line)
            rest = line[end + 1:].split()
        else:
            fields = line.split()
            if len(fields) < 2:
                raise PromParseError(f"malformed sample line: {line}")
            name, rest = fields[0], fields[1:]
            labels = {}
        if not rest:
            raise PromParseError(f"sample line missing value: {line}")
        try:
            value = float(rest[0].replace("+Inf", "inf"))
        except ValueError as exc:
            raise PromParseError(f"bad value in: {line}") from exc
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[:-len(suffix)] if name.endswith(suffix) else None
            if base is not None and types.get(base) == "histogram":
                family = base
                break
        if family not in types:
            raise PromParseError(f"sample for undeclared family: {line}")
        if (types[family] == "histogram" and name.endswith("_bucket")
                and "le" not in labels):
            raise PromParseError(f"histogram bucket without le: {line}")
        rows.append((name, labels, value))
    _check_histograms(types, rows)
    return rows


def _check_histograms(types: dict[str, str],
                      rows: list[tuple[str, dict[str, str], float]]) -> None:
    """Buckets cumulative + +Inf bucket equals _count, per series."""
    buckets: dict[tuple, list[tuple[float, float]]] = {}
    counts: dict[tuple, float] = {}
    for name, labels, value in rows:
        for base, kind in types.items():
            if kind != "histogram":
                continue
            if name == base + "_bucket":
                key = (base, tuple(sorted((k, v) for k, v in labels.items()
                                          if k != "le")))
                le = float(labels["le"].replace("+Inf", "inf"))
                buckets.setdefault(key, []).append((le, value))
            elif name == base + "_count":
                counts[(base, tuple(sorted(labels.items())))] = value
    for key, series in buckets.items():
        series.sort()
        vals = [v for _, v in series]
        if vals != sorted(vals):
            raise PromParseError(f"non-cumulative buckets for {key[0]}")
        if series[-1][0] != float("inf"):
            raise PromParseError(f"histogram {key[0]} missing +Inf bucket")
        total = counts.get(key)
        if total is not None and series[-1][1] != total:
            raise PromParseError(
                f"histogram {key[0]}: +Inf bucket != _count")
