"""The fixed telemetry schema: every slot of a rank's metrics page.

The schema is *static* — registered once here, never at runtime — which
is what makes the shared-memory plane negotiation-free: every rank (and
the scraping parent) computes identical word offsets from this module
alone, the same trick the symmetric heap plays with its SPMD bump
allocator.  A page is a flat ``float64`` array; each metric occupies a
fixed slot guarded by its own sequence word (see
:mod:`repro.telemetry.plane` for the seqlock discipline).

Metric names follow one scheme end-to-end — Prometheus text, the
service ``stats`` RPC and ``BENCH_*.json`` series all carry the same
identifiers::

    repro_<subsystem>_<metric>{rank="0", backend="multiproc", job="7"}

* ``repro_`` — the project namespace;
* ``<subsystem>`` — ``exec``, ``dsm``, ``ckpt``, ``elastic``,
  ``runtime``, ``service``;
* counters end in ``_total``, time series in ``_seconds``;
* fixed dimension labels (``tier=...``) live here in the schema, while
  ``rank=`` is stamped by the scraper from the page index and
  ``backend=`` / ``job=`` by whoever absorbs the scrape.

``float64`` words hold every value: counters stay exact to 2**53 and
one dtype keeps the page layout trivial.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

#: default latency buckets (seconds) for the histogram slots.
LATENCY_BUCKETS = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)


@dataclass(frozen=True)
class MetricSpec:
    """One slot of the page: identity, kind and word layout."""

    name: str
    kind: str
    help: str
    labels: tuple[tuple[str, str], ...] = ()
    buckets: tuple[float, ...] = ()
    #: word offset of this slot's sequence word within a page (filled
    #: in by the module-level layout pass below).
    offset: int = field(default=0, compare=False)

    @property
    def words(self) -> int:
        """Slot width in words: 1 seq word + the payload words."""
        if self.kind == HISTOGRAM:
            # seq, count, sum, one word per finite bucket + overflow
            return 3 + len(self.buckets) + 1
        return 2  # seq, value

    def bucket_index(self, value: float) -> int:
        """Payload word (relative to count) the observation lands in."""
        return bisect_left(self.buckets, value)


def _c(name: str, help: str, **labels: str) -> MetricSpec:
    return MetricSpec(name, COUNTER, help,
                      labels=tuple(sorted(labels.items())))


def _g(name: str, help: str, **labels: str) -> MetricSpec:
    return MetricSpec(name, GAUGE, help, labels=tuple(sorted(labels.items())))


#: the full page schema, in slot order.  Appending here is all it takes
#: to add a metric; reordering or removing entries changes the page
#: layout for *every* world, which is safe because planes never outlive
#: one launch.
SCHEMA: tuple[MetricSpec, ...] = (
    # -- exec: the safe-point protocol ---------------------------------
    _c("repro_exec_safepoints_total",
       "Safe points this rank has passed."),
    _c("repro_exec_safepoint_seconds_total",
       "Wall seconds this rank spent inside the safe-point protocol."),
    MetricSpec("repro_exec_safepoint_latency_seconds", HISTOGRAM,
               "Wall latency of one safe-point protocol pass.",
               buckets=LATENCY_BUCKETS),
    _g("repro_exec_vtime_seconds",
       "This rank's virtual clock at its last safe point."),
    _g("repro_exec_wall_seconds",
       "Wall seconds since this rank's writer was bound (vtime-vs-wall "
       "skew is this minus repro_exec_vtime_seconds)."),
    # -- dsm: data-plane tiers, mailboxes, pool occupancy --------------
    _c("repro_dsm_send_bytes_total",
       "Payload bytes sent through the inline (pickled queue) tier.",
       tier="inline"),
    _c("repro_dsm_send_bytes_total",
       "Payload bytes copied through pooled shared-memory slabs.",
       tier="slab"),
    _c("repro_dsm_send_bytes_total",
       "Payload bytes shipped as zero-copy borrowed segment regions.",
       tier="borrow"),
    _c("repro_dsm_send_bytes_total",
       "Payload bytes framed onto TCP connections.", tier="tcp"),
    _c("repro_dsm_send_msgs_total",
       "Messages sent through the inline tier.", tier="inline"),
    _c("repro_dsm_send_msgs_total",
       "Messages sent through the slab tier.", tier="slab"),
    _c("repro_dsm_send_msgs_total",
       "Messages sent through the borrow tier.", tier="borrow"),
    _c("repro_dsm_send_msgs_total",
       "Frames sent over TCP connections.", tier="tcp"),
    _c("repro_dsm_mailbox_wait_seconds_total",
       "Wall seconds this rank spent blocked in mailbox receives."),
    _c("repro_dsm_mailbox_recvs_total",
       "Envelopes this rank's mailbox delivered."),
    _c("repro_dsm_pool_leases_total",
       "Slab leases taken from this rank's buffer pool."),
    _c("repro_dsm_pool_fallbacks_total",
       "Pool exhaustions that degraded a payload to the inline tier."),
    _g("repro_dsm_pool_slabs_in_flight",
       "Slabs of this rank's pool currently leased out."),
    # -- ckpt ----------------------------------------------------------
    _c("repro_ckpt_bytes_total",
       "Checkpoint bytes this rank submitted for writing."),
    _c("repro_ckpt_writes_total",
       "Checkpoints this rank submitted."),
    # -- elastic -------------------------------------------------------
    _c("repro_elastic_move_bytes_total",
       "Field-region bytes this rank pushed during membership reshapes."),
    _c("repro_elastic_reshapes_total",
       "In-place membership reshapes this rank completed."),
    # -- ckpt: the content-addressed chunk store (appended: the page
    # layout is positional) ---------------------------------------------
    _c("repro_ckpt_chunks_written_total",
       "New chunks this rank's checkpoints added to the CAS."),
    _c("repro_ckpt_chunks_deduped_total",
       "Chunk references this rank's checkpoints satisfied from chunks "
       "already stored."),
    _c("repro_ckpt_dedup_bytes_saved_total",
       "Payload bytes this rank's checkpoints never wrote because the "
       "CAS already held them."),
    _c("repro_ckpt_restore_fetches_total",
       "Chunk fetches performed restoring state into this rank."),
)

# layout pass: assign word offsets (header first, then slots in order).
#: words reserved at the head of each page (state flag + padding).
PAGE_HEADER_WORDS = 8
#: page state flag values (word 0 of each page).
PAGE_EMPTY, PAGE_ACTIVE, PAGE_FROZEN = 0.0, 1.0, 2.0


def _layout() -> tuple[tuple[MetricSpec, ...], int]:
    off = PAGE_HEADER_WORDS
    out = []
    for spec in SCHEMA:
        out.append(MetricSpec(spec.name, spec.kind, spec.help,
                              labels=spec.labels, buckets=spec.buckets,
                              offset=off))
        off += out[-1].words
    return tuple(out), off


SCHEMA, PAGE_WORDS = _layout()

#: slot handles (indexes into SCHEMA) for the hot-path writers — an int
#: per instrumented site, resolved once at import.
def _slot(name: str, **labels: str) -> int:
    key = (name, tuple(sorted(labels.items())))
    for i, spec in enumerate(SCHEMA):
        if (spec.name, spec.labels) == key:
            return i
    raise KeyError(f"no schema slot {key!r}")


SAFEPOINTS = _slot("repro_exec_safepoints_total")
SAFEPOINT_SECONDS = _slot("repro_exec_safepoint_seconds_total")
SAFEPOINT_LATENCY = _slot("repro_exec_safepoint_latency_seconds")
VTIME_SECONDS = _slot("repro_exec_vtime_seconds")
WALL_SECONDS = _slot("repro_exec_wall_seconds")
SEND_BYTES_INLINE = _slot("repro_dsm_send_bytes_total", tier="inline")
SEND_BYTES_SLAB = _slot("repro_dsm_send_bytes_total", tier="slab")
SEND_BYTES_BORROW = _slot("repro_dsm_send_bytes_total", tier="borrow")
SEND_BYTES_TCP = _slot("repro_dsm_send_bytes_total", tier="tcp")
SEND_MSGS_INLINE = _slot("repro_dsm_send_msgs_total", tier="inline")
SEND_MSGS_SLAB = _slot("repro_dsm_send_msgs_total", tier="slab")
SEND_MSGS_BORROW = _slot("repro_dsm_send_msgs_total", tier="borrow")
SEND_MSGS_TCP = _slot("repro_dsm_send_msgs_total", tier="tcp")
MAILBOX_WAIT_SECONDS = _slot("repro_dsm_mailbox_wait_seconds_total")
MAILBOX_RECVS = _slot("repro_dsm_mailbox_recvs_total")
POOL_LEASES = _slot("repro_dsm_pool_leases_total")
POOL_FALLBACKS = _slot("repro_dsm_pool_fallbacks_total")
POOL_IN_FLIGHT = _slot("repro_dsm_pool_slabs_in_flight")
CKPT_BYTES = _slot("repro_ckpt_bytes_total")
CKPT_WRITES = _slot("repro_ckpt_writes_total")
MOVE_BYTES = _slot("repro_elastic_move_bytes_total")
RESHAPES = _slot("repro_elastic_reshapes_total")
CKPT_CHUNKS_NEW = _slot("repro_ckpt_chunks_written_total")
CKPT_CHUNKS_DEDUP = _slot("repro_ckpt_chunks_deduped_total")
CKPT_DEDUP_SAVED = _slot("repro_ckpt_dedup_bytes_saved_total")
CKPT_FETCHES = _slot("repro_ckpt_restore_fetches_total")
