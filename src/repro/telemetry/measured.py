"""Measured rates: the advisor's live view over the metrics registry.

Closes the loop the paper's self-adaptation story asks for: instead of
steering on static calibration constants alone, the advisor blends the
*measured* behaviour of the running world — mean safe-point protocol
latency today; the registry carries bytes-per-tier and mailbox wait
series for richer models later — with the calibrated priors.

Calibration stays the cold-start fallback: with fewer than
``min_samples`` observations the blend weight is proportionally small,
and with none at all the calibrated value passes through untouched, so
a fresh world ranks transitions exactly as before.  The registry is
scraped from wall-side telemetry only — nothing here ever feeds a
virtual clock, so vtime determinism is untouched.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.registry import MetricsRegistry

#: histogram the quiesce-cost estimate reads.
_SAFEPOINT_LATENCY = "repro_exec_safepoint_latency_seconds"


class MeasuredRates:
    """Blend measured rates with calibrated priors, sample-weighted."""

    def __init__(self, registry: "MetricsRegistry",
                 min_samples: int = 16) -> None:
        if min_samples < 1:
            raise ValueError("min_samples must be positive")
        self.registry = registry
        self.min_samples = min_samples

    # ------------------------------------------------------------------
    def safepoint_latency(self) -> tuple[float, int]:
        """Mean wall seconds per safe-point pass, and the sample count."""
        count, total = self.registry.hist_totals(_SAFEPOINT_LATENCY)
        if count <= 0.0:
            return 0.0, 0
        return total / count, int(count)

    def blend(self, calibrated: float, measured: float,
              samples: int) -> float:
        """Sample-weighted mix: calibration dominates until enough
        observations accumulate, then the measurement takes over."""
        if samples <= 0:
            return calibrated
        w = min(1.0, samples / float(self.min_samples))
        return (1.0 - w) * calibrated + w * measured

    # ------------------------------------------------------------------
    def quiesce_cost(self, calibrated: float) -> float:
        """The cost of bringing every rank to a safe point, as measured.

        The calibrated prior is the modelled barrier cost; the measured
        signal is the mean observed safe-point protocol latency — the
        wall price the running world actually pays to quiesce, load
        skew included.
        """
        mean, n = self.safepoint_latency()
        if n == 0:
            return calibrated
        return self.blend(calibrated, mean, n)
