"""The one metrics surface: every stats shape collapses onto this.

A :class:`MetricsRegistry` aggregates

* **absorbed scrapes** — the per-rank page samples a backend scraped
  from its :class:`~repro.telemetry.plane.TelemetryPlane` at the end of
  a launch (counters and histograms *accumulate* across launches, so a
  restart chain's phases sum; gauges keep the latest value);
* **direct instruments** — parent-side counters/gauges (relaunch
  counts, checkpoint-writer overlap) that never lived on a rank page;
* **callback gauges** — occupancy-style values (arena segments, idle
  workers, queue depth) evaluated lazily at snapshot time, which is
  what replaces the bespoke ``stats()`` attribute bags.

Everything the registry holds is exportable three ways with identical
names and labels: Prometheus text exposition (:meth:`to_prometheus`),
a picklable/JSONable :meth:`snapshot` (the service ``stats`` RPC, the
``RunResult.metrics`` property, ``BENCH_*.json``), and point lookups
(:meth:`value`, :meth:`hist_totals`) for the advisor's measured rates.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable

from repro.telemetry.plane import MetricSample
from repro.telemetry.schema import COUNTER, GAUGE, HISTOGRAM

Key = tuple[str, tuple[tuple[str, str], ...]]


def _key(name: str, labels: dict[str, str] | None) -> Key:
    items = tuple(sorted((str(k), str(v))
                         for k, v in (labels or {}).items()))
    return name, items


class MetricsRegistry:
    """Thread-safe aggregation point for one world's metrics."""

    def __init__(self, const_labels: dict[str, str] | None = None) -> None:
        self.const_labels = {k: str(v)
                             for k, v in (const_labels or {}).items()}
        self._lock = threading.Lock()
        self._scalars: dict[Key, tuple[str, float]] = {}
        self._hists: dict[Key, tuple[float, float, tuple[float, ...],
                                     tuple[float, ...]]] = {}
        self._help: dict[str, str] = {}
        self._gauge_fns: list[tuple[str, tuple[tuple[str, str], ...],
                                    Callable[[], float]]] = []
        #: last-seen cumulative values per (source, series) — what makes
        #: repeated live scrapes of the *same* plane idempotent (only
        #: the delta since the previous absorb is added).
        self._seen: dict[tuple[str, Key], float] = {}
        self._seen_hists: dict[tuple[str, Key],
                               tuple[float, float, tuple[float, ...]]] = {}

    # ------------------------------------------------------------------
    # direct instruments (parent-side)
    # ------------------------------------------------------------------
    def counter_inc(self, name: str, value: float = 1.0,
                    labels: dict[str, str] | None = None,
                    help: str = "") -> None:
        key = _key(name, labels)
        with self._lock:
            if help:
                self._help.setdefault(name, help)
            _, cur = self._scalars.get(key, (COUNTER, 0.0))
            self._scalars[key] = (COUNTER, cur + value)

    def gauge_set(self, name: str, value: float,
                  labels: dict[str, str] | None = None,
                  help: str = "") -> None:
        key = _key(name, labels)
        with self._lock:
            if help:
                self._help.setdefault(name, help)
            self._scalars[key] = (GAUGE, float(value))

    def gauge_fn(self, name: str, fn: Callable[[], float],
                 labels: dict[str, str] | None = None,
                 help: str = "") -> None:
        """Register a lazily evaluated gauge (occupancy-style values)."""
        with self._lock:
            if help:
                self._help.setdefault(name, help)
            self._gauge_fns.append((name, _key(name, labels)[1], fn))

    # ------------------------------------------------------------------
    # absorption (scrapes + serialized snapshots)
    # ------------------------------------------------------------------
    def absorb(self, samples: Iterable[MetricSample],
               extra_labels: dict[str, str] | None = None,
               source: str | None = None) -> None:
        """Fold scraped samples in: counters/histograms add, gauges set.

        Without ``source``, call once per finished launch (each plane
        starts at zero, so adding accumulates correctly across a
        restart/reshape chain).  With ``source`` — a stable identity of
        the plane being scraped — absorption is **idempotent**: the
        registry remembers the last cumulative value it saw from that
        source per series and folds in only the delta, so a live
        ``serve_metrics()`` poll loop can scrape the same running plane
        repeatedly without double-counting.  A cumulative value that
        *shrinks* (the source was reset, e.g. a fresh launch reusing
        the key) restarts the baseline and absorbs the full value.
        """
        extra = extra_labels or {}
        with self._lock:
            for s in samples:
                if extra:
                    s = s.labeled(extra)
                if s.help:
                    self._help.setdefault(s.name, s.help)
                key = (s.name, s.labels)
                if s.kind == HISTOGRAM and s.hist is not None:
                    cnt, tot, per = s.hist
                    if source is not None:
                        skey = (source, key)
                        prev = self._seen_hists.get(skey)
                        self._seen_hists[skey] = (cnt, tot, per)
                        if prev is not None and prev[0] <= cnt:
                            cnt -= prev[0]
                            tot -= prev[1]
                            per = tuple(a - b for a, b in zip(per, prev[2]))
                            if cnt == 0.0:
                                continue
                    old = self._hists.get(key)
                    if old is not None:
                        cnt += old[0]
                        tot += old[1]
                        per = tuple(a + b for a, b in zip(per, old[2]))
                    self._hists[key] = (cnt, tot, per, s.buckets)
                elif s.kind == GAUGE:
                    self._scalars[key] = (GAUGE, s.value)
                else:
                    value = s.value
                    if source is not None:
                        skey = (source, key)
                        prev = self._seen.get(skey, 0.0)
                        self._seen[skey] = value
                        if prev <= value:
                            value -= prev
                        if value == 0.0:
                            continue
                    _, cur = self._scalars.get(key, (COUNTER, 0.0))
                    self._scalars[key] = (COUNTER, cur + value)

    def absorb_snapshot(self, snap: dict,
                        extra_labels: dict[str, str] | None = None,
                        source: str | None = None) -> None:
        """Fold a serialized :meth:`snapshot` in (service job results)."""
        self.absorb(snapshot_samples(snap), extra_labels=extra_labels,
                    source=source)

    # ------------------------------------------------------------------
    # lookups (the advisor's measured-rates view reads these)
    # ------------------------------------------------------------------
    def _live_scalars(self) -> dict[Key, tuple[str, float]]:
        out = dict(self._scalars)
        for name, labels, fn in self._gauge_fns:
            try:
                out[(name, labels)] = (GAUGE, float(fn()))
            except Exception:  # noqa: BLE001 - a dead gauge, not a crash
                continue
        return out

    def value(self, name: str, labels: dict[str, str] | None = None,
              default: float = 0.0) -> float:
        """One scalar series, or — with no/partial labels — the sum of
        every counter series (gauges: the max) matching them."""
        want = dict(labels or {})
        with self._lock:
            scalars = self._live_scalars()
        exact = scalars.get(_key(name, labels))
        if exact is not None:
            return exact[1]
        hits = [(kind, v) for (n, lab), (kind, v) in scalars.items()
                if n == name and all(dict(lab).get(k) == str(vv)
                                     for k, vv in want.items())]
        if not hits:
            return default
        if hits[0][0] == GAUGE:
            return max(v for _, v in hits)
        return sum(v for _, v in hits)

    def hist_totals(self, name: str,
                    labels: dict[str, str] | None = None
                    ) -> tuple[float, float]:
        """Aggregate ``(count, sum)`` over every matching histogram
        series — the advisor's mean-latency input."""
        want = dict(labels or {})
        count = total = 0.0
        with self._lock:
            for (n, lab), (cnt, tot, _per, _b) in self._hists.items():
                if n != name:
                    continue
                if not all(dict(lab).get(k) == str(v)
                           for k, v in want.items()):
                    continue
                count += cnt
                total += tot
        return count, total

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def samples(self) -> list[MetricSample]:
        """Every series as labeled samples (const labels applied)."""
        with self._lock:
            scalars = self._live_scalars()
            hists = dict(self._hists)
            helps = dict(self._help)
        out = []
        for (name, labels), (kind, v) in sorted(scalars.items()):
            out.append(MetricSample(name, kind, labels, value=v,
                                    help=helps.get(name, "")))
        for (name, labels), (cnt, tot, per, buckets) in sorted(
                hists.items()):
            out.append(MetricSample(name, HISTOGRAM, labels,
                                    hist=(cnt, tot, per), buckets=buckets,
                                    help=helps.get(name, "")))
        if self.const_labels:
            out = [s.labeled(self.const_labels) for s in out]
        return out

    def snapshot(self) -> dict:
        """A picklable/JSONable dump of every series.

        The shared wire shape of the unified metrics API: the service
        ``stats`` RPC returns it, ``RunResult.metrics`` holds it, and
        ``FigureReport.emit_json`` embeds it in ``BENCH_*.json``.
        """
        series = []
        for s in self.samples():
            doc = {"name": s.name, "kind": s.kind,
                   "labels": {k: v for k, v in s.labels}}
            if s.kind == HISTOGRAM and s.hist is not None:
                doc["count"], doc["sum"] = s.hist[0], s.hist[1]
                doc["buckets"] = list(s.buckets)
                doc["bucket_counts"] = list(s.hist[2])
            else:
                doc["value"] = s.value
            series.append(doc)
        return {"version": 1, "series": series,
                "help": dict(self._help)}

    def to_prometheus(self) -> str:
        from repro.telemetry.prom import to_prometheus

        return to_prometheus(self.samples(), self._help)


def snapshot_samples(snap: dict) -> list[MetricSample]:
    """Rehydrate :meth:`MetricsRegistry.snapshot` output into samples."""
    helps = snap.get("help", {})
    out = []
    for doc in snap.get("series", []):
        labels = tuple(sorted((str(k), str(v))
                              for k, v in doc.get("labels", {}).items()))
        name, kind = doc["name"], doc["kind"]
        if kind == HISTOGRAM:
            out.append(MetricSample(
                name, kind, labels,
                hist=(float(doc["count"]), float(doc["sum"]),
                      tuple(float(v) for v in doc["bucket_counts"])),
                buckets=tuple(float(b) for b in doc["buckets"]),
                help=helps.get(name, "")))
        else:
            out.append(MetricSample(name, kind, labels,
                                    value=float(doc["value"]),
                                    help=helps.get(name, "")))
    return out
