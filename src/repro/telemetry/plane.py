"""The shared-memory telemetry plane: per-rank pages, lock-free writers.

One :class:`TelemetryPlane` serves one world (one phase launch): a flat
``float64`` buffer of ``max_ranks`` fixed-layout pages (see
:mod:`repro.telemetry.schema`), backed by one dedicated shared-memory
segment for process substrates (``ppshm-<launch id>-telemetry``, swept
by the parent's deterministic-name cleanup like every other segment of
the launch) or a plain process-local array for thread substrates — the
scrape path is identical either way.

**Writer discipline** (mpmetrics-style, single writer per page):

* each rank writes *only its own page*, so no write ever races another
  write — the plane needs no locks at all;
* every slot is guarded by its own sequence word: the writer bumps it
  to odd, mutates the payload words, bumps it back to even.  A scraper
  that observes an odd or changed sequence retries, so cross-process
  readers can never see a torn multi-word value (the histogram
  count/sum/bucket triple is the case that matters);
* a page header flag says whether the page is empty, live, or frozen —
  a parked worker's page is frozen (its counts stay visible in the
  segment but the scraper skips it) until the rank is un-parked.

The writer the hot paths see is bound **thread-locally**: in-process
backends run ranks as threads of one interpreter, so a module global
would collide.  Instrumented library code (the data plane, mailboxes,
the safe-point protocol) calls :func:`writer` and gets either the
bound rank's :class:`TelemetryWriter` or the shared no-op
:class:`NullWriter` — telemetry off costs one attribute load and a
branch.  Nothing here ever touches a virtual clock: all timestamps are
wall-side (``perf_counter``), so results are bit-identical with
telemetry on or off.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from time import perf_counter, sleep
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.dsm import shm

import numpy as np

from repro.telemetry.schema import (
    COUNTER,
    HISTOGRAM,
    PAGE_ACTIVE,
    PAGE_FROZEN,
    PAGE_WORDS,
    SCHEMA,
    VTIME_SECONDS,
    WALL_SECONDS,
)


def telemetry_name(launch_id: str) -> str:
    """The deterministic segment name of one launch's metrics plane."""
    # imported here (and in create/attach below), not at module top:
    # shm's hot paths import this module's writer, so the dependency
    # must stay one-way at import time.
    from repro.dsm import shm

    return f"{shm.SHM_PREFIX}-{launch_id}-telemetry"


@dataclass
class MetricSample:
    """One scraped (or directly registered) metric value.

    ``labels`` is a sorted tuple of ``(key, value)`` pairs — hashable,
    picklable, and already in Prometheus emission order.  Histograms
    carry ``(count, sum, per-bucket counts)`` in ``hist`` with the
    bucket bounds alongside; scalar kinds carry ``value``.
    """

    name: str
    kind: str
    labels: tuple[tuple[str, str], ...]
    value: float = 0.0
    hist: tuple[float, float, tuple[float, ...]] | None = None
    buckets: tuple[float, ...] = ()
    help: str = ""

    def labeled(self, extra: dict[str, str]) -> "MetricSample":
        merged = dict(self.labels)
        merged.update({k: str(v) for k, v in extra.items()})
        return MetricSample(self.name, self.kind,
                            tuple(sorted(merged.items())), self.value,
                            self.hist, self.buckets, self.help)


class NullWriter:
    """The disabled hot path: every operation is a no-op."""

    active = False

    def inc(self, slot: int, value: float = 1.0) -> None:
        pass

    def set(self, slot: int, value: float) -> None:
        pass

    def observe(self, slot: int, value: float) -> None:
        pass

    def clocks(self, vtime: float) -> None:
        pass


NULL_WRITER = NullWriter()

_tl = threading.local()


def writer() -> "TelemetryWriter | NullWriter":
    """The telemetry writer bound to the calling thread (no-op writer
    outside an instrumented rank, or with telemetry disabled)."""
    return getattr(_tl, "tele", NULL_WRITER)


def bind(w: "TelemetryWriter | None") -> None:
    """Bind ``w`` as this thread's hot-path writer (None unbinds)."""
    if w is None:
        _tl.tele = NULL_WRITER
    else:
        _tl.tele = w


class TelemetryWriter:
    """One rank's lock-free write handle onto its own page."""

    active = True

    def __init__(self, page: np.ndarray, rank: int) -> None:
        self._page = page
        self.rank = rank
        #: wall anchor for the vtime-vs-wall skew gauge.
        self.bound_at = perf_counter()
        page[0] = PAGE_ACTIVE

    # -- seqlocked slot mutations (single writer: this rank) -----------
    def inc(self, slot: int, value: float = 1.0) -> None:
        p = self._page
        o = SCHEMA[slot].offset
        s = p[o] + 1.0
        p[o] = s            # odd: write in progress
        p[o + 1] += value
        p[o] = s + 1.0      # even: consistent

    def set(self, slot: int, value: float) -> None:
        p = self._page
        o = SCHEMA[slot].offset
        s = p[o] + 1.0
        p[o] = s
        p[o + 1] = value
        p[o] = s + 1.0

    def observe(self, slot: int, value: float) -> None:
        spec = SCHEMA[slot]
        p = self._page
        o = spec.offset
        s = p[o] + 1.0
        p[o] = s
        p[o + 1] += 1.0                              # count
        p[o + 2] += value                            # sum
        p[o + 3 + spec.bucket_index(value)] += 1.0   # bucket
        p[o] = s + 1.0

    def clocks(self, vtime: float) -> None:
        """Stamp the vtime / wall gauge pair (skew = wall - vtime)."""
        self.set(VTIME_SECONDS, vtime)
        self.set(WALL_SECONDS, perf_counter() - self.bound_at)

    # -- page lifecycle ------------------------------------------------
    def freeze(self) -> None:
        """Mark the page parked: counts stay, scrapes skip it."""
        self._page[0] = PAGE_FROZEN

    def thaw(self) -> None:
        self._page[0] = PAGE_ACTIVE


class TelemetryPlane:
    """All pages of one world, plus the parent's scrape path."""

    def __init__(self, max_ranks: int, backend: str = "",
                 segment: shm.ShmSegment | None = None) -> None:
        self.max_ranks = max_ranks
        self.backend = backend
        self._seg = segment
        if segment is not None:
            self._buf = segment.ndarray()
        else:
            self._buf = np.zeros(max_ranks * PAGE_WORDS, dtype=np.float64)

    # ------------------------------------------------------------------
    @classmethod
    def local(cls, max_ranks: int, backend: str = "") -> "TelemetryPlane":
        """A process-local plane (thread substrates; no segment)."""
        return cls(max_ranks, backend=backend)

    @classmethod
    def create(cls, launch_id: str, max_ranks: int,
               backend: str = "") -> "TelemetryPlane":
        """Allocate the launch's telemetry segment (parent side)."""
        from repro.dsm import shm

        seg = shm.ShmSegment.allocate(telemetry_name(launch_id),
                                      (max_ranks * PAGE_WORDS,), np.float64)
        seg.ndarray()[:] = 0.0
        return cls(max_ranks, backend=backend, segment=seg)

    @classmethod
    def attach(cls, launch_id: str, max_ranks: int,
               backend: str = "") -> "TelemetryPlane":
        """Map an existing telemetry segment (rank-process side)."""
        from repro.dsm import shm

        seg = shm.ShmSegment.attach(telemetry_name(launch_id),
                                    (max_ranks * PAGE_WORDS,), np.float64)
        return cls(max_ranks, backend=backend, segment=seg)

    # ------------------------------------------------------------------
    def page(self, rank: int) -> np.ndarray:
        if not (0 <= rank < self.max_ranks):
            raise ValueError(f"rank {rank} outside plane of "
                             f"{self.max_ranks} pages")
        return self._buf[rank * PAGE_WORDS:(rank + 1) * PAGE_WORDS]

    def writer(self, rank: int) -> TelemetryWriter:
        """This rank's write handle; activates (or thaws) its page."""
        return TelemetryWriter(self.page(rank), rank)

    # ------------------------------------------------------------------
    # the scrape path (parent / reader side)
    # ------------------------------------------------------------------
    @staticmethod
    def _read_slot(page: np.ndarray, offset: int,
                   words: int) -> np.ndarray:
        """Seqlock read: retry until an even, unchanged sequence brackets
        the payload copy.

        Every failed poll yields the interpreter (``sleep(0)``): with
        in-process writers a reader that spins without yielding burns
        its whole GIL slice observing one preempted writer frozen
        mid-store — the yield is what lets the writer's few remaining
        bytecodes run, so the retry actually samples a *new* state.
        Bounded all the same — a wedged writer (a rank killed mid-store)
        must not hang the scraper; the final best-effort copy is then no
        worse than what a lock would have left behind."""
        vals = page[offset + 1:offset + words].copy()
        for _ in range(4096):
            s1 = page[offset]
            if s1 % 2.0 != 0.0:
                sleep(0.0)
                continue
            vals = page[offset + 1:offset + words].copy()
            if page[offset] == s1:
                return vals
            sleep(0.0)
        return vals

    def _page_samples(self, rank: int) -> Iterator[MetricSample]:
        page = self.page(rank)
        labels_extra = {"rank": str(rank)}
        if self.backend:
            labels_extra["backend"] = self.backend
        for spec in SCHEMA:
            vals = self._read_slot(page, spec.offset, spec.words)
            labels = tuple(sorted(
                dict(spec.labels, **labels_extra).items()))
            if spec.kind == HISTOGRAM:
                count, total = float(vals[0]), float(vals[1])
                if count == 0.0:
                    continue
                yield MetricSample(spec.name, HISTOGRAM, labels,
                                   hist=(count, total,
                                         tuple(float(v) for v in vals[2:])),
                                   buckets=spec.buckets, help=spec.help)
            else:
                if vals[0] == 0.0 and spec.kind == COUNTER:
                    continue
                yield MetricSample(spec.name, spec.kind, labels,
                                   value=float(vals[0]), help=spec.help)

    def scrape(self, include_frozen: bool = False) -> list[MetricSample]:
        """Consistent samples of every live page.

        Empty pages (never bound) and frozen pages (parked workers) are
        skipped; pass ``include_frozen`` for the drain-time scrape that
        folds a finished world's parked pages in as well.
        """
        out: list[MetricSample] = []
        wanted = ({PAGE_ACTIVE, PAGE_FROZEN} if include_frozen
                  else {PAGE_ACTIVE})
        for rank in range(self.max_ranks):
            if float(self.page(rank)[0]) in wanted:
                out.extend(self._page_samples(rank))
        return out

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._buf = np.zeros(0, dtype=np.float64)
        if self._seg is not None:
            self._seg.close()

    def unlink(self) -> None:
        if self._seg is not None:
            self._seg.unlink()


def unlink_telemetry(launch_id: str) -> None:
    """Parent crash-path sweep for the launch's telemetry segment."""
    from repro.dsm import shm

    shm.unlink_by_name(telemetry_name(launch_id))
