"""Lock-free shared-memory telemetry: one metrics plane per world.

The observability subsystem: per-rank pages of fixed-slot counters /
gauges / histograms (:mod:`~repro.telemetry.schema`) written lock-free
from the hot paths (:mod:`~repro.telemetry.plane`), scraped by the
parent into a :class:`MetricsRegistry` (:mod:`~repro.telemetry.
registry`) that exports Prometheus text (:mod:`~repro.telemetry.prom`)
and feeds the advisor's :class:`MeasuredRates` view
(:mod:`~repro.telemetry.measured`).
"""

from repro.telemetry.measured import MeasuredRates
from repro.telemetry.plane import (
    NULL_WRITER,
    MetricSample,
    NullWriter,
    TelemetryPlane,
    TelemetryWriter,
    bind,
    telemetry_name,
    unlink_telemetry,
    writer,
)
from repro.telemetry.prom import (
    CONTENT_TYPE,
    PromParseError,
    parse_prometheus,
    to_prometheus,
)
from repro.telemetry.registry import MetricsRegistry, snapshot_samples
from repro.telemetry import schema

__all__ = [
    "CONTENT_TYPE",
    "MeasuredRates",
    "MetricSample",
    "MetricsRegistry",
    "NULL_WRITER",
    "NullWriter",
    "PromParseError",
    "TelemetryPlane",
    "TelemetryWriter",
    "bind",
    "parse_prometheus",
    "schema",
    "snapshot_samples",
    "telemetry_name",
    "to_prometheus",
    "unlink_telemetry",
    "writer",
]
