"""Compute-cost calibration: from noisy chunk timings to a work model.

Charging raw per-chunk CPU measurements to virtual clocks is biased on a
shared/oversubscribed host: concurrently running workers inflate each
other's measured CPU time (cache and memory-bandwidth contention), which
would make simulated parallel runs look *slower* per unit of work than
sequential ones — the opposite of the machine being modelled.

The :class:`CostCalibrator` fixes this with a min-rate estimator: every
executed chunk still runs for real and is timed, but the *charged* cost
is ``work_units x r_min(key)`` where ``r_min`` is the smallest per-unit
rate ever observed for that kernel — the best available estimate of the
kernel's uncontended speed.  Timings taken under contention only ever
raise observed rates, never lower them, so the estimator converges from
above and the virtual times become reproducible run-to-run.

Keys are ``"ClassName.method"`` strings shared between the woven apps
and the hand-written baselines, so comparisons between them are not
skewed by independent calibration noise.
"""

from __future__ import annotations

import threading

#: rates below this are timer-resolution artefacts, not real speeds.
_MIN_RATE = 1e-12
#: samples shorter than this are dominated by timer granularity (and a
#: chunk whose body early-returns measures ~0 regardless of its units).
_MIN_SAMPLE_SECONDS = 2e-5
#: tiny chunks are dominated by call overhead; don't let them set rates.
_MIN_SAMPLE_UNITS = 8


class CostCalibrator:
    """Per-kernel minimum-rate registry (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._rates: dict[str, float] = {}
        self._samples: dict[str, int] = {}
        self._pinned: set[str] = set()

    def pin(self, key: str, rate: float) -> None:
        """Fix ``key``'s per-unit rate; observations no longer move it.

        Used by the benchmark harness: the paper's figure *ratios* depend
        on the compute:communication:disk proportions, so the compute
        rate is pinned to a machine-model constant instead of drifting
        with the speed of whatever host runs the suite.
        """
        if rate <= 0:
            raise ValueError("pinned rate must be positive")
        with self._lock:
            self._rates[key] = rate
            self._pinned.add(key)

    def observe(self, key: str, units: int, seconds: float) -> None:
        """Record one measured chunk of ``units`` work units.

        Samples too short or too small to be trustworthy are discarded —
        they would otherwise drive the min-rate to the timer floor.
        """
        if units < _MIN_SAMPLE_UNITS or seconds < _MIN_SAMPLE_SECONDS:
            return
        rate = max(seconds / units, _MIN_RATE)
        with self._lock:
            if key in self._pinned:
                return
            cur = self._rates.get(key)
            if cur is None or rate < cur:
                self._rates[key] = rate
            self._samples[key] = self._samples.get(key, 0) + 1

    def cost(self, key: str, units: int, measured: float) -> float:
        """Charged cost for a chunk: calibrated if possible, else measured."""
        if units <= 0:
            return max(measured, 0.0)
        with self._lock:
            rate = self._rates.get(key)
        if rate is None:
            return max(measured, 0.0)
        return units * rate

    def charge_for(self, key: str, units: int, measured: float) -> float:
        """observe + cost in one step (the wrapper hot path)."""
        self.observe(key, units, measured)
        return self.cost(key, units, measured)

    def rate(self, key: str) -> float | None:
        with self._lock:
            return self._rates.get(key)

    def samples(self, key: str) -> int:
        with self._lock:
            return self._samples.get(key, 0)

    def reset(self) -> None:
        with self._lock:
            self._rates.clear()
            self._samples.clear()
            self._pinned.clear()


#: process-wide calibrator shared by the weaver and the baselines.
GLOBAL_CALIBRATOR = CostCalibrator()
