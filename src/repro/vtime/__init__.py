"""Virtual-time substrate.

The paper's evaluation ran on a real two-node, 24-core/node cluster.  This
reproduction executes every code path for real (partitioning, collectives,
barriers, snapshots, replay) but models *time* with a virtual clock per
rank, because CPython's GIL makes single-box wall-clock speedup curves
meaningless for pure-Python compute.

The model is "measured compute, modelled communication":

* compute chunks are measured with per-thread CPU timers and charged to the
  executing rank's clock (optionally scaled by core contention when ranks
  are over-subscribed onto cores — the over-decomposition experiment);
* message, collective, barrier and disk costs come from an explicit
  :class:`MachineModel` (latency/bandwidth per link class, barrier alpha/
  beta, disk latency/bandwidth), so the curves of Figures 3-9 depend only
  on data volumes and participant counts, which the real execution
  determines exactly.
"""

from repro.vtime.clock import VClock
from repro.vtime.machine import DiskModel, MachineModel, NetworkModel

__all__ = ["DiskModel", "MachineModel", "NetworkModel", "VClock"]
