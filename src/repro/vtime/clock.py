"""Per-rank virtual clocks.

Each simulated rank (or shared-memory thread) owns a :class:`VClock`.
Compute chunks advance only the local clock; communication and barriers
couple clocks together (a receive completes no earlier than the matching
send plus transfer cost; a barrier lifts every participant to the latest
arrival plus the barrier cost).

Clocks are manipulated from the owning thread except for the coupling
operations, which happen while the participants are quiescent (inside the
barrier/collective implementations), so a plain lock per clock suffices.
"""

from __future__ import annotations

import threading
from typing import Iterable


class VClock:
    """Monotone virtual clock for one rank.

    Attributes
    ----------
    now:
        Current virtual time in seconds.
    compute_total / comm_total / io_total:
        Per-category ledgers, useful for the benchmark breakdowns (the
        paper's Figure 4/5 split "save"/"load" from "replay" time).
    """

    __slots__ = ("_lock", "now", "compute_total", "comm_total", "io_total",
                 "contention")

    def __init__(self, start: float = 0.0) -> None:
        self._lock = threading.Lock()
        self.now = float(start)
        self.compute_total = 0.0
        self.comm_total = 0.0
        self.io_total = 0.0
        #: compute multiplier for core time-slicing (over-decomposition);
        #: a float >= 1 (includes the machine's cache-thrash penalty).
        self.contention = 1.0

    # ------------------------------------------------------------------
    def charge_compute(self, seconds: float) -> None:
        """Charge a measured compute chunk (scaled by core contention)."""
        if seconds < 0:
            raise ValueError("negative compute charge")
        dt = seconds * self.contention
        with self._lock:
            self.now += dt
            self.compute_total += dt

    def charge_comm(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("negative communication charge")
        with self._lock:
            self.now += seconds
            self.comm_total += seconds

    def charge_io(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("negative I/O charge")
        with self._lock:
            self.now += seconds
            self.io_total += seconds

    def advance_to(self, t: float) -> None:
        """Raise the clock to ``t`` (idle wait); never moves backwards."""
        with self._lock:
            if t > self.now:
                self.now = t

    def wait_comm(self, t: float) -> None:
        """Advance to ``t`` attributing the wait to communication time.

        Used by blocking receives: the time between the local clock and the
        message's arrival time is spent waiting on the network.
        """
        with self._lock:
            if t > self.now:
                self.comm_total += t - self.now
                self.now = t

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            return {
                "now": self.now,
                "compute": self.compute_total,
                "comm": self.comm_total,
                "io": self.io_total,
            }

    # ------------------------------------------------------------------
    @staticmethod
    def sync_max(clocks: Iterable["VClock"], extra: float = 0.0) -> float:
        """Couple ``clocks`` at a barrier: all jump to max arrival + extra.

        Returns the post-barrier time.  Must be called while every owning
        thread is parked at the barrier (the barrier implementations
        guarantee this).
        """
        cs = list(clocks)
        t = max((c.now for c in cs), default=0.0) + extra
        for c in cs:
            c.advance_to(t)
        return t

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"VClock(now={self.now:.6f}, compute={self.compute_total:.6f},"
                f" comm={self.comm_total:.6f}, io={self.io_total:.6f})")
