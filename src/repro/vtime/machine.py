"""Machine, network and disk cost models.

The defaults approximate the paper's testbed: two nodes, dual Opteron 6174
(24 cores/node), gigabit-class interconnect, shared remote storage (the
paper stresses that Grid storage elements have *higher* latency than local
cluster disks — ``DiskModel`` has a generous latency term for that reason).

All quantities are seconds and bytes.  The constants do not try to match
the paper's absolute numbers (our compute substrate is Python, not a JVM);
they are chosen so the *relationships* the paper reports hold: inter-node
bandwidth well below intra-node, barrier cost growing with participant
count, disk write cost dominated by volume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class NetworkModel:
    """Point-to-point message cost: ``latency + nbytes / bandwidth``.

    Two link classes: *intra* (ranks placed on the same node — in the real
    system this is shared memory or loopback) and *inter* (ranks on
    different nodes — the real network).
    """

    intra_latency: float = 2e-6
    intra_bandwidth: float = 6e9  # bytes/s, memory-bus class
    inter_latency: float = 30e-6
    inter_bandwidth: float = 500e6  # bytes/s, Myrinet/10GbE class

    def p2p_cost(self, nbytes: int, same_node: bool) -> float:
        """Time for one point-to-point message of ``nbytes``."""
        if same_node:
            return self.intra_latency + nbytes / self.intra_bandwidth
        return self.inter_latency + nbytes / self.inter_bandwidth


@dataclass(frozen=True)
class DiskModel:
    """Checkpoint storage cost: ``latency + nbytes / bandwidth``.

    Grid storage elements are remote, so the latency term is large relative
    to a local disk; bandwidth is NFS-class.
    """

    latency: float = 5e-3
    write_bandwidth: float = 120e6
    read_bandwidth: float = 150e6
    #: memory-to-memory bandwidth of the async writer's double-buffer
    #: copy (memcpy class) — the only cost an asynchronous checkpoint
    #: leaves on the critical path when the writer keeps up.
    copy_bandwidth: float = 8e9

    def write_cost(self, nbytes: int) -> float:
        return self.latency + nbytes / self.write_bandwidth

    def read_cost(self, nbytes: int) -> float:
        return self.latency + nbytes / self.read_bandwidth

    def copy_cost(self, nbytes: int) -> float:
        """In-memory handoff cost of one async checkpoint submission."""
        return nbytes / self.copy_bandwidth


@dataclass(frozen=True)
class MachineModel:
    """Cluster topology plus derived cost helpers.

    ``nodes`` x ``cores_per_node`` processing elements.  Ranks (or threads)
    are placed on cores round-robin *within* a node and fill nodes in order
    (rank r sits on node ``r // cores_per_node`` while ranks fit; beyond
    that, placement wraps — over-decomposition).
    """

    nodes: int = 2
    cores_per_node: int = 24
    #: barrier cost = alpha * ceil(log2(P)) + beta * P (tree + linear term).
    barrier_alpha: float = 3e-6
    barrier_beta: float = 0.4e-6
    #: fixed per-rank scheduling overhead charged per synchronisation epoch
    #: when more ranks than cores share a core (context switching).
    oversub_switch_cost: float = 150e-6
    #: cache-pollution penalty of time-slicing: k co-located ranks run
    #: their compute at an effective slowdown of ``k + (k-1)*thrash``
    #: rather than the ideal k (every switch refills caches).  Calibrated
    #: so the Figure 8 over-decomposition blow-up lands near the paper's
    #: ~3x at 16 ranks per core.
    oversub_thrash: float = 2.5
    #: fixed cost to spawn one thread / rank (team creation, replay entry).
    spawn_cost: float = 120e-6
    #: collective algorithm the communicators run: ``"flat"`` (default)
    #: is the paper's root-funnel shape — linear-in-P at the root,
    #: exactly the Figure 4/5 checkpoint-collection behaviour — and
    #: ``"tree"`` selects binomial-tree bcast/gather/reduce.  Virtual
    #: time needs no separate constants per algorithm: every tree edge
    #: is a real modelled p2p message, so each algorithm's cost emerges
    #: from the network model faithfully.  ``"auto"`` delegates to
    #: :meth:`collective_algo` per call — flat vs tree chosen from the
    #: payload size and rank count of *that* collective.  The paper's
    #: Figure 4/5 runs keep the default, so their numbers are bit-exact.
    coll_algo: str = "flat"
    network: NetworkModel = field(default_factory=NetworkModel)
    disk: DiskModel = field(default_factory=DiskModel)

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node

    def node_of(self, rank: int, nranks: int | None = None) -> int:
        """Node hosting ``rank``.

        Ranks fill node 0's cores first, then node 1's, etc.; with more
        ranks than cores the assignment wraps around the core grid, so
        rank placement is ``(rank % total_cores)`` mapped to nodes.
        """
        core = self.core_of(rank)
        return core // self.cores_per_node

    def core_of(self, rank: int) -> int:
        """Global core index hosting ``rank`` (wraps when over-subscribed)."""
        return rank % self.total_cores

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)

    def contention(self, rank: int, nranks: int) -> int:
        """How many of ``nranks`` ranks share ``rank``'s core.

        1 when the machine is under-subscribed; ``ceil(nranks/cores)``-ish
        when over-decomposed.  Compute charges are multiplied by this
        factor: co-located ranks time-slice one core.
        """
        core = self.core_of(rank)
        ncores = self.total_cores
        if nranks <= ncores:
            return 1
        base, extra = divmod(nranks, ncores)
        return base + (1 if core < extra else 0)

    def thread_contention(self, tid: int, nthreads: int) -> int:
        """Core sharing for *threads*, which all live on a single node."""
        cores = self.cores_per_node
        if nthreads <= cores:
            return 1
        base, extra = divmod(nthreads, cores)
        return base + (1 if (tid % cores) < extra else 0)

    def contention_factor(self, rank: int, nranks: int) -> float:
        """Effective compute slowdown of a rank on its (shared) core."""
        k = self.contention(rank, nranks)
        return k if k <= 1 else k + (k - 1) * self.oversub_thrash

    def thread_contention_factor(self, tid: int, nthreads: int) -> float:
        k = self.thread_contention(tid, nthreads)
        return k if k <= 1 else k + (k - 1) * self.oversub_thrash

    # ------------------------------------------------------------------
    # costs
    # ------------------------------------------------------------------
    def barrier_cost(self, nparticipants: int) -> float:
        """Cost of one barrier among ``nparticipants`` ranks/threads."""
        if nparticipants <= 1:
            return 0.0
        stages = math.ceil(math.log2(nparticipants))
        return self.barrier_alpha * stages + self.barrier_beta * nparticipants

    def p2p_cost(self, nbytes: int, src: int, dst: int) -> float:
        """Message cost between two ranks given their node placement."""
        return self.network.p2p_cost(nbytes, self.same_node(src, dst))

    def collective_algo(self, nranks: int, nbytes: int = 0) -> str:
        """Flat or tree for one collective of ``nbytes`` among ``nranks``.

        Modelled critical paths on the (conservative) inter-node link:

        * flat — the root serialises ``P - 1`` messages:
          ``(P-1) * (latency + b/B)``;
        * tree — ``ceil(log2 P)`` rounds, each one link latency, but
          interior ranks store-and-forward their subtree's bytes, so
          the byte term pays twice on the deepest path:
          ``rounds * latency + 2 * rounds * b/B``.

        Latency-bound (small) payloads therefore flip to tree as soon
        as ``rounds < P - 1``; bandwidth-bound payloads need the rank
        count to beat the relay doubling (``2 * rounds < P - 1``).
        Every input is SPMD-symmetric, so all ranks of a collective
        compute the same verdict with no agreement round.
        """
        if nranks <= 2:
            return "flat"
        link = self.network
        rounds = math.ceil(math.log2(nranks))
        per_byte = nbytes / link.inter_bandwidth
        flat = (nranks - 1) * (link.inter_latency + per_byte)
        tree = rounds * link.inter_latency + 2 * rounds * per_byte
        return "tree" if tree < flat else "flat"

    def oversub_epoch_cost(self, nranks: int) -> float:
        """Context-switch overhead charged per rank per sync epoch.

        Zero when every rank has its own core.
        """
        if nranks <= self.total_cores:
            return 0.0
        return self.oversub_switch_cost

    def with_(self, **kw) -> "MachineModel":
        """Return a copy with some fields replaced (frozen dataclass)."""
        from dataclasses import replace

        return replace(self, **kw)


#: Per-backend cost-model calibration for process-rank substrates
#: (consumed through ``ExecutionBackend.calibrate``): rank creation is a
#: ``fork`` + interpreter warm-up, not a thread spawn, and every message
#: is a pickle through an OS pipe on one host — milliseconds and tens of
#: microseconds where the simulated cluster models microseconds and a
#: network.  The advisor ranks reshape-vs-relaunch transitions with
#: these constants; they never feed a running phase's virtual clocks.
PROCESS_RANKS_CALIBRATION: dict = {
    "spawn_cost": 8e-3,  # fork + child start-up, JVM/job-submit class
    "network": NetworkModel(
        intra_latency=60e-6, intra_bandwidth=1.2e9,   # queue + pickle
        inter_latency=60e-6, inter_bandwidth=1.2e9),  # one host: no tiers
}

#: The same substrate with the zero-copy shared-memory data plane
#: enabled (the multiprocessing backend's default): large payloads are
#: one memcpy into a pooled slab plus a ~200-byte descriptor envelope
#: through the queue, so effective bandwidth approaches memcpy class
#: while the envelope keeps a queue-round-trip latency floor.  Like its
#: queue sibling, this only feeds ``SelfAdaptationAdvisor`` transition
#: ranking through ``ExecutionBackend.calibrate`` — never the virtual
#: clocks of a running phase, so cross-backend vtime parity holds.
PROCESS_RANKS_SHM_CALIBRATION: dict = {
    "spawn_cost": 8e-3,  # rank creation is unchanged by the data plane
    "network": NetworkModel(
        intra_latency=25e-6, intra_bandwidth=4.5e9,   # descriptor + memcpy
        inter_latency=25e-6, inter_bandwidth=4.5e9),  # one host: no tiers
}

#: The sockets backend: rank processes reached over TCP, co-located
#: ranks still riding the shared-memory data plane.  Intra-node edges
#: are the slab/descriptor path (identical to the shm calibration);
#: inter-node edges pay loopback/LAN TCP latency and a pickle-bounded
#: stream bandwidth.  This is the first calibration whose two link
#: classes actually differ — the advisor can finally price an
#: inter-node edge above an intra-node one for a real substrate.  Like
#: its siblings it feeds only transition ranking through
#: ``ExecutionBackend.calibrate``, never a running phase's virtual
#: clocks (cross-backend vtime parity is preserved by construction).
SOCKET_RANKS_CALIBRATION: dict = {
    "spawn_cost": 9e-3,  # fork + listener bind + address rendezvous
    "network": NetworkModel(
        intra_latency=25e-6, intra_bandwidth=4.5e9,   # descriptor + memcpy
        inter_latency=90e-6, inter_bandwidth=280e6),  # TCP frame + pickle
}

#: The paper's testbed for the distributed experiments (2 x 24 cores).
PAPER_CLUSTER = MachineModel(nodes=2, cores_per_node=24)

#: The cluster used for the paper's Figure 9 ("eight-core machines").
EIGHT_CORE_CLUSTER = MachineModel(nodes=4, cores_per_node=8)
