"""A reusable barrier whose party count may change between generations.

``threading.Barrier`` fixes the party count at construction; team
malleability needs a barrier that can admit newly spawned threads and drop
retired ones.  ``AdaptiveBarrier`` is generation-based: ``wait()`` blocks
until the number of arrivals equals the *current* party count; the last
arriver may run an ``action`` callback (used to couple virtual clocks and
to apply pending team resizes) before releasing the generation.

``add_party`` / ``remove_party`` may be called either by a thread that is
*not* currently waiting, or from inside the ``action`` callback (the only
moments the count can change without racing a release).
"""

from __future__ import annotations

import threading
from typing import Callable


class BrokenTeamBarrier(RuntimeError):
    """Raised to waiters when the barrier is aborted (failure injection)."""


class AdaptiveBarrier:
    def __init__(self, parties: int, action: Callable[[], None] | None = None):
        if parties < 1:
            raise ValueError("barrier needs at least one party")
        self._cond = threading.Condition()
        self._parties = parties
        self._count = 0
        self._generation = 0
        self._broken = False
        self._action = action

    # ------------------------------------------------------------------
    @property
    def parties(self) -> int:
        with self._cond:
            return self._parties

    def add_party(self, n: int = 1) -> None:
        with self._cond:
            self._parties += n
            # A pending generation may now be complete (e.g. everyone was
            # waiting when a newcomer registered and immediately waits too
            # -- the newcomer's own wait() will close the generation).

    def remove_party(self, n: int = 1) -> None:
        with self._cond:
            if self._parties - n < 1:
                raise ValueError("cannot shrink barrier below one party")
            self._parties -= n
            if self._count >= self._parties:
                self._release_locked()

    def abort(self) -> None:
        """Break the barrier; current and future waiters raise."""
        with self._cond:
            self._broken = True
            self._cond.notify_all()

    def reset(self) -> None:
        with self._cond:
            self._broken = False
            self._count = 0
            self._generation += 1
            self._cond.notify_all()

    # ------------------------------------------------------------------
    def wait(self, action_override: Callable[[], None] | None = None,
             timeout: float | None = 60.0) -> int:
        """Block until the current generation completes.

        Returns the arrival index (0 = first arriver).  The *last* arriver
        runs ``action_override`` or the constructor ``action`` while every
        other party is parked, then releases the generation.
        """
        with self._cond:
            if self._broken:
                raise BrokenTeamBarrier("barrier is broken")
            gen = self._generation
            index = self._count
            self._count += 1
            if self._count >= self._parties:
                act = action_override or self._action
                if act is not None:
                    try:
                        act()
                    except BaseException:
                        self._broken = True
                        self._cond.notify_all()
                        raise
                # The action may have *grown* the party count (replayer
                # spawn): in that case the generation stays open until the
                # newcomers arrive, and this thread parks like the rest.
                if self._count >= self._parties:
                    self._release_locked()
                    return index
            while gen == self._generation and not self._broken:
                if not self._cond.wait(timeout):
                    self._broken = True
                    self._cond.notify_all()
                    raise BrokenTeamBarrier(
                        f"barrier timeout (gen={gen}, waiting={self._count}/"
                        f"{self._parties})")
            if self._broken:
                raise BrokenTeamBarrier("barrier is broken")
            return index

    def _release_locked(self) -> None:
        self._count = 0
        self._generation += 1
        self._cond.notify_all()
