"""Shared-memory substrate: an OpenMP-like thread-team runtime.

Provides the execution model of Section III.B of the paper: a master thread
spawns a team to execute a *parallel method* (region); inside the region,
work-sharing constructs split loops among team members, ``synchronized`` /
``single`` / ``master`` methods arbitrate access, and barriers synchronise.

The team is *malleable* (Section IV.B): at adaptation points it can grow —
new threads replay the region body to rebuild their call stack and then go
live — or shrink — retired threads keep executing the region with empty
work shares until they fall off the end of the region, exactly the paper's
"executing methods with empty operations until the thread gets to the end
of the parallel region".
"""

from repro.smp.barrier import AdaptiveBarrier
from repro.smp.sched import Schedule, iter_chunks, static_slice
from repro.smp.sync import SingleArbiter, TeamLocks
from repro.smp.team import RegionState, ThreadTeam, Worker, current_worker
from repro.smp.tls import ThreadLocalField

__all__ = [
    "AdaptiveBarrier",
    "RegionState",
    "Schedule",
    "SingleArbiter",
    "TeamLocks",
    "ThreadLocalField",
    "ThreadTeam",
    "Worker",
    "current_worker",
    "iter_chunks",
    "static_slice",
]
