"""Malleable thread team: parallel regions, work sharing, safe points.

Execution model (paper Section III.B + IV.B):

* ``run_region(fn, ...)`` — the *parallel method*: the calling (master)
  thread becomes team member 0 and ``active-1`` extra threads are spawned;
  every member executes ``fn``; an implicit barrier joins the region.
* ``worksharing(lo, hi)`` — the ``for`` construct: yields this member's
  chunks of the iteration space (static / dynamic / guided schedules).
* ``safepoint(action)`` — region safe points.  Every present member
  rendezvous at an adaptive barrier; the last arriver applies pending team
  operations (resize requests, checkpoints, failure injections) while the
  team is parked.  Virtual time charged is only the safe-point counting
  cost unless an operation actually runs — matching the paper's claim that
  checkpoint-enabled runs pay ≈ the cost of counting safe points.

Malleability:

* **growth** — new members are spawned in *replay* mode: they re-execute
  the region body skipping work shares, barriers and single/master blocks,
  counting region safe points, and go live when they reach the count at
  which the team is parked (the paper's replay of the parallel region to
  rebuild each new thread's call stack).  The team waits for them, so the
  replay time is honestly charged to the adaptation.
* **shrink** — surplus members are *retired*: they keep executing the
  region but receive empty work shares until they fall off the region's
  end ("executing methods with empty operations until the thread gets to
  the end of the parallel region").

Lockstep requirement (documented, same spirit as OpenMP's rules for
work-sharing constructs): all live members must encounter the same region
safe points, work-sharing constructs and barriers in the same order.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.smp.barrier import AdaptiveBarrier, BrokenTeamBarrier
from repro.smp.sched import Schedule, SharedLoop, iter_chunks, static_slice
from repro.smp.sync import SingleArbiter, TeamLocks
from repro.util.events import EventLog
from repro.vtime.clock import VClock
from repro.vtime.machine import MachineModel

#: virtual cost of counting one safe point (a counter increment + compare).
SAFEPOINT_COUNT_COST = 5e-8


class TeamError(RuntimeError):
    pass


_tl = threading.local()


def current_worker() -> "Worker | None":
    """The team member bound to the calling thread, or None."""
    return getattr(_tl, "worker", None)


def current_team() -> "ThreadTeam | None":
    return getattr(_tl, "team", None)


@dataclass
class Worker:
    """One team member."""

    tid: int
    clock: VClock
    live: bool = True        # receives work shares
    replaying: bool = False  # rebuilding its call stack
    replay_target: int = -1  # region safe-point count at which to go live
    region_sp: int = 0       # region safe points this member has passed
    ws_seq: int = 0          # work-sharing occurrences encountered
    thread: threading.Thread | None = None


@dataclass
class RegionState:
    """Shared state of one parallel-region execution."""

    fn: Callable
    args: tuple
    kwargs: dict
    loops: dict[int, SharedLoop] = field(default_factory=dict)
    loops_lock: threading.Lock = field(default_factory=threading.Lock)
    single: SingleArbiter = field(default_factory=SingleArbiter)


# ---------------------------------------------------------------------------
# team operations queued for application at safe points
# ---------------------------------------------------------------------------
@dataclass
class ResizeOp:
    """Change the number of live members to ``target``."""

    target: int


@dataclass
class CallbackOp:
    """Run ``fn(team)`` while the team is parked (checkpoint, injection)."""

    fn: Callable[["ThreadTeam"], None]
    label: str = "callback"


class ThreadTeam:
    """A malleable team of threads bound to one :class:`MachineModel`."""

    def __init__(self, machine: MachineModel | None = None, size: int = 1,
                 log: EventLog | None = None) -> None:
        if size < 1:
            raise ValueError("team size must be >= 1")
        self.machine = machine if machine is not None else MachineModel()
        self.log = log if log is not None else EventLog()
        #: clock carrying virtual time across regions (master's timeline).
        self.clock = VClock()
        self._active_target = size  # live size for the next region
        self._workers: list[Worker] = []
        self._region: RegionState | None = None
        self._barrier: AdaptiveBarrier | None = None
        self._requests: list[ResizeOp | CallbackOp] = []
        self._req_lock = threading.Lock()
        self._pending_flag = False  # fast-path check, CPython-atomic read
        self._errors: list[BaseException] = []
        self._locks = TeamLocks()
        self._next_tid = 0
        self._epoch = 0.0
        self._region_return: Any = None
        #: increments at every region entry; lets per-region bookkeeping
        #: (e.g. the context's safe-point dedup) detect region boundaries.
        self.region_gen = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def active_size(self) -> int:
        if self._region is None:
            return self._active_target
        return sum(1 for w in self._workers if w.live)

    @property
    def present_size(self) -> int:
        return len(self._workers) if self._region is not None else 0

    def in_region(self) -> bool:
        return self._region is not None

    def live_workers(self) -> list[Worker]:
        return sorted((w for w in self._workers if w.live), key=lambda w: w.tid)

    def live_rank(self, w: Worker) -> int:
        """Position of ``w`` among live members (work-sharing index)."""
        return self.live_workers().index(w)

    def locks(self) -> TeamLocks:
        return self._locks

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Join every spawned worker thread; best-effort and idempotent.

        Execution backends own the team's lifecycle: they create it at
        phase launch and call this in their ``finally``, so an unwind
        (adaptation exit, failure, relaunch) can never leak parked or
        replaying workers across phases.  ``run_region`` already joins
        its workers on normal and error paths; this is the backstop that
        makes the guarantee hold for *every* exit route — aborting an
        in-flight barrier first so blocked members can unwind.

        Never raises: it runs inside backend ``finally`` blocks, where an
        exception would mask the phase's real outcome.  A worker that
        outlives the join budget (e.g. parked on slow external I/O) is
        reported via a ``team_shutdown_timeout`` event and left to its
        daemon fate instead.
        """
        b = self._barrier
        if b is not None:
            b.abort()
        for _ in range(3):
            pending = [w.thread for w in self._workers
                       if w.thread is not None and w.thread.is_alive()]
            if not pending:
                return
            for th in pending:
                th.join(timeout=5.0)
        leftover = [w.thread.name for w in self._workers
                    if w.thread is not None and w.thread.is_alive()]
        if leftover:
            self.log.emit("team_shutdown_timeout", vtime=self.clock.now,
                          workers=leftover)

    # ------------------------------------------------------------------
    # requests (thread-safe, may be called from any thread at any time)
    # ------------------------------------------------------------------
    def request(self, op: ResizeOp | CallbackOp) -> None:
        with self._req_lock:
            self._requests.append(op)
            self._pending_flag = True

    def request_resize(self, target: int) -> None:
        if target < 1:
            raise ValueError("team target size must be >= 1")
        self.request(ResizeOp(target))

    def _drain_requests(self) -> list[ResizeOp | CallbackOp]:
        with self._req_lock:
            ops, self._requests = self._requests, []
            self._pending_flag = False
            return ops

    # ------------------------------------------------------------------
    # parallel region execution
    # ------------------------------------------------------------------
    def run_region(self, fn: Callable, /, *args: Any, **kwargs: Any) -> Any:
        """Execute ``fn`` as a parallel region; returns master's result."""
        if self._region is not None:
            raise TeamError("nested parallel regions are not supported")
        if current_worker() is not None:
            raise TeamError("run_region must be called by the master thread")

        # apply resizes requested between regions
        for op in self._drain_requests():
            if isinstance(op, ResizeOp):
                self._active_target = op.target
            else:
                op.fn(self)

        size = self._active_target
        region = RegionState(fn, tuple(args), dict(kwargs))
        self._errors = []
        self._next_tid = size
        t0 = self.clock.now
        workers = [Worker(tid=i, clock=VClock(t0 + self.machine.spawn_cost * i))
                   for i in range(size)]
        for i, w in enumerate(workers):
            w.clock.contention = self.machine.thread_contention_factor(i, size)
        self._workers = workers
        self._barrier = AdaptiveBarrier(size)
        self._region = region
        self._epoch = t0
        self.region_gen += 1
        self.log.emit("region_start", vtime=t0, size=size)

        master = workers[0]
        threads = []
        for w in workers[1:]:
            th = threading.Thread(target=self._worker_main, args=(w, region),
                                  daemon=True, name=f"team-w{w.tid}")
            w.thread = th
            threads.append(th)
            th.start()

        _tl.worker, _tl.team = master, self
        master_exc: BaseException | None = None
        try:
            self._region_return = region.fn(*region.args, **region.kwargs)
        except BaseException as exc:  # noqa: BLE001 - must not deadlock team
            master_exc = exc
            self._barrier.abort()
        finally:
            _tl.worker = _tl.team = None
            # wait for every spawned thread, including replayers added later
            while True:
                pending = [w.thread for w in self._workers
                           if w.thread is not None and w.thread.is_alive()]
                if not pending:
                    break
                for th in pending:
                    th.join(timeout=60.0)
                    if th.is_alive():
                        self._barrier.abort()
                        raise TeamError(f"worker {th.name} did not finish")
            end = VClock.sync_max(
                [w.clock for w in self._workers],
                extra=self.machine.barrier_cost(len(self._workers)))
            self.clock.advance_to(end)
            self._active_target = max(1, sum(1 for w in self._workers if w.live))
            self._workers = []
            self._region = None
            self._barrier = None
            self.log.emit("region_end", vtime=end, size=self._active_target)

        # Prefer a real error over the broken-barrier fallout it caused.
        real = [e for e in self._errors if not isinstance(e, BrokenTeamBarrier)]
        if master_exc is not None and not isinstance(master_exc, BrokenTeamBarrier):
            raise master_exc
        if real:
            raise real[0]
        if master_exc is not None:
            raise master_exc
        if self._errors:
            raise self._errors[0]
        return self._region_return

    def _worker_main(self, w: Worker, region: RegionState) -> None:
        _tl.worker, _tl.team = w, self
        try:
            region.fn(*region.args, **region.kwargs)
        except BaseException as exc:  # noqa: BLE001
            self._errors.append(exc)
            if self._barrier is not None:
                self._barrier.abort()
        finally:
            _tl.worker = _tl.team = None

    # ------------------------------------------------------------------
    # in-region constructs (called from woven code)
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """Explicit team barrier (the Barrier template)."""
        w = current_worker()
        if w is None or self._region is None:
            return  # sequential context: barrier is a no-op
        if w.replaying:
            return
        b = self._barrier
        assert b is not None

        def _sync() -> None:
            self._epoch = VClock.sync_max(
                [x.clock for x in self._workers],
                extra=self.machine.barrier_cost(len(self._workers)))

        b.wait(action_override=_sync)
        w.clock.advance_to(self._epoch)

    def worksharing(self, lo: int, hi: int,
                    schedule: Schedule = Schedule.STATIC,
                    chunk: int = 1) -> Iterable[tuple[int, int]]:
        """This member's ``(start, stop)`` chunks of ``[lo, hi)``.

        Eager: the work-sharing occurrence is registered at *call* time
        (not first iteration), so replay code can keep its occurrence
        counter aligned simply by calling and discarding the result.
        """
        w = current_worker()
        if w is None or self._region is None:
            return [(lo, hi)]  # sequential: the whole range
        seq = w.ws_seq
        w.ws_seq += 1
        if w.replaying or not w.live:
            return []  # replayers and retirees get empty shares
        live = self.live_workers()
        nlive = len(live)
        rank = live.index(w)
        if schedule is Schedule.STATIC:
            s, e = static_slice(lo, hi, rank, nlive)
            return [(s, e)] if s < e else []
        with self._region.loops_lock:
            loop = self._region.loops.get(seq)
            if loop is None or loop.lo != lo or loop.hi != hi:
                loop = SharedLoop(lo, hi, schedule, chunk, nlive)
                self._region.loops[seq] = loop
        # register eagerly (at call time): grabs gate on every live
        # member's virtual clock, so chunk handout follows modelled
        # time, not host-thread racing.
        loop.register(w.clock)
        return iter_chunks(loop, w.clock)

    def single_claim(self, key: str) -> bool:
        """True iff the caller executes this occurrence of a single block."""
        w = current_worker()
        if w is None or self._region is None:
            return True
        seq = w.ws_seq
        w.ws_seq += 1
        if w.replaying or not w.live:
            return False
        return self._region.single.claim(key, seq, w.tid)

    def is_master(self) -> bool:
        w = current_worker()
        if w is None or self._region is None:
            return True
        return w.live and not w.replaying and self.live_rank(w) == 0

    def worker_clock(self) -> VClock:
        w = current_worker()
        return w.clock if w is not None else self.clock

    # ------------------------------------------------------------------
    # safe points
    # ------------------------------------------------------------------
    def safepoint(self, action: Callable[[int, "ThreadTeam"], None] | None = None
                  ) -> None:
        """Pass a safe point.

        ``action(sp_index, team)`` is run exactly once per team passage
        while every present member is parked (used by the checkpoint
        manager); it must be idempotent in ``sp_index`` because barrier
        growth can re-run the parked-team action.
        """
        w = current_worker()
        if w is None or self._region is None:
            # Sequential safe point: no rendezvous needed.
            self.clock.charge_compute(SAFEPOINT_COUNT_COST)
            for op in self._drain_requests():
                if isinstance(op, ResizeOp):
                    self._active_target = op.target
                else:
                    op.fn(self)
            if action is not None:
                action(-1, self)
            return

        w.region_sp += 1
        if w.replaying:
            if w.region_sp < w.replay_target:
                return
            w.replaying = False  # go live and join the parked generation
        b = self._barrier
        assert b is not None

        def _sp_action() -> None:
            self._sp_barrier_action(w.region_sp, action)

        b.wait(action_override=_sp_action)
        w.clock.advance_to(self._epoch)

    def _sp_barrier_action(self, sp_index: int,
                           action: Callable[[int, "ThreadTeam"], None] | None
                           ) -> None:
        """Runs with all present members parked (last arriver context)."""
        clocks = [x.clock for x in self._workers]
        self._epoch = VClock.sync_max(clocks, extra=SAFEPOINT_COUNT_COST)
        # action first: it may itself enqueue a resize (adaptation plans),
        # which must then apply at *this* safe point, and checkpoints must
        # capture the pre-reshape state.
        acted = bool(action(sp_index, self)) if action is not None else False
        ops = self._drain_requests()
        grew = False
        for op in ops:
            if isinstance(op, ResizeOp):
                grew |= self._apply_resize_locked(op.target, sp_index)
            else:
                op.fn(self)
        if ops or acted:
            # data was saved / team reshaped: charge the barrier pair the
            # paper inserts around an actual checkpoint or adaptation.
            extra = 2 * self.machine.barrier_cost(len(self._workers))
            self._epoch = VClock.sync_max(clocks, extra=extra)
        # Align work-sharing occurrence counters across live members.
        # Replay skips ignorable methods, so a freshly joined member's
        # counter lags the team's by however many constructs the skipped
        # bodies contained; parked at a common safe point, the live team's
        # maximum is the true occurrence number.
        live = [w for w in self._workers if w.live and not w.replaying]
        if live:
            mx = max(w.ws_seq for w in live)
            for w in live:
                w.ws_seq = mx
        if grew:
            # replayers were spawned; the generation stays open until they
            # arrive -- the final (newcomer) action recomputes the epoch.
            pass

    def _apply_resize_locked(self, target: int, sp_index: int) -> bool:
        """Apply a resize while the team is parked.  Returns True if grown."""
        live = self.live_workers()
        nlive = len(live)
        if target == nlive:
            return False
        if target < nlive:
            for w in live[target:]:
                w.live = False
            for i, w in enumerate(self.live_workers()):
                w.clock.contention = self.machine.thread_contention_factor(i, target)
            self.log.emit("team_shrink", vtime=self._epoch,
                          size=target, was=nlive)
            return False
        # growth: prefer re-activating retirees, then spawn replayers
        want = target - nlive
        retirees = sorted((w for w in self._workers if not w.live),
                          key=lambda w: w.tid)
        # Retirees cannot simply be re-activated mid-region (their work-
        # sharing counters moved on), so we only spawn fresh replayers.
        del retirees
        region = self._region
        assert region is not None and self._barrier is not None
        for _ in range(want):
            tid = self._next_tid
            self._next_tid += 1
            nw = Worker(tid=tid,
                        clock=VClock(self._epoch + self.machine.spawn_cost),
                        replaying=True, replay_target=sp_index)
            self._workers.append(nw)
            self._barrier.add_party()
            th = threading.Thread(target=self._worker_main, args=(nw, region),
                                  daemon=True, name=f"team-w{tid}")
            nw.thread = th
            th.start()
        for i, w in enumerate(self.live_workers()):
            w.clock.contention = self.machine.thread_contention_factor(i, target)
        self.log.emit("team_grow", vtime=self._epoch, size=target, was=nlive)
        return True
