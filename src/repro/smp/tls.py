"""Thread-local object fields.

The paper (Section III.B) added *thread local fields* so each thread in a
team sees a private copy of an object field, avoiding synchronisation.  On
expansion, "thread local variables are updated with the value of the main
thread" (Section IV.B) — :meth:`ThreadLocalField.seed_from_master`
implements exactly that; on contraction the master's copy survives.

Storage lives in the instance's ``__dict__`` under a mangled name, keyed by
team thread id (``None`` outside any team = the sequential value), so the
base class stays untouched and unplugging restores plain attribute access.
"""

from __future__ import annotations

from typing import Any

_MISSING = object()


class ThreadLocalField:
    """Descriptor replacing a plain attribute with per-thread storage."""

    def __init__(self, name: str, tid_getter) -> None:
        self.name = name
        self.slot = f"_tls__{name}"
        self._tid = tid_getter  # () -> int | None

    # -- descriptor protocol -------------------------------------------
    def __get__(self, obj: Any, objtype=None):
        if obj is None:
            return self
        store = obj.__dict__.setdefault(self.slot, {})
        tid = self._tid()
        val = store.get(tid, _MISSING)
        if val is _MISSING:
            # Fall back to the master thread's value, then the sequential
            # value: a newly grown thread's first read sees the main
            # thread's copy (Section IV.B: "thread local variables are
            # updated with the value of the main thread").
            val = store.get(0, _MISSING)
            if val is _MISSING:
                val = store.get(None, _MISSING)
            if val is _MISSING:
                raise AttributeError(
                    f"thread-local field {self.name!r} read before any write")
        return val

    def __set__(self, obj: Any, value: Any) -> None:
        store = obj.__dict__.setdefault(self.slot, {})
        store[self._tid()] = value

    def __delete__(self, obj: Any) -> None:
        store = obj.__dict__.setdefault(self.slot, {})
        store.pop(self._tid(), None)

    # -- team protocol --------------------------------------------------
    def seed_from_master(self, obj: Any, tids: list[int]) -> None:
        """Copy the master thread's value to each tid in ``tids``."""
        store = obj.__dict__.setdefault(self.slot, {})
        master = store.get(0, store.get(None, _MISSING))
        if master is _MISSING:
            return
        for tid in tids:
            store.setdefault(tid, master)

    def collapse_to_sequential(self, obj: Any) -> None:
        """Keep only the master copy (used when a team is torn down)."""
        store = obj.__dict__.get(self.slot)
        if not store:
            return
        master = store.get(0, store.get(None, _MISSING))
        store.clear()
        if master is not _MISSING:
            store[None] = master
            store[0] = master
