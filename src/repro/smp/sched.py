"""Loop work-sharing schedulers (the OpenMP ``for`` construct).

Three schedules, as in OpenMP:

* ``STATIC``  — the iteration space is cut into ``nthreads`` near-equal
  contiguous blocks, thread ``t`` takes block ``t``.  Deterministic, cache
  friendly, the default for regular kernels like the SOR stencil.
* ``DYNAMIC`` — fixed-size chunks handed out from a shared cursor; good
  for irregular work (ray tracing, sparse rows).
* ``GUIDED``  — like dynamic but the chunk size decays geometrically with
  the remaining work.

Schedulers are expressed over an integer range ``[lo, hi)``.  ``STATIC``
needs no shared state; the other two use a :class:`SharedLoop` cursor that
the team allocates per work-sharing occurrence.
"""

from __future__ import annotations

import enum
import threading
from typing import Iterator


class Schedule(enum.Enum):
    STATIC = "static"
    DYNAMIC = "dynamic"
    GUIDED = "guided"


def static_slice(lo: int, hi: int, tid: int, nthreads: int) -> tuple[int, int]:
    """Contiguous block of ``[lo, hi)`` owned by thread ``tid``.

    Remainder iterations are distributed one-per-thread to the lowest ids,
    matching OpenMP's static schedule; every thread's block is contiguous
    and the blocks tile the range exactly.
    """
    if nthreads < 1:
        raise ValueError("nthreads must be >= 1")
    n = max(0, hi - lo)
    base, extra = divmod(n, nthreads)
    start = lo + tid * base + min(tid, extra)
    size = base + (1 if tid < extra else 0)
    return start, start + size


class SharedLoop:
    """Shared chunk cursor for dynamic/guided schedules."""

    __slots__ = ("_lock", "lo", "hi", "_next", "schedule", "chunk", "nthreads")

    def __init__(self, lo: int, hi: int, schedule: Schedule, chunk: int,
                 nthreads: int) -> None:
        self._lock = threading.Lock()
        self.lo = lo
        self.hi = hi
        self._next = lo
        self.schedule = schedule
        self.chunk = max(1, chunk)
        self.nthreads = max(1, nthreads)

    def grab(self) -> tuple[int, int] | None:
        """Take the next chunk, or ``None`` when the range is exhausted."""
        with self._lock:
            if self._next >= self.hi:
                return None
            if self.schedule is Schedule.GUIDED:
                remaining = self.hi - self._next
                size = max(self.chunk, remaining // (2 * self.nthreads))
            else:
                size = self.chunk
            start = self._next
            stop = min(self.hi, start + size)
            self._next = stop
            return start, stop


def iter_chunks(loop: SharedLoop) -> Iterator[tuple[int, int]]:
    """Iterate this thread's chunks of a shared loop until exhaustion."""
    while True:
        c = loop.grab()
        if c is None:
            return
        yield c
