"""Loop work-sharing schedulers (the OpenMP ``for`` construct).

Three schedules, as in OpenMP:

* ``STATIC``  — the iteration space is cut into ``nthreads`` near-equal
  contiguous blocks, thread ``t`` takes block ``t``.  Deterministic, cache
  friendly, the default for regular kernels like the SOR stencil.
* ``DYNAMIC`` — fixed-size chunks handed out from a shared cursor; good
  for irregular work (ray tracing, sparse rows).
* ``GUIDED``  — like dynamic but the chunk size decays geometrically with
  the remaining work.

Schedulers are expressed over an integer range ``[lo, hi)``.  ``STATIC``
needs no shared state; the other two use a :class:`SharedLoop` cursor that
the team allocates per work-sharing occurrence.
"""

from __future__ import annotations

import enum
import threading
from typing import Iterator


class Schedule(enum.Enum):
    STATIC = "static"
    DYNAMIC = "dynamic"
    GUIDED = "guided"


def static_slice(lo: int, hi: int, tid: int, nthreads: int) -> tuple[int, int]:
    """Contiguous block of ``[lo, hi)`` owned by thread ``tid``.

    Remainder iterations are distributed one-per-thread to the lowest ids,
    matching OpenMP's static schedule; every thread's block is contiguous
    and the blocks tile the range exactly.
    """
    if nthreads < 1:
        raise ValueError("nthreads must be >= 1")
    n = max(0, hi - lo)
    base, extra = divmod(n, nthreads)
    start = lo + tid * base + min(tid, extra)
    size = base + (1 if tid < extra else 0)
    return start, start + size


#: virtual-clock gating: how long (wall seconds) one grab may wait for a
#: virtually-slower contender before degrading to first-come handout —
#: a liveness backstop, not a tuning knob.
_GATE_WAIT_BUDGET = 1.0
_GATE_POLL_SECONDS = 0.001
#: clock comparisons tolerate float-summation noise.
_GATE_EPSILON = 1e-12


class SharedLoop:
    """Shared chunk cursor for dynamic/guided schedules.

    When contenders register their virtual clocks, chunk handout is
    *driven by virtual time*: a grab waits (briefly, in wall time) while
    another registered contender's clock is behind the caller's, so the
    virtually-least-loaded thread takes the next chunk — list scheduling
    on the modelled machine.  Without the gate, handout order follows
    host-thread racing (GIL slots, spawn latency), and the virtual
    makespan of a dynamic schedule becomes an artefact of wall-clock
    noise — the flakiness the schedule-ablation benchmark used to show.
    Ungated grabs (no clock registered) keep the first-come behaviour.
    """

    __slots__ = ("_cond", "lo", "hi", "_next", "schedule", "chunk",
                 "nthreads", "_clocks")

    def __init__(self, lo: int, hi: int, schedule: Schedule, chunk: int,
                 nthreads: int) -> None:
        self._cond = threading.Condition()
        self.lo = lo
        self.hi = hi
        self._next = lo
        self.schedule = schedule
        self.chunk = max(1, chunk)
        self.nthreads = max(1, nthreads)
        self._clocks: dict[int, object] = {}

    # ------------------------------------------------------------------
    def register(self, clock) -> None:
        """Enter ``clock`` as a contender (idempotent)."""
        with self._cond:
            self._clocks[id(clock)] = clock
            self._cond.notify_all()

    def deregister(self, clock) -> None:
        """Withdraw a contender; waiters re-evaluate without it."""
        with self._cond:
            self._clocks.pop(id(clock), None)
            self._cond.notify_all()

    def _my_turn(self, clock, waited: float) -> bool:
        """May ``clock`` take a chunk now?

        Yes once every expected contender has registered and no other
        registered clock is behind the caller's — or once the wall-clock
        budget is spent (a contender died or stalled; degrade rather
        than deadlock).
        """
        if waited >= _GATE_WAIT_BUDGET:
            return True
        if len(self._clocks) < self.nthreads:
            return False
        me = clock.now
        others = [c.now for k, c in self._clocks.items() if k != id(clock)]
        return not others or me <= min(others) + _GATE_EPSILON

    def grab(self, clock=None) -> tuple[int, int] | None:
        """Take the next chunk, or ``None`` when the range is exhausted."""
        waited = 0.0
        with self._cond:
            while True:
                if self._next >= self.hi:
                    return None
                if clock is None or self._my_turn(clock, waited):
                    if self.schedule is Schedule.GUIDED:
                        remaining = self.hi - self._next
                        size = max(self.chunk,
                                   remaining // (2 * self.nthreads))
                    else:
                        size = self.chunk
                    start = self._next
                    stop = min(self.hi, start + size)
                    self._next = stop
                    self._cond.notify_all()
                    return start, stop
                # clocks advance outside this lock (when a contender
                # charges its finished chunk), so poll as well as wait.
                if not self._cond.wait(_GATE_POLL_SECONDS):
                    waited += _GATE_POLL_SECONDS


def iter_chunks(loop: SharedLoop, clock=None) -> Iterator[tuple[int, int]]:
    """Iterate this thread's chunks of a shared loop until exhaustion.

    With a ``clock``, grabs are virtual-time gated: the contender is
    (re-)registered before its first grab — callers that know about all
    contenders up front (the team) additionally register at call time,
    since a generator's body only runs at first iteration — and
    deregistered on every exit path (exhaustion, error, abandonment) so
    peers never wait on a clock that stopped advancing.
    """
    try:
        if clock is not None:
            loop.register(clock)
        while True:
            c = loop.grab(clock)
            if c is None:
                return
            yield c
    finally:
        if clock is not None:
            loop.deregister(clock)
