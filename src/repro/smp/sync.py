"""Data-sharing arbitration: synchronized / single / master support.

``TeamLocks`` backs the ``SynchronizedMethod`` template: one reentrant lock
per declared method (or lock name), shared by the whole team.

``SingleArbiter`` backs the ``SingleMethod`` template: for each dynamic
occurrence of a single-region, exactly one live thread executes it.  An
occurrence is identified by a monotonically increasing per-thread sequence
number — every team member executes the same region code, so the Nth
single-construct encountered by thread A corresponds to the Nth encountered
by thread B (the OpenMP rule that work-sharing constructs must be
encountered by all threads in the same order).
"""

from __future__ import annotations

import threading


class TeamLocks:
    """Named reentrant locks shared across a team."""

    def __init__(self) -> None:
        self._guard = threading.Lock()
        self._locks: dict[str, threading.RLock] = {}

    def lock(self, name: str) -> threading.RLock:
        with self._guard:
            lk = self._locks.get(name)
            if lk is None:
                lk = self._locks[name] = threading.RLock()
            return lk


class SingleArbiter:
    """First-arriver election per single-construct occurrence."""

    def __init__(self) -> None:
        self._guard = threading.Lock()
        self._claimed: dict[tuple[str, int], int] = {}

    def claim(self, key: str, occurrence: int, tid: int) -> bool:
        """Return True iff ``tid`` is the executor for this occurrence."""
        with self._guard:
            owner = self._claimed.setdefault((key, occurrence), tid)
            return owner == tid

    def forget_before(self, occurrence: int) -> None:
        """Garbage-collect occurrences older than ``occurrence``."""
        with self._guard:
            stale = [k for k in self._claimed if k[1] < occurrence]
            for k in stale:
                del self._claimed[k]

    def reset(self) -> None:
        with self._guard:
            self._claimed.clear()
