"""Deterministic random-number helpers.

Every stochastic component in the library (MonteCarlo workload, failure
injection, synthetic Grid traces, evolutionary algorithms) takes an explicit
seed so that tests and benchmarks are reproducible run-to-run.
"""

from __future__ import annotations

import numpy as np


def seeded_rng(seed: int | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` yields a non-deterministic generator; library code should only
    pass ``None`` when the caller explicitly opted out of determinism.
    """
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from a single seed.

    Used by SPMD workloads so that each rank draws from its own stream and
    the union of the streams is independent of the rank count (the streams
    are keyed by *logical* index, not by rank).
    """
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in seq.spawn(n)]
