"""Shared utilities: timing, deterministic RNG, event logging, serialization.

These helpers are intentionally dependency-free (numpy only) so that every
other subpackage can import them without cycles.
"""

from repro.util.events import Event, EventLog
from repro.util.rng import seeded_rng, spawn_rngs
from repro.util.serialization import (
    crc32_of,
    dumps_portable,
    loads_portable,
    nbytes_of,
)
from repro.util.timing import ThreadTimer, WallTimer

__all__ = [
    "Event",
    "EventLog",
    "ThreadTimer",
    "WallTimer",
    "crc32_of",
    "dumps_portable",
    "loads_portable",
    "nbytes_of",
    "seeded_rng",
    "spawn_rngs",
]
