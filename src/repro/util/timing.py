"""Timers used by the virtual-time instrumentation.

Two kinds of time matter to the cost model:

* ``ThreadTimer`` measures CPU time consumed *by the calling thread only*
  (``time.thread_time``).  Because CPython's GIL serialises pure-Python
  bytecode, wall-clock time measured inside a worker thread is inflated by
  the time spent waiting for the GIL; per-thread CPU time is not.  This is
  what we charge to a rank's virtual clock for a compute chunk.
* ``WallTimer`` measures ordinary wall-clock time and is used for the
  harness-level reporting (pytest-benchmark measures wall time itself).
"""

from __future__ import annotations

import time


class ThreadTimer:
    """Context manager measuring per-thread CPU seconds.

    Usage::

        with ThreadTimer() as t:
            work()
        clock.charge_compute(t.elapsed)
    """

    __slots__ = ("_start", "elapsed")

    def __init__(self) -> None:
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "ThreadTimer":
        self._start = time.thread_time()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.thread_time() - self._start

    def start(self) -> None:
        self._start = time.thread_time()

    def stop(self) -> float:
        self.elapsed = time.thread_time() - self._start
        return self.elapsed


class WallTimer:
    """Context manager measuring wall-clock seconds."""

    __slots__ = ("_start", "elapsed")

    def __init__(self) -> None:
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "WallTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start

    def start(self) -> None:
        self._start = time.perf_counter()

    def stop(self) -> float:
        self.elapsed = time.perf_counter() - self._start
        return self.elapsed
