"""Structured event log.

The runtime emits events (checkpoint taken, replay finished, adaptation
applied, rank failed, ...) into an :class:`EventLog`.  Tests assert on the
event stream instead of scraping stdout, and the benchmark harness uses it
to reconstruct per-iteration timelines (Figure 6 of the paper plots time per
iteration across a restart — that series comes straight from the log).

Every event is stamped with a monotonic **wall timestamp**
(``perf_counter`` — CLOCK_MONOTONIC on Linux, one epoch for every
process on the host) and a process-global **sequence number** at
emission, so cross-rank ordering is recoverable and the trace plane's
assembler can place log entries as instants on the same timeline as
its spans (one source for Figure-6-style per-iteration views).  Both
stamps are wall-side bookkeeping only: nothing downstream of a virtual
clock ever reads them, so results stay bit-identical.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Iterator

#: process-global emission sequence (itertools.count is atomic under
#: the GIL; the per-process stream pairs with ``wall`` for cross-rank
#: ordering).
_seq = itertools.count(1)


@dataclass(frozen=True)
class Event:
    """A single timestamped runtime event.

    ``vtime`` is the virtual time of the emitting rank at emission; ``kind``
    is a short machine-readable tag; ``data`` carries kind-specific fields.
    ``wall`` is the monotonic wall clock at emission and ``seq`` the
    emitting process's global emission number (0/0 on events built by
    hand rather than through :meth:`EventLog.emit`).
    """

    kind: str
    vtime: float
    rank: int = 0
    wall: float = 0.0
    seq: int = 0
    data: dict[str, Any] = field(default_factory=dict)


class EventLog:
    """Append-only, thread-safe event sink."""

    def __init__(self) -> None:
        self._events: list[Event] = []
        self._lock = threading.Lock()

    def emit(self, kind: str, vtime: float = 0.0, rank: int = 0, **data: Any) -> Event:
        ev = Event(kind=kind, vtime=vtime, rank=rank, wall=perf_counter(),
                   seq=next(_seq), data=dict(data))
        with self._lock:
            self._events.append(ev)
        return ev

    def absorb(self, ev: Event) -> Event:
        """Append an event emitted elsewhere, keeping its stamps.

        The multiprocess backends merge rank timelines through this:
        re-emitting would overwrite the child's wall/seq stamps with
        parent-side ones and destroy the recoverable ordering.
        """
        with self._lock:
            self._events.append(ev)
        return ev

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        with self._lock:
            return iter(list(self._events))

    def of_kind(self, kind: str) -> list[Event]:
        with self._lock:
            return [e for e in self._events if e.kind == kind]

    def last(self, kind: str | None = None) -> Event | None:
        with self._lock:
            if kind is None:
                return self._events[-1] if self._events else None
            for e in reversed(self._events):
                if e.kind == kind:
                    return e
        return None

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
