"""Portable serialization helpers used by the checkpoint store.

The paper's central portability requirement (Section I) is that checkpoint
data must be stored in a machine-independent format so an application can
migrate across the heterogeneous resources of a Grid.  We satisfy it by
serialising numpy arrays in their portable ``.npy``-style representation
(dtype string + shape + C-order bytes) and everything else with pickle
protocol 4, and by checksumming every section.
"""

from __future__ import annotations

import io
import pickle
import zlib
from typing import Any

import numpy as np

#: pickle protocol pinned for cross-version portability of checkpoints.
PICKLE_PROTOCOL = 4

_ARRAY_TAG = b"NPYA"
_PICKLE_TAG = b"PKL4"


def dumps_portable(obj: Any) -> bytes:
    """Serialise ``obj`` to a tagged, portable byte string.

    numpy arrays are written in native ``.npy`` format (which is explicitly
    endianness-tagged); all other objects go through pickle.
    """
    if isinstance(obj, np.ndarray):
        buf = io.BytesIO()
        np.save(buf, obj, allow_pickle=False)
        return _ARRAY_TAG + buf.getvalue()
    return _PICKLE_TAG + pickle.dumps(obj, protocol=PICKLE_PROTOCOL)


def loads_portable(data: bytes) -> Any:
    """Inverse of :func:`dumps_portable`."""
    tag, payload = data[:4], data[4:]
    if tag == _ARRAY_TAG:
        return np.load(io.BytesIO(payload), allow_pickle=False)
    if tag == _PICKLE_TAG:
        return pickle.loads(payload)
    raise ValueError(f"unknown serialization tag {tag!r}")


def crc32_of(data: bytes) -> int:
    """CRC32 checksum as an unsigned 32-bit int."""
    return zlib.crc32(data) & 0xFFFFFFFF


def nbytes_of(obj: Any) -> int:
    """Approximate wire size of ``obj`` in bytes.

    Used by the network/disk cost models to charge communication time.
    Arrays are charged their buffer size; other objects the length of their
    pickled form.  The pickled length is memoised nowhere on purpose: the
    objects sent through the simulated cluster are small except for arrays.
    """
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (list, tuple)) and obj and all(
        isinstance(x, np.ndarray) for x in obj
    ):
        return int(sum(x.nbytes for x in obj))
    try:
        return len(pickle.dumps(obj, protocol=PICKLE_PROTOCOL))
    except Exception:
        return 256  # opaque object: charge a small fixed size
