"""Portable serialization helpers used by the checkpoint store.

The paper's central portability requirement (Section I) is that checkpoint
data must be stored in a machine-independent format so an application can
migrate across the heterogeneous resources of a Grid.  We satisfy it by
serialising numpy arrays in their portable ``.npy``-style representation
(dtype string + shape + C-order bytes) and everything else with pickle
protocol 4, and by checksumming every section.
"""

from __future__ import annotations

import io
import pickle
import zlib
from typing import Any

import numpy as np

#: pickle protocol pinned for cross-version portability of checkpoints.
PICKLE_PROTOCOL = 4

_ARRAY_TAG = b"NPYA"
_PICKLE_TAG = b"PKL4"


def dumps_portable(obj: Any) -> bytes:
    """Serialise ``obj`` to a tagged, portable byte string.

    numpy arrays are written in native ``.npy`` format (which is explicitly
    endianness-tagged); all other objects go through pickle.
    """
    if isinstance(obj, np.ndarray):
        buf = io.BytesIO()
        np.save(buf, obj, allow_pickle=False)
        return _ARRAY_TAG + buf.getvalue()
    return _PICKLE_TAG + pickle.dumps(obj, protocol=PICKLE_PROTOCOL)


def loads_portable(data: bytes) -> Any:
    """Inverse of :func:`dumps_portable`."""
    tag, payload = data[:4], data[4:]
    if tag == _ARRAY_TAG:
        return np.load(io.BytesIO(payload), allow_pickle=False)
    if tag == _PICKLE_TAG:
        return pickle.loads(payload)
    raise ValueError(f"unknown serialization tag {tag!r}")


def crc32_of(data: bytes) -> int:
    """CRC32 checksum as an unsigned 32-bit int."""
    return zlib.crc32(data) & 0xFFFFFFFF


#: section flag: payload is zlib-compressed (checkpoint container format).
SEC_ZLIB = 0x1

#: default threshold below which compression is never attempted — tiny
#: sections (counters, scalars) cost more in header bytes than they save.
COMPRESS_MIN_BYTES = 1 << 12


def pack_section(blob: bytes, compress_min_bytes: int | None
                 ) -> tuple[int, bytes]:
    """Negotiate per-section compression by size threshold.

    Returns ``(flags, stored_blob)``.  Compression is applied only when
    the blob clears the threshold AND actually shrinks; incompressible
    data (already-compressed, high-entropy floats) is stored raw so the
    reader never pays decompression for nothing.
    """
    if compress_min_bytes is not None and len(blob) >= compress_min_bytes:
        packed = zlib.compress(blob, 6)
        if len(packed) < len(blob):
            return SEC_ZLIB, packed
    return 0, blob


def unpack_section(flags: int, blob: bytes) -> bytes:
    """Inverse of :func:`pack_section`."""
    if flags & SEC_ZLIB:
        return zlib.decompress(blob)
    return blob


def nbytes_of(obj: Any) -> int:
    """Approximate wire size of ``obj`` in bytes.

    Used by the network/disk cost models to charge communication time.
    Arrays are charged their buffer size; other objects the length of their
    pickled form.  The pickled length is memoised nowhere on purpose: the
    objects sent through the simulated cluster are small except for arrays.
    """
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, memoryview):
        # len() is the element count along the first axis, not bytes
        # (wrong whenever itemsize > 1 or the view is multi-dimensional).
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, (list, tuple)) and obj and all(
        isinstance(x, np.ndarray) for x in obj
    ):
        return int(sum(x.nbytes for x in obj))
    if isinstance(obj, dict) and obj and all(
        isinstance(v, np.ndarray) for v in obj.values()
    ):
        # tree-collective envelopes ({rank: contribution}): charging by
        # buffer size keeps the pickle fallback — a full O(payload)
        # serialisation just to measure it — off the send hot path.
        return int(sum(v.nbytes for v in obj.values()))
    try:
        return len(pickle.dumps(obj, protocol=PICKLE_PROTOCOL))
    except Exception:
        return 256  # opaque object: charge a small fixed size
