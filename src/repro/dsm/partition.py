"""Data layouts: BLOCK / CYCLIC / HYBRID partitioning of numpy arrays.

The paper's ``Partitioned<field, layout>`` template distributes an object
field's primitive data among aggregate members "according to a pre-defined
partition (block, cyclic and hybrid)" (Section III.C).  This module
implements those layouts over a chosen axis, plus the scatter / gather /
halo-exchange data movements the ``ScatterBefore`` / ``GatherAfter``
templates need.

Two storage conventions are supported:

* *compact* — each rank holds only its partition (``scatter_blocks`` /
  ``gather_blocks``); used by hand-written MPI-style baselines.
* *in-place* — each rank holds a full-size array of which only its owned
  region is valid (``scatter_inplace`` / ``gather_inplace``); this is what
  the weaver uses so domain code can keep indexing globally.

Invariant (property-tested): gather∘scatter is the identity for every
layout, axis, rank count and array shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.dsm.comm import Communicator

from repro.dsm.comm import TAG_COLL

_TAG_SCATTER = TAG_COLL + 10
_TAG_GATHER = TAG_COLL + 11
_TAG_HALO_UP = TAG_COLL + 12
_TAG_HALO_DOWN = TAG_COLL + 13


def local_slice(n: int, rank: int, nranks: int) -> tuple[int, int]:
    """Contiguous block of ``range(n)`` owned by ``rank`` (block layout)."""
    base, extra = divmod(n, nranks)
    lo = rank * base + min(rank, extra)
    return lo, lo + base + (1 if rank < extra else 0)


# ---------------------------------------------------------------------------
# layouts
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Layout:
    """Base class: which indices along ``axis`` does ``rank`` own?"""

    axis: int = 0

    def owned(self, n: int, rank: int, nranks: int) -> np.ndarray:
        raise NotImplementedError

    def is_contiguous(self) -> bool:
        return False


@dataclass(frozen=True)
class BlockLayout(Layout):
    """Contiguous blocks; ``halo`` ghost planes on each side for stencils."""

    halo: int = 0

    def owned(self, n: int, rank: int, nranks: int) -> np.ndarray:
        lo, hi = local_slice(n, rank, nranks)
        return np.arange(lo, hi)

    def bounds(self, n: int, rank: int, nranks: int) -> tuple[int, int]:
        return local_slice(n, rank, nranks)

    def halo_bounds(self, n: int, rank: int, nranks: int) -> tuple[int, int]:
        lo, hi = local_slice(n, rank, nranks)
        return max(0, lo - self.halo), min(n, hi + self.halo)

    def is_contiguous(self) -> bool:
        return True


@dataclass(frozen=True)
class CyclicLayout(Layout):
    """Round-robin assignment of single indices."""

    def owned(self, n: int, rank: int, nranks: int) -> np.ndarray:
        return np.arange(rank, n, nranks)


@dataclass(frozen=True)
class HybridLayout(Layout):
    """Block-cyclic: blocks of ``block`` indices dealt round-robin."""

    block: int = 2

    def owned(self, n: int, rank: int, nranks: int) -> np.ndarray:
        if self.block < 1:
            raise ValueError("block must be >= 1")
        idx = np.arange(n)
        return idx[(idx // self.block) % nranks == rank]


def _take(arr: np.ndarray, idx: np.ndarray, axis: int) -> np.ndarray:
    return np.take(arr, idx, axis=axis)


def _put(arr: np.ndarray, idx: np.ndarray, axis: int,
         vals: np.ndarray) -> None:
    sl: list = [slice(None)] * arr.ndim
    sl[axis] = idx
    arr[tuple(sl)] = vals


# ---------------------------------------------------------------------------
# compact-storage movements
# ---------------------------------------------------------------------------
def scatter_blocks(comm: "Communicator", arr: np.ndarray | None,
                   layout: Layout, root: int = 0) -> np.ndarray:
    """Distribute ``arr`` (valid at root) by ``layout``; returns local part."""
    from repro.dsm.comm import current_rank

    ctx = current_rank()
    assert ctx is not None
    if ctx.rank == root:
        assert arr is not None
        n = arr.shape[layout.axis]
        meta = (arr.shape, arr.dtype.str, n)
        for r in range(comm.nranks):
            if r == root:
                continue
            # ``np.take`` builds a fresh staging buffer nothing else
            # aliases: the owned send skips the defensive copy.
            part = _take(arr, layout.owned(n, r, comm.nranks), layout.axis)
            comm._send_owned((meta, part), r, _TAG_SCATTER)
        return _take(arr, layout.owned(n, root, comm.nranks), layout.axis)
    _meta, part = comm.recv(source=root, tag=_TAG_SCATTER)
    return part


def gather_blocks(comm: "Communicator", local: np.ndarray, layout: Layout,
                  shape: tuple[int, ...], root: int = 0) -> np.ndarray | None:
    """Reassemble the full array of ``shape`` at ``root``."""
    from repro.dsm.comm import current_rank

    ctx = current_rank()
    assert ctx is not None
    n = shape[layout.axis]
    if ctx.rank == root:
        out = np.empty(shape, dtype=local.dtype)
        _put(out, layout.owned(n, root, comm.nranks), layout.axis, local)
        for src in range(comm.nranks):
            if src == root:
                continue
            part = comm.recv(source=src, tag=_TAG_GATHER)
            _put(out, layout.owned(n, src, comm.nranks), layout.axis, part)
        return out
    comm.send(local, root, _TAG_GATHER)
    return None


# ---------------------------------------------------------------------------
# in-place movements (full-size array on every rank)
# ---------------------------------------------------------------------------
def scatter_inplace(comm: "Communicator", arr: np.ndarray, layout: Layout,
                    root: int = 0, release_fence: bool = False
                    ) -> tuple[int, int] | np.ndarray:
    """Update each rank's owned region (incl. halo) from root's array.

    Returns this rank's owned index description: ``(lo, hi)`` bounds for
    block layouts, else the owned index vector.

    ``release_fence`` (SPMD: every rank passes the same value) appends a
    barrier that happens-after every receive.  That is the borrow
    release point: a root whose ``arr`` is borrow-registered on the data
    plane (``DataPlane.register_borrow``) ships block partitions as
    zero-copy *views of its own array*, and the barrier is what makes
    that safe — no receiver can still be reading the region when root
    writes it next.  Only the root knows whether the array is
    registered, so the fence cannot be auto-detected (asymmetric
    barriers deadlock); the default keeps the historical cost profile
    for callers that never borrow.
    """
    from repro.dsm.comm import current_rank

    ctx = current_rank()
    assert ctx is not None
    n = arr.shape[layout.axis]
    if isinstance(layout, BlockLayout):
        if ctx.rank == root:
            for r in range(comm.nranks):
                if r == root:
                    continue
                lo, hi = layout.halo_bounds(n, r, comm.nranks)
                sl: list = [slice(None)] * arr.ndim
                sl[layout.axis] = slice(lo, hi)
                # a contiguous view of root's array: rides the borrow
                # tier when the caller registered ``arr`` (and fences)
                comm.send(arr[tuple(sl)], r, _TAG_SCATTER)
        else:
            lo, hi = layout.halo_bounds(n, ctx.rank, comm.nranks)
            part = comm.recv(source=root, tag=_TAG_SCATTER)
            sl = [slice(None)] * arr.ndim
            sl[layout.axis] = slice(lo, hi)
            arr[tuple(sl)] = part
        if release_fence:
            comm.barrier()
        return layout.bounds(n, ctx.rank, comm.nranks)
    # cyclic / hybrid
    if ctx.rank == root:
        for r in range(comm.nranks):
            if r == root:
                continue
            idx = layout.owned(n, r, comm.nranks)
            # fresh ``np.take`` staging buffer: owned, no defensive copy
            comm._send_owned(_take(arr, idx, layout.axis), r, _TAG_SCATTER)
    else:
        idx = layout.owned(n, ctx.rank, comm.nranks)
        part = comm.recv(source=root, tag=_TAG_SCATTER)
        _put(arr, idx, layout.axis, part)
    if release_fence:
        comm.barrier()
    return layout.owned(n, ctx.rank, comm.nranks)


def gather_inplace(comm: "Communicator", arr: np.ndarray, layout: Layout,
                   root: int = 0) -> None:
    """Collect every rank's owned region into root's full array."""
    from repro.dsm.comm import current_rank

    ctx = current_rank()
    assert ctx is not None
    n = arr.shape[layout.axis]
    if ctx.rank == root:
        for src in range(comm.nranks):
            if src == root:
                continue
            part = comm.recv(source=src, tag=_TAG_GATHER)
            _put(arr, layout.owned(n, src, comm.nranks), layout.axis, part)
    else:
        idx = layout.owned(n, ctx.rank, comm.nranks)
        # fresh ``np.take`` staging buffer: owned, no defensive copy
        comm._send_owned(_take(arr, idx, layout.axis), root, _TAG_GATHER)


#: window name the halo exchange exposes its array under.
_HALO_WINDOW = "halo"


def exchange_halo(comm: "Communicator", arr: np.ndarray,
                  layout: BlockLayout) -> None:
    """Swap ``halo`` boundary planes with block neighbours (stencil step).

    One-sided: each rank exposes its full-size array as a window and
    *puts* its boundary planes straight into its neighbours' halo
    regions — in the in-place storage convention the global indices of
    a sent plane are exactly where it lands, so source region and
    target region coincide and the payload needs no re-addressing.  The
    fence then completes both neighbours' incoming puts in sorted
    neighbour order (a deterministic schedule, which is what keeps the
    clock coupling bit-reproducible).  No even/odd phasing is needed:
    puts never block, only the fence waits.

    Cost accounting is identical to the former send/recv version — a
    put charges like a send, a fenced arrival like a receive — so the
    port moves synchronisation shape, not virtual time.
    """
    from repro.dsm.comm import current_rank

    ctx = current_rank()
    assert ctx is not None
    if layout.halo < 1 or comm.nranks == 1:
        return
    # a halo exchange is a synchronisation epoch: over-subscribed ranks
    # pay the context-switch cost here just as they do at barriers.
    ctx.clock.charge_comm(comm.machine.oversub_epoch_cost(comm.nranks))
    n = arr.shape[layout.axis]
    r, p = ctx.rank, comm.nranks
    lo, hi = layout.bounds(n, r, p)
    h = layout.halo
    ax = layout.axis

    def plane(a: int, b: int) -> tuple:
        sl: list = [slice(None)] * arr.ndim
        sl[ax] = slice(a, b)
        return tuple(sl)

    comm.win_expose(_HALO_WINDOW, arr)
    try:
        if r + 1 < p:  # my top planes are the upper neighbour's low halo
            comm.put(_HALO_WINDOW, arr[plane(hi - h, hi)], r + 1,
                     (hi - h, hi), axis=ax)
        if r - 1 >= 0:  # my bottom planes are the lower one's high halo
            comm.put(_HALO_WINDOW, arr[plane(lo, lo + h)], r - 1,
                     (lo, lo + h), axis=ax)
        comm.fence([src for src in (r - 1, r + 1) if 0 <= src < p])
    finally:
        comm.win_drop(_HALO_WINDOW)
