"""Object aggregates — the paper's ``Replicate`` abstraction.

"An object aggregate is a class of objects that have a single instance on
each node and transparently replaces a single object instance in the
domain specific code" (Section III.C).  Under SPMD execution each rank
constructs its own member; this module supplies the call-dispatch
primitives the paper lists:

* calls executed **by all** members in parallel, with the same or
  per-member arguments;
* calls **delegated** to a specific member (member 0 plays the original
  instance);
* a **combine** function reducing per-member return values to one value.

Field-role metadata (Replicated / Partitioned / Local, Section IV.B) lives
here too: the adaptation protocol reads it to decide how aggregate state is
merged into a single instance and how an instance becomes an aggregate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.dsm.comm import Communicator, RankContext, TAG_COLL, current_rank
from repro.dsm.partition import Layout

_TAG_AGG = TAG_COLL + 20


class FieldRole(enum.Enum):
    """How an object field behaves across an aggregate (Section IV.B)."""

    REPLICATED = "replicated"  # same value on every member
    PARTITIONED = "partitioned"  # split per a Layout
    LOCAL = "local"  # private to each member (default)


@dataclass(frozen=True)
class FieldSpec:
    """Role (and layout, if partitioned) of one field."""

    name: str
    role: FieldRole
    layout: Layout | None = None

    def __post_init__(self) -> None:
        if self.role is FieldRole.PARTITIONED and self.layout is None:
            raise ValueError(f"partitioned field {self.name!r} needs a layout")


class AggregateMember:
    """This rank's member of an aggregate: local instance + identity."""

    def __init__(self, instance: Any, ctx: RankContext) -> None:
        self.instance = instance
        self.ctx = ctx

    @property
    def member_id(self) -> int:
        return self.ctx.rank

    @property
    def is_representative(self) -> bool:
        """Member 0 transparently replaces the original instance."""
        return self.ctx.rank == 0


class ObjectAggregate:
    """SPMD façade over one member per rank.

    All dispatch methods are *collective*: every rank must call them in
    the same order (the usual SPMD discipline).
    """

    def __init__(self, member: AggregateMember, comm: Communicator) -> None:
        self.member = member
        self.comm = comm

    @property
    def size(self) -> int:
        return self.comm.nranks

    # ------------------------------------------------------------------
    def invoke_all(self, method: str, *args: Any, **kwargs: Any) -> Any:
        """Every member executes ``method`` with the same arguments."""
        return getattr(self.member.instance, method)(*args, **kwargs)

    def invoke_scattered(self, method: str, per_member_args: Sequence[tuple],
                         root: int = 0) -> Any:
        """Every member executes ``method`` with member-specific arguments.

        ``per_member_args`` need only be valid at ``root``; it is scattered.
        """
        ctx = current_rank()
        assert ctx is not None
        if ctx.rank == root:
            if len(per_member_args) != self.size:
                raise ValueError(f"need {self.size} argument tuples")
            args = self.comm.scatter(list(per_member_args), root=root)
        else:
            args = self.comm.scatter(None, root=root)
        return getattr(self.member.instance, method)(*args)

    def invoke_on(self, member_id: int, method: str, *args: Any,
                  broadcast_result: bool = False, **kwargs: Any) -> Any:
        """Delegate the call to one member; others idle (or get the result).

        Returns the result on ``member_id`` (and everywhere if
        ``broadcast_result``), ``None`` elsewhere.
        """
        ctx = current_rank()
        assert ctx is not None
        result = None
        if ctx.rank == member_id:
            result = getattr(self.member.instance, method)(*args, **kwargs)
        if broadcast_result:
            result = self.comm.bcast(result, root=member_id)
        return result

    def invoke_reduce(self, method: str, *args: Any,
                      combine: Callable[[Any, Any], Any] | None = None,
                      **kwargs: Any) -> Any:
        """All members execute; return values folded with ``combine``.

        The combined value is available on every member (allreduce), which
        matches the paper's "special function ... to combine the return
        result of each method execution to a single value".
        """
        local = getattr(self.member.instance, method)(*args, **kwargs)
        return self.comm.allreduce(local, op=combine)
