"""SimCluster: SPMD launcher over rank threads with virtual clocks.

``SimCluster(nranks, machine).run(entry, *args)`` starts ``nranks`` threads
each executing ``entry(*args)`` with a bound :class:`RankContext`
(reachable via :func:`repro.dsm.comm.current_rank`), and returns the list
of per-rank results.

Virtual-time placement: rank ``r`` sits on core ``machine.core_of(r)``;
when more ranks than cores are launched (over-decomposition), each rank's
clock gets a compute *contention* multiplier — co-located ranks time-slice
their core — and every barrier charges the context-switch epoch cost.
This is the substrate for the paper's Figure 8.

Failures: any exception in a rank tears the cluster down (mailboxes close,
waiting ranks unblock) and is re-raised as :class:`RankFailure` carrying
the original exception, unless it already is one.

Elasticity: the cluster can add/retire simulated nodes mid-run through
:meth:`SimCluster.switch` — the membership half of the elastic reshape
protocol (:mod:`repro.elastic`).  All current ranks park in a barrier;
the last arriver folds every clock into the transition epoch and then
grows the cluster (fresh rank threads spawned replaying to the safe
point, mailboxes and a wider barrier admitted) or shrinks it (retiree
mailboxes closed, clocks dropped after being folded into the epoch).
:meth:`run` joins rank threads dynamically, so joiners spawned after
launch are reaped exactly like the original ranks.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

from repro.dsm.comm import Communicator, RankContext, _bind
from repro.dsm.mailbox import MailboxClosed
from repro.smp.barrier import BrokenTeamBarrier
from repro.util.events import EventLog
from repro.vtime.clock import VClock
from repro.vtime.machine import MachineModel


class RankFailure(RuntimeError):
    """A rank raised; carries the rank id and the original exception."""

    def __init__(self, rank: int, cause: BaseException) -> None:
        super().__init__(f"rank {rank} failed: {cause!r}")
        self.rank = rank
        self.cause = cause


class SimCluster:
    """An SPMD run over ``nranks`` simulated processes."""

    def __init__(self, nranks: int, machine: MachineModel | None = None,
                 log: EventLog | None = None,
                 start_time: float = 0.0) -> None:
        if nranks < 1:
            raise ValueError("need at least one rank")
        self.nranks = nranks
        self.machine = machine if machine is not None else MachineModel()
        self.log = log if log is not None else EventLog()
        self.clocks = [VClock(start_time + self.machine.spawn_cost * r)
                       for r in range(nranks)]
        for r, c in enumerate(self.clocks):
            c.contention = self.machine.contention_factor(r, nranks)
        self.comm = Communicator(nranks, self.machine, self.clocks)
        self._results: list[Any] = [None] * nranks
        self._errors: list[RankFailure] = []
        self._err_lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._switch_epoch = start_time

    # ------------------------------------------------------------------
    def run(self, entry: Callable[..., Any], *args: Any,
            per_rank_args: Sequence[tuple] | None = None,
            timeout: float = 300.0) -> list[Any]:
        """Run ``entry`` on every rank; returns per-rank results.

        ``per_rank_args`` (if given) supplies each rank's positional
        arguments instead of the shared ``args``.
        """
        if per_rank_args is not None and len(per_rank_args) != self.nranks:
            raise ValueError("per_rank_args must have one tuple per rank")
        for r in range(self.nranks):
            a = per_rank_args[r] if per_rank_args is not None else args
            th = threading.Thread(target=self._rank_main, args=(r, entry, a),
                                  daemon=True, name=f"rank-{r}")
            self._threads.append(th)
            th.start()
        # join dynamically: an elastic grow may add rank threads while
        # the original ones are still running.
        while True:
            alive = [th for th in self._threads if th.is_alive()]
            if not alive:
                break
            for th in alive:
                th.join(timeout)
                if th.is_alive():
                    self.comm.close()
                    raise RankFailure(-1, TimeoutError(f"{th.name} hung"))
        if self._errors:
            raise self._pick_error()
        self.log.emit("cluster_done", vtime=self.max_time, ranks=self.nranks)
        return list(self._results)

    def _rank_main(self, rank: int, entry: Callable[..., Any],
                   args: tuple) -> None:
        ctx = RankContext(rank=rank, nranks=self.nranks,
                          clock=self.clocks[rank], comm=self.comm)
        _bind(ctx)
        try:
            self._results[rank] = entry(*args)
        except BaseException as exc:  # noqa: BLE001 - must unblock peers
            with self._err_lock:
                self._errors.append(
                    exc if isinstance(exc, RankFailure)
                    else RankFailure(rank, exc))
            # Cooperative unwinds (adaptation) are raised by *every* rank
            # at the same safe point: leave the communicator up so late
            # ranks can finish draining the collectives that preceded the
            # raise.  Real failures must tear it down to unblock peers.
            if not getattr(exc, "cooperative_unwind", False):
                self.comm.close()
        finally:
            _bind(None)

    # ------------------------------------------------------------------
    # elastic membership (the cluster half of repro.elastic's protocol)
    # ------------------------------------------------------------------
    def switch(self, plan, joiner_entry: Callable[[], Any] | None) -> float:
        """Membership-switch collective; every *old* rank must call it.

        All current ranks park in the old barrier; the last arriver
        folds every clock into the transition epoch, then adds simulated
        nodes (``joiner_entry`` threads replaying to the safe point) or
        retires them (mailboxes closed, clocks dropped post-fold).
        Returns the transition epoch; callers advance their clocks to it
        like any barrier release.
        """
        barrier = self.comm._barrier  # old membership (None when alone)

        def _switch_action() -> None:
            epoch = VClock.sync_max(
                self.clocks, extra=self.machine.barrier_cost(self.nranks))
            self._switch_epoch = epoch
            if plan.growing:
                self._grow(plan, joiner_entry, epoch)
            else:
                self._shrink(plan)

        if barrier is None:
            _switch_action()
        else:
            barrier.wait(action_override=_switch_action)
        return self._switch_epoch

    def _grow(self, plan, joiner_entry: Callable[[], Any],
              epoch: float) -> None:
        """Add simulated nodes: clocks, mailboxes, replaying rank threads."""
        new_n = plan.new_n
        for r in plan.joining:
            clk = VClock(epoch + self.machine.spawn_cost)
            self.clocks.append(clk)
            self._results.append(None)
        self.comm.reshape(new_n, self.clocks)
        self.nranks = new_n
        for r, c in enumerate(self.clocks):
            c.contention = self.machine.contention_factor(r, new_n)
        for r in plan.joining:
            th = threading.Thread(target=self._rank_main,
                                  args=(r, joiner_entry, ()),
                                  daemon=True, name=f"rank-{r}")
            self._threads.append(th)
            th.start()
        self.log.emit("cluster_grow", vtime=epoch, ranks=new_n,
                      was=plan.old_n)

    def _shrink(self, plan) -> None:
        """Retire simulated nodes: their clocks are already folded into
        the epoch; endpoints close so stray sends fail loudly."""
        new_n = plan.new_n
        del self.clocks[new_n:]
        self.comm.reshape(new_n, self.clocks)
        self.nranks = new_n
        for r, c in enumerate(self.clocks):
            c.contention = self.machine.contention_factor(r, new_n)
        self.log.emit("cluster_shrink", vtime=self._switch_epoch,
                      ranks=new_n, was=plan.old_n)

    def shutdown(self) -> None:
        """Release cluster resources once the ranks are joined; idempotent.

        Closes the mailboxes and aborts the cluster barrier so nothing
        can block on this cluster's communicator again.  Execution
        backends call it in their ``finally`` after :meth:`run` returns
        or raises — by then every rank thread has been joined, so for
        cooperative unwinds (which must keep the communicator up while
        late ranks drain) this runs strictly after the draining is done.
        """
        self.comm.close()

    def _pick_error(self) -> RankFailure:
        """Prefer the root-cause failure over shutdown fallout in peers."""
        for e in self._errors:
            if not isinstance(e.cause, (MailboxClosed, BrokenTeamBarrier)):
                return e
        return self._errors[0]

    # ------------------------------------------------------------------
    @property
    def errors(self) -> list[RankFailure]:
        """All rank failures gathered during :meth:`run` (root causes
        first is not guaranteed — callers filter by cause type)."""
        return list(self._errors)

    @property
    def max_time(self) -> float:
        return max(c.now for c in self.clocks)

    def time_breakdown(self) -> dict[str, float]:
        """Max-over-ranks totals per category (for bench reporting)."""
        return {
            "total": self.max_time,
            "compute": max(c.compute_total for c in self.clocks),
            "comm": max(c.comm_total for c in self.clocks),
            "io": max(c.io_total for c in self.clocks),
        }
