"""MPI-like communicator over in-process mailboxes, with virtual time.

API follows mpi4py's lower-case generic-object conventions (``send`` /
``recv`` / ``bcast`` / ``scatter`` / ``gather`` / ``reduce`` / ...): the
object is an argument, the received object is the return value.  numpy
arrays travel by reference but are defensively copied at the send side, so
ranks never alias each other's buffers (value semantics, like real MPI).

Every operation charges virtual time: the sender computes the arrival time
from the machine's network model (placement-aware: intra- vs inter-node);
the receiver couples its clock to it.

Collective algorithms are selectable (``MachineModel.coll_algo``):

* ``"flat"`` (default) — real point-to-point messages through the root,
  a flat algorithm whose linear-in-P root cost is exactly the behaviour
  the paper's Figure 4/5 discussion describes for collecting checkpoint
  data at the master.  The default, so the paper's numbers reproduce
  unchanged.
* ``"tree"`` — binomial-tree bcast / gather / reduce
  (``ceil(log2 P)`` rounds).  Costs are not separately modelled: every
  tree edge is a real ``send``/``recv`` pair, so each algorithm charges
  virtual time faithfully by construction.  Tree reduce assumes an
  associative ``op`` (it folds subtree-wise, in a deterministic order
  that differs from the flat left fold).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.dsm.mailbox import ANY_SOURCE, ANY_TAG, Mailbox, Message
from repro.smp.barrier import AdaptiveBarrier
from repro.util.serialization import nbytes_of
from repro.vtime.clock import VClock
from repro.vtime.machine import MachineModel

#: reserved tag space for collective plumbing (user tags must be < this).
TAG_COLL = 1 << 30
MAX_USER_TAG = TAG_COLL - 1

_tl = threading.local()


def current_rank() -> "RankContext | None":
    """The rank context bound to the calling thread (None outside ranks)."""
    return getattr(_tl, "rank_ctx", None)


def _bind(ctx: "RankContext | None") -> None:
    _tl.rank_ctx = ctx


@dataclass
class RankContext:
    """Identity of one SPMD rank: id, clock, communicator."""

    rank: int
    nranks: int
    clock: VClock
    comm: "Communicator"

    @property
    def is_root(self) -> bool:
        return self.rank == 0


def _copy_payload(obj: Any) -> Any:
    """Value semantics for the common payload shapes."""
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, (list, tuple)):
        t = type(obj)
        return t(_copy_payload(x) for x in obj)
    return obj  # scalars / immutables / user objects sent by reference


class Communicator:
    """Collective + point-to-point communication among ``nranks`` ranks."""

    def __init__(self, nranks: int, machine: MachineModel,
                 clocks: Sequence[VClock]) -> None:
        if nranks < 1:
            raise ValueError("communicator needs at least one rank")
        if len(clocks) != nranks:
            raise ValueError("one clock per rank required")
        self.nranks = nranks
        self.machine = machine
        self.coll_algo = getattr(machine, "coll_algo", "flat")
        self.clocks = list(clocks)
        self.mailboxes = [Mailbox(r) for r in range(nranks)]
        self._barrier = AdaptiveBarrier(nranks) if nranks > 1 else None
        self._epoch = 0.0

    # ------------------------------------------------------------------
    def _ctx(self) -> RankContext:
        ctx = current_rank()
        if ctx is None or ctx.comm is not self:
            raise RuntimeError(
                "communicator used outside a rank context of this cluster")
        return ctx

    def close(self) -> None:
        for mb in self.mailboxes:
            mb.close()
        if self._barrier is not None:
            self._barrier.abort()

    # ------------------------------------------------------------------
    # elastic membership (see repro.elastic)
    # ------------------------------------------------------------------
    def reshape(self, new_n: int, clocks: Sequence[VClock]) -> None:
        """Re-size the membership to ``new_n`` ranks.

        MUST be called while every current rank is quiescent (parked in
        the membership-switch barrier — the elastic protocol guarantees
        this), with all mailboxes drained of user traffic.  Survivors
        keep their rank ids and mailboxes; joiner mailboxes are created
        fresh; retiree mailboxes are closed so a stray send to a retired
        rank fails loudly instead of vanishing.
        """
        if len(clocks) != new_n:
            raise ValueError("one clock per surviving/joining rank required")
        if new_n > self.nranks:
            self.mailboxes.extend(
                Mailbox(r) for r in range(self.nranks, new_n))
        else:
            for mb in self.mailboxes[new_n:]:
                mb.close()
            del self.mailboxes[new_n:]
        self.clocks = list(clocks)
        self.nranks = new_n
        self._barrier = AdaptiveBarrier(new_n) if new_n > 1 else None

    # ------------------------------------------------------------------
    # transport hooks (overridden by descriptor-based data planes)
    # ------------------------------------------------------------------
    def _egress(self, obj: Any, owned: bool) -> Any:
        """What actually enters the destination mailbox for ``obj``.

        The base transport delivers by reference within one address
        space, so value semantics require a defensive copy — unless the
        sender *owns* the payload (``_send_owned``: a freshly built
        staging buffer nothing else aliases).
        """
        return obj if owned else _copy_payload(obj)

    def _ingress(self, msg: Message) -> Any:
        """Resolve a delivered envelope into the received object."""
        return msg.payload

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """LogGP-style cost: the sender's link serialises egress.

        The sender is charged latency + transfer (its NIC is busy for the
        whole message), so a root scattering P-1 partitions pays for them
        back-to-back — the behaviour behind the paper's Figure 5 comment
        that restart data "must be scattered across processors".
        """
        self._send(obj, dest, tag, owned=False)

    def _send_owned(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Send a payload the caller provably no longer aliases.

        Skips the defensive copy: correct only for freshly built staging
        buffers (``np.take`` results, gathered parts) that the sender
        never touches again — partition movements qualify, arbitrary
        user payloads do not.  Identical cost accounting to :meth:`send`.
        """
        self._send(obj, dest, tag, owned=True)

    def _send(self, obj: Any, dest: int, tag: int, owned: bool) -> None:
        ctx = self._ctx()
        if not (0 <= dest < self.nranks):
            raise ValueError(f"bad destination rank {dest}")
        if dest == ctx.rank:
            raise ValueError("self-send would deadlock a blocking pair")
        nbytes = nbytes_of(obj)  # logical size: transport-independent cost
        cost = self.machine.p2p_cost(nbytes, ctx.rank, dest)
        ctx.clock.charge_comm(cost)
        self.mailboxes[dest].put(Message(
            src=ctx.rank, dst=dest, tag=tag,
            payload=self._egress(obj, owned), nbytes=nbytes,
            arrival=ctx.clock.now))

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Receive; the receiver's link serialises ingress.

        After waiting for the arrival stamp the receiver is charged the
        transfer time again on its own link, so a root gathering P-1
        contributions drains them sequentially — the behaviour behind the
        Figure 4 comment that distributed saves cost more "since the data
        must be collected at the root node".
        """
        ctx = self._ctx()
        msg = self.mailboxes[ctx.rank].get(source=source, tag=tag)
        ctx.clock.wait_comm(msg.arrival)
        same = self.machine.same_node(msg.src, ctx.rank)
        ctx.clock.charge_comm(
            self.machine.network.p2p_cost(msg.nbytes, same)
            - (self.machine.network.intra_latency if same
               else self.machine.network.inter_latency))
        return self._ingress(msg)

    def sendrecv(self, obj: Any, dest: int, source: int,
                 tag: int = 0) -> Any:
        """Paired exchange that cannot deadlock (send is asynchronous)."""
        self.send(obj, dest, tag)
        return self.recv(source=source, tag=tag)

    # ------------------------------------------------------------------
    # collectives (SPMD: every rank must call in the same order)
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        ctx = self._ctx()
        if self.nranks == 1:
            return
        assert self._barrier is not None

        def _sync() -> None:
            self._epoch = VClock.sync_max(
                self.clocks, extra=self.machine.barrier_cost(self.nranks))

        self._barrier.wait(action_override=_sync)
        ctx.clock.advance_to(self._epoch)
        ctx.clock.charge_comm(self.machine.oversub_epoch_cost(self.nranks))

    # ------------------------------------------------------------------
    # binomial-tree helpers: ranks are relabelled so the root is virtual
    # rank 0; every edge is a real send/recv pair, so each algorithm's
    # virtual-time cost emerges from the network model untouched.
    # ------------------------------------------------------------------
    def _vrank(self, rank: int, root: int) -> int:
        return (rank - root) % self.nranks

    def _actual(self, vrank: int, root: int) -> int:
        return (vrank + root) % self.nranks

    def _tree_bcast(self, obj: Any, root: int) -> Any:
        ctx = self._ctx()
        n = self.nranks
        vr = self._vrank(ctx.rank, root)
        mask = 1
        while mask < n:  # receive from the parent (lowest set bit)
            if vr & mask:
                obj = self.recv(source=self._actual(vr - mask, root),
                                tag=TAG_COLL + 1)
                break
            mask <<= 1
        mask >>= 1
        while mask > 0:  # relay down the subtree, widest child first
            if vr + mask < n:
                self.send(obj, self._actual(vr + mask, root), TAG_COLL + 1)
            mask >>= 1
        return obj

    def _tree_gather(self, obj: Any, root: int) -> list[Any] | None:
        ctx = self._ctx()
        n = self.nranks
        vr = self._vrank(ctx.rank, root)
        got: dict[int, Any] = {ctx.rank: _copy_payload(obj)}
        mask = 1
        while mask < n:
            if vr & mask:  # forward the collected subtree to the parent
                self._send_owned(got, self._actual(vr - mask, root),
                                 TAG_COLL + 3)
                return None
            src = vr + mask
            if src < n:
                got.update(self.recv(source=self._actual(src, root),
                                     tag=TAG_COLL + 3))
            mask <<= 1
        return [got[r] for r in sorted(got)] if n > 1 else [got[ctx.rank]]

    def _tree_reduce(self, obj: Any, fold: Callable[[Any, Any], Any],
                     root: int) -> Any | None:
        ctx = self._ctx()
        n = self.nranks
        vr = self._vrank(ctx.rank, root)
        acc = _copy_payload(obj)
        mask = 1
        while mask < n:
            if vr & mask:
                self._send_owned(acc, self._actual(vr - mask, root),
                                 TAG_COLL + 3)
                return None
            src = vr + mask
            if src < n:  # deterministic order: nearest subtree first
                acc = fold(acc, self.recv(
                    source=self._actual(src, root), tag=TAG_COLL + 3))
            mask <<= 1
        return acc

    def bcast(self, obj: Any, root: int = 0) -> Any:
        ctx = self._ctx()
        if self.nranks == 1:
            return obj
        if self.coll_algo == "tree":
            return self._tree_bcast(obj, root)
        if ctx.rank == root:
            for r in range(self.nranks):
                if r != root:
                    self.send(obj, r, TAG_COLL + 1)
            return obj
        return self.recv(source=root, tag=TAG_COLL + 1)

    def scatter(self, parts: Sequence[Any] | None, root: int = 0) -> Any:
        ctx = self._ctx()
        if ctx.rank == root:
            if parts is None or len(parts) != self.nranks:
                raise ValueError(
                    f"root must supply exactly {self.nranks} parts")
            mine = parts[root]
            for r in range(self.nranks):
                if r != root:
                    self.send(parts[r], r, TAG_COLL + 2)
            return _copy_payload(mine)
        return self.recv(source=root, tag=TAG_COLL + 2)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        ctx = self._ctx()
        if self.coll_algo == "tree" and self.nranks > 1:
            return self._tree_gather(obj, root)
        if ctx.rank == root:
            out: list[Any] = [None] * self.nranks
            out[root] = _copy_payload(obj)
            # source-specific receives: with per-(src, tag) FIFO this pins
            # each contribution to the right collective even when a fast
            # rank has already sent into the *next* collective.
            for src in range(self.nranks):
                if src == root:
                    continue
                msg = self.mailboxes[ctx.rank].get(source=src,
                                                   tag=TAG_COLL + 3)
                ctx.clock.wait_comm(msg.arrival)
                out[src] = self._ingress(msg)
            return out
        self.send(obj, root, TAG_COLL + 3)
        return None

    def allgather(self, obj: Any) -> list[Any]:
        got = self.gather(obj, root=0)
        return self.bcast(got, root=0)

    def reduce(self, obj: Any, op: Callable[[Any, Any], Any] | None = None,
               root: int = 0) -> Any | None:
        """Fold ``op`` (default: +, elementwise for arrays) at ``root``.

        Flat: gather everything at the root and left-fold in rank order.
        Tree: partial results combine up the binomial tree — moves
        ``O(log P)`` payloads per member instead of ``P`` through the
        root, at the price of a subtree-wise (associativity-assuming)
        fold order.
        """
        ctx = self._ctx()
        fold = op if op is not None else _default_add
        if self.coll_algo == "tree" and self.nranks > 1:
            return self._tree_reduce(obj, fold, root)
        vals = self.gather(obj, root=root)
        if ctx.rank != root:
            return None
        assert vals is not None
        acc = vals[0]
        for v in vals[1:]:
            acc = fold(acc, v)
        return acc

    def allreduce(self, obj: Any,
                  op: Callable[[Any, Any], Any] | None = None) -> Any:
        return self.bcast(self.reduce(obj, op=op, root=0), root=0)

    def alltoall(self, parts: Sequence[Any]) -> list[Any]:
        ctx = self._ctx()
        if len(parts) != self.nranks:
            raise ValueError(f"need exactly {self.nranks} parts")
        out: list[Any] = [None] * self.nranks
        out[ctx.rank] = _copy_payload(parts[ctx.rank])
        for r in range(self.nranks):
            if r != ctx.rank:
                self.send(parts[r], r, TAG_COLL + 4)
        for src in range(self.nranks):
            if src == ctx.rank:
                continue
            msg = self.mailboxes[ctx.rank].get(source=src, tag=TAG_COLL + 4)
            ctx.clock.wait_comm(msg.arrival)
            out[src] = self._ingress(msg)
        return out


def _default_add(a: Any, b: Any) -> Any:
    if isinstance(a, np.ndarray):
        return a + b
    return a + b
