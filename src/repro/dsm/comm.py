"""MPI-like communicator over in-process mailboxes, with virtual time.

API follows mpi4py's lower-case generic-object conventions (``send`` /
``recv`` / ``bcast`` / ``scatter`` / ``gather`` / ``reduce`` / ...): the
object is an argument, the received object is the return value.  numpy
arrays travel by reference but are defensively copied at the send side, so
ranks never alias each other's buffers (value semantics, like real MPI).

Every operation charges virtual time: the sender computes the arrival time
from the machine's network model (placement-aware: intra- vs inter-node);
the receiver couples its clock to it.

Collective algorithms are selectable (``MachineModel.coll_algo``):

* ``"flat"`` (default) — real point-to-point messages through the root,
  a flat algorithm whose linear-in-P root cost is exactly the behaviour
  the paper's Figure 4/5 discussion describes for collecting checkpoint
  data at the master.  The default, so the paper's numbers reproduce
  unchanged.
* ``"tree"`` — binomial-tree bcast / gather / reduce
  (``ceil(log2 P)`` rounds).  Costs are not separately modelled: every
  tree edge is a real ``send``/``recv`` pair, so each algorithm charges
  virtual time faithfully by construction.  Tree reduce assumes an
  associative ``op`` (it folds subtree-wise, in a deterministic order
  that differs from the flat left fold).
* ``"auto"`` — per-collective choice: each call picks flat or tree from
  the machine's modelled cost for this payload size and rank count
  (:meth:`MachineModel.collective_algo`).  The decision inputs are
  SPMD-symmetric (rank count always; payload size only where every rank
  contributes the same logical bytes — the documented contract of
  gather/reduce), so all ranks pick the same algorithm without
  negotiating.

The communicator also exposes a **one-sided** window API modelled on
OpenSHMEM: ``win_expose`` publishes an array as a named window,
``put`` writes a region of a remote window without the target calling
``recv``, ``fence(schedule)`` makes a deterministic set of incoming
puts visible, ``get`` reads a remote region, ``quiet`` completes the
caller's outstanding puts.  Cost accounting mirrors send/recv exactly
(a put charges the origin like a send; the fence charges the target's
ingress like a recv), so porting a protocol from send/recv to
put+fence moves no virtual time — only the synchronisation shape.
``fence`` takes an explicit source schedule because one-sided arrivals
are unordered across origins: draining them in arrival order would
make the target's clock coupling nondeterministic, while a schedule
derived from the (deterministic) communication pattern keeps virtual
time bit-reproducible.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.dsm.mailbox import ANY_SOURCE, ANY_TAG, Mailbox, Message
from repro.smp.barrier import AdaptiveBarrier
from repro.trace.plane import tracer as trace_writer
from repro.util.serialization import nbytes_of
from repro.vtime.clock import VClock
from repro.vtime.machine import MachineModel

#: reserved tag space for collective plumbing (user tags must be < this).
TAG_COLL = 1 << 30
MAX_USER_TAG = TAG_COLL - 1

#: one-sided plumbing tags: put envelopes, remote-get request/reply.
TAG_PUT = TAG_COLL + 6
TAG_GETREQ = TAG_COLL + 7
TAG_GETREP = TAG_COLL + 8

#: payload marker for puts a transport already applied to the target
#: window (direct symmetric-heap writes): the fence still drains the
#: envelope for clock coupling, but has nothing left to copy.
PUT_APPLIED = "<put-applied>"

#: modelled wire size of a one-sided get request (a window descriptor).
_GETREQ_NBYTES = 64

_tl = threading.local()


def current_rank() -> "RankContext | None":
    """The rank context bound to the calling thread (None outside ranks)."""
    return getattr(_tl, "rank_ctx", None)


def _bind(ctx: "RankContext | None") -> None:
    _tl.rank_ctx = ctx


@dataclass
class RankContext:
    """Identity of one SPMD rank: id, clock, communicator."""

    rank: int
    nranks: int
    clock: VClock
    comm: "Communicator"

    @property
    def is_root(self) -> bool:
        return self.rank == 0


def _copy_payload(obj: Any) -> Any:
    """Value semantics for the common payload shapes."""
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, (list, tuple)):
        t = type(obj)
        return t(_copy_payload(x) for x in obj)
    return obj  # scalars / immutables / user objects sent by reference


def axis_read(arr: np.ndarray, idx, axis: int) -> np.ndarray:
    """Region of ``arr`` along ``axis``: ``(lo, hi)`` bounds -> a view,
    an index vector -> a fresh ``np.take`` buffer."""
    if isinstance(idx, tuple):
        sl: list = [slice(None)] * arr.ndim
        sl[axis] = slice(idx[0], idx[1])
        return arr[tuple(sl)]
    return np.take(arr, idx, axis=axis)


def axis_write(arr: np.ndarray, idx, axis: int, vals) -> None:
    """Assign ``vals`` into the region of ``arr`` described by ``idx``."""
    sl: list = [slice(None)] * arr.ndim
    sl[axis] = slice(idx[0], idx[1]) if isinstance(idx, tuple) else idx
    arr[tuple(sl)] = vals


class Communicator:
    """Collective + point-to-point communication among ``nranks`` ranks."""

    def __init__(self, nranks: int, machine: MachineModel,
                 clocks: Sequence[VClock]) -> None:
        if nranks < 1:
            raise ValueError("communicator needs at least one rank")
        if len(clocks) != nranks:
            raise ValueError("one clock per rank required")
        self.nranks = nranks
        self.machine = machine
        self.coll_algo = getattr(machine, "coll_algo", "flat")
        self.clocks = list(clocks)
        self.mailboxes = [Mailbox(r) for r in range(nranks)]
        self._barrier = AdaptiveBarrier(nranks) if nranks > 1 else None
        self._epoch = 0.0
        #: membership epoch stamped on every outgoing envelope; the
        #: in-process transport never bumps it (rank threads die with
        #: their membership), the process transports do.
        self.mail_epoch = 0
        #: one-sided windows, keyed ``(owner rank, name)``.  One shared
        #: dict in-process (all ranks of a simulated cluster see each
        #: other's windows directly); per-process transports hold only
        #: their own rank's entries.
        self._windows: dict[tuple[int, str], np.ndarray] = {}
        self._win_lock = threading.Lock()

    # ------------------------------------------------------------------
    def _ctx(self) -> RankContext:
        ctx = current_rank()
        if ctx is None or ctx.comm is not self:
            raise RuntimeError(
                "communicator used outside a rank context of this cluster")
        return ctx

    def close(self) -> None:
        for mb in self.mailboxes:
            mb.close()
        if self._barrier is not None:
            self._barrier.abort()

    # ------------------------------------------------------------------
    # elastic membership (see repro.elastic)
    # ------------------------------------------------------------------
    def reshape(self, new_n: int, clocks: Sequence[VClock]) -> None:
        """Re-size the membership to ``new_n`` ranks.

        MUST be called while every current rank is quiescent (parked in
        the membership-switch barrier — the elastic protocol guarantees
        this), with all mailboxes drained of user traffic.  Survivors
        keep their rank ids and mailboxes; joiner mailboxes are created
        fresh; retiree mailboxes are closed so a stray send to a retired
        rank fails loudly instead of vanishing.
        """
        if len(clocks) != new_n:
            raise ValueError("one clock per surviving/joining rank required")
        if new_n > self.nranks:
            self.mailboxes.extend(
                Mailbox(r) for r in range(self.nranks, new_n))
        else:
            for mb in self.mailboxes[new_n:]:
                mb.close()
            del self.mailboxes[new_n:]
        self.clocks = list(clocks)
        self.nranks = new_n
        self._barrier = AdaptiveBarrier(new_n) if new_n > 1 else None

    # ------------------------------------------------------------------
    # transport hooks (overridden by descriptor-based data planes)
    # ------------------------------------------------------------------
    def _egress(self, obj: Any, owned: bool, dest: int) -> Any:
        """What actually enters the destination mailbox for ``obj``.

        The base transport delivers by reference within one address
        space, so value semantics require a defensive copy — unless the
        sender *owns* the payload (``_send_owned``: a freshly built
        staging buffer nothing else aliases).  ``dest`` lets routing
        transports pick a packing per destination (slab descriptors to
        co-located ranks, plain frames to remote ones).
        """
        return obj if owned else _copy_payload(obj)

    def _ingress(self, msg: Message) -> Any:
        """Resolve a delivered envelope into the received object."""
        return self._ingress_value(msg.payload)

    def _ingress_value(self, obj: Any) -> Any:
        """Resolve one delivered payload value (descriptor -> array)."""
        return obj

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """LogGP-style cost: the sender's link serialises egress.

        The sender is charged latency + transfer (its NIC is busy for the
        whole message), so a root scattering P-1 partitions pays for them
        back-to-back — the behaviour behind the paper's Figure 5 comment
        that restart data "must be scattered across processors".
        """
        self._send(obj, dest, tag, owned=False)

    def _send_owned(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Send a payload the caller provably no longer aliases.

        Skips the defensive copy: correct only for freshly built staging
        buffers (``np.take`` results, gathered parts) that the sender
        never touches again — partition movements qualify, arbitrary
        user payloads do not.  Identical cost accounting to :meth:`send`.
        """
        self._send(obj, dest, tag, owned=True)

    def _send(self, obj: Any, dest: int, tag: int, owned: bool) -> None:
        ctx = self._ctx()
        if not (0 <= dest < self.nranks):
            raise ValueError(f"bad destination rank {dest}")
        if dest == ctx.rank:
            raise ValueError("self-send would deadlock a blocking pair")
        nbytes = nbytes_of(obj)  # logical size: transport-independent cost
        cost = self.machine.p2p_cost(nbytes, ctx.rank, dest)
        ctx.clock.charge_comm(cost)
        # message id for the trace plane's cross-rank flow edges: the
        # NullTracer returns 0 ("untraced"), so envelopes are identical
        # with tracing off.
        seq = trace_writer().send(dest, tag, epoch=self.mail_epoch)
        self.mailboxes[dest].put(Message(
            src=ctx.rank, dst=dest, tag=tag,
            payload=self._egress(obj, owned, dest), nbytes=nbytes,
            arrival=ctx.clock.now, epoch=self.mail_epoch, seq=seq))

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Receive; the receiver's link serialises ingress.

        After waiting for the arrival stamp the receiver is charged the
        transfer time again on its own link, so a root gathering P-1
        contributions drains them sequentially — the behaviour behind the
        Figure 4 comment that distributed saves cost more "since the data
        must be collected at the root node".
        """
        ctx = self._ctx()
        msg = self.mailboxes[ctx.rank].get(source=source, tag=tag)
        ctx.clock.wait_comm(msg.arrival)
        same = self.machine.same_node(msg.src, ctx.rank)
        ctx.clock.charge_comm(
            self.machine.network.p2p_cost(msg.nbytes, same)
            - (self.machine.network.intra_latency if same
               else self.machine.network.inter_latency))
        return self._ingress(msg)

    def sendrecv(self, obj: Any, dest: int, source: int,
                 tag: int = 0) -> Any:
        """Paired exchange that cannot deadlock (send is asynchronous)."""
        self.send(obj, dest, tag)
        return self.recv(source=source, tag=tag)

    # ------------------------------------------------------------------
    # one-sided windows (OpenSHMEM-style put / get / fence / quiet)
    # ------------------------------------------------------------------
    def win_expose(self, name: str, arr: np.ndarray) -> np.ndarray:
        """Publish ``arr`` as this rank's window ``name``.

        Incoming puts land in ``arr`` when this rank fences; peers in
        the same address space (and remote progress threads, on socket
        transports) may ``get`` regions of it.  Re-exposing a name
        rebinds it.
        """
        ctx = self._ctx()
        with self._win_lock:
            self._windows[(ctx.rank, name)] = arr
        return arr

    def win_drop(self, name: str) -> None:
        """Withdraw this rank's window ``name`` (idempotent)."""
        ctx = self._ctx()
        with self._win_lock:
            self._windows.pop((ctx.rank, name), None)

    def _window(self, owner: int, name: str) -> np.ndarray | None:
        with self._win_lock:
            return self._windows.get((owner, name))

    def win_alloc(self, name: str, shape: tuple, dtype) -> np.ndarray:
        """Collectively allocate and expose a symmetric window.

        Every rank calls with identical arguments (SPMD) and gets back
        its local instance, zero-initialised.  The base transport backs
        it with a private array; heap-carrying transports override this
        to place it on the shared symmetric heap, which is what enables
        direct remote writes and co-located one-sided ``get``.  Like
        OpenSHMEM's ``shmem_malloc``, the allocation ends in an implicit
        barrier: when it returns, every rank's window exists and is
        addressable.
        """
        win = self.win_expose(name, np.zeros(shape, dtype=dtype))
        self.barrier()
        return win

    def put(self, name: str, values: np.ndarray, dest: int, idx,
            axis: int = 0, owned: bool = False) -> None:
        """Write ``values`` into region ``idx`` of ``dest``'s window.

        One-sided: the target does not post a receive — it sees the
        region once it fences this origin.  ``idx`` is ``(lo, hi)``
        bounds or an index vector along ``axis``.  Cost accounting is
        identical to :meth:`send` (origin pays latency + transfer), so
        protocols ported from send/recv to put+fence keep their virtual
        time.  ``owned`` has `_send_owned` semantics: the caller proves
        nothing else aliases ``values``.
        """
        ctx = self._ctx()
        if not (0 <= dest < self.nranks):
            raise ValueError(f"bad put destination rank {dest}")
        if dest == ctx.rank:
            raise ValueError("self-put: write the local window directly")
        nbytes = nbytes_of(values)
        ctx.clock.charge_comm(self.machine.p2p_cost(nbytes, ctx.rank, dest))
        self._deliver_put(ctx, name, values, dest, idx, axis, owned, nbytes)

    def _deliver_put(self, ctx: RankContext, name: str, values, dest: int,
                     idx, axis: int, owned: bool, nbytes: int) -> None:
        """Transport half of :meth:`put` (overridden by heap routes)."""
        seq = trace_writer().send(dest, TAG_PUT, epoch=self.mail_epoch)
        self.mailboxes[dest].put(Message(
            src=ctx.rank, dst=dest, tag=TAG_PUT,
            payload=(name, axis, idx, self._egress(values, owned, dest)),
            nbytes=nbytes, arrival=ctx.clock.now, epoch=self.mail_epoch,
            seq=seq))

    def fence(self, schedule: Sequence[int]) -> None:
        """Complete one incoming put per source listed in ``schedule``.

        The schedule is the deterministic list of origins whose puts
        this rank must observe (repeat a rank once per put), derived
        from the protocol's communication pattern — neighbour lists for
        a halo exchange, the move plan for a reshape.  Draining in
        schedule order rather than arrival order is what keeps the
        clock coupling (and therefore virtual time) bit-reproducible.
        """
        ctx = self._ctx()
        for src in schedule:
            msg = self.mailboxes[ctx.rank].get(source=src, tag=TAG_PUT)
            ctx.clock.wait_comm(msg.arrival)
            same = self.machine.same_node(msg.src, ctx.rank)
            ctx.clock.charge_comm(
                self.machine.network.p2p_cost(msg.nbytes, same)
                - (self.machine.network.intra_latency if same
                   else self.machine.network.inter_latency))
            name, axis, idx, packed = msg.payload
            if isinstance(packed, str) and packed == PUT_APPLIED:
                continue  # transport wrote the window directly
            win = self._window(ctx.rank, name)
            if win is None:
                raise RuntimeError(
                    f"rank {ctx.rank}: put into unexposed window {name!r}")
            axis_write(win, idx, axis, self._ingress_value(packed))

    def quiet(self) -> None:
        """Complete this rank's outstanding puts (OpenSHMEM ``quiet``).

        All transports here deliver puts synchronously at issue — the
        envelope is deposited (or the heap written) before :meth:`put`
        returns, and per-(origin, target) ordering is FIFO — so there
        is nothing left to drain.  Kept as an explicit point in the API
        so protocols state their ordering intent and a future
        asynchronous transport has a seam to hook.
        """
        self._ctx()

    def get(self, name: str, src: int, idx, axis: int = 0) -> np.ndarray:
        """Read region ``idx`` of ``src``'s window ``name`` (one-sided).

        The origin is charged a modelled round trip — request envelope
        out, region transfer back — and the target's clock is untouched
        (its CPU never participates; in the remote case a progress
        thread serves the window).  Callers bound racing writers with
        fences, exactly as OpenSHMEM requires.
        """
        ctx = self._ctx()
        if not (0 <= src < self.nranks):
            raise ValueError(f"bad get source rank {src}")
        if src == ctx.rank:
            win = self._window(ctx.rank, name)
            if win is None:
                raise RuntimeError(f"get from unexposed window {name!r}")
            return np.ascontiguousarray(axis_read(win, idx, axis))
        vals = self._fetch_window(ctx, name, src, idx, axis)
        ctx.clock.charge_comm(
            self.machine.p2p_cost(_GETREQ_NBYTES, ctx.rank, src)
            + self.machine.p2p_cost(nbytes_of(vals), src, ctx.rank))
        return vals

    def _fetch_window(self, ctx: RankContext, name: str, src: int, idx,
                      axis: int) -> np.ndarray:
        """Transport half of :meth:`get` (overridden by heap/socket
        routes).  The base transport shares one address space, so the
        peer's window is readable directly."""
        win = self._window(src, name)
        if win is None:
            raise RuntimeError(
                f"rank {src} has not exposed window {name!r}")
        return np.array(axis_read(win, idx, axis))

    # ------------------------------------------------------------------
    # collectives (SPMD: every rank must call in the same order)
    # ------------------------------------------------------------------
    def _algo(self, nbytes: int = 0) -> str:
        """The algorithm this collective call runs: the machine knob
        verbatim, or — under ``"auto"`` — the advisor's per-call choice
        from rank count and payload size.  Every input is identical on
        every rank (``nbytes`` by the SPMD symmetric-contribution
        contract of the callers that pass it), so the choice needs no
        agreement protocol."""
        if self.coll_algo != "auto":
            return self.coll_algo
        return self.machine.collective_algo(self.nranks, nbytes)

    def barrier(self) -> None:
        ctx = self._ctx()
        if self.nranks == 1:
            return
        assert self._barrier is not None

        def _sync() -> None:
            self._epoch = VClock.sync_max(
                self.clocks, extra=self.machine.barrier_cost(self.nranks))

        self._barrier.wait(action_override=_sync)
        ctx.clock.advance_to(self._epoch)
        ctx.clock.charge_comm(self.machine.oversub_epoch_cost(self.nranks))

    # ------------------------------------------------------------------
    # binomial-tree helpers: ranks are relabelled so the root is virtual
    # rank 0; every edge is a real send/recv pair, so each algorithm's
    # virtual-time cost emerges from the network model untouched.
    # ------------------------------------------------------------------
    def _vrank(self, rank: int, root: int) -> int:
        return (rank - root) % self.nranks

    def _actual(self, vrank: int, root: int) -> int:
        return (vrank + root) % self.nranks

    def _tree_bcast(self, obj: Any, root: int) -> Any:
        ctx = self._ctx()
        n = self.nranks
        vr = self._vrank(ctx.rank, root)
        mask = 1
        while mask < n:  # receive from the parent (lowest set bit)
            if vr & mask:
                obj = self.recv(source=self._actual(vr - mask, root),
                                tag=TAG_COLL + 1)
                break
            mask <<= 1
        mask >>= 1
        while mask > 0:  # relay down the subtree, widest child first
            if vr + mask < n:
                self.send(obj, self._actual(vr + mask, root), TAG_COLL + 1)
            mask >>= 1
        return obj

    def _tree_gather(self, obj: Any, root: int) -> list[Any] | None:
        ctx = self._ctx()
        n = self.nranks
        vr = self._vrank(ctx.rank, root)
        got: dict[int, Any] = {ctx.rank: _copy_payload(obj)}
        mask = 1
        while mask < n:
            if vr & mask:  # forward the collected subtree to the parent
                self._send_owned(got, self._actual(vr - mask, root),
                                 TAG_COLL + 3)
                return None
            src = vr + mask
            if src < n:
                got.update(self.recv(source=self._actual(src, root),
                                     tag=TAG_COLL + 3))
            mask <<= 1
        return [got[r] for r in sorted(got)] if n > 1 else [got[ctx.rank]]

    def _tree_reduce(self, obj: Any, fold: Callable[[Any, Any], Any],
                     root: int) -> Any | None:
        ctx = self._ctx()
        n = self.nranks
        vr = self._vrank(ctx.rank, root)
        acc = _copy_payload(obj)
        mask = 1
        while mask < n:
            if vr & mask:
                self._send_owned(acc, self._actual(vr - mask, root),
                                 TAG_COLL + 3)
                return None
            src = vr + mask
            if src < n:  # deterministic order: nearest subtree first
                acc = fold(acc, self.recv(
                    source=self._actual(src, root), tag=TAG_COLL + 3))
            mask <<= 1
        return acc

    def bcast(self, obj: Any, root: int = 0) -> Any:
        ctx = self._ctx()
        if self.nranks == 1:
            return obj
        # non-roots hold no payload, so the auto decision for bcast is
        # made on rank count alone (the latency term dominates it).
        if self._algo() == "tree":
            return self._tree_bcast(obj, root)
        if ctx.rank == root:
            for r in range(self.nranks):
                if r != root:
                    self.send(obj, r, TAG_COLL + 1)
            return obj
        return self.recv(source=root, tag=TAG_COLL + 1)

    def scatter(self, parts: Sequence[Any] | None, root: int = 0) -> Any:
        ctx = self._ctx()
        if ctx.rank == root:
            if parts is None or len(parts) != self.nranks:
                raise ValueError(
                    f"root must supply exactly {self.nranks} parts")
            mine = parts[root]
            for r in range(self.nranks):
                if r != root:
                    self.send(parts[r], r, TAG_COLL + 2)
            return _copy_payload(mine)
        return self.recv(source=root, tag=TAG_COLL + 2)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        ctx = self._ctx()
        if self.nranks > 1 and self._algo(nbytes_of(obj)) == "tree":
            return self._tree_gather(obj, root)
        if ctx.rank == root:
            out: list[Any] = [None] * self.nranks
            out[root] = _copy_payload(obj)
            # source-specific receives: with per-(src, tag) FIFO this pins
            # each contribution to the right collective even when a fast
            # rank has already sent into the *next* collective.
            for src in range(self.nranks):
                if src == root:
                    continue
                msg = self.mailboxes[ctx.rank].get(source=src,
                                                   tag=TAG_COLL + 3)
                ctx.clock.wait_comm(msg.arrival)
                out[src] = self._ingress(msg)
            return out
        self.send(obj, root, TAG_COLL + 3)
        return None

    def allgather(self, obj: Any) -> list[Any]:
        got = self.gather(obj, root=0)
        return self.bcast(got, root=0)

    def reduce(self, obj: Any, op: Callable[[Any, Any], Any] | None = None,
               root: int = 0) -> Any | None:
        """Fold ``op`` (default: +, elementwise for arrays) at ``root``.

        Flat: gather everything at the root and left-fold in rank order.
        Tree: partial results combine up the binomial tree — moves
        ``O(log P)`` payloads per member instead of ``P`` through the
        root, at the price of a subtree-wise (associativity-assuming)
        fold order.
        """
        ctx = self._ctx()
        fold = op if op is not None else _default_add
        if self.nranks > 1 and self._algo(nbytes_of(obj)) == "tree":
            return self._tree_reduce(obj, fold, root)
        vals = self.gather(obj, root=root)
        if ctx.rank != root:
            return None
        assert vals is not None
        acc = vals[0]
        for v in vals[1:]:
            acc = fold(acc, v)
        return acc

    def allreduce(self, obj: Any,
                  op: Callable[[Any, Any], Any] | None = None) -> Any:
        return self.bcast(self.reduce(obj, op=op, root=0), root=0)

    def alltoall(self, parts: Sequence[Any]) -> list[Any]:
        ctx = self._ctx()
        if len(parts) != self.nranks:
            raise ValueError(f"need exactly {self.nranks} parts")
        out: list[Any] = [None] * self.nranks
        out[ctx.rank] = _copy_payload(parts[ctx.rank])
        for r in range(self.nranks):
            if r != ctx.rank:
                self.send(parts[r], r, TAG_COLL + 4)
        for src in range(self.nranks):
            if src == ctx.rank:
                continue
            msg = self.mailboxes[ctx.rank].get(source=src, tag=TAG_COLL + 4)
            ctx.clock.wait_comm(msg.arrival)
            out[src] = self._ingress(msg)
        return out


def _default_add(a: Any, b: Any) -> Any:
    if isinstance(a, np.ndarray):
        return a + b
    return a + b
