"""TCP transport and topology-aware routing: the multi-node fabric.

This is the third transport behind the :class:`~repro.dsm.transport.
Transport` seam.  A :class:`SocketTransport` gives one rank a hybrid
endpoint list:

* **co-located peers** (same physical node) keep the process fabric —
  envelopes through ``mp.Queue`` channels, large payloads as
  shared-memory slab descriptors via the data plane; nothing crosses a
  wire;
* **remote peers** are reached over length-prefixed TCP frames
  (8-byte big-endian size + pickled :class:`Message`), one cached
  connection per destination, established lazily on first send.

Inbound TCP frames are handled by a per-rank **progress thread**: it
accepts peer connections and *re-injects* each received envelope into
the rank's own queue channel, so the receive side stays a single
:class:`~repro.dsm.procmail.ProcessMailbox` with its selective-receive,
FIFO-per-(source, tag), epoch-scoped and deadline semantics — remote
and local traffic are indistinguishable above the seam.  Two frame
kinds are served *in* the progress thread instead (that is what makes
the one-sided API genuinely one-sided across nodes — the target CPU
never participates):

* ``TAG_PUT`` into a known window is applied directly to the window
  memory and re-injected as a ``PUT_APPLIED`` envelope (the fence still
  drains it for virtual-time coupling, but has nothing left to copy);
* ``TAG_GETREQ`` reads the requested window region and replies with a
  ``TAG_GETREP`` frame.

:class:`HierarchicalCommunicator` adds the routing policy on top:
placement-aware egress (slabs within a node, frames across),
heap-direct one-sided traffic for co-located peers, remote windows via
the progress thread, and — when the collective algorithm resolves to
``"tree"`` — leader-per-node collectives: one rank per physical node
relays on the wire, members fan out/in over shared memory.  Every hop
is a real modelled send/recv, so virtual time stays faithful; the
``"flat"`` algorithm is inherited unchanged and bit-exact.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.dsm.comm import (
    _GETREQ_NBYTES,
    PUT_APPLIED,
    TAG_COLL,
    TAG_GETREP,
    TAG_GETREQ,
    TAG_PUT,
    axis_read,
    axis_write,
)
from repro.dsm.mailbox import Message
from repro.dsm.procmail import ProcCommunicator, ProcessMailbox
from repro.dsm.transport import Transport
from repro.telemetry import schema as _ts
from repro.telemetry.plane import writer as telemetry_writer
from repro.trace import schema as _tc
from repro.trace.plane import tracer as trace_writer

if TYPE_CHECKING:  # pragma: no cover
    from repro.dsm.comm import RankContext
    from repro.dsm.shm import DataPlane
    from repro.vtime.machine import MachineModel

#: leader-per-node collective plumbing tags.
_TAG_HIER_BCAST = TAG_COLL + 30
_TAG_HIER_GATHER = TAG_COLL + 31
_TAG_HIER_REDUCE = TAG_COLL + 32

_LEN = struct.Struct(">Q")


def _recv_exact(conn: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes, or None on a clean/broken EOF."""
    chunks = []
    while n:
        try:
            b = conn.recv(min(n, 1 << 20))
        except OSError:
            return None
        if not b:
            return None
        chunks.append(b)
        n -= len(b)
    return b"".join(chunks)


def send_framed(conn: socket.socket, obj) -> None:
    """Pickle ``obj`` and write it as one length-prefixed frame.

    The shared wire discipline of this module: the rank fabric, the
    socket checkpoint funnel and the runtime-service client API all
    speak ``>Q``-prefixed pickle frames, so any of them can be read
    with :func:`recv_framed`.
    """
    import pickle

    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    conn.sendall(_LEN.pack(len(blob)) + blob)


def recv_framed(conn: socket.socket):
    """Read one length-prefixed pickle frame; None on EOF/reset."""
    import pickle

    head = _recv_exact(conn, _LEN.size)
    if head is None:
        return None
    blob = _recv_exact(conn, _LEN.unpack(head)[0])
    if blob is None:
        return None
    return pickle.loads(blob)


class SocketPeer:
    """Egress stub for a remote rank: ``put`` frames the envelope.

    The pickle happens synchronously inside ``put`` (unlike mp.Queue's
    feeder thread, which pickles after put returns), so senders need no
    defensive copy for socket-bound payloads — the bytes are captured
    before ``put`` returns.
    """

    def __init__(self, transport: "SocketTransport", dest: int) -> None:
        self._transport = transport
        self.rank = dest

    def put(self, msg: Message) -> None:
        self._transport.send_frame(self.rank, msg)

    def close(self) -> None:  # the transport owns the connections
        pass


class SocketTransport(Transport):
    """One rank's hybrid fabric: queues within the node, TCP across.

    ``channels`` is the full pre-sized mp.Queue list (one per fabric
    slot); ``pnode_of`` maps a rank to its *physical* node (the
    deployment layout — distinct from ``MachineModel.node_of``, which is
    the modelled topology feeding the clocks).  Construction binds the
    rank's listener (port 0 — the OS picks); the caller publishes
    ``self.address`` to peers and installs the gathered map with
    :meth:`set_addresses` before the first remote send.
    """

    def __init__(self, rank: int, channels, pnode_of: Callable[[int], int],
                 bind_host: str = "127.0.0.1") -> None:
        self.rank = rank
        self.channels = channels
        self.pnode_of = pnode_of
        self._addresses: dict[int, tuple[str, int]] = {}
        self._conns: dict[int, socket.socket] = {}
        self._send_lock = threading.Lock()
        self._frames: dict[int, int] = {}
        self._comm: "HierarchicalCommunicator | None" = None
        self._attached = threading.Event()
        self._stop = threading.Event()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((bind_host, 0))
        self._listener.listen()
        # a bounded accept wait: close() cannot count on a cross-thread
        # listener close interrupting a blocking accept().
        self._listener.settimeout(0.25)
        #: (host, port) peers reach this rank's progress thread at.
        self.address: tuple[str, int] = self._listener.getsockname()
        self._readers: list[threading.Thread] = []
        self._accepted: list[socket.socket] = []
        self._acceptor = threading.Thread(
            target=self._accept_loop, name=f"sk-progress-{rank}", daemon=True)
        self._acceptor.start()

    # ------------------------------------------------------------------
    def set_addresses(self, addresses: dict[int, tuple[str, int]]) -> None:
        """Install the rendezvous result (rank -> listener address)."""
        self._addresses.update(addresses)

    def attach(self, comm: "HierarchicalCommunicator") -> None:
        """Give the progress thread the window registry it serves."""
        self._comm = comm
        self._attached.set()

    def colocated(self, peer: int) -> bool:
        return self.pnode_of(peer) == self.pnode_of(self.rank)

    def endpoints(self, rank: int) -> list:
        if rank != self.rank:
            raise ValueError("a SocketTransport is bound to one rank")
        out: list = []
        for r, ch in enumerate(self.channels):
            if r == self.rank or self.colocated(r):
                out.append(ProcessMailbox(r, ch))
            else:
                out.append(SocketPeer(self, r))
        return out

    def frame_counts(self) -> dict[int, int]:
        """TCP frames sent per destination.  Co-located peers must never
        appear here — that absence is the routing assertion the topology
        tests make."""
        return dict(self._frames)

    # ------------------------------------------------------------------
    # egress
    # ------------------------------------------------------------------
    def send_frame(self, dest: int, msg: Message) -> None:
        blob = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
        with self._send_lock:
            conn = self._conns.get(dest)
            if conn is None:
                addr = self._addresses.get(dest)
                if addr is None:
                    raise RuntimeError(
                        f"rank {self.rank}: no address for remote rank "
                        f"{dest} (rendezvous incomplete)")
                conn = socket.create_connection(addr, timeout=30.0)
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                self._conns[dest] = conn
            conn.sendall(_LEN.pack(len(blob)) + blob)
            self._frames[dest] = self._frames.get(dest, 0) + 1
        tele = telemetry_writer()
        if tele.active:
            tele.inc(_ts.SEND_BYTES_TCP, float(len(blob)))
            tele.inc(_ts.SEND_MSGS_TCP)
        tr = trace_writer()
        if tr.active:
            tr.instant(_tc.TCP_FRAME, a=float(dest), b=float(len(blob)))

    # ------------------------------------------------------------------
    # ingress: the progress thread
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed: shutdown
            self._accepted.append(conn)
            t = threading.Thread(target=self._read_loop, args=(conn,),
                                 name=f"sk-reader-{self.rank}", daemon=True)
            t.start()
            self._readers.append(t)

    def _read_loop(self, conn: socket.socket) -> None:
        with conn:
            while not self._stop.is_set():
                head = _recv_exact(conn, _LEN.size)
                if head is None:
                    return
                blob = _recv_exact(conn, _LEN.unpack(head)[0])
                if blob is None:
                    return
                self._dispatch(pickle.loads(blob))

    def _dispatch(self, msg: Message) -> None:
        if msg.tag == TAG_GETREQ:
            self._serve_get(msg)
            return
        if msg.tag == TAG_PUT:
            name, axis, idx, values = msg.payload
            win = self._serve_window(name)
            if win is not None and not isinstance(values, str):
                # one-sided apply in the progress thread: the target CPU
                # never touches the payload; its fence only couples time.
                axis_write(win, idx, axis, values)
                msg = Message(src=msg.src, dst=msg.dst, tag=TAG_PUT,
                              payload=(name, axis, idx, PUT_APPLIED),
                              nbytes=msg.nbytes, arrival=msg.arrival,
                              epoch=msg.epoch, seq=msg.seq)
        self.channels[self.rank].put(msg)

    def _serve_window(self, name: str) -> np.ndarray | None:
        """This rank's window ``name`` as the progress thread sees it."""
        comm = self._comm
        if comm is None:
            return None
        heap = comm.plane.heap if comm.plane is not None else None
        if heap is not None and heap.has(name):
            return heap.window(name)
        return comm._window(self.rank, name)

    def _serve_get(self, msg: Message) -> None:
        # Block (bounded) until the communicator is attached: a fast
        # peer can issue a get before this rank finished construction.
        self._attached.wait(timeout=30.0)
        name, idx, axis = msg.payload
        win = self._serve_window(name)
        if win is None:
            reply = Message(src=self.rank, dst=msg.src, tag=TAG_GETREP,
                            payload=RuntimeError(
                                f"rank {self.rank}: window {name!r} is not "
                                "exposed"),
                            nbytes=0, arrival=0.0, epoch=msg.epoch)
        else:
            vals = np.ascontiguousarray(axis_read(win, idx, axis))
            reply = Message(src=self.rank, dst=msg.src, tag=TAG_GETREP,
                            payload=vals, nbytes=vals.nbytes,
                            arrival=0.0, epoch=msg.epoch)
        self.send_frame(msg.src, reply)

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._send_lock:
            for conn in self._conns.values():
                try:
                    conn.close()
                except OSError:
                    pass
            self._conns.clear()
        # unblock readers parked in recv(): their fds must close, a
        # cross-thread close of the peer's end is not guaranteed to wake
        # them.
        for conn in self._accepted:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        self._acceptor.join(timeout=5.0)
        for t in self._readers:
            t.join(timeout=5.0)


class HierarchicalCommunicator(ProcCommunicator):
    """Topology-aware routing over a :class:`SocketTransport`.

    The algorithm layer is inherited whole; this class decides, per
    destination, *which* fabric a payload rides: co-located ranks get
    the zero-copy slab plane through queues, remote ranks get TCP
    frames (pickled synchronously at ``put`` — no defensive copy, and
    never a raw shm descriptor, which would be meaningless off-node).
    One-sided windows on the symmetric heap are written/read directly
    for co-located peers and served by the remote rank's progress
    thread otherwise.  Under the ``"tree"`` algorithm, collectives run
    leader-per-node so each inter-node link carries each payload once.
    """

    def __init__(self, rank: int, nranks: int, machine: "MachineModel",
                 transport: SocketTransport,
                 plane: "DataPlane | None" = None,
                 mail_epoch: int = 0) -> None:
        super().__init__(rank, nranks, machine, plane=plane,
                         transport=transport, mail_epoch=mail_epoch)
        self.pnode_of = transport.pnode_of
        transport.attach(self)

    # ------------------------------------------------------------------
    # placement-aware transport hooks
    # ------------------------------------------------------------------
    def colocated(self, peer: int) -> bool:
        return self.pnode_of(peer) == self.pnode_of(self._rank)

    def _egress(self, obj: Any, owned: bool, dest: int) -> Any:
        if self.colocated(dest):
            return super()._egress(obj, owned, dest)
        # socket-bound: SocketPeer pickles inside put, so the payload is
        # captured synchronously — by-reference is value-safe here, and
        # a slab descriptor would dangle on the far node.
        return obj

    def _put_direct(self, dest: int, name: str) -> np.ndarray | None:
        if not self.colocated(dest):
            return None
        return super()._put_direct(dest, name)

    def _fetch_window(self, ctx: "RankContext", name: str, src: int, idx,
                      axis: int) -> np.ndarray:
        win = self._put_direct(src, name)
        if win is not None:  # co-located: read the heap pages in place
            return np.ascontiguousarray(axis_read(win, idx, axis))
        self.mailboxes[src].put(Message(
            src=ctx.rank, dst=src, tag=TAG_GETREQ, payload=(name, idx, axis),
            nbytes=_GETREQ_NBYTES, arrival=ctx.clock.now,
            epoch=self.mail_epoch))
        rep = self.mailboxes[ctx.rank].get(source=src, tag=TAG_GETREP)
        if isinstance(rep.payload, Exception):
            raise rep.payload
        return rep.payload

    # ------------------------------------------------------------------
    # leader-per-node collectives (the "tree" routing on this fabric)
    # ------------------------------------------------------------------
    def _groups(self) -> tuple[dict[int, list[int]], list[int]]:
        """Active members grouped by physical node, plus the leaders
        (lowest rank per node, ordered by their node's first rank)."""
        groups: dict[int, list[int]] = {}
        for r in range(self.nranks):
            groups.setdefault(self.pnode_of(r), []).append(r)
        leaders = [members[0] for members in groups.values()]
        return groups, leaders

    def _multi_node(self) -> bool:
        return len({self.pnode_of(r) for r in range(self.nranks)}) > 1

    def bcast(self, obj: Any, root: int = 0) -> Any:
        if self.nranks > 1 and self._multi_node() and self._algo() == "tree":
            return self._hier_bcast(obj, root)
        return super().bcast(obj, root)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        from repro.util.serialization import nbytes_of
        if (self.nranks > 1 and self._multi_node()
                and self._algo(nbytes_of(obj)) == "tree"):
            return self._hier_gather(obj, root)
        return super().gather(obj, root)

    def reduce(self, obj: Any, op: Callable[[Any, Any], Any] | None = None,
               root: int = 0) -> Any | None:
        from repro.dsm.comm import _default_add
        from repro.util.serialization import nbytes_of
        if (self.nranks > 1 and self._multi_node()
                and self._algo(nbytes_of(obj)) == "tree"):
            return self._hier_reduce(obj, op or _default_add, root)
        return super().reduce(obj, op=op, root=root)

    def _leader_tree(self, me: int, leaders: list[int],
                     root_leader: int) -> tuple[int | None, list[int]]:
        """Binomial-tree parent and children of ``me`` within the leader
        set, relabelled so ``root_leader`` is virtual rank 0."""
        n = len(leaders)
        pos = leaders.index(me)
        rpos = leaders.index(root_leader)
        vr = (pos - rpos) % n
        parent = None
        mask = 1
        while mask < n:
            if vr & mask:
                parent = leaders[((vr - mask) + rpos) % n]
                break
            mask <<= 1
        children = []
        # children: all set-bit extensions below the lowest set bit
        cm = 1
        limit = mask if parent is not None else n
        while cm < limit and vr + cm < n:
            children.append(leaders[((vr + cm) + rpos) % n])
            cm <<= 1
        # widest child first, matching _tree_bcast's relay order
        children.reverse()
        return parent, children

    def _hier_bcast(self, obj: Any, root: int) -> Any:
        ctx = self._ctx()
        groups, leaders = self._groups()
        my_node = self.pnode_of(ctx.rank)
        my_leader = groups[my_node][0]
        root_leader = groups[self.pnode_of(root)][0]
        # hop 1: the payload reaches the root's node leader
        if ctx.rank == root and root != root_leader:
            self.send(obj, root_leader, _TAG_HIER_BCAST)
        if ctx.rank == root_leader and root != root_leader:
            obj = self.recv(source=root, tag=_TAG_HIER_BCAST)
        # hop 2: binomial tree across node leaders (the only wire hops)
        if ctx.rank in leaders and len(leaders) > 1:
            parent, children = self._leader_tree(ctx.rank, leaders,
                                                 root_leader)
            if parent is not None:
                obj = self.recv(source=parent, tag=_TAG_HIER_BCAST)
            for child in children:
                self.send(obj, child, _TAG_HIER_BCAST)
        # hop 3: leaders fan out to their node members over shared memory
        if ctx.rank == my_leader:
            for r in groups[my_node]:
                if r not in (my_leader, root):
                    self.send(obj, r, _TAG_HIER_BCAST)
        elif ctx.rank != root:
            obj = self.recv(source=my_leader, tag=_TAG_HIER_BCAST)
        return obj

    def _hier_gather(self, obj: Any, root: int) -> list[Any] | None:
        ctx = self._ctx()
        groups, leaders = self._groups()
        my_node = self.pnode_of(ctx.rank)
        my_leader = groups[my_node][0]
        root_leader = groups[self.pnode_of(root)][0]
        from repro.dsm.comm import _copy_payload
        if ctx.rank != my_leader:
            # owned dict of copied values: safe for by-reference channels
            self._send_owned({ctx.rank: _copy_payload(obj)}, my_leader,
                             _TAG_HIER_GATHER)
            if ctx.rank != root:
                return None
            # the root still receives the final result from its leader
            got = self.recv(source=root_leader, tag=_TAG_HIER_GATHER)
            return [got[r] for r in range(self.nranks)]
        # leader: collect the node's contributions in rank order
        got: dict[int, Any] = {ctx.rank: _copy_payload(obj)}
        for r in groups[my_node]:
            if r != ctx.rank:
                got.update(self.recv(source=r, tag=_TAG_HIER_GATHER))
        # leaders fold up the binomial tree toward the root's leader
        if len(leaders) > 1:
            parent, children = self._leader_tree(ctx.rank, leaders,
                                                 root_leader)
            for child in children:
                got.update(self.recv(source=child, tag=_TAG_HIER_GATHER))
            if parent is not None:
                self._send_owned(got, parent, _TAG_HIER_GATHER)
                return None
        if ctx.rank == root:
            return [got[r] for r in range(self.nranks)]
        self._send_owned(got, root, _TAG_HIER_GATHER)
        return None

    def _hier_reduce(self, obj: Any, fold: Callable[[Any, Any], Any],
                     root: int) -> Any | None:
        ctx = self._ctx()
        groups, leaders = self._groups()
        my_node = self.pnode_of(ctx.rank)
        my_leader = groups[my_node][0]
        root_leader = groups[self.pnode_of(root)][0]
        if ctx.rank != my_leader:
            self.send(obj, my_leader, _TAG_HIER_REDUCE)
            if ctx.rank != root:
                return None
            return self.recv(source=root_leader, tag=_TAG_HIER_REDUCE)
        from repro.dsm.comm import _copy_payload
        acc = _copy_payload(obj)
        # fold the node's members in ascending rank order (deterministic)
        for r in groups[my_node]:
            if r != ctx.rank:
                acc = fold(acc, self.recv(source=r, tag=_TAG_HIER_REDUCE))
        # fold subtrees up the leader tree (associativity assumed, like
        # _tree_reduce: nearest subtree first)
        if len(leaders) > 1:
            parent, children = self._leader_tree(ctx.rank, leaders,
                                                 root_leader)
            for child in reversed(children):  # nearest first
                acc = fold(acc, self.recv(source=child,
                                          tag=_TAG_HIER_REDUCE))
            if parent is not None:
                self._send_owned(acc, parent, _TAG_HIER_REDUCE)
                return None
        if ctx.rank == root:
            return acc
        self._send_owned(acc, root, _TAG_HIER_REDUCE)
        return None
