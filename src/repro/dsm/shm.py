"""Shared-memory segments: zero-copy partitioned fields across processes.

The multiprocessing execution backend places each ``Partitioned`` field
in one ``multiprocessing.shared_memory`` segment: the creating rank
copies its constructor-initialised array in once, every rank maps a
full-size numpy view onto the same physical pages, and from then on
scatter / gather / halo data movement degenerates to synchronisation
(see ``Capabilities.shared_fields``).  This module owns the segment
lifecycle — allocate / attach / unlink — and the numpy views, with
explicit name tracking so tests can assert that no ``/dev/shm`` entry
outlives a launch.

It also owns the **message data plane** (:class:`BufferPool`,
:class:`DataPlane`): large array payloads between processes travel
through pooled shared-memory slabs instead of being pickled through
``multiprocessing.Queue`` pipes.  Three tiers, picked per payload:

* **inline** — payloads under :data:`SHM_THRESHOLD` are pickled through
  the queue as before (a descriptor round-trip costs more than it
  saves for small envelopes);
* **slab**   — the sender copies the array once into a leased slab from
  its per-rank ring and the queue carries only a tiny
  :class:`ShmRef` descriptor; the receiver copies out of the slab and
  recycles it.  Two memcpys replace pickle + pipe write + pipe read +
  unpickle;
* **direct** — when the payload is itself a contiguous view of a
  registered shared segment (and the surrounding protocol bounds the
  borrow with a synchronisation point), the descriptor references the
  *source* segment region and the receiver's landing assignment is a
  single segment-to-segment region copy: **zero** intermediate copies.
  Opt-in (:meth:`DataPlane.register_borrow`) for movement code that can
  prove the bound — stock backend runs take only the first two tiers,
  because the fields whose movements could borrow are the very fields
  the multiprocessing backend already aliases into one shared segment,
  where scatter/halo degenerate to barriers and move no bytes at all.

Ownership discipline (one unlinker, no resource-tracker noise):

* worker processes *create* or *attach* segments but never unlink them;
  both sides unregister from their process's ``resource_tracker``
  immediately, so a worker exiting (cleanly or not) cannot trigger the
  tracker's leak warnings or a premature unlink;
* the parent (the execution backend) unlinks every segment of a launch
  in its ``finally`` — by deterministic name, so it works even when a
  worker died before reporting what it created.

Segment names are ``ppshm-<launch id>-<field>``: deterministic given
the launch id, which is what lets the parent compute the cleanup set
without hearing back from any worker.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.telemetry import schema as _ts
from repro.telemetry.plane import writer as telemetry_writer

#: distinctive prefix for every segment this package creates; the
#: lifecycle tests scan ``/dev/shm`` for it.
SHM_PREFIX = "ppshm"

# ---------------------------------------------------------------------------
# process-local name tracking (the test-visible lifecycle ledger)
# ---------------------------------------------------------------------------
_live_lock = threading.Lock()
_live: set[str] = set()
_launch_seq = itertools.count()
#: serialises the resource-tracker monkeypatch: concurrent patchers
#: would capture each other's no-op lambdas as "originals" and leave
#: tracking disabled for the whole process.
_tracker_patch_lock = threading.Lock()


def live_segments() -> list[str]:
    """Names of segments this process has created/attached and not yet
    released — empty whenever no launch is in flight."""
    with _live_lock:
        return sorted(_live)


def _track(name: str) -> None:
    with _live_lock:
        _live.add(name)


def _untrack(name: str) -> None:
    with _live_lock:
        _live.discard(name)


def new_launch_id(ns: str = "") -> str:
    """A name component unique to one phase launch of this process.

    ``ns`` embeds a caller-chosen namespace (e.g. a service job id) in
    the component, so the deterministic segment/slab/heap names of two
    worlds constructed by one parent can never alias each other — the
    pid+sequence pair alone already guarantees that within a process,
    but the namespace keeps the grid disjoint *by construction* and
    makes ``/dev/shm`` listings attributable to a job.
    """
    tag = "".join(c for c in ns if c.isalnum())[:16]
    mid = f"{tag}-" if tag else ""
    return f"{os.getpid():x}-{mid}{next(_launch_seq):x}"


def segment_name(launch_id: str, field: str) -> str:
    return f"{SHM_PREFIX}-{launch_id}-{field}"


@contextmanager
def _no_resource_tracking():
    """Keep this mapping out of the resource tracker's unlink chain.

    ``SharedMemory`` registers every mapping with the process tree's
    shared tracker, which (a) warns about "leaks" the parent cleans up
    on purpose and (b) breaks on the interleaved register/unregister
    traffic of several ranks mapping one segment.  Exactly one party
    unlinks — the parent, by name — so worker mappings are simply never
    registered.  (Python 3.13 exposes this as ``track=False``; this is
    the portable equivalent for 3.10–3.12.)
    """
    with _tracker_patch_lock:
        originals = resource_tracker.register, resource_tracker.unregister
        resource_tracker.register = lambda *a, **k: None
        resource_tracker.unregister = lambda *a, **k: None
        try:
            yield
        finally:
            resource_tracker.register, resource_tracker.unregister = \
                originals


class ShmSegment:
    """One shared segment holding one numpy array."""

    def __init__(self, name: str, shape: tuple, dtype,
                 shm: shared_memory.SharedMemory) -> None:
        self.name = name
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        self._shm = shm
        self._view: np.ndarray | None = None

    # ------------------------------------------------------------------
    @classmethod
    def allocate(cls, name: str, shape: tuple, dtype) -> "ShmSegment":
        """Create the segment (fails if the name already exists)."""
        nbytes = max(1, int(np.dtype(dtype).itemsize
                            * np.prod(shape, dtype=np.int64)))
        with _no_resource_tracking():
            shm = shared_memory.SharedMemory(create=True, size=nbytes,
                                             name=name)
        _track(name)
        return cls(name, shape, dtype, shm)

    @classmethod
    def attach(cls, name: str, shape: tuple, dtype) -> "ShmSegment":
        """Map an existing segment created by a peer."""
        with _no_resource_tracking():
            shm = shared_memory.SharedMemory(name=name)
        _track(name)
        return cls(name, shape, dtype, shm)

    # ------------------------------------------------------------------
    def ndarray(self) -> np.ndarray:
        """The full-size array view onto the shared pages (cached: every
        call returns the same object, so rebinding a field is stable)."""
        if self._view is None:
            self._view = np.ndarray(self.shape, dtype=self.dtype,
                                    buffer=self._shm.buf)
        return self._view

    def close(self) -> None:
        """Drop the mapping (not the segment); idempotent, best-effort.

        A still-exported view makes the underlying ``memoryview``
        un-releasable; the mapping then dies with the process, which is
        fine — the *segment* is reclaimed by the parent's unlink either
        way (POSIX allows unlink while mapped).
        """
        self._view = None
        try:
            self._shm.close()
        except BufferError:
            pass  # a live view still pins the buffer; process exit unmaps
        _untrack(self.name)

    def unlink(self) -> None:
        """Remove the segment from the system; idempotent."""
        self.close()
        try:
            with _no_resource_tracking():
                self._shm.unlink()
        except FileNotFoundError:
            pass


def unlink_by_name(name: str) -> bool:
    """Best-effort unlink of a segment this process never mapped.

    The parent's crash-path cleanup: returns True when a segment was
    actually removed, False when none existed.
    """
    try:
        with _no_resource_tracking():
            shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        _untrack(name)
        return False
    shm.close()
    try:
        with _no_resource_tracking():
            shm.unlink()
    except FileNotFoundError:
        pass
    _untrack(name)
    return True


class SegmentManager:
    """The segments of one launch, keyed by field name.

    Worker-side convenience over :class:`ShmSegment`: deterministic
    names from the launch id, collective close.  The manager never
    unlinks — that is the parent's job (`unlink_by_name` over the same
    deterministic names).
    """

    def __init__(self, launch_id: str) -> None:
        self.launch_id = launch_id
        self._segments: dict[str, ShmSegment] = {}

    # ------------------------------------------------------------------
    def allocate(self, field: str, shape: tuple, dtype,
                 name: str | None = None) -> ShmSegment:
        """``name`` overrides the derived segment name — the service
        arena leases pre-existing capacity-classed segments whose names
        are arena-scoped, not launch-scoped."""
        seg = ShmSegment.allocate(name or segment_name(self.launch_id, field),
                                  shape, dtype)
        self._segments[field] = seg
        return seg

    def attach(self, field: str, shape: tuple, dtype,
               name: str | None = None) -> ShmSegment:
        seg = ShmSegment.attach(name or segment_name(self.launch_id, field),
                                shape, dtype)
        self._segments[field] = seg
        return seg

    def get(self, field: str) -> ShmSegment | None:
        return self._segments.get(field)

    def fields(self) -> list[str]:
        return sorted(self._segments)

    def close_all(self) -> None:
        for seg in self._segments.values():
            seg.close()

    def __len__(self) -> int:
        return len(self._segments)


# ---------------------------------------------------------------------------
# the message data plane: pooled slabs + payload descriptors
# ---------------------------------------------------------------------------
#: payloads at or above this many bytes leave the queue-pickle path and
#: travel through shared memory (crossover of descriptor round-trip cost
#: vs pickle + two pipe copies; measured, not sacred).
SHM_THRESHOLD = 1 << 15

#: slots in one rank's slab ring.  Bounds both the number of in-flight
#: unreceived shm messages a rank can have outstanding and the parent's
#: deterministic cleanup set; an exhausted ring degrades to the inline
#: path rather than blocking forever.
POOL_SLOTS = 16

#: smallest slab payload capacity; slabs grow geometrically from here.
MIN_SLAB = 1 << 16

#: slab header: one int64 free/leased flag, padded to a cache line so
#: the payload starts aligned.
_SLAB_HEADER = 64
_FREE, _LEASED = 0, 1


def pool_slab_name(launch_id: str, rank: int, slot: int) -> str:
    """Deterministic name of one slab, parent-computable for cleanup."""
    return f"{SHM_PREFIX}-{launch_id}-pool-r{rank}-s{slot}"


def unlink_pool(launch_id: str, max_ranks: int) -> int:
    """Parent crash-path cleanup of every slab a launch can have grown.

    Names are deterministic (rank x slot grid), so this needs no worker
    reports; returns how many slabs actually existed.
    """
    removed = 0
    for r in range(max_ranks):
        for s in range(POOL_SLOTS):
            if unlink_by_name(pool_slab_name(launch_id, r, s)):
                removed += 1
    return removed


@dataclass(frozen=True)
class ShmRef:
    """Descriptor of an array living in a shared segment.

    This is what actually crosses the queue in place of the array: ~200
    pickled bytes regardless of payload size.  ``kind`` selects the
    receive discipline — ``"slab"`` payloads are copied out and the slot
    recycled (header word reset); ``"borrow"`` payloads are views of a
    long-lived registered segment, returned to the consumer read-only
    with no release protocol (the surrounding algorithm's
    synchronisation bounds the borrow).

    ``capacity`` is the slab's payload capacity, which only ever grows
    for a given name — so ``(name, capacity)`` identifies the segment
    *generation* and keeps receiver-side attach caches from resolving a
    stale mapping after a regrow.
    """

    name: str
    capacity: int
    offset: int
    shape: tuple
    dtype: str
    kind: str = "slab"

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize
                   * np.prod(self.shape, dtype=np.int64))


class _Slab:
    """One slab of a rank's ring: header flag + payload area."""

    def __init__(self, name: str, capacity: int) -> None:
        self.name = name
        self.capacity = capacity
        with _no_resource_tracking():
            self.shm = shared_memory.SharedMemory(
                create=True, size=_SLAB_HEADER + capacity, name=name)
        _track(name)
        self._flag = np.ndarray((1,), dtype=np.int64, buffer=self.shm.buf)
        self._flag[0] = _FREE

    @property
    def free(self) -> bool:
        return int(self._flag[0]) == _FREE

    def mark(self, state: int) -> None:
        self._flag[0] = state

    def view(self, shape: tuple, dtype) -> np.ndarray:
        nbytes = int(np.dtype(dtype).itemsize
                     * np.prod(shape, dtype=np.int64))
        return np.ndarray(shape, dtype=dtype,
                          buffer=self.shm.buf[_SLAB_HEADER:
                                              _SLAB_HEADER + nbytes])

    def close(self) -> None:
        self._flag = None
        try:
            self.shm.close()
        except BufferError:
            pass
        _untrack(self.name)

    def unlink(self) -> None:
        self.close()
        try:
            with _no_resource_tracking():
                self.shm.unlink()
        except FileNotFoundError:
            pass


class BufferPool:
    """One rank's ring of message slabs: allocate / lease / recycle.

    Only the owning rank's process calls :meth:`lease`; any peer that
    received a descriptor recycles the slot by resetting the header
    word through its own mapping (:class:`PoolClient`).  The owner only
    ever flips a header free -> leased and a receiver leased -> free, so
    the single-writer-per-transition discipline needs no lock; a stale
    read can only make the owner skip a just-freed slot for one scan.

    Slabs are created lazily and grow geometrically: a free slot whose
    capacity is too small is unlinked and re-created (same name,
    strictly larger capacity — receivers key attach caches by
    ``(name, capacity)`` so a regrown generation can never be confused
    with a stale mapping).  The pool survives elastic park / un-park
    cycles — it belongs to the process, not the membership — and the
    parent unlinks the whole deterministic name grid in its launch
    ``finally`` (:func:`unlink_pool`), so a crashed rank leaks nothing.
    """

    def __init__(self, launch_id: str, rank: int,
                 slots: int = POOL_SLOTS, min_slab: int = MIN_SLAB,
                 lease_timeout: float = 2.0) -> None:
        if not (1 <= slots <= POOL_SLOTS):
            # the parent's crash sweep (unlink_pool) only covers the
            # POOL_SLOTS name grid; a wider ring would leak segments.
            raise ValueError(
                f"slots must be in 1..{POOL_SLOTS}, got {slots}")
        self.launch_id = launch_id
        self.rank = rank
        self.slots = slots
        self.min_slab = min_slab
        self.lease_timeout = lease_timeout
        self._slabs: list[_Slab | None] = [None] * self.slots
        #: ring statistics (leases served / ring-exhausted fallbacks).
        self.leases = 0
        self.fallbacks = 0

    # ------------------------------------------------------------------
    def _capacity_for(self, nbytes: int) -> int:
        cap = self.min_slab
        while cap < nbytes:
            cap <<= 1
        return cap

    def _provision(self, slot: int, nbytes: int) -> _Slab:
        old = self._slabs[slot]
        cap = self._capacity_for(nbytes)
        if old is not None:
            cap = max(cap, old.capacity << 1)  # strictly grow: new gen
            old.unlink()
        slab = _Slab(pool_slab_name(self.launch_id, self.rank, slot), cap)
        self._slabs[slot] = slab
        return slab

    def lease(self, nbytes: int, wait: bool = True) -> "ShmLease | None":
        """Claim a slab able to hold ``nbytes``; None when the ring is
        exhausted (caller falls back to inline).

        ``wait`` bounds exhaustion with ``lease_timeout`` — worthwhile
        only when other slots are held by receivers of *earlier*
        messages, who will recycle them.  A caller that has leased the
        whole ring for one still-unshipped payload passes ``wait=False``
        (nothing can free a slot until the payload ships, so waiting is
        a deterministic stall).
        """
        deadline = time.monotonic() + self.lease_timeout
        while True:
            grow_slot = empty_slot = None
            for i, slab in enumerate(self._slabs):
                if slab is None:
                    if empty_slot is None:
                        empty_slot = i
                    continue
                if slab.free:
                    if slab.capacity >= nbytes:
                        slab.mark(_LEASED)
                        self._count_lease()
                        return ShmLease(self, i, slab)
                    if grow_slot is None:
                        grow_slot = i
            if empty_slot is not None or grow_slot is not None:
                slot = empty_slot if empty_slot is not None else grow_slot
                slab = self._provision(slot, nbytes)
                slab.mark(_LEASED)
                self._count_lease()
                return ShmLease(self, slot, slab)
            if not wait or time.monotonic() >= deadline:
                self.fallbacks += 1
                telemetry_writer().inc(_ts.POOL_FALLBACKS)
                return None
            time.sleep(2e-4)  # every slot in flight: wait for a recycle

    def _count_lease(self) -> None:
        self.leases += 1
        tele = telemetry_writer()
        if tele.active:
            tele.inc(_ts.POOL_LEASES)
            tele.set(_ts.POOL_IN_FLIGHT, float(self.in_flight()))

    # ------------------------------------------------------------------
    def in_flight(self) -> int:
        """Slots currently leased (0 on a quiesced, leak-free pool)."""
        return sum(1 for s in self._slabs
                   if s is not None and not s.free)

    def close(self) -> None:
        """Drop the owner's mappings (segments stay for the parent)."""
        for slab in self._slabs:
            if slab is not None:
                slab.close()
        self._slabs = [None] * self.slots

    def unlink_all(self) -> None:
        """Owner-side teardown for pools outside a backend launch
        (benchmarks, tests) where no parent sweeps the name grid.
        Name-based, so it works after :meth:`close` too."""
        for slab in self._slabs:
            if slab is not None:
                slab.unlink()
        self._slabs = [None] * self.slots
        for s in range(self.slots):
            unlink_by_name(pool_slab_name(self.launch_id, self.rank, s))


class ShmLease:
    """A claimed slab slot; write the payload, then ship the ref."""

    def __init__(self, pool: BufferPool, slot: int, slab: _Slab) -> None:
        self._slab = slab
        self.slot = slot

    def fill(self, arr: np.ndarray) -> ShmRef:
        """Copy ``arr`` into the slab (the one send-side copy) and
        return the descriptor to put on the queue."""
        self._slab.view(arr.shape, arr.dtype)[...] = arr
        return ShmRef(name=self._slab.name, capacity=self._slab.capacity,
                      offset=_SLAB_HEADER, shape=tuple(arr.shape),
                      dtype=np.dtype(arr.dtype).str)

    def cancel(self) -> None:
        """Release an unused lease (send aborted before the put)."""
        self._slab.mark(_FREE)


class PoolClient:
    """Receiver-side attach cache over peers' slabs and borrowed segments.

    Maps ``(name, capacity)`` — the segment generation — to a live
    mapping, so repeated traffic through the same ring re-uses the mmap
    instead of paying an attach per message.
    """

    def __init__(self) -> None:
        self._cache: dict[tuple[str, int], shared_memory.SharedMemory] = {}

    # ------------------------------------------------------------------
    def _mapping(self, ref: ShmRef) -> shared_memory.SharedMemory:
        key = (ref.name, ref.capacity)
        shm = self._cache.get(key)
        if shm is None:
            with _no_resource_tracking():
                shm = shared_memory.SharedMemory(name=ref.name)
            self._cache[key] = shm
            _track(ref.name)
        return shm

    def view(self, ref: ShmRef) -> np.ndarray:
        """Read-only view of the referenced region (no copy)."""
        shm = self._mapping(ref)
        v = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype),
                       buffer=shm.buf[ref.offset:ref.offset + ref.nbytes])
        v.flags.writeable = False
        return v

    def release(self, ref: ShmRef) -> None:
        """Recycle a slab slot (reset its header word); borrows no-op."""
        if ref.kind != "slab":
            return
        shm = self._mapping(ref)
        np.ndarray((1,), dtype=np.int64, buffer=shm.buf)[0] = _FREE

    def fetch(self, ref: ShmRef) -> np.ndarray:
        """Materialise the payload: copy out, recycle, return the copy."""
        arr = self.view(ref).copy()
        arr.flags.writeable = True
        self.release(ref)
        return arr

    def close_all(self) -> None:
        for (name, _), shm in self._cache.items():
            try:
                shm.close()
            except BufferError:
                pass
            _untrack(name)
        self._cache.clear()


# ---------------------------------------------------------------------------
# the symmetric heap: one-sided windows over shared segments
# ---------------------------------------------------------------------------
#: default payload capacity of one rank's symmetric heap segment.
HEAP_BYTES = 1 << 22

#: heap allocations are aligned to a cache line, like slab payloads.
_HEAP_ALIGN = 64


def heap_name(launch_id: str, rank: int) -> str:
    """Deterministic name of one rank's heap, parent-computable."""
    return f"{SHM_PREFIX}-{launch_id}-heap-r{rank}"


def unlink_heaps(launch_id: str, max_ranks: int) -> int:
    """Parent crash-path cleanup of every heap a launch can have created
    (deterministic name grid, no worker reports needed)."""
    removed = 0
    for r in range(max_ranks):
        if unlink_by_name(heap_name(launch_id, r)):
            removed += 1
    return removed


class SymmetricHeap:
    """One rank's half of an OpenSHMEM-style symmetric heap.

    Every rank creates its own segment (``ppshm-<launch>-heap-r<rank>``)
    and runs the same deterministic bump allocator over it: because the
    one-sided API is SPMD (:meth:`~repro.dsm.comm.Communicator.win_alloc`
    is collective with identical arguments), every rank's ``name`` lands
    at the *same offset* in every rank's segment — which is the whole
    trick: a peer's window is reachable by attaching the peer's segment
    and reading at one's own locally-computed offset, no metadata
    exchange.  Co-located communicators use :meth:`peer_view` for direct
    one-sided loads/stores; remote windows are served by the owner's
    progress thread instead (the segment is not reachable off-node).

    Like the slab pool, the heap belongs to the process, not the
    membership, and the parent unlinks the deterministic name grid in
    its launch ``finally`` (:func:`unlink_heaps`).
    """

    def __init__(self, launch_id: str, rank: int,
                 nbytes: int = HEAP_BYTES) -> None:
        self.launch_id = launch_id
        self.rank = rank
        self.nbytes = nbytes
        name = heap_name(launch_id, rank)
        with _no_resource_tracking():
            self._shm = shared_memory.SharedMemory(create=True, size=nbytes,
                                                   name=name)
        _track(name)
        self.name = name
        self._cursor = 0
        #: window name -> (offset, shape, dtype str); identical on every
        #: rank by the SPMD allocation discipline.
        self._alloc: dict[str, tuple[int, tuple, str]] = {}
        self._peers: dict[int, shared_memory.SharedMemory] = {}

    # ------------------------------------------------------------------
    def has(self, name: str) -> bool:
        return name in self._alloc

    def alloc(self, name: str, shape: tuple, dtype) -> np.ndarray:
        """Bump-allocate window ``name`` (idempotent for an identical
        re-allocation — a protocol re-entering a phase keeps its
        offset; contents are whatever the last epoch left there).

        Fresh segments are zero pages, so a first allocation is
        zero-initialised without touching the memory.
        """
        spec = (tuple(shape), np.dtype(dtype).str)
        if name in self._alloc:
            off, got_shape, got_dtype = self._alloc[name]
            if (got_shape, got_dtype) != spec:
                raise ValueError(
                    f"heap window {name!r} re-allocated with a different "
                    f"spec: {spec} vs {(got_shape, got_dtype)}")
            return self.window(name)
        nb = int(np.dtype(dtype).itemsize * np.prod(shape, dtype=np.int64))
        off = self._cursor
        if off + nb > self.nbytes:
            raise MemoryError(
                f"symmetric heap exhausted: {name!r} needs {nb} bytes at "
                f"offset {off} of {self.nbytes}")
        self._cursor = (off + nb + _HEAP_ALIGN - 1) & ~(_HEAP_ALIGN - 1)
        self._alloc[name] = (off, spec[0], spec[1])
        return self.window(name)

    def _view(self, buf, name: str) -> np.ndarray:
        off, shape, dtype = self._alloc[name]
        nb = int(np.dtype(dtype).itemsize * np.prod(shape, dtype=np.int64))
        return np.ndarray(shape, dtype=np.dtype(dtype),
                          buffer=buf[off:off + nb])

    def window(self, name: str) -> np.ndarray:
        """This rank's instance of window ``name``."""
        return self._view(self._shm.buf, name)

    def peer_view(self, peer: int, name: str) -> np.ndarray:
        """Window ``name`` in ``peer``'s segment (same offset — the
        symmetry invariant).  Co-located peers only: the attach maps
        the peer's shared pages into this address space."""
        if peer == self.rank:
            return self.window(name)
        shm = self._peers.get(peer)
        if shm is None:
            pname = heap_name(self.launch_id, peer)
            with _no_resource_tracking():
                shm = shared_memory.SharedMemory(name=pname)
            self._peers[peer] = shm
            _track(pname)
        return self._view(shm.buf, name)

    def close(self) -> None:
        """Drop mappings (the parent unlinks the segments by name)."""
        try:
            self._shm.close()
        except BufferError:
            pass
        _untrack(self.name)
        for peer, shm in self._peers.items():
            try:
                shm.close()
            except BufferError:
                pass
            _untrack(heap_name(self.launch_id, peer))
        self._peers.clear()

    def unlink_all(self) -> None:
        """Owner-side teardown for heaps outside a backend launch
        (tests, benchmarks) where no parent sweeps the name grid."""
        self.close()
        unlink_by_name(self.name)


class DataPlane:
    """Payload packing policy over one rank's pool + attach client.

    ``outbound`` turns a payload into what actually crosses the queue
    (inline copy, slab ref, or borrowed ref); ``inbound`` resolves it
    back on the receiving side.  Containers (tuples / lists / dicts)
    are walked recursively, so collective payloads like
    ``(meta, part)`` keep their shape while their arrays ride the
    slabs.  The vtime cost model never sees any of this — senders
    charge ``nbytes_of`` of the *logical* payload before packing, so
    virtual time is transport-independent by construction.
    """

    def __init__(self, pool: BufferPool, threshold: int | None = None,
                 heap: SymmetricHeap | None = None) -> None:
        self.pool = pool
        self.client = PoolClient()
        self.threshold = SHM_THRESHOLD if threshold is None else threshold
        #: the rank's symmetric heap, when the backend provisions one —
        #: communicators route heap-backed one-sided windows through it.
        self.heap = heap
        #: overrides the name component of a lazily provisioned heap.
        #: The service fleet keys one pool per *worker* (arena-scoped,
        #: reused across jobs) but heaps are *rank*-addressed, so two
        #: concurrent jobs sharing the arena launch id would collide on
        #: ``heap_name`` — each job activation pins its own id here.
        self.heap_launch_id: str | None = None
        #: id(array) -> (segment name, capacity, base view) of arrays a
        #: caller declared borrowable (direct path; see register_borrow).
        self._borrow: dict[int, tuple[str, int, np.ndarray]] = {}
        #: slabs leased for the payload currently being packed (one
        #: outbound/pack call): once it reaches the ring size, further
        #: leases stop waiting — every slot is held by *this* unshipped
        #: payload, so no receiver can recycle one.
        self._pack_leases = 0
        self.slab_msgs = 0
        self.borrow_msgs = 0
        self.inline_msgs = 0

    # ------------------------------------------------------------------
    def register_borrow(self, arr: np.ndarray, name: str,
                        nbytes: int | None = None) -> None:
        """Declare ``arr`` (a view over shared segment ``name``) safe to
        send by reference.

        The caller asserts the protocol invariant: between a send of any
        view into ``arr`` and the next write to the sent region there is
        a synchronisation point that happens-after every matching
        receive (a barrier, a blocking ack, a paired exchange).  Only
        opt-in movement code uses this — the generic send path never
        borrows.
        """
        total = int(arr.nbytes) if nbytes is None else nbytes
        self._borrow[id(arr)] = (name, total, arr)

    def _borrow_ref(self, arr: np.ndarray) -> ShmRef | None:
        base = arr.base if arr.base is not None else arr
        entry = self._borrow.get(id(base)) or self._borrow.get(id(arr))
        if entry is None or not arr.flags.c_contiguous:
            return None
        name, capacity, base_view = entry
        off = (arr.__array_interface__["data"][0]
               - base_view.__array_interface__["data"][0])
        if off < 0 or off + arr.nbytes > base_view.nbytes:
            return None
        return ShmRef(name=name, capacity=capacity, offset=int(off),
                      shape=tuple(arr.shape),
                      dtype=np.dtype(arr.dtype).str, kind="borrow")

    # ------------------------------------------------------------------
    def pack_lease(self, nbytes: int) -> "ShmLease | None":
        """Lease one slab for the payload currently being packed.

        Waiting on an exhausted ring is only useful while slots may be
        recycled by receivers of earlier messages; once this payload
        alone holds the whole ring, the wait could never be satisfied
        (nothing ships until packing finishes), so the lease degrades
        to the inline path immediately instead of stalling out the
        timeout per remaining array.
        """
        lease = self.pool.lease(
            nbytes, wait=self._pack_leases < self.pool.slots)
        if lease is not None:
            self._pack_leases += 1
        return lease

    def start_pack(self) -> None:
        """Reset the lease budget for one new multi-part payload (for
        callers that pack values one by one, like the checkpoint
        funnel; :meth:`outbound` resets it itself)."""
        self._pack_leases = 0

    def pack_exact(self, value):
        """Slab-pack one value iff the receiver reproduces it
        *byte-exactly*; otherwise return it unchanged (inline).

        The slab round-trip always yields a C-order copy, so only
        C-contiguous non-object arrays qualify — a Fortran-order field
        would come back value-equal but encode differently
        (``np.save`` records ``fortran_order``), which the checkpoint
        funnel's byte-parity contract cannot tolerate.  Shares
        :meth:`outbound`'s lease budget and fallback policy.
        """
        if (isinstance(value, np.ndarray) and value.flags.c_contiguous
                and not value.dtype.hasobject
                and value.nbytes >= self.threshold):
            lease = self.pack_lease(value.nbytes)
            if lease is not None:
                self.slab_msgs += 1
                self._count_tier(_ts.SEND_BYTES_SLAB, _ts.SEND_MSGS_SLAB,
                                 value.nbytes)
                return lease.fill(value)
        return value

    @staticmethod
    def _count_tier(bytes_slot: int, msgs_slot: int, nbytes: int) -> None:
        tele = telemetry_writer()
        if tele.active:
            tele.inc(bytes_slot, float(nbytes))
            tele.inc(msgs_slot)

    def _pack_array(self, arr: np.ndarray, owned: bool):
        if arr.dtype.hasobject or arr.nbytes < self.threshold:
            self.inline_msgs += 1
            self._count_tier(_ts.SEND_BYTES_INLINE, _ts.SEND_MSGS_INLINE,
                             arr.nbytes)
            return arr if owned else arr.copy()
        ref = self._borrow_ref(arr)
        if ref is not None:
            self.borrow_msgs += 1
            self._count_tier(_ts.SEND_BYTES_BORROW, _ts.SEND_MSGS_BORROW,
                             arr.nbytes)
            return ref
        lease = self.pack_lease(arr.nbytes)
        if lease is None:  # ring exhausted: degrade, don't block forever
            self.inline_msgs += 1
            self._count_tier(_ts.SEND_BYTES_INLINE, _ts.SEND_MSGS_INLINE,
                             arr.nbytes)
            return arr if owned else arr.copy()
        self.slab_msgs += 1
        self._count_tier(_ts.SEND_BYTES_SLAB, _ts.SEND_MSGS_SLAB,
                         arr.nbytes)
        return lease.fill(arr)

    def _pack(self, obj, owned: bool):
        if isinstance(obj, np.ndarray):
            return self._pack_array(obj, owned)
        if isinstance(obj, (list, tuple)):
            return type(obj)(self._pack(x, owned) for x in obj)
        if isinstance(obj, dict):
            return {k: self._pack(v, owned) for k, v in obj.items()}
        return obj  # scalars / immutables: exactly the inline semantics

    def outbound(self, obj, owned: bool = False):
        """What to put on the queue in place of ``obj``."""
        self._pack_leases = 0  # a fresh payload: its lease budget resets
        return self._pack(obj, owned)

    def inbound(self, obj):
        """Resolve a received payload back into arrays.

        Slab refs are copied out and recycled immediately; borrowed
        refs come back as read-only views, so the consumer's landing
        assignment *is* the single segment-to-segment region copy.
        """
        if isinstance(obj, ShmRef):
            if obj.kind == "borrow":
                return self.client.view(obj)
            return self.client.fetch(obj)
        if isinstance(obj, (list, tuple)):
            return type(obj)(self.inbound(x) for x in obj)
        if isinstance(obj, dict):
            return {k: self.inbound(v) for k, v in obj.items()}
        return obj

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        return {"slab": self.slab_msgs, "borrow": self.borrow_msgs,
                "inline": self.inline_msgs,
                "fallbacks": self.pool.fallbacks}

    def close(self) -> None:
        self.client.close_all()
        self.pool.close()
        if self.heap is not None:
            self.heap.close()
