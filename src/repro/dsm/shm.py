"""Shared-memory segments: zero-copy partitioned fields across processes.

The multiprocessing execution backend places each ``Partitioned`` field
in one ``multiprocessing.shared_memory`` segment: the creating rank
copies its constructor-initialised array in once, every rank maps a
full-size numpy view onto the same physical pages, and from then on
scatter / gather / halo data movement degenerates to synchronisation
(see ``Capabilities.shared_fields``).  This module owns the segment
lifecycle — allocate / attach / unlink — and the numpy views, with
explicit name tracking so tests can assert that no ``/dev/shm`` entry
outlives a launch.

Ownership discipline (one unlinker, no resource-tracker noise):

* worker processes *create* or *attach* segments but never unlink them;
  both sides unregister from their process's ``resource_tracker``
  immediately, so a worker exiting (cleanly or not) cannot trigger the
  tracker's leak warnings or a premature unlink;
* the parent (the execution backend) unlinks every segment of a launch
  in its ``finally`` — by deterministic name, so it works even when a
  worker died before reporting what it created.

Segment names are ``ppshm-<launch id>-<field>``: deterministic given
the launch id, which is what lets the parent compute the cleanup set
without hearing back from any worker.
"""

from __future__ import annotations

import itertools
import os
import threading
from contextlib import contextmanager
from multiprocessing import resource_tracker, shared_memory

import numpy as np

#: distinctive prefix for every segment this package creates; the
#: lifecycle tests scan ``/dev/shm`` for it.
SHM_PREFIX = "ppshm"

# ---------------------------------------------------------------------------
# process-local name tracking (the test-visible lifecycle ledger)
# ---------------------------------------------------------------------------
_live_lock = threading.Lock()
_live: set[str] = set()
_launch_seq = itertools.count()
#: serialises the resource-tracker monkeypatch: concurrent patchers
#: would capture each other's no-op lambdas as "originals" and leave
#: tracking disabled for the whole process.
_tracker_patch_lock = threading.Lock()


def live_segments() -> list[str]:
    """Names of segments this process has created/attached and not yet
    released — empty whenever no launch is in flight."""
    with _live_lock:
        return sorted(_live)


def _track(name: str) -> None:
    with _live_lock:
        _live.add(name)


def _untrack(name: str) -> None:
    with _live_lock:
        _live.discard(name)


def new_launch_id() -> str:
    """A name component unique to one phase launch of this process."""
    return f"{os.getpid():x}-{next(_launch_seq):x}"


def segment_name(launch_id: str, field: str) -> str:
    return f"{SHM_PREFIX}-{launch_id}-{field}"


@contextmanager
def _no_resource_tracking():
    """Keep this mapping out of the resource tracker's unlink chain.

    ``SharedMemory`` registers every mapping with the process tree's
    shared tracker, which (a) warns about "leaks" the parent cleans up
    on purpose and (b) breaks on the interleaved register/unregister
    traffic of several ranks mapping one segment.  Exactly one party
    unlinks — the parent, by name — so worker mappings are simply never
    registered.  (Python 3.13 exposes this as ``track=False``; this is
    the portable equivalent for 3.10–3.12.)
    """
    with _tracker_patch_lock:
        originals = resource_tracker.register, resource_tracker.unregister
        resource_tracker.register = lambda *a, **k: None
        resource_tracker.unregister = lambda *a, **k: None
        try:
            yield
        finally:
            resource_tracker.register, resource_tracker.unregister = \
                originals


class ShmSegment:
    """One shared segment holding one numpy array."""

    def __init__(self, name: str, shape: tuple, dtype,
                 shm: shared_memory.SharedMemory) -> None:
        self.name = name
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        self._shm = shm
        self._view: np.ndarray | None = None

    # ------------------------------------------------------------------
    @classmethod
    def allocate(cls, name: str, shape: tuple, dtype) -> "ShmSegment":
        """Create the segment (fails if the name already exists)."""
        nbytes = max(1, int(np.dtype(dtype).itemsize
                            * np.prod(shape, dtype=np.int64)))
        with _no_resource_tracking():
            shm = shared_memory.SharedMemory(create=True, size=nbytes,
                                             name=name)
        _track(name)
        return cls(name, shape, dtype, shm)

    @classmethod
    def attach(cls, name: str, shape: tuple, dtype) -> "ShmSegment":
        """Map an existing segment created by a peer."""
        with _no_resource_tracking():
            shm = shared_memory.SharedMemory(name=name)
        _track(name)
        return cls(name, shape, dtype, shm)

    # ------------------------------------------------------------------
    def ndarray(self) -> np.ndarray:
        """The full-size array view onto the shared pages (cached: every
        call returns the same object, so rebinding a field is stable)."""
        if self._view is None:
            self._view = np.ndarray(self.shape, dtype=self.dtype,
                                    buffer=self._shm.buf)
        return self._view

    def close(self) -> None:
        """Drop the mapping (not the segment); idempotent, best-effort.

        A still-exported view makes the underlying ``memoryview``
        un-releasable; the mapping then dies with the process, which is
        fine — the *segment* is reclaimed by the parent's unlink either
        way (POSIX allows unlink while mapped).
        """
        self._view = None
        try:
            self._shm.close()
        except BufferError:
            pass  # a live view still pins the buffer; process exit unmaps
        _untrack(self.name)

    def unlink(self) -> None:
        """Remove the segment from the system; idempotent."""
        self.close()
        try:
            with _no_resource_tracking():
                self._shm.unlink()
        except FileNotFoundError:
            pass


def unlink_by_name(name: str) -> bool:
    """Best-effort unlink of a segment this process never mapped.

    The parent's crash-path cleanup: returns True when a segment was
    actually removed, False when none existed.
    """
    try:
        with _no_resource_tracking():
            shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        _untrack(name)
        return False
    shm.close()
    try:
        with _no_resource_tracking():
            shm.unlink()
    except FileNotFoundError:
        pass
    _untrack(name)
    return True


class SegmentManager:
    """The segments of one launch, keyed by field name.

    Worker-side convenience over :class:`ShmSegment`: deterministic
    names from the launch id, collective close.  The manager never
    unlinks — that is the parent's job (`unlink_by_name` over the same
    deterministic names).
    """

    def __init__(self, launch_id: str) -> None:
        self.launch_id = launch_id
        self._segments: dict[str, ShmSegment] = {}

    # ------------------------------------------------------------------
    def allocate(self, field: str, shape: tuple, dtype) -> ShmSegment:
        seg = ShmSegment.allocate(segment_name(self.launch_id, field),
                                  shape, dtype)
        self._segments[field] = seg
        return seg

    def attach(self, field: str, shape: tuple, dtype) -> ShmSegment:
        seg = ShmSegment.attach(segment_name(self.launch_id, field),
                                shape, dtype)
        self._segments[field] = seg
        return seg

    def get(self, field: str) -> ShmSegment | None:
        return self._segments.get(field)

    def fields(self) -> list[str]:
        return sorted(self._segments)

    def close_all(self) -> None:
        for seg in self._segments.values():
            seg.close()

    def __len__(self) -> int:
        return len(self._segments)
