"""The transport seam: how a communicator's envelopes reach their rank.

The algorithm layer (:class:`~repro.dsm.comm.Communicator` and its
process subclass) speaks to mailboxes only: it ``put``s envelopes into
``mailboxes[dest]`` and selectively ``get``s from its own.  A
:class:`Transport` is the factory for that endpoint list — the one
object that knows how bytes physically move:

* :class:`QueueTransport` — one ``multiprocessing.Queue`` per rank,
  every endpoint a :class:`~repro.dsm.procmail.ProcessMailbox` (the
  PR-5 shm slab/borrow/inline tiers sit *above* this, in the data
  plane's payload packing — the transport carries descriptors);
* :class:`~repro.dsm.socketmail.SocketTransport` — remote peers behind
  length-prefixed TCP frames, co-located peers (same physical node)
  still on queues + slabs, with a per-rank progress thread serving
  one-sided traffic.

Keeping the seam this narrow is what lets the whole collective /
one-sided / movement stack run unchanged over threads, queues, shared
memory and sockets: a new fabric implements ``endpoints`` and nothing
above it changes.

The trace plane's cross-rank flow edges ride this seam for free: the
``(src, dst, tag, epoch, seq)`` message id is stamped into the
:class:`~repro.dsm.mailbox.Message` envelope at the communicator's send
chokepoints and read back at the mailbox ``get``s, so every fabric —
queues, sockets, in-process lists — carries causal edges without any
transport-specific code.  A transport that re-frames envelopes (the
socket progress thread's ``PUT_APPLIED`` rewrite) must preserve ``seq``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod


class Transport(ABC):
    """Endpoint factory for one rank of a communicator fabric.

    ``endpoints(rank)`` returns the mailbox list the communicator
    indexes by destination: entry ``rank`` is the owning rank's inbox
    (selective receive), every other entry an egress stub whose ``put``
    delivers to that peer.  The list covers the whole pre-sized fabric,
    which may exceed the active membership (elastic launches).
    """

    @abstractmethod
    def endpoints(self, rank: int) -> list:
        """Mailbox-likes for ``rank``, indexed by destination rank."""

    def frame_counts(self) -> dict[int, int]:
        """Wire frames sent per destination rank (empty when the
        transport has no framed links — queues move envelopes, not
        frames).  The topology tests assert on this: co-located traffic
        must never show up here."""
        return {}

    def close(self) -> None:
        """Release connections/threads the transport owns (idempotent)."""


class QueueTransport(Transport):
    """The single-host process fabric: one mp.Queue channel per rank."""

    def __init__(self, channels) -> None:
        self.channels = channels

    def endpoints(self, rank: int) -> list:
        from repro.dsm.procmail import ProcessMailbox

        return [ProcessMailbox(r, ch) for r, ch in enumerate(self.channels)]
