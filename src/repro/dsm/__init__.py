"""Distributed-memory substrate: an in-process MPI-like simulated cluster.

The paper's distributed execution model (Section III.C) is SPMD over
*object aggregates*.  This package provides the substrate underneath:

* :class:`Mailbox` / :class:`Communicator` — point-to-point messages with
  (source, tag) matching and the standard collectives (barrier, bcast,
  scatter(v), gather(v), reduce, allreduce, alltoall), with mpi4py-style
  lower-case generic-object semantics.
* partitioners — BLOCK / CYCLIC / HYBRID layouts over numpy arrays, with
  optional halo (ghost) rows for stencil codes, and exact round-trip
  ``gather(scatter(x)) == x``.
* :class:`ObjectAggregate` — the paper's ``Replicate`` abstraction: one
  instance per rank; calls can be broadcast, delegated or reduced.
* :class:`SimCluster` — launches ``nranks`` rank threads running the same
  entry point, each with a virtual clock placed on the machine model's
  node/core grid (over-decomposition charges core contention).

Every message also advances the participating ranks' virtual clocks using
the machine's network model, so communication-bound effects (gather at the
root, inter-node hops, barrier scaling) appear in the reproduced figures.
"""

from repro.dsm.comm import Communicator, RankContext, current_rank
from repro.dsm.mailbox import Mailbox, Message
from repro.dsm.partition import (
    BlockLayout,
    CyclicLayout,
    HybridLayout,
    Layout,
    gather_blocks,
    local_slice,
    scatter_blocks,
)
from repro.dsm.aggregate import AggregateMember, ObjectAggregate
from repro.dsm.simcluster import RankFailure, SimCluster

__all__ = [
    "AggregateMember",
    "BlockLayout",
    "Communicator",
    "CyclicLayout",
    "HybridLayout",
    "Layout",
    "Mailbox",
    "Message",
    "ObjectAggregate",
    "RankContext",
    "RankFailure",
    "SimCluster",
    "current_rank",
    "gather_blocks",
    "local_slice",
    "scatter_blocks",
]
