"""Process-safe mailboxes: the multiprocessing transport for collectives.

The in-process :class:`~repro.dsm.mailbox.Mailbox` gives every simulated
rank selective receive over ``(source, tag)``; this module provides the
same contract across *process* boundaries so the whole
:class:`~repro.dsm.comm.Communicator` algorithm layer (point-to-point,
scatter/gather, halo exchange, reductions) runs unchanged over real
processes — the collectives are bridged, not reimplemented.

Transport: one ``multiprocessing.Queue`` per rank.  Any process may put
into any rank's queue; only the owning rank gets from its own.  Because
queue order is arrival order, not ``(source, tag)`` order, the owner
keeps a local pending buffer for envelopes that did not match an
outstanding selective receive.

:class:`ProcCommunicator` subclasses :class:`Communicator`, swapping the
transport and replacing the shared-clock barrier with a message-based
one (gather arrival times at rank 0, broadcast the epoch) — in separate
address spaces there is no clock list to ``sync_max`` over.
"""

from __future__ import annotations

import queue as _queue
import time
from typing import TYPE_CHECKING, Any

from repro.dsm.comm import TAG_COLL, Communicator
from repro.dsm.mailbox import ANY_SOURCE, ANY_TAG, MailboxClosed, Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.dsm.shm import DataPlane
    from repro.vtime.machine import MachineModel

#: collective-plumbing tags private to the process transport.
_TAG_BARRIER_IN = TAG_COLL + 20
_TAG_BARRIER_OUT = TAG_COLL + 21


class ProcessMailbox:
    """Selective receive for one rank over a ``multiprocessing.Queue``.

    ``put`` may be called from any process; ``get``/``poll`` only from
    the owning rank's process (the pending buffer is process-local).
    """

    def __init__(self, rank: int, channel) -> None:
        self.rank = rank
        self._channel = channel
        self._pending: list[Message] = []
        self._closed = False

    # ------------------------------------------------------------------
    def put(self, msg: Message) -> None:
        if self._closed:
            raise MailboxClosed(f"mailbox {self.rank} is closed")
        self._channel.put(msg)

    @staticmethod
    def _matches(m: Message, source: int, tag: int) -> bool:
        return ((source == ANY_SOURCE or m.src == source)
                and (tag == ANY_TAG or m.tag == tag))

    def get(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
            timeout: float | None = 60.0) -> Message:
        """Block until a matching envelope arrives and remove it.

        Per-(source, tag) FIFO order is preserved: non-matching arrivals
        are buffered in order and re-scanned first on the next call.

        ``timeout`` bounds the *whole* call with one monotonic deadline:
        every channel wait gets only the remaining budget, so a rank
        waiting on a busy mailbox (non-matching envelopes trickling in)
        cannot block past its deadline — each arrival used to restart
        the full timeout.
        """
        for i, m in enumerate(self._pending):
            if self._matches(m, source, tag):
                return self._pending.pop(i)
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        while True:
            if self._closed:
                raise MailboxClosed(f"mailbox {self.rank} is closed")
            if deadline is None:
                remaining = None
            else:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    # expiry still owes one non-blocking poll: a match
                    # already delivered to the channel (just not yet
                    # drained into the pending buffer) must be returned,
                    # exactly as timeout=0 on a bare queue would.
                    while True:
                        try:
                            m = self._channel.get_nowait()
                        except _queue.Empty:
                            break
                        if self._matches(m, source, tag):
                            return m
                        self._pending.append(m)
                    raise TimeoutError(
                        f"rank {self.rank}: no message from src={source} "
                        f"tag={tag} after {timeout}s (pending: "
                        f"{[(p.src, p.tag) for p in self._pending]})")
            try:
                m = self._channel.get(timeout=remaining)
            except _queue.Empty:
                continue  # deadline check above decides expiry
            if self._matches(m, source, tag):
                return m
            self._pending.append(m)

    def poll(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Non-blocking probe for a matching envelope."""
        if any(self._matches(m, source, tag) for m in self._pending):
            return True
        while True:
            try:
                m = self._channel.get_nowait()
            except _queue.Empty:
                return False
            self._pending.append(m)
            if self._matches(m, source, tag):
                return True

    def close(self) -> None:
        """Refuse further traffic; drop whatever the feeder still holds.

        Called on the unwind path only — by then the phase outcome is
        decided and in-flight envelopes are dead letters.  Cancelling the
        feeder join keeps a worker's exit from blocking on a queue the
        parent will never drain again.
        """
        self._closed = True
        try:
            self._channel.cancel_join_thread()
        except (AttributeError, OSError):
            pass

    def __len__(self) -> int:
        return len(self._pending)


class ProcCommunicator(Communicator):
    """The MPI-like collective layer over per-rank process mailboxes.

    Inherits every algorithm (send/recv costs, flat and tree
    collectives, the in-place partition movements consume it unchanged);
    overrides construction (no shared clock list), the barrier
    (message-based epoch agreement instead of ``VClock.sync_max`` across
    threads), and — when a :class:`~repro.dsm.shm.DataPlane` is wired —
    the transport hooks: large array payloads cross as shared-memory
    slab descriptors instead of pickles through the queue pipes (and,
    for movement code that opted a source segment in via
    ``DataPlane.register_borrow``, as borrowed regions with zero
    intermediate copies).  Virtual time is charged on the logical
    payload before packing, so the cost model cannot tell the
    transports apart (cross-backend vtime parity is preserved by
    construction).
    """

    def __init__(self, rank: int, nranks: int, machine: "MachineModel",
                 channels, plane: "DataPlane | None" = None) -> None:
        if len(channels) < nranks:
            raise ValueError("one channel per rank required")
        # deliberately NOT calling super().__init__: there is no clock
        # list or thread barrier to build in a per-process communicator.
        # The channel fabric may be pre-sized beyond the active rank
        # count (elastic launches build it for max_ranks): endpoints
        # exist for every potential member, while the collectives only
        # ever span ``self.nranks`` — an elastic reshape is then just an
        # update of ``nranks`` at a quiesced point, no new transport.
        self.nranks = nranks
        self.machine = machine
        self.coll_algo = getattr(machine, "coll_algo", "flat")
        self.plane = plane
        self.mailboxes = [ProcessMailbox(r, ch)
                          for r, ch in enumerate(channels)]
        self._rank = rank

    # ------------------------------------------------------------------
    def _egress(self, obj: Any, owned: bool) -> Any:
        if self.plane is None:
            # keep the defensive copy: mp.Queue's feeder thread pickles
            # *after* put returns, so an un-owned payload could still be
            # mutated by the sender while in flight.
            return super()._egress(obj, owned)
        return self.plane.outbound(obj, owned)

    def _ingress(self, msg: Message) -> Any:
        if self.plane is None:
            return msg.payload
        return self.plane.inbound(msg.payload)

    def reshape(self, new_n: int) -> None:
        """Adopt a new active membership (elastic protocol, quiesced).

        Valid only at a point where every in-flight collective has
        completed on every rank and ``new_n`` does not exceed the
        pre-sized channel fabric.
        """
        if new_n < 1 or new_n > len(self.mailboxes):
            raise ValueError(
                f"membership {new_n} outside the pre-sized fabric "
                f"(1..{len(self.mailboxes)})")
        self.nranks = new_n

    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """Message-based barrier carrying the virtual-time epoch.

        Rank 0 gathers every rank's arrival time, lifts the epoch to the
        latest plus the machine's barrier cost, and broadcasts it; all
        clocks advance to the common epoch, exactly as the shared-memory
        implementation's ``sync_max`` does.
        """
        ctx = self._ctx()
        if self.nranks == 1:
            return
        clk = ctx.clock
        if ctx.rank == 0:
            arrivals = [clk.now]
            for src in range(1, self.nranks):
                msg = self.mailboxes[0].get(source=src, tag=_TAG_BARRIER_IN)
                arrivals.append(msg.payload)
            epoch = max(arrivals) + self.machine.barrier_cost(self.nranks)
            for r in range(1, self.nranks):
                self.mailboxes[r].put(Message(
                    src=0, dst=r, tag=_TAG_BARRIER_OUT, payload=epoch,
                    nbytes=8, arrival=epoch))
        else:
            self.mailboxes[0].put(Message(
                src=ctx.rank, dst=0, tag=_TAG_BARRIER_IN, payload=clk.now,
                nbytes=8, arrival=clk.now))
            epoch = self.mailboxes[ctx.rank].get(
                source=0, tag=_TAG_BARRIER_OUT).payload
        clk.advance_to(epoch)
        clk.charge_comm(self.machine.oversub_epoch_cost(self.nranks))

    def close(self) -> None:
        """Close this process's endpoints (unwind path)."""
        for mb in self.mailboxes:
            mb.close()
