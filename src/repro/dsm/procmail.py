"""Process-safe mailboxes: the multiprocessing transport for collectives.

The in-process :class:`~repro.dsm.mailbox.Mailbox` gives every simulated
rank selective receive over ``(source, tag)``; this module provides the
same contract across *process* boundaries so the whole
:class:`~repro.dsm.comm.Communicator` algorithm layer (point-to-point,
scatter/gather, halo exchange, reductions, one-sided put/get/fence)
runs unchanged over real processes — the collectives are bridged, not
reimplemented.

Transport: one ``multiprocessing.Queue`` per rank.  Any process may put
into any rank's queue; only the owning rank gets from its own.  Because
queue order is arrival order, not ``(source, tag)`` order, the owner
keeps a local pending buffer for envelopes that did not match an
outstanding selective receive.

Matching is additionally **epoch-scoped**: every envelope carries the
sender's membership epoch, and the receiver only matches envelopes of
its *own* epoch.  The mp.Queue channels deliberately outlive elastic
membership switches (the pre-sized fabric), so without the epoch a
retired rank's still-queued frames could satisfy a later membership
segment's selective receive on the same ``(source, tag)`` — a
use-after-retire that shows up as silently wrong data.  Stale-epoch
arrivals are dropped at the drain; future-epoch arrivals (a peer that
switched first) are buffered until this rank catches up.

:class:`ProcCommunicator` subclasses :class:`Communicator`, swapping the
transport and replacing the shared-clock barrier with a message-based
one (gather arrival times at rank 0, broadcast the epoch) — in separate
address spaces there is no clock list to ``sync_max`` over.
"""

from __future__ import annotations

import queue as _queue
import threading
import time
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.dsm.comm import (
    PUT_APPLIED,
    TAG_COLL,
    TAG_PUT,
    Communicator,
    axis_read,
    axis_write,
)
from repro.dsm.mailbox import ANY_SOURCE, ANY_TAG, MailboxClosed, Message
from repro.dsm.transport import QueueTransport, Transport
from repro.telemetry import schema as _ts
from repro.telemetry.plane import writer as telemetry_writer
from repro.trace.plane import tracer as trace_writer

if TYPE_CHECKING:  # pragma: no cover
    from repro.dsm.comm import RankContext
    from repro.dsm.shm import DataPlane
    from repro.vtime.machine import MachineModel

#: collective-plumbing tags private to the process transport.
_TAG_BARRIER_IN = TAG_COLL + 20
_TAG_BARRIER_OUT = TAG_COLL + 21


class ProcessMailbox:
    """Selective receive for one rank over a ``multiprocessing.Queue``.

    ``put`` may be called from any process; ``get``/``poll`` only from
    the owning rank's process (the pending buffer is process-local).
    ``epoch`` scopes the match key: only envelopes stamped with the
    mailbox's current epoch are eligible, stale ones are dead letters
    (dropped on drain), future ones wait in the pending buffer for the
    membership switch that makes them current.
    """

    def __init__(self, rank: int, channel, epoch: int = 0) -> None:
        self.rank = rank
        self.epoch = epoch
        self._channel = channel
        self._pending: list[Message] = []
        self._closed = False
        #: stale-epoch envelopes discarded (observability for tests).
        self.stale_dropped = 0

    # ------------------------------------------------------------------
    def put(self, msg: Message) -> None:
        if self._closed:
            raise MailboxClosed(f"mailbox {self.rank} is closed")
        self._channel.put(msg)

    def set_epoch(self, epoch: int) -> None:
        """Adopt a new membership epoch; purge newly-stale pendings."""
        self.epoch = epoch
        before = len(self._pending)
        self._pending = [m for m in self._pending if m.epoch >= epoch]
        self.stale_dropped += before - len(self._pending)

    def _matches(self, m: Message, source: int, tag: int) -> bool:
        return (m.epoch == self.epoch
                and (source == ANY_SOURCE or m.src == source)
                and (tag == ANY_TAG or m.tag == tag))

    def _admit(self, m: Message) -> bool:
        """Buffer a drained envelope; False when it was a stale-epoch
        dead letter (a retired membership's frame — dropped so it can
        never satisfy a later segment's selective receive)."""
        if m.epoch < self.epoch:
            self.stale_dropped += 1
            return False
        self._pending.append(m)
        return True

    def get(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
            timeout: float | None = 60.0) -> Message:
        """Block until a matching envelope arrives and remove it.

        Per-(source, tag) FIFO order is preserved: non-matching arrivals
        are buffered in order and re-scanned first on the next call.

        ``timeout`` bounds the *whole* call with one monotonic deadline:
        every channel wait gets only the remaining budget, so a rank
        waiting on a busy mailbox (non-matching envelopes trickling in)
        cannot block past its deadline — each arrival used to restart
        the full timeout.
        """
        tele = telemetry_writer()
        tr = trace_writer()
        if not tele.active and not tr.active:
            return self._get(source, tag, timeout)
        t0 = time.perf_counter()
        try:
            msg = self._get(source, tag, timeout)
            # flow edge for the trace plane: the slice duration is the
            # wait this receive paid (seq 0 = untraced envelope).
            if tr.active and msg.seq > 0:
                tr.recv(msg.src, msg.tag, msg.epoch, msg.seq, t0)
            return msg
        finally:
            # wall time blocked on the channel: the mailbox-wait series
            # (receiver-side skew signal, never charged to vtime).
            if tele.active:
                tele.inc(_ts.MAILBOX_WAIT_SECONDS,
                         time.perf_counter() - t0)
                tele.inc(_ts.MAILBOX_RECVS)

    def _get(self, source: int, tag: int,
             timeout: float | None) -> Message:
        for i, m in enumerate(self._pending):
            if self._matches(m, source, tag):
                return self._pending.pop(i)
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        while True:
            if self._closed:
                raise MailboxClosed(f"mailbox {self.rank} is closed")
            if deadline is None:
                remaining = None
            else:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    # expiry still owes one non-blocking poll: a match
                    # already delivered to the channel (just not yet
                    # drained into the pending buffer) must be returned,
                    # exactly as timeout=0 on a bare queue would.
                    while True:
                        try:
                            m = self._channel.get_nowait()
                        except _queue.Empty:
                            break
                        if self._matches(m, source, tag):
                            return m
                        self._admit(m)
                    raise TimeoutError(
                        f"rank {self.rank}: no message from src={source} "
                        f"tag={tag} after {timeout}s (pending: "
                        f"{[(p.src, p.tag) for p in self._pending]})")
            try:
                m = self._channel.get(timeout=remaining)
            except _queue.Empty:
                continue  # deadline check above decides expiry
            if self._matches(m, source, tag):
                return m
            self._admit(m)

    def poll(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Non-blocking probe for a matching envelope."""
        if any(self._matches(m, source, tag) for m in self._pending):
            return True
        while True:
            try:
                m = self._channel.get_nowait()
            except _queue.Empty:
                return False
            if self._admit(m) and self._matches(m, source, tag):
                return True

    def close(self) -> None:
        """Refuse further traffic; drop whatever the feeder still holds.

        Called on the unwind path only — by then the phase outcome is
        decided and in-flight envelopes are dead letters.  Cancelling the
        feeder join keeps a worker's exit from blocking on a queue the
        parent will never drain again.
        """
        self._closed = True
        try:
            self._channel.cancel_join_thread()
        except (AttributeError, OSError):
            pass

    def __len__(self) -> int:
        return len(self._pending)


class ProcCommunicator(Communicator):
    """The MPI-like collective layer over per-rank process mailboxes.

    Inherits every algorithm (send/recv costs, flat and tree
    collectives, the one-sided window protocol, the in-place partition
    movements consume it unchanged); overrides construction (no shared
    clock list), the barrier (message-based epoch agreement instead of
    ``VClock.sync_max`` across threads), and — when a
    :class:`~repro.dsm.shm.DataPlane` is wired — the transport hooks:
    large array payloads cross as shared-memory slab descriptors
    instead of pickles through the queue pipes (and, for movement code
    that opted a source segment in via ``DataPlane.register_borrow``,
    as borrowed regions with zero intermediate copies).  One-sided
    windows allocated through :meth:`win_alloc` land on the plane's
    symmetric heap when it has one: a ``put`` to such a window is a
    direct write into the target rank's heap pages, and ``get`` reads
    them — true one-sided progress, no target CPU.  Virtual time is
    charged on the logical payload before packing, so the cost model
    cannot tell the transports apart (cross-backend vtime parity is
    preserved by construction).

    The endpoint fabric comes from a :class:`Transport` (defaulting to
    :class:`QueueTransport` over ``channels``); it may be pre-sized
    beyond the active rank count (elastic launches build it for
    ``max_ranks``): endpoints exist for every potential member, while
    the collectives only ever span ``self.nranks`` — an elastic reshape
    is then just an update of ``nranks`` and the mail epoch at a
    quiesced point, no new transport.
    """

    def __init__(self, rank: int, nranks: int, machine: "MachineModel",
                 channels=None, plane: "DataPlane | None" = None,
                 transport: Transport | None = None,
                 mail_epoch: int = 0) -> None:
        if transport is None:
            if channels is None or len(channels) < nranks:
                raise ValueError("one channel per rank required")
            transport = QueueTransport(channels)
        # deliberately NOT calling super().__init__: there is no clock
        # list or thread barrier to build in a per-process communicator.
        self.nranks = nranks
        self.machine = machine
        self.coll_algo = getattr(machine, "coll_algo", "flat")
        self.plane = plane
        self.transport = transport
        self.mailboxes = transport.endpoints(rank)
        if len(self.mailboxes) < nranks:
            raise ValueError("transport fabric smaller than the membership")
        self.mail_epoch = mail_epoch
        self.mailboxes[rank].set_epoch(mail_epoch)
        self._rank = rank
        self._windows: dict[tuple[int, str], np.ndarray] = {}
        self._win_lock = threading.Lock()

    # ------------------------------------------------------------------
    def _egress(self, obj: Any, owned: bool, dest: int) -> Any:
        if self.plane is None:
            # keep the defensive copy: mp.Queue's feeder thread pickles
            # *after* put returns, so an un-owned payload could still be
            # mutated by the sender while in flight.
            return super()._egress(obj, owned, dest)
        return self.plane.outbound(obj, owned)

    def _ingress_value(self, obj: Any) -> Any:
        if self.plane is None:
            return obj
        return self.plane.inbound(obj)

    def reshape(self, new_n: int) -> None:
        """Adopt a new active membership (elastic protocol, quiesced).

        Valid only at a point where every in-flight collective has
        completed on every rank and ``new_n`` does not exceed the
        pre-sized channel fabric.  Bumps the mail epoch: anything a
        retired membership still has queued in the (surviving) channels
        becomes a dead letter rather than a candidate match for the new
        membership's selective receives.
        """
        if new_n < 1 or new_n > len(self.mailboxes):
            raise ValueError(
                f"membership {new_n} outside the pre-sized fabric "
                f"(1..{len(self.mailboxes)})")
        self.nranks = new_n
        self.mail_epoch += 1
        self.mailboxes[self._rank].set_epoch(self.mail_epoch)

    # ------------------------------------------------------------------
    # one-sided traffic over the symmetric heap (when the plane has one)
    # ------------------------------------------------------------------
    def win_alloc(self, name: str, shape: tuple, dtype) -> np.ndarray:
        if self.plane is None:
            return super().win_alloc(name, shape, dtype)
        if self.plane.heap is None:
            # first symmetric allocation of this process: provision the
            # rank's heap segment (the parent sweeps the deterministic
            # name grid in its launch ``finally`` regardless).
            from repro.dsm.shm import SymmetricHeap

            lid = (self.plane.heap_launch_id
                   or self.plane.pool.launch_id)
            self.plane.heap = SymmetricHeap(lid, self._rank)
        win = self.win_expose(
            name, self.plane.heap.alloc(name, shape, dtype))
        # implicit barrier, like shmem_malloc: afterwards every rank's
        # segment exists, so peer_view attaches cannot race creation.
        self.barrier()
        return win

    def _put_direct(self, dest: int, name: str) -> np.ndarray | None:
        """The target's window when this rank can write it in place.

        Symmetry is the authorisation: a heap window exists at the same
        name (and offset) on every rank, so holding it locally proves
        the target exposed it too.  Routing subclasses narrow this to
        reachable (co-located) destinations.
        """
        heap = self.plane.heap if self.plane is not None else None
        if heap is not None and heap.has(name):
            return heap.peer_view(dest, name)
        return None

    def _deliver_put(self, ctx: "RankContext", name: str, values, dest: int,
                     idx, axis: int, owned: bool, nbytes: int) -> None:
        win = self._put_direct(dest, name)
        if win is not None:
            # the one-sided fast path: one region copy into the target's
            # heap pages; the envelope still crosses for fence coupling.
            axis_write(win, idx, axis, values)
            payload = (name, axis, idx, PUT_APPLIED)
        else:
            payload = (name, axis, idx, self._egress(values, owned, dest))
        seq = trace_writer().send(dest, TAG_PUT, epoch=self.mail_epoch)
        self.mailboxes[dest].put(Message(
            src=ctx.rank, dst=dest, tag=TAG_PUT, payload=payload,
            nbytes=nbytes, arrival=ctx.clock.now, epoch=self.mail_epoch,
            seq=seq))

    def _fetch_window(self, ctx: "RankContext", name: str, src: int, idx,
                      axis: int) -> np.ndarray:
        win = self._put_direct(src, name)
        if win is None:
            raise RuntimeError(
                "one-sided get across processes needs a symmetric-heap "
                f"window (win_alloc); {name!r} is not heap-backed")
        return np.ascontiguousarray(axis_read(win, idx, axis))

    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """Message-based barrier carrying the virtual-time epoch.

        Rank 0 gathers every rank's arrival time, lifts the epoch to the
        latest plus the machine's barrier cost, and broadcasts it; all
        clocks advance to the common epoch, exactly as the shared-memory
        implementation's ``sync_max`` does.
        """
        ctx = self._ctx()
        if self.nranks == 1:
            return
        clk = ctx.clock
        if ctx.rank == 0:
            arrivals = [clk.now]
            for src in range(1, self.nranks):
                msg = self.mailboxes[0].get(source=src, tag=_TAG_BARRIER_IN)
                arrivals.append(msg.payload)
            epoch = max(arrivals) + self.machine.barrier_cost(self.nranks)
            for r in range(1, self.nranks):
                self.mailboxes[r].put(Message(
                    src=0, dst=r, tag=_TAG_BARRIER_OUT, payload=epoch,
                    nbytes=8, arrival=epoch, epoch=self.mail_epoch))
        else:
            self.mailboxes[0].put(Message(
                src=ctx.rank, dst=0, tag=_TAG_BARRIER_IN, payload=clk.now,
                nbytes=8, arrival=clk.now, epoch=self.mail_epoch))
            epoch = self.mailboxes[ctx.rank].get(
                source=0, tag=_TAG_BARRIER_OUT).payload
        clk.advance_to(epoch)
        clk.charge_comm(self.machine.oversub_epoch_cost(self.nranks))

    def close(self) -> None:
        """Close this process's endpoints (unwind path)."""
        for mb in self.mailboxes:
            mb.close()
        self.transport.close()
