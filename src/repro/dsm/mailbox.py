"""Per-rank mailboxes with (source, tag) matching.

The simulated cluster's transport: a :class:`Mailbox` per rank, into which
senders deposit :class:`Message` envelopes.  ``get`` blocks until a message
matching ``(source, tag)`` is available (either may be a wildcard).

Envelopes carry the *virtual arrival time* computed by the sender from the
network model, so the receiver can couple its clock to the sender's.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

ANY_SOURCE = -1
ANY_TAG = -1


class MailboxClosed(RuntimeError):
    """Raised to blocked receivers when the cluster shuts down."""


@dataclass
class Message:
    """One in-flight message."""

    src: int
    dst: int
    tag: int
    payload: Any
    nbytes: int
    arrival: float  # virtual time at which the payload is available
    #: membership epoch the sender belonged to.  In-process mailboxes
    #: ignore it (rank threads die with their membership); the process
    #: transports match on it so a retired rank's queued frames cannot
    #: satisfy a later membership's selective receive (the mp.Queue
    #: channels outlive membership switches by design).
    epoch: int = 0
    #: trace-plane message id: the sender's per-ring send counter,
    #: stamped at the transport chokepoints when tracing is on.  0 means
    #: untraced (tracing off, or an internal direct-put) — receivers
    #: record a flow edge only for a non-zero seq, so the stamp is
    #: invisible to results either way.
    seq: int = 0


class Mailbox:
    """Unbounded, thread-safe mailbox with selective receive."""

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self._cond = threading.Condition()
        self._queue: list[Message] = []
        self._closed = False

    def put(self, msg: Message) -> None:
        with self._cond:
            if self._closed:
                raise MailboxClosed(f"mailbox {self.rank} is closed")
            self._queue.append(msg)
            self._cond.notify_all()

    def get(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
            timeout: float | None = 60.0) -> Message:
        """Block until a matching message is available and remove it.

        Matching preserves per-(source, tag) FIFO order, which is all the
        collectives and the aggregate protocol rely on.
        """
        from time import perf_counter

        from repro.trace.plane import tracer as trace_writer

        tr = trace_writer()
        tw0 = perf_counter() if tr.active else 0.0
        with self._cond:
            while True:
                for i, m in enumerate(self._queue):
                    if ((source == ANY_SOURCE or m.src == source)
                            and (tag == ANY_TAG or m.tag == tag)):
                        msg = self._queue.pop(i)
                        # flow edge: the slice duration is the wait this
                        # receive paid; seq 0 = untraced envelope.
                        if tr.active and msg.seq > 0:
                            tr.recv(msg.src, msg.tag, msg.epoch, msg.seq,
                                    tw0)
                        return msg
                if self._closed:
                    raise MailboxClosed(f"mailbox {self.rank} is closed")
                if not self._cond.wait(timeout):
                    raise TimeoutError(
                        f"rank {self.rank}: no message from src={source} "
                        f"tag={tag} after {timeout}s "
                        f"(queued: {[(m.src, m.tag) for m in self._queue]})")

    def poll(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Non-blocking probe for a matching message."""
        with self._cond:
            return any(
                (source == ANY_SOURCE or m.src == source)
                and (tag == ANY_TAG or m.tag == tag)
                for m in self._queue)

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def __len__(self) -> int:
        with self._cond:
            return len(self._queue)
