"""Strict sequential execution: one line of execution, no coordination."""

from __future__ import annotations

from repro.core.modes import Capabilities, ExecConfig
from repro.exec.base import (
    PHASE_COMPLETED,
    ExecutionBackend,
    PhaseOutcome,
    PhaseServices,
    PhaseSpec,
)


class SequentialBackend(ExecutionBackend):
    """The paper's baseline: the woven class on the calling thread.

    No team, no ranks — safe points run the protocol inline, barriers
    and work sharing degenerate to no-ops / whole ranges.
    """

    name = "sequential"

    def capabilities(self, config: ExecConfig) -> Capabilities:
        return Capabilities()

    def launch(self, spec: PhaseSpec, services: PhaseServices
               ) -> PhaseOutcome:
        from repro import telemetry, trace

        ctx = self.make_context(spec, services)
        ctx.seed_clock(spec.start_vtime)
        plane = self.telemetry_plane(services, 1)
        if plane is not None:
            telemetry.bind(plane.writer(0))
        trplane = self.trace_plane(services, 1)
        if trplane is not None:
            trace.bind(trplane.writer(0))
        try:
            value = self.run_entry(ctx, spec)
            ctx.ckpt_flush_barrier()  # pay the in-flight write remainder
            return PhaseOutcome(PHASE_COMPLETED, self._end(ctx, spec),
                                value=value)
        except BaseException as exc:  # noqa: BLE001 - normalised below
            out = self.normalise_unwind(exc, self._end(ctx, spec))
            if out is None:
                raise
            return out
        finally:
            telemetry.bind(None)
            trace.bind(None)
            self.scrape_telemetry(plane, services)
            self.scrape_trace(trplane, services)

    @staticmethod
    def _end(ctx, spec: PhaseSpec) -> float:
        return max(spec.start_vtime, ctx.max_time())
