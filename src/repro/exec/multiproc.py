"""Multiprocessing execution: real process ranks, shared-memory fields.

The first backend whose ranks actually run in parallel: each rank is a
``multiprocessing`` process (no GIL between ranks), partitioned fields
live in ``multiprocessing.shared_memory`` segments every rank maps
(:mod:`repro.dsm.shm`), and the rank collectives are bridged over
process-safe mailboxes (:mod:`repro.dsm.procmail`) so the whole
``Communicator`` algorithm layer runs unchanged.

What stays in the parent, and why:

* **the checkpoint store** — snapshots are funnelled to the master
  :class:`~repro.ckpt.store.CheckpointStore`
  (:mod:`repro.ckpt.funnel`), so delta baselines, adaptive anchors and
  shard sub-stores keep their cross-phase state and the
  :class:`~repro.exec.driver.PhaseDriver` restarts/adapts identically
  to every other backend;
* **segment unlinking** — workers create/attach but never unlink; the
  parent removes every segment of the launch in its ``finally``, by
  deterministic name, so a crashed rank cannot leak ``/dev/shm``
  entries;
* **unwind normalisation** — workers report their phase end as data
  (completed / adapted / failed / error), the parent reconstructs the
  most informative cooperative unwind across ranks (the same preference
  order as :class:`~repro.exec.cluster.SimClusterBackend`) and returns
  the one normal-form :class:`~repro.exec.base.PhaseOutcome`.

Elastic ranks (``Capabilities.elastic_ranks``): the launch pre-sizes the
segment set, the mailbox fabric and the process pool for the *maximum*
rank count the adaptation plan can reach, and parks the surplus
processes on their control channels.  A rank-count adaptation is then a
membership transition run by the workers themselves (the protocol in
:mod:`repro.elastic`): a grow un-parks processes — they replay the entry
to the transition safe point and map the existing segments, no fork, no
allocation, no re-scatter (shared partitions need no data movement at
all) — and a shrink parks them again.  Only the parent's bookkeeping
(which ranks will report) changes, via a notify queue.  Relaunch remains
the path for mode/backend switches and recovery.

Start method: ``fork`` where available (Linux; supports dynamically
woven classes), else ``spawn`` — under ``spawn`` the woven class is
shipped as ``(base class, plug set)`` and re-woven in the child, so the
base class and its constructor arguments must be picklable/importable.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as _queue
import time
import traceback

import numpy as np

from repro.ckpt.failure import InjectedFailure
from repro.ckpt.funnel import CheckpointFunnel, FunnelStore
from repro.core.adaptation import AdaptStep
from repro.core.errors import AdaptationExit
from repro.core.modes import Capabilities, ExecConfig, Mode
from repro.dsm import shm
from repro.dsm.comm import RankContext, _bind
from repro.dsm.procmail import ProcCommunicator
from repro.dsm.simcluster import RankFailure
from repro.elastic import (
    JoinReplay,
    RankReshaper,
    RankRetired,
    ReshapePlan,
    apply_new_identity,
    execute_moves,
    join_rendezvous,
)
from repro.exec.base import (
    PHASE_COMPLETED,
    ExecutionBackend,
    PhaseOutcome,
    PhaseServices,
    PhaseSpec,
)
from repro.util.events import EventLog
from repro.vtime.clock import VClock
from repro.vtime.machine import (
    PROCESS_RANKS_CALIBRATION,
    PROCESS_RANKS_SHM_CALIBRATION,
)

#: worker report statuses.
_COMPLETED = "completed"
_ADAPTED = "adapted"
_FAILED = "failed"
_ERROR = "error"
#: internal segment end: the rank left the membership and re-parked.
_RETIRED = "retired"

#: once one rank reports a failure, how long its peers get to finish
#: reporting before the parent terminates them (a rank-scoped failure
#: leaves peers blocked in a collective that will never complete).
_PEER_GRACE_SECONDS = 3.0

#: marker for ranks the parent terminated as collateral of another
#: rank's failure — never the root cause to raise.
_TERMINATED_FALLOUT = "terminated: a peer rank failed first"


def _preferred_start_method() -> str:
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def _portable_woven(woven: type) -> tuple[type, object | None]:
    """Ship a woven class as ``(base, plugset)`` when it is dynamic.

    ``plug`` builds its subclass at run time, which pickles by reference
    only in the process that built it; the base class plus the plug set
    is portable and re-weaves to an identical class in the child.
    """
    base = getattr(woven, "__pp_base__", None)
    if base is None:
        return woven, None
    return base, woven.__pp_plugs__


class _ChildTask:
    """Everything one worker process needs (picklable by construction)."""

    def __init__(self, rank: int, spec: PhaseSpec, services: PhaseServices,
                 backend: "MultiprocessBackend", channels, result_queue,
                 notify_queue, store: FunnelStore, launch_id: str,
                 max_ranks: int) -> None:
        from dataclasses import replace

        base, self.plugs = _portable_woven(spec.woven)
        if self.plugs is not None:
            # ship the importable base, not the dynamic subclass: under
            # "spawn" the task is pickled, and the child re-weaves.
            spec = replace(spec, woven=base)
        if rank != 0 and spec.replay is not None \
                and spec.replay.snapshot is not None:
            # only member 0 restores from the snapshot payload
            # (make_context nulls it for other ranks anyway); don't
            # serialise it N times under "spawn".
            from repro.ckpt.replay import ReplayState

            spec = replace(spec, replay=ReplayState(
                target=spec.replay.target, snapshot=None))
        self.spec = spec
        self.machine = services.machine
        self.policy = services.policy
        self.ckpt_strategy = services.ckpt_strategy
        self.backend = backend
        self.channels = channels
        self.result_queue = result_queue
        self.notify_queue = notify_queue
        self.store = store
        self.launch_id = launch_id
        self.max_ranks = max_ranks
        #: whether the parent created a telemetry segment for this launch
        #: (children attach it by deterministic name and bind their page).
        self.telemetry = services.metrics is not None
        #: whether the parent created a trace segment for this launch,
        #: and the ring capacity children need to map it (the segment
        #: shape is capacity-dependent; flight-recorder rings are small).
        self.trace = services.trace is not None
        self.trace_capacity = (services.trace.capacity
                               if services.trace is not None else 0)
        #: backend-specific launch plumbing (e.g. the sockets backend's
        #: address-rendezvous queue); filled by ``_launch_extras``.
        self.extras: dict = {}

    def rebuild_spec(self) -> PhaseSpec:
        if self.plugs is None:
            return self.spec
        from dataclasses import replace

        from repro.core.rewriter import plug

        return replace(self.spec, woven=plug(self.spec.woven, self.plugs))


def _place_shared_fields(ctx, instance, comm, launch_id: str,
                         names_of: dict | None = None
                         ) -> tuple[shm.SegmentManager, dict]:
    """Move every partitioned ndarray field into a shared segment.

    Rank 0 allocates and seeds each segment from its constructor-built
    array (the authoritative copy, matching scatter-from-root
    semantics); the metadata broadcast orders creation before any
    attach.  Every rank then rebinds the field to the shared view.
    Returns the manager plus the ``{field: (shape, dtype, kind)}``
    metadata (``kind`` is ``"shared"`` or ``"slab"``) —
    the reshape protocol ships the metadata to un-parked joiners, which
    attach the *same* segments (an elastic grow allocates nothing).

    Fields declared ``whole_at_safepoints`` cannot alias one segment
    directly: that declaration means every member re-assembles and then
    computes over the *whole* array each step (replicated whole-array
    writes), which would race on aliased pages.  They get a **commit
    slab** instead (``kind == "slab"`` in the metadata): the instance
    keeps its private scratch array, and a shared whole-size segment
    carries the committed state — gather/allgather write only each
    owner's region into it and read the assembled whole back
    (:meth:`~repro.core.context.ExecutionContext._slab_sync`), so the
    root-funnelled payload bytes and the root->joiner refresh sends on
    reshape both disappear.
    """
    manager = shm.SegmentManager(launch_id)
    rank = ctx.rank
    fields = sorted(f for f, part in ctx.partitioned.items()
                    if not part.whole_at_safepoints)
    slabs = sorted(f for f, part in ctx.partitioned.items()
                   if part.whole_at_safepoints)
    if rank == 0:
        meta = {}
        names = names_of or {}
        for f in fields:
            arr = getattr(instance, f, None)
            if not isinstance(arr, np.ndarray):
                continue
            seg = _open_segment(manager, f, arr.shape, arr.dtype,
                                names.get(f))
            view = seg.ndarray()
            view[...] = arr
            setattr(instance, f, view)
            meta[f] = (arr.shape, arr.dtype.str, "shared", names.get(f))
        for f in slabs:
            arr = getattr(instance, f, None)
            if not isinstance(arr, np.ndarray):
                continue
            seg = _open_segment(manager, f, arr.shape, arr.dtype,
                                names.get(f))
            # seed the committed baseline (every rank's constructor
            # builds the same array; the scatter-from-root convention
            # makes rank 0's copy the authoritative one).
            seg.ndarray()[...] = arr
            meta[f] = (arr.shape, arr.dtype.str, "slab", names.get(f))
        if ctx.nranks > 1:
            comm.bcast(meta, root=0)
    else:
        meta = comm.bcast(None, root=0)
        for f, (shape, dtype, kind, name) in meta.items():
            seg = manager.attach(f, shape, dtype, name=name)
            if kind == "shared":
                setattr(instance, f, seg.ndarray())
    _index_segments(ctx, manager, meta)
    return manager, meta


def _open_segment(manager: shm.SegmentManager, f: str, shape, dtype,
                  name: str | None) -> shm.ShmSegment:
    """Allocate a launch-named segment, or attach an arena-leased one.

    An explicit ``name`` means the parent's arena already created the
    segment (capacity-classed, reused across service jobs) — rank 0
    attaches and seeds it instead of allocating.
    """
    if name is None:
        return manager.allocate(f, shape, dtype)
    return manager.attach(f, shape, dtype, name=name)


def _index_segments(ctx, manager: shm.SegmentManager, meta: dict) -> None:
    """Point the context at the placed segments, by kind."""
    ctx.shared_fields = {f for f, m in meta.items() if m[2] == "shared"}
    ctx.slab_whole = {f: manager.get(f).ndarray()
                      for f, m in meta.items() if m[2] == "slab"}


def _attach_shared_fields(ctx, instance, meta: dict, launch_id: str
                          ) -> shm.SegmentManager:
    """An un-parked joiner maps the launch's existing segments.

    No broadcast: the segment metadata arrived in the un-park message,
    and the segments themselves have existed since the launch — this is
    the pre-sized-symmetric-heap half of the elastic design.
    """
    manager = shm.SegmentManager(launch_id)
    for f, (shape, dtype, kind, name) in meta.items():
        seg = manager.attach(f, shape, dtype, name=name)
        if kind == "shared":
            setattr(instance, f, seg.ndarray())
    _index_segments(ctx, manager, meta)
    return manager


class ProcessReshaper(RankReshaper):
    """Elastic membership transitions over parked worker processes.

    A grow un-parks pre-forked processes (rank 0 posts the un-park
    control message carrying the replay target, the transition epoch and
    the segment metadata); a shrink sends the retirees back to their
    control channel via :class:`RankRetired`.  The parent learns of the
    membership change through the notify queue — it is bookkeeping, not
    a participant.
    """

    def __init__(self, task: _ChildTask, comm: ProcCommunicator,
                 machine, rank: int) -> None:
        self.task = task
        self.comm = comm
        self.machine = machine
        self.rank = rank
        #: {field: (shape, dtype, kind)} of the launch's segments;
        #: filled in once fields are placed/attached.
        self.segment_meta: dict = {}

    # ------------------------------------------------------------------
    def reshape(self, ctx, step: AdaptStep, count: int) -> bool:
        new_n = step.config.nranks
        if new_n > self.task.max_ranks:
            # beyond the pre-sized fabric: every rank computes the same
            # verdict locally, so all fall back to relaunch together.
            return False
        plan = ReshapePlan(ctx.nranks, new_n)
        comm = self.comm
        rank = ctx.rank
        comm.barrier()  # quiesce: all prior collectives drained
        epoch = ctx.rankctx.clock.now
        if rank == 0:
            self.task.notify_queue.put(("reshape", count, plan.old_n, new_n))
            for j in plan.joining:
                self.task.channels[j].put({
                    "kind": "unpark", "count": count, "epoch": epoch,
                    "step": step, "old_n": plan.old_n,
                    "segments": self.segment_meta,
                    # the membership epoch the joiner's mailbox must
                    # match: the switch below bumps every survivor to
                    # exactly this value.
                    "mail_epoch": self.comm.mail_epoch + 1})
        # fence: rank 0's notify/un-park sends precede every peer's
        # release, so nothing the new membership does can reach the
        # parent before the membership change itself.
        comm.barrier()
        if plan.shrinking:
            # retiring owners push their (non-shared) regions while they
            # still hold endpoints in the old membership.
            execute_moves(ctx, plan, comm)
            comm.barrier()  # regions landed; clocks coupled
            if rank in plan.retiring:
                raise RankRetired(count, rank)
            comm.reshape(new_n)
            apply_new_identity(ctx, step, plan, count, self.machine)
        else:
            comm.reshape(new_n)
            join_rendezvous(ctx, plan, step, count, comm, self.machine)
        return True

    def complete_join(self, ctx, replay: JoinReplay, count: int) -> None:
        join_rendezvous(ctx, replay.plan, replay.step, count, self.comm,
                        self.machine)


def _wait_for_control(channel) -> dict | None:
    """Parked: block on the control channel until a directive arrives.

    Control directives are plain dicts; anything else (a stray late
    collective envelope from an unwound membership) is discarded — dead
    letters by definition once this rank is out of the membership.
    """
    while True:
        try:
            msg = channel.get(timeout=60.0)
        except _queue.Empty:
            continue  # parent still alive (daemon children die with it)
        if isinstance(msg, dict) and "kind" in msg:
            return msg


def _run_rank_segment(rank: int, task: _ChildTask, log: EventLog,
                      join_payload: dict | None,
                      plane: shm.DataPlane | None) -> tuple:
    """One active segment of a rank's life: entry to report (or re-park).

    Initial members run the phase entry directly; un-parked joiners run
    it under a :class:`JoinReplay` targeting the transition safe point.
    Returns ``(status, data, end_vtime, records)``.
    """
    spec = task.rebuild_spec()
    machine = task.machine
    task.store.plane = plane  # snapshot bytes ride the slab pool too
    services = PhaseServices(
        machine=machine, log=log, store=task.store,
        policy=task.policy, ckpt_strategy=task.ckpt_strategy, advisor=None)
    if join_payload is None:
        config = spec.config
        clock = VClock(spec.start_vtime + machine.spawn_cost * rank)
    else:
        config = join_payload["step"].config
        # un-parking is the elastic analogue of a spawn: the joiner's
        # clock starts at the transition epoch plus the spawn cost.
        clock = VClock(join_payload["epoch"] + machine.spawn_cost)
    clock.contention = machine.contention_factor(rank, config.nranks)
    mail_epoch = 0 if join_payload is None \
        else join_payload.get("mail_epoch", 0)
    comm = task.backend.make_communicator(rank, config.nranks, machine,
                                          task, plane, mail_epoch)
    rankctx = RankContext(rank=rank, nranks=config.nranks, clock=clock,
                          comm=comm)
    _bind(rankctx)
    manager: shm.SegmentManager | None = None
    instance = None
    ctx = None
    status, data = _ERROR, "rank reported nothing"
    try:
        reshaper = ProcessReshaper(task, comm, machine, rank)
        ctx = task.backend.make_context(spec, services, rankctx=rankctx,
                                        reshaper=reshaper)
        instance = spec.woven(*spec.ctor_args, **spec.ctor_kwargs)
        if join_payload is None:
            manager, meta = task.backend.place_fields(ctx, instance, comm,
                                                      task.launch_id)
            reshaper.segment_meta = meta
        else:
            meta = join_payload["segments"]
            manager = _attach_shared_fields(ctx, instance, meta,
                                            task.launch_id)
            reshaper.segment_meta = meta
            ctx.config = config
            ctx.replay = JoinReplay(
                join_payload["count"], reshaper,
                ReshapePlan(join_payload["old_n"], config.nranks),
                join_payload["step"])
        ctx.bind(instance)
        result = getattr(instance, spec.entry)(*spec.entry_args)
        if rank == 0:
            ctx.ckpt_flush_barrier()
        status, data = _COMPLETED, result
    except RankRetired:
        status, data = _RETIRED, None
    except AdaptationExit as ae:
        status, data = _ADAPTED, (ae.snapshot, ae.new_config)
    except InjectedFailure as fail:
        status, data = _FAILED, (fail.safepoint, fail.rank)
    except BaseException as exc:  # noqa: BLE001 - shipped to the parent
        status, data = task.backend.classify_unwind_report(exc)
    finally:
        _bind(None)
        if ctx is not None:
            ctx.slab_whole = {}
        if manager is not None:
            # release the views so the mappings can close; the instance
            # is dead after this line on every path.
            for f in manager.fields():
                try:
                    setattr(instance, f, None)
                except Exception:  # noqa: BLE001 - cleanup must not mask
                    pass
            manager.close_all()
    records = list(ctx.reshapes) if ctx is not None else []
    return status, data, clock.now, records


def _rank_main(rank: int, task: _ChildTask,
               plane: shm.DataPlane | None = None,
               repark: bool = True,
               parked: bool | None = None) -> str:
    """One rank's life: active segments interleaved with parked waits.

    Ranks below the launch configuration's count start active; the
    surplus (pre-forked up to ``max_ranks``) park on their control
    channel.  A segment that ends in retirement re-parks — its events
    ship to the parent immediately so no timeline is lost — and a later
    un-park starts the next segment.  Any terminal segment end posts the
    one final report and exits.  Returns how the rank left the phase
    (``"done"`` reported, ``"retired"`` left the membership with
    ``repark=False``, ``"stopped"`` released from park) — process
    entry points ignore it; the service fleet's worker loop keys its
    idle bookkeeping on it.

    The rank's slab pool (its half of the zero-copy data plane) belongs
    to the *process*, not the membership: it is built once here and
    survives park / un-park cycles, so an elastic reshape neither leaks
    nor re-creates slabs.  The parent unlinks the deterministic slab
    name grid in its launch ``finally`` either way.  A caller that
    passes an existing ``plane`` owns its lifetime (the warm fleet
    keeps one per worker process across jobs); ``repark=False`` makes
    retirement *return* instead of parking in-phase, handing the
    process back to that caller.
    """
    if parked is None:
        # the launch path: ranks beyond the launch shape park.  The
        # service fleet overrides this — a worker parked for a regrown
        # rank may carry a rank index *below* the original shape.
        parked = rank >= task.spec.config.nranks
    join_payload: dict | None = None
    log = EventLog()
    own_plane = plane is None
    if own_plane and task.backend.data_plane:
        plane = shm.DataPlane(
            shm.BufferPool(task.launch_id, rank),
            threshold=task.backend.plane_threshold)
    tplane = None
    if getattr(task, "telemetry", False):
        from repro import telemetry

        # map the parent's telemetry segment and claim this rank's page.
        # A rank parked from birth leaves its page empty (no writer, no
        # zero-valued series in scrapes) until its first un-park.
        tplane = telemetry.TelemetryPlane.attach(
            task.launch_id, task.max_ranks, backend=task.backend.name)
        if not parked:
            telemetry.bind(tplane.writer(rank))
    trplane = None
    if getattr(task, "trace", False):
        from repro import trace

        # same discipline for the trace segment: attach by name, bind
        # this rank's ring.  The ring outlives the rank in the segment —
        # that is what the parent's drain scrapes after a crash.
        trplane = trace.TracePlane.attach(
            task.launch_id, task.max_ranks,
            capacity=task.trace_capacity, backend=task.backend.name)
        if not parked:
            trace.bind(trplane.writer(rank))
    try:
        while True:
            if parked:
                ctrl = _wait_for_control(task.channels[rank])
                if ctrl is None or ctrl["kind"] == "stop":
                    return "stopped"  # phase over; parked ranks exit silent
                join_payload = ctrl
                parked = False
                if tplane is not None:
                    # un-park thaws (or first-activates) the rank's page.
                    telemetry.bind(tplane.writer(rank))
                if trplane is not None:
                    from repro import trace

                    trace.bind(trplane.writer(rank))
            status, data, end_vtime, records = _run_rank_segment(
                rank, task, log, join_payload, plane)
            if status == _RETIRED:
                task.notify_queue.put(("events", rank, list(log)))
                log = EventLog()
                if tplane is not None:
                    # park freezes the page: counts stay visible for the
                    # drain-time scrape, live scrapes skip it.
                    from repro.telemetry import writer as tele_writer

                    w = tele_writer()
                    if w.active:
                        w.freeze()
                    telemetry.bind(None)
                if trplane is not None:
                    # same freeze for the rank's trace ring: records
                    # survive the park and the drain-time scrape sees
                    # them (include_frozen).
                    from repro import trace
                    from repro.trace import tracer as trace_tracer

                    tw = trace_tracer()
                    if tw.active:
                        tw.freeze()
                    trace.bind(None)
                if not repark:
                    return "retired"
                parked, join_payload = True, None
                continue
            # NB: the communicator is deliberately NOT closed here.  Exit
            # must wait for the queue feeders to flush: a peer may still
            # be draining collective payloads this rank sent (member 0
            # gathers state during a cooperative unwind), and cancelling
            # the feeder join would drop them.  The parent drains
            # leftover channel traffic before joining, so a flushing
            # exit cannot block.
            task.result_queue.put(
                (rank, status, data, end_vtime, list(log), records))
            return "done"
    finally:
        if tplane is not None:
            from repro import telemetry

            telemetry.bind(None)
            tplane.close()
        if trplane is not None:
            from repro import trace

            trace.bind(None)
            trplane.close()
        if own_plane and plane is not None:
            plane.close()


class MultiprocessBackend(ExecutionBackend):
    """SPMD ranks as processes, partitioned fields in shared memory.

    Honest capabilities: rank collectives yes (bridged over process
    mailboxes), team regions no (a rank is one process, one line of
    execution — pin ``HYBRID`` shapes to the simulated backends
    instead), shared fields yes, elastic ranks yes (parked-process
    membership transitions).

    ``max_ranks`` optionally widens the pre-sized elastic fabric beyond
    what the adaptation plan implies (for externally requested grows);
    a reshape past the fabric falls back to relaunch.

    ``data_plane`` (default on) routes large array payloads — collective
    traffic and funnelled checkpoint snapshots — through pooled
    shared-memory slabs instead of pickling them through the queue
    pipes; ``plane_threshold`` overrides the inline/slab crossover
    (bytes).  Results, checkpoint bytes and virtual time are identical
    either way: only the wall-clock transport changes.
    """

    name = "multiproc"
    #: modes this backend can launch when pinned by name (consulted by
    #: ``BackendRegistry.supports`` / the advisor ladder).
    modes = (Mode.DISTRIBUTED,)
    #: worker process name prefix (leak checks key on it).
    proc_prefix = "mp-rank-"

    def __init__(self, start_method: str | None = None,
                 join_timeout: float = 120.0,
                 max_ranks: int | None = None,
                 data_plane: bool = True,
                 plane_threshold: int | None = None) -> None:
        self.start_method = start_method or _preferred_start_method()
        self.join_timeout = join_timeout
        self.max_ranks = max_ranks
        self.data_plane = data_plane
        self.plane_threshold = plane_threshold

    def capabilities(self, config: ExecConfig) -> Capabilities:
        return Capabilities(rank_collectives=True, shared_fields=True,
                            elastic_ranks=True)

    def calibrate(self, machine):
        """Fork + transport costs instead of the modelled network.

        This backend's wall-clock behaviour is process creation plus
        message transport on one host: pickling through OS pipes on the
        queue path, slab memcpys with descriptor envelopes on the
        shared-memory data plane.  The advisor ranks reshape against
        relaunch with whichever constants match the configured transport
        (see :data:`repro.vtime.machine.PROCESS_RANKS_CALIBRATION` /
        :data:`repro.vtime.machine.PROCESS_RANKS_SHM_CALIBRATION`);
        calibration never feeds a running phase's virtual clocks.
        """
        constants = (PROCESS_RANKS_SHM_CALIBRATION if self.data_plane
                     else PROCESS_RANKS_CALIBRATION)
        return machine.with_(**constants)

    def make_communicator(self, rank: int, nranks: int, machine,
                          task: _ChildTask, plane, mail_epoch: int
                          ) -> ProcCommunicator:
        """Build one rank's communicator (the transport seam subclasses
        override — the sockets backend returns a topology-routing
        communicator over a hybrid queue/TCP fabric here)."""
        return ProcCommunicator(rank, nranks, machine, task.channels,
                                plane=plane, mail_epoch=mail_epoch)

    def classify_unwind_report(self, exc: BaseException) -> tuple[str, object]:
        """Turn a worker-side unwind that is not one of the built-in
        cooperative signals into a ``(status, data)`` report pair.  The
        base backend knows only wreckage; the service fleet adds its
        cooperative job-cancellation signal here."""
        return _ERROR, traceback.format_exc()

    def place_fields(self, ctx, instance, comm, launch_id: str
                     ) -> tuple[shm.SegmentManager | None, dict]:
        """Field-placement seam: this backend aliases partitioned fields
        in shared segments; a multi-node backend keeps them private
        (pages cannot alias across physical nodes) and overrides this
        to a no-op."""
        return _place_shared_fields(ctx, instance, comm, launch_id)

    def _make_funnel(self, store, mpctx, max_ranks: int) -> CheckpointFunnel:
        """Checkpoint-funnel seam: queue-based here; the sockets backend
        substitutes the framed-TCP variant riding its transport."""
        return CheckpointFunnel(store, mpctx, max_ranks)

    def _launch_extras(self, mpctx) -> dict:
        """Extra launch-scoped plumbing shipped to every ``_ChildTask``
        (``task.extras``); the sockets backend adds its address
        rendezvous queue here."""
        return {}

    def _after_start(self, spec: PhaseSpec, procs, channels,
                     extras: dict) -> None:
        """Parent-side hook between process start and report collection
        (the sockets backend runs its address rendezvous here)."""

    # ------------------------------------------------------------------
    def _fabric_size(self, spec: PhaseSpec) -> int:
        """Ranks to pre-fork: the launch shape plus every in-place
        rank count the plan can reshape to on this backend."""
        best = spec.config.nranks
        for s in spec.plan.steps:
            c = s.config
            if (c.mode is spec.config.mode and c.backend == spec.config.backend
                    and not s.via_restart and s.in_place is not False):
                best = max(best, c.nranks)
        if self.max_ranks is not None:
            best = max(best, self.max_ranks)
        return best

    def launch(self, spec: PhaseSpec, services: PhaseServices
               ) -> PhaseOutcome:
        n = spec.config.nranks
        max_ranks = self._fabric_size(spec)
        mpctx = mp.get_context(self.start_method)
        launch_id = shm.new_launch_id()
        channels = [mpctx.Queue() for _ in range(max_ranks)]
        result_queue = mpctx.Queue()
        notify_queue = mpctx.Queue()
        funnel = self._make_funnel(services.store, mpctx, max_ranks)
        extras = self._launch_extras(mpctx)
        # the launch's metrics segment: created before any fork so every
        # child can attach it by deterministic name.
        tplane = self.telemetry_plane(services, max_ranks,
                                      launch_id=launch_id)
        # and the launch's trace segment, same discipline.  Rings belong
        # to the segment, not the worker: a dead rank's records survive
        # for the drain-time scrape — the flight recorder's black box.
        trplane = self.trace_plane(services, max_ranks,
                                   launch_id=launch_id)
        procs: list = []
        try:
            for r in range(max_ranks):
                task = _ChildTask(r, spec, services, self, channels,
                                  result_queue, notify_queue,
                                  funnel.client(r), launch_id, max_ranks)
                task.extras = extras
                p = mpctx.Process(target=_rank_main, args=(r, task),
                                  daemon=True, name=f"{self.proc_prefix}{r}")
                procs.append(p)
                p.start()
            # serve checkpoints only after all forks: no duplicated thread.
            funnel.start()
            self._after_start(spec, procs, channels, extras)
            reports, stray_events, active = self._collect(
                procs, result_queue, notify_queue, n)
        finally:
            # drain before joining: exiting workers block until their
            # queue feeders flush, and nothing reads the rank channels
            # any more once the phase outcome is decided.
            self._drain(channels + [notify_queue])
            self._stop_parked(procs, channels)
            self._reap(procs)
            funnel.stop()
            self._drain(channels + [result_queue, notify_queue], close=True)
            # every worker is joined: the drain-time scrape (parked pages
            # included) is race-free, and the segment can go.
            self.scrape_telemetry(tplane, services)
            self.scrape_trace(trplane, services)
            self._unlink_segments(spec, launch_id, max_ranks,
                                  telemetry=tplane is not None,
                                  trace=trplane is not None)
        self._merge_events(services.log, reports, stray_events)
        end = max([spec.start_vtime]
                  + [rep[3] for rep in reports.values() if rep[3] is not None])
        if any(rep[1] == _FAILED for rep in reports.values()):
            # workers fired their own *copies* of the injector; reflect
            # it on the parent's so recovery does not re-inject forever.
            # Keyed off the reports, not the outcome: a concurrent
            # adaptation may outrank the failure, but the injection
            # still happened (thread backends share the injector object
            # and remember it the same way).
            spec.injector.mark_fired()
        return self._outcome(reports, end)

    # ------------------------------------------------------------------
    def _collect(self, procs, result_queue, notify_queue, n0: int
                 ) -> tuple[dict, list, set]:
        """Gather one report per *active* rank; cut stragglers loose on
        failure.

        The active set starts as the launch configuration's ranks and
        follows the reshape notifications rank 0 posts before each
        membership switch (the switch fence orders the notification
        before anything the new membership sends).  Parked ranks never
        report; retired ranks ship their event timeline through the
        notify queue when they re-park.
        """
        reports: dict[int, tuple] = {}
        stray_events: list = []
        active = set(range(n0))
        deadline = time.monotonic() + self.join_timeout
        failure_seen_at: float | None = None

        def _drain_notify() -> None:
            nonlocal active
            try:
                while True:
                    note = notify_queue.get_nowait()
                    if note[0] == "reshape":
                        active = set(range(note[3]))
                        self._on_reshape(note)
                    elif note[0] == "events":
                        stray_events.extend(note[2])
            except _queue.Empty:
                pass

        while True:
            _drain_notify()
            missing = [r for r in sorted(active) if r not in reports]
            if not missing:
                # cross-check against rank 0's authoritative reshape
                # records: a notify could in principle still be in a
                # queue feeder while the final reports are already in.
                final_n = self._final_membership(reports, n0)
                if len(active) != final_n:
                    active = set(range(final_n))
                    continue
                break
            try:
                rep = result_queue.get(timeout=0.05)
                reports[rep[0]] = rep
                if rep[1] in (_FAILED, _ERROR) and failure_seen_at is None:
                    failure_seen_at = time.monotonic()
                continue
            except _queue.Empty:
                pass
            now = time.monotonic()
            dead = [r for r in sorted(active)
                    if r not in reports and not procs[r].is_alive()
                    and procs[r].exitcode is not None]
            if dead:
                # a rank can flush its report and exit between the poll
                # above and the liveness scan: drain once more before
                # declaring anyone dead-without-reporting.
                try:
                    while True:
                        rep = result_queue.get_nowait()
                        reports[rep[0]] = rep
                        if rep[1] in (_FAILED, _ERROR) \
                                and failure_seen_at is None:
                            failure_seen_at = now
                except _queue.Empty:
                    pass
            for r in dead:
                if r not in reports:
                    p = procs[r]
                    reports[r] = (r, _ERROR,
                                  f"rank {r} died with exit code "
                                  f"{p.exitcode} before reporting",
                                  None, [], [])
                    if failure_seen_at is None:
                        failure_seen_at = now
            if failure_seen_at is not None \
                    and now - failure_seen_at > _PEER_GRACE_SECONDS:
                for r in sorted(active):
                    if r not in reports:
                        procs[r].terminate()
                        reports[r] = (r, _ERROR, _TERMINATED_FALLOUT,
                                      None, [], [])
                break
            if now > deadline:
                for r in sorted(active):
                    if r not in reports:
                        procs[r].terminate()
                        reports[r] = (r, _ERROR, f"rank {r} hung",
                                      None, [], [])
                break
        return reports, stray_events, active

    def _on_reshape(self, note: tuple) -> None:
        """Membership-change hook: called from report collection on each
        ``("reshape", count, old_n, new_n)`` notification rank 0 posts
        before a membership switch.  The base backend pre-parks its
        whole fabric at launch so nothing is needed; the service fleet
        overrides this to park idle workers on the lanes a grow is
        about to un-park."""

    @staticmethod
    def _final_membership(reports: dict, n0: int) -> int:
        """The rank count after rank 0's last recorded rank reshape."""
        rep = reports.get(0)
        if rep is None or len(rep) < 6:
            return n0
        resh = [r for r in rep[5]
                if r.extra.get("kind") == "rank_reshape"]
        return resh[-1].to_config.nranks if resh else n0

    @staticmethod
    def _stop_parked(procs, channels) -> None:
        """Release every still-parked process from its control wait."""
        for r, p in enumerate(procs):
            if p.is_alive():
                try:
                    channels[r].put({"kind": "stop"})
                except (OSError, ValueError):
                    pass

    @staticmethod
    def _reap(procs) -> None:
        started = [p for p in procs if p.pid is not None]
        for p in started:
            p.join(timeout=10.0)
        for p in started:
            if p.is_alive():
                p.terminate()
                p.join(timeout=5.0)
        for p in started:
            try:
                p.close()
            except ValueError:  # refused to die; leave it to daemon fate
                pass

    @staticmethod
    def _drain(qs, close: bool = False) -> None:
        """Empty leftover queue traffic so exiting feeders can flush.

        ``close`` additionally releases the parent's queue handles —
        only safe once every worker has been joined.
        """
        for q in qs:
            try:
                while True:
                    q.get_nowait()
            except (_queue.Empty, OSError, ValueError):
                pass
            if close:
                try:
                    q.close()
                except (OSError, ValueError):
                    pass

    @staticmethod
    def _unlink_segments(spec: PhaseSpec, launch_id: str,
                         max_ranks: int, telemetry: bool = False,
                         trace: bool = False) -> None:
        """Remove every segment this launch can have created.

        Deterministic names make this independent of worker reports, so
        it covers crashed ranks too: field segments by field name, data
        plane slabs over the whole rank x slot name grid, and (when the
        launch carried them) the telemetry and trace plane segments.
        """
        plugset = getattr(spec.woven, "__pp_plugs__", None)
        fields = plugset.partitioned_fields() if plugset is not None else {}
        for f in fields:
            shm.unlink_by_name(shm.segment_name(launch_id, f))
        shm.unlink_pool(launch_id, max_ranks)
        shm.unlink_heaps(launch_id, max_ranks)
        if telemetry:
            from repro.telemetry import unlink_telemetry

            unlink_telemetry(launch_id)
        if trace:
            from repro.trace import unlink_trace

            unlink_trace(launch_id)

    @staticmethod
    def _merge_events(log: EventLog, reports: dict, stray: list) -> None:
        """Interleave every rank's event stream into the runtime log by
        virtual time (stable, so intra-rank order is preserved).
        ``stray`` carries the timelines retired ranks shipped when they
        re-parked.  Absorbed, not re-emitted: the children's wall/seq
        stamps are the recoverable cross-rank ordering — restamping
        parent-side would destroy it."""
        streams = [ev for rep in reports.values() for ev in rep[4]]
        merged = sorted(streams + list(stray), key=lambda ev: ev.vtime)
        for ev in merged:
            log.absorb(ev)

    # ------------------------------------------------------------------
    def _outcome(self, reports: dict, end: float) -> PhaseOutcome:
        """The most informative phase end across ranks, normalised.

        Preference order matches the simulated cluster: an adaptation
        carrying the snapshot beats one without, which beats an injected
        failure; anything else is genuine wreckage and raises.
        """
        reshapes = []
        if 0 in reports and len(reports[0]) >= 6:
            reshapes = list(reports[0][5])
        by_status: dict[str, list] = {}
        for r in sorted(reports):
            rep = reports[r]
            by_status.setdefault(rep[1], []).append(rep)
        if len(by_status) == 1 and _COMPLETED in by_status:
            value = reports[0][2] if 0 in reports else None
            return PhaseOutcome(PHASE_COMPLETED, end, value=value,
                                reshapes=reshapes)
        adapted = by_status.get(_ADAPTED, [])
        with_snap = [rep for rep in adapted if rep[2][0] is not None]
        pick = with_snap[0] if with_snap else (adapted[0] if adapted else None)
        if pick is not None:
            snapshot, step = pick[2]
            exc: BaseException = AdaptationExit(snapshot, step)
        elif _FAILED in by_status:
            safepoint, rank = by_status[_FAILED][0][2]
            exc = InjectedFailure(safepoint, rank)
        else:
            errors = by_status[_ERROR]
            # prefer the root cause over the shutdown fallout of peers
            # the parent terminated because of it.
            root = [rep for rep in errors if rep[2] != _TERMINATED_FALLOUT]
            first = root[0] if root else errors[0]
            raise RankFailure(first[0], RuntimeError(first[2]))
        out = self.normalise_unwind(exc, end)
        assert out is not None
        out.reshapes = reshapes
        return out
