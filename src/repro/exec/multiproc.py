"""Multiprocessing execution: real process ranks, shared-memory fields.

The first backend whose ranks actually run in parallel: each rank is a
``multiprocessing`` process (no GIL between ranks), partitioned fields
live in ``multiprocessing.shared_memory`` segments every rank maps
(:mod:`repro.dsm.shm`), and the rank collectives are bridged over
process-safe mailboxes (:mod:`repro.dsm.procmail`) so the whole
``Communicator`` algorithm layer runs unchanged.

What stays in the parent, and why:

* **the checkpoint store** — snapshots are funnelled to the master
  :class:`~repro.ckpt.store.CheckpointStore`
  (:mod:`repro.ckpt.funnel`), so delta baselines, adaptive anchors and
  shard sub-stores keep their cross-phase state and the
  :class:`~repro.exec.driver.PhaseDriver` restarts/adapts identically
  to every other backend;
* **segment unlinking** — workers create/attach but never unlink; the
  parent removes every segment of the launch in its ``finally``, by
  deterministic name, so a crashed rank cannot leak ``/dev/shm``
  entries;
* **unwind normalisation** — workers report their phase end as data
  (completed / adapted / failed / error), the parent reconstructs the
  most informative cooperative unwind across ranks (the same preference
  order as :class:`~repro.exec.cluster.SimClusterBackend`) and returns
  the one normal-form :class:`~repro.exec.base.PhaseOutcome`.

Start method: ``fork`` where available (Linux; supports dynamically
woven classes), else ``spawn`` — under ``spawn`` the woven class is
shipped as ``(base class, plug set)`` and re-woven in the child, so the
base class and its constructor arguments must be picklable/importable.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as _queue
import time
import traceback

import numpy as np

from repro.ckpt.failure import InjectedFailure
from repro.ckpt.funnel import CheckpointFunnel, FunnelStore
from repro.core.errors import AdaptationExit
from repro.core.modes import Capabilities, ExecConfig, Mode
from repro.dsm import shm
from repro.dsm.comm import RankContext, _bind
from repro.dsm.procmail import ProcCommunicator
from repro.dsm.simcluster import RankFailure
from repro.exec.base import (
    PHASE_COMPLETED,
    ExecutionBackend,
    PhaseOutcome,
    PhaseServices,
    PhaseSpec,
)
from repro.util.events import EventLog
from repro.vtime.clock import VClock

#: worker report statuses.
_COMPLETED = "completed"
_ADAPTED = "adapted"
_FAILED = "failed"
_ERROR = "error"

#: once one rank reports a failure, how long its peers get to finish
#: reporting before the parent terminates them (a rank-scoped failure
#: leaves peers blocked in a collective that will never complete).
_PEER_GRACE_SECONDS = 3.0

#: marker for ranks the parent terminated as collateral of another
#: rank's failure — never the root cause to raise.
_TERMINATED_FALLOUT = "terminated: a peer rank failed first"


def _preferred_start_method() -> str:
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def _portable_woven(woven: type) -> tuple[type, object | None]:
    """Ship a woven class as ``(base, plugset)`` when it is dynamic.

    ``plug`` builds its subclass at run time, which pickles by reference
    only in the process that built it; the base class plus the plug set
    is portable and re-weaves to an identical class in the child.
    """
    base = getattr(woven, "__pp_base__", None)
    if base is None:
        return woven, None
    return base, woven.__pp_plugs__


class _ChildTask:
    """Everything one worker process needs (picklable by construction)."""

    def __init__(self, rank: int, spec: PhaseSpec, services: PhaseServices,
                 backend: "MultiprocessBackend", channels, result_queue,
                 store: FunnelStore, launch_id: str) -> None:
        from dataclasses import replace

        base, self.plugs = _portable_woven(spec.woven)
        if self.plugs is not None:
            # ship the importable base, not the dynamic subclass: under
            # "spawn" the task is pickled, and the child re-weaves.
            spec = replace(spec, woven=base)
        if rank != 0 and spec.replay is not None \
                and spec.replay.snapshot is not None:
            # only member 0 restores from the snapshot payload
            # (make_context nulls it for other ranks anyway); don't
            # serialise it N times under "spawn".
            from repro.ckpt.replay import ReplayState

            spec = replace(spec, replay=ReplayState(
                target=spec.replay.target, snapshot=None))
        self.spec = spec
        self.machine = services.machine
        self.policy = services.policy
        self.ckpt_strategy = services.ckpt_strategy
        self.backend = backend
        self.channels = channels
        self.result_queue = result_queue
        self.store = store
        self.launch_id = launch_id

    def rebuild_spec(self) -> PhaseSpec:
        if self.plugs is None:
            return self.spec
        from dataclasses import replace

        from repro.core.rewriter import plug

        return replace(self.spec, woven=plug(self.spec.woven, self.plugs))


def _place_shared_fields(ctx, instance, comm, launch_id: str
                         ) -> shm.SegmentManager:
    """Move every partitioned ndarray field into a shared segment.

    Rank 0 allocates and seeds each segment from its constructor-built
    array (the authoritative copy, matching scatter-from-root
    semantics); the metadata broadcast orders creation before any
    attach.  Every rank then rebinds the field to the shared view.

    Fields declared ``whole_at_safepoints`` are deliberately left
    private: that declaration means every member re-assembles and then
    computes over the *whole* array each step (replicated whole-array
    writes), which would race on aliased pages.  Only fields whose
    writes stay inside the owner's partition (the ``ForMethod`` /
    scatter / halo discipline) are safe to alias.
    """
    manager = shm.SegmentManager(launch_id)
    rank = ctx.rank
    fields = sorted(f for f, part in ctx.partitioned.items()
                    if not part.whole_at_safepoints)
    if rank == 0:
        meta = {}
        for f in fields:
            arr = getattr(instance, f, None)
            if not isinstance(arr, np.ndarray):
                continue
            seg = manager.allocate(f, arr.shape, arr.dtype)
            view = seg.ndarray()
            view[...] = arr
            setattr(instance, f, view)
            meta[f] = (arr.shape, arr.dtype.str)
        if ctx.nranks > 1:
            comm.bcast(meta, root=0)
    else:
        meta = comm.bcast(None, root=0)
        for f, (shape, dtype) in meta.items():
            seg = manager.attach(f, shape, dtype)
            setattr(instance, f, seg.ndarray())
    ctx.shared_fields = set(manager.fields()) if rank == 0 else set(meta)
    return manager


def _rank_main(rank: int, task: _ChildTask) -> None:
    """One rank's life: context, shared fields, entry, one report."""
    spec = task.rebuild_spec()
    config = spec.config
    machine = task.machine
    log = EventLog()
    services = PhaseServices(
        machine=machine, log=log, store=task.store,
        policy=task.policy, ckpt_strategy=task.ckpt_strategy, advisor=None)
    clock = VClock(spec.start_vtime + machine.spawn_cost * rank)
    clock.contention = machine.contention_factor(rank, config.nranks)
    comm = ProcCommunicator(rank, config.nranks, machine, task.channels)
    rankctx = RankContext(rank=rank, nranks=config.nranks, clock=clock,
                          comm=comm)
    _bind(rankctx)
    manager: shm.SegmentManager | None = None
    status, data = _ERROR, "rank reported nothing"
    try:
        ctx = task.backend.make_context(spec, services, rankctx=rankctx)
        instance = spec.woven(*spec.ctor_args, **spec.ctor_kwargs)
        manager = _place_shared_fields(ctx, instance, comm, task.launch_id)
        ctx.bind(instance)
        result = getattr(instance, spec.entry)(*spec.entry_args)
        if rank == 0:
            ctx.ckpt_flush_barrier()
        status, data = _COMPLETED, result
    except AdaptationExit as ae:
        status, data = _ADAPTED, (ae.snapshot, ae.new_config)
    except InjectedFailure as fail:
        status, data = _FAILED, (fail.safepoint, fail.rank)
    except BaseException:  # noqa: BLE001 - shipped to the parent verbatim
        status, data = _ERROR, traceback.format_exc()
    finally:
        _bind(None)
        if manager is not None:
            # release the views so the mappings can close; the instance
            # is dead after this line on every path.
            for f in manager.fields():
                try:
                    setattr(instance, f, None)
                except Exception:  # noqa: BLE001 - cleanup must not mask
                    pass
            manager.close_all()
        # NB: the communicator is deliberately NOT closed here.  Exit
        # must wait for the queue feeders to flush: a peer may still be
        # draining collective payloads this rank sent (member 0 gathers
        # state during a cooperative unwind), and cancelling the feeder
        # join would drop them.  The parent drains leftover channel
        # traffic before joining, so a flushing exit cannot block.
        task.result_queue.put(
            (rank, status, data, clock.now, list(log)))


class MultiprocessBackend(ExecutionBackend):
    """SPMD ranks as processes, partitioned fields in shared memory.

    Honest capabilities: rank collectives yes (bridged over process
    mailboxes), team regions no (a rank is one process, one line of
    execution — pin ``HYBRID`` shapes to the simulated backends
    instead), shared fields yes.
    """

    name = "multiproc"
    #: modes this backend can launch when pinned by name (consulted by
    #: ``BackendRegistry.supports`` / the advisor ladder).
    modes = (Mode.DISTRIBUTED,)

    def __init__(self, start_method: str | None = None,
                 join_timeout: float = 120.0) -> None:
        self.start_method = start_method or _preferred_start_method()
        self.join_timeout = join_timeout

    def capabilities(self, config: ExecConfig) -> Capabilities:
        return Capabilities(rank_collectives=True, shared_fields=True)

    # ------------------------------------------------------------------
    def launch(self, spec: PhaseSpec, services: PhaseServices
               ) -> PhaseOutcome:
        n = spec.config.nranks
        mpctx = mp.get_context(self.start_method)
        launch_id = shm.new_launch_id()
        channels = [mpctx.Queue() for _ in range(n)]
        result_queue = mpctx.Queue()
        funnel = CheckpointFunnel(services.store, mpctx, n)
        procs: list = []
        try:
            for r in range(n):
                task = _ChildTask(r, spec, services, self, channels,
                                  result_queue, funnel.client(r), launch_id)
                p = mpctx.Process(target=_rank_main, args=(r, task),
                                  daemon=True, name=f"mp-rank-{r}")
                procs.append(p)
                p.start()
            # serve checkpoints only after all forks: no duplicated thread.
            funnel.start()
            reports = self._collect(procs, result_queue, n)
        finally:
            # drain before joining: exiting workers block until their
            # queue feeders flush, and nothing reads the rank channels
            # any more once the phase outcome is decided.
            self._drain(channels)
            self._reap(procs)
            funnel.stop()
            self._drain(channels + [result_queue], close=True)
            self._unlink_segments(spec, launch_id)
        self._merge_events(services.log, reports)
        end = max([spec.start_vtime]
                  + [rep[3] for rep in reports.values() if rep[3] is not None])
        if any(rep[1] == _FAILED for rep in reports.values()):
            # workers fired their own *copies* of the injector; reflect
            # it on the parent's so recovery does not re-inject forever.
            # Keyed off the reports, not the outcome: a concurrent
            # adaptation may outrank the failure, but the injection
            # still happened (thread backends share the injector object
            # and remember it the same way).
            spec.injector.mark_fired()
        return self._outcome(reports, n, end)

    # ------------------------------------------------------------------
    def _collect(self, procs, result_queue, n: int) -> dict:
        """Gather one report per rank; cut stragglers loose on failure.

        Cooperative unwinds arrive from every rank (plans and injectors
        are evaluated locally at the same safe point).  A rank-scoped
        failure or a crash leaves peers blocked in a collective, so once
        a failure report (or a dead child without a report) shows up,
        peers get a grace period and are then terminated.
        """
        reports: dict[int, tuple] = {}
        deadline = time.monotonic() + self.join_timeout
        failure_seen_at: float | None = None
        while len(reports) < n:
            try:
                rep = result_queue.get(timeout=0.05)
                reports[rep[0]] = rep
                if rep[1] in (_FAILED, _ERROR) and failure_seen_at is None:
                    failure_seen_at = time.monotonic()
                continue
            except _queue.Empty:
                pass
            now = time.monotonic()
            dead = [r for r, p in enumerate(procs)
                    if r not in reports and not p.is_alive()
                    and p.exitcode is not None]
            if dead:
                # a rank can flush its report and exit between the poll
                # above and the liveness scan: drain once more before
                # declaring anyone dead-without-reporting.
                try:
                    while True:
                        rep = result_queue.get_nowait()
                        reports[rep[0]] = rep
                        if rep[1] in (_FAILED, _ERROR) \
                                and failure_seen_at is None:
                            failure_seen_at = now
                except _queue.Empty:
                    pass
            for r in dead:
                if r not in reports:
                    p = procs[r]
                    reports[r] = (r, _ERROR,
                                  f"rank {r} died with exit code "
                                  f"{p.exitcode} before reporting",
                                  None, [])
                    if failure_seen_at is None:
                        failure_seen_at = now
            if failure_seen_at is not None \
                    and now - failure_seen_at > _PEER_GRACE_SECONDS:
                for r, p in enumerate(procs):
                    if r not in reports:
                        p.terminate()
                        reports[r] = (r, _ERROR, _TERMINATED_FALLOUT,
                                      None, [])
                break
            if now > deadline:
                for r, p in enumerate(procs):
                    if r not in reports:
                        p.terminate()
                        reports[r] = (r, _ERROR, f"rank {r} hung", None, [])
                break
        return reports

    @staticmethod
    def _reap(procs) -> None:
        started = [p for p in procs if p.pid is not None]
        for p in started:
            p.join(timeout=10.0)
        for p in started:
            if p.is_alive():
                p.terminate()
                p.join(timeout=5.0)
        for p in started:
            try:
                p.close()
            except ValueError:  # refused to die; leave it to daemon fate
                pass

    @staticmethod
    def _drain(qs, close: bool = False) -> None:
        """Empty leftover queue traffic so exiting feeders can flush.

        ``close`` additionally releases the parent's queue handles —
        only safe once every worker has been joined.
        """
        for q in qs:
            try:
                while True:
                    q.get_nowait()
            except (_queue.Empty, OSError, ValueError):
                pass
            if close:
                try:
                    q.close()
                except (OSError, ValueError):
                    pass

    @staticmethod
    def _unlink_segments(spec: PhaseSpec, launch_id: str) -> None:
        """Remove every segment this launch can have created.

        Deterministic names make this independent of worker reports, so
        it covers crashed ranks too.
        """
        plugset = getattr(spec.woven, "__pp_plugs__", None)
        fields = plugset.partitioned_fields() if plugset is not None else {}
        for f in fields:
            shm.unlink_by_name(shm.segment_name(launch_id, f))

    @staticmethod
    def _merge_events(log: EventLog, reports: dict) -> None:
        """Interleave every rank's event stream into the runtime log by
        virtual time (stable, so intra-rank order is preserved)."""
        merged = sorted((ev for rep in reports.values() for ev in rep[4]),
                        key=lambda ev: ev.vtime)
        for ev in merged:
            log.emit(ev.kind, vtime=ev.vtime, rank=ev.rank, **ev.data)

    # ------------------------------------------------------------------
    def _outcome(self, reports: dict, n: int, end: float) -> PhaseOutcome:
        """The most informative phase end across ranks, normalised.

        Preference order matches the simulated cluster: an adaptation
        carrying the snapshot beats one without, which beats an injected
        failure; anything else is genuine wreckage and raises.
        """
        by_status: dict[str, list] = {}
        for r in sorted(reports):
            rep = reports[r]
            by_status.setdefault(rep[1], []).append(rep)
        if len(by_status) == 1 and _COMPLETED in by_status:
            value = reports[0][2] if 0 in reports else None
            return PhaseOutcome(PHASE_COMPLETED, end, value=value)
        adapted = by_status.get(_ADAPTED, [])
        with_snap = [rep for rep in adapted if rep[2][0] is not None]
        pick = with_snap[0] if with_snap else (adapted[0] if adapted else None)
        if pick is not None:
            snapshot, step = pick[2]
            exc: BaseException = AdaptationExit(snapshot, step)
        elif _FAILED in by_status:
            safepoint, rank = by_status[_FAILED][0][2]
            exc = InjectedFailure(safepoint, rank)
        else:
            errors = by_status[_ERROR]
            # prefer the root cause over the shutdown fallout of peers
            # the parent terminated because of it.
            root = [rep for rep in errors if rep[2] != _TERMINATED_FALLOUT]
            first = root[0] if root else errors[0]
            raise RankFailure(first[0], RuntimeError(first[2]))
        out = self.normalise_unwind(exc, end)
        assert out is not None
        return out
