"""Shared-memory execution: a malleable thread team on one node."""

from __future__ import annotations

from repro.core.modes import Capabilities, ExecConfig
from repro.exec.base import (
    PHASE_COMPLETED,
    ExecutionBackend,
    PhaseOutcome,
    PhaseServices,
    PhaseSpec,
)
from repro.smp.team import ThreadTeam


class ThreadTeamBackend(ExecutionBackend):
    """OpenMP-like execution on a :class:`ThreadTeam`.

    The backend — not the context — owns the team: it is created at
    ``launch``, its clock seeded to the phase start, and every worker
    thread joined in the ``finally`` on all paths, so adaptation chains
    and restarts cannot accumulate leaked workers.

    ``elastic_ranks``: a team's workers *are* its processing elements —
    the existing :class:`~repro.smp.team.ResizeOp` malleability already
    reshapes that dimension at safe points without a relaunch, so the
    backend advertises the elastic capability and the safe-point
    protocol records those resizes as in-place reshapes.
    """

    name = "threads"

    def capabilities(self, config: ExecConfig) -> Capabilities:
        return Capabilities(team_regions=True, elastic_ranks=True)

    def launch(self, spec: PhaseSpec, services: PhaseServices
               ) -> PhaseOutcome:
        from repro import telemetry, trace

        team = ThreadTeam(services.machine, size=spec.config.workers,
                          log=services.log)
        # the safe-point protocol and the checkpoint path both run on the
        # calling thread (team workers only execute region bodies), so one
        # page per launch captures the whole team's coordination metrics.
        plane = self.telemetry_plane(services, 1)
        if plane is not None:
            telemetry.bind(plane.writer(0))
        trplane = self.trace_plane(services, 1)
        if trplane is not None:
            trace.bind(trplane.writer(0))
        try:
            ctx = self.make_context(spec, services, team=team)
            ctx.seed_clock(spec.start_vtime)
            try:
                value = self.run_entry(ctx, spec)
                ctx.ckpt_flush_barrier()
                return PhaseOutcome(PHASE_COMPLETED, self._end(team, spec),
                                    value=value, reshapes=ctx.reshapes)
            except BaseException as exc:  # noqa: BLE001 - normalised below
                out = self.normalise_unwind(exc, self._end(team, spec))
                if out is None:
                    raise
                out.reshapes = ctx.reshapes
                return out
        finally:
            team.shutdown()
            telemetry.bind(None)
            trace.bind(None)
            self.scrape_telemetry(plane, services)
            self.scrape_trace(trplane, services)

    @staticmethod
    def _end(team: ThreadTeam, spec: PhaseSpec) -> float:
        return max(spec.start_vtime, team.clock.now)
