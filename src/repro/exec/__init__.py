"""Pluggable execution backends — the launch layer under the Runtime.

One woven code base, many execution substrates: every launch path
(sequential, thread team, simulated cluster, hybrid, and anything a user
registers) implements the same :class:`ExecutionBackend` interface —
``launch(PhaseSpec) -> PhaseOutcome`` plus clock seeding, context
creation, worker lifecycle and unwind normalisation.  The
:class:`PhaseDriver` resolves a backend per phase through a
:class:`BackendRegistry`, so adaptation can reshape not just the
resource shape but the backend itself, and a new substrate (multiprocess,
real MPI, ...) is a drop-in module rather than a Runtime rewrite.
"""

from repro.exec.base import (
    PHASE_ADAPTED,
    PHASE_COMPLETED,
    PHASE_FAILED,
    ExecutionBackend,
    PhaseOutcome,
    PhaseServices,
    PhaseSpec,
)
from repro.exec.cluster import SimClusterBackend
from repro.exec.driver import PhaseDriver
from repro.exec.hybrid import HybridBackend
from repro.exec.multiproc import MultiprocessBackend
from repro.exec.registry import (
    BackendRegistry,
    build_default_registry,
    default_registry,
    register_backend,
)
from repro.exec.sequential import SequentialBackend
from repro.exec.sockets import SocketsBackend
from repro.exec.threads import ThreadTeamBackend

__all__ = [
    "BackendRegistry",
    "ExecutionBackend",
    "HybridBackend",
    "MultiprocessBackend",
    "PHASE_ADAPTED",
    "PHASE_COMPLETED",
    "PHASE_FAILED",
    "PhaseDriver",
    "PhaseOutcome",
    "PhaseServices",
    "PhaseSpec",
    "SequentialBackend",
    "SimClusterBackend",
    "SocketsBackend",
    "ThreadTeamBackend",
    "build_default_registry",
    "default_registry",
    "register_backend",
]
