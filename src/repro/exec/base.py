"""The execution-backend contract: one interface behind every launch.

The paper's central claim is that one woven code base runs unchanged
across sequential, shared-memory, distributed and hybrid executions.
This module is the seam that makes the claim structural rather than
incidental: a phase launch is described by a :class:`PhaseSpec`, executed
by an :class:`ExecutionBackend`, and summarised as a :class:`PhaseOutcome`
— the :class:`~repro.exec.driver.PhaseDriver` never branches on *how* a
configuration executes.

A backend owns, for the duration of one :meth:`ExecutionBackend.launch`:

* **context creation** — building the
  :class:`~repro.core.context.ExecutionContext` with the backend's
  :class:`~repro.core.modes.Capabilities` (which coordination services
  the woven code may use) and the per-rank replay cursor;
* **clock seeding** — phase clocks start at the previous phase's end
  time so virtual time is continuous across adaptations and restarts;
* **worker lifecycle** — thread teams / rank threads are created inside
  ``launch`` and joined before it returns, on every path (including
  unwinds), so adaptations and restarts cannot leak workers;
* **unwind / error normalisation** — the two cooperative unwind signals
  (:class:`~repro.core.errors.AdaptationExit`,
  :class:`~repro.ckpt.failure.InjectedFailure`) are caught — unwrapped
  from :class:`~repro.dsm.simcluster.RankFailure` where necessary — and
  returned as a ``PhaseOutcome`` carrying the phase's end time, so the
  driver sees one normal-form result for every backend.  Anything else
  propagates as a genuine error.

Adding a new execution substrate (multiprocess, real MPI, ...) means
writing one backend module and registering it — ``core/`` is untouched.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from repro.ckpt.failure import FailureInjector, InjectedFailure
from repro.ckpt.policy import CheckpointPolicy
from repro.ckpt.replay import ReplayState
from repro.ckpt.store import CheckpointStore
from repro.core.adaptation import AdaptationPlan
from repro.core.errors import AdaptationExit
from repro.core.modes import Capabilities, ExecConfig
from repro.core.plugs import PlugSet
from repro.util.events import EventLog
from repro.vtime.machine import MachineModel

#: phase outcome statuses (match :class:`repro.core.runtime.PhaseReport`).
PHASE_COMPLETED = "completed"
PHASE_ADAPTED = "adapted"
PHASE_FAILED = "failed"


@dataclass(frozen=True)
class PhaseSpec:
    """Everything one launch segment needs: the *what* of a phase.

    Immutable by design — a relaunch after an adaptation or restart is a
    fresh spec, never a mutated one.
    """

    woven: type
    ctor_args: tuple = ()
    ctor_kwargs: dict = field(default_factory=dict)
    entry: str = "run"
    entry_args: tuple = ()
    config: ExecConfig = field(default_factory=ExecConfig.sequential)
    plan: AdaptationPlan = field(default_factory=AdaptationPlan)
    injector: FailureInjector = field(default_factory=FailureInjector)
    replay: ReplayState | None = None
    start_vtime: float = 0.0


@dataclass
class PhaseOutcome:
    """Normal form of one phase: how it ended, when, and with what.

    ``status`` is one of :data:`PHASE_COMPLETED` / :data:`PHASE_ADAPTED`
    / :data:`PHASE_FAILED`; exactly one of ``value`` / ``adaptation`` /
    ``failure`` is meaningful for each.  ``end_vtime`` is always valid —
    backends measure it on unwind paths too, which is what keeps virtual
    time continuous across reshapes and recoveries.
    """

    status: str
    end_vtime: float
    value: Any = None
    adaptation: AdaptationExit | None = None
    failure: InjectedFailure | None = None
    #: AdaptationRecords of in-place reshapes (elastic rank membership
    #: transitions, live team resizes) applied *within* the phase — they
    #: never unwind, so this is how they reach the driver's run record.
    reshapes: list = field(default_factory=list)


@dataclass
class PhaseServices:
    """Runtime-owned collaborators a backend launches phases against."""

    machine: MachineModel
    log: EventLog
    store: CheckpointStore | None
    policy: CheckpointPolicy
    ckpt_strategy: str
    advisor: Any = None
    #: the run's :class:`~repro.telemetry.registry.MetricsRegistry`, or
    #: ``None`` with telemetry disabled.  Backends that see one create a
    #: telemetry plane per launch and scrape it back into the registry.
    metrics: Any = None
    #: the run's :class:`~repro.trace.assemble.TraceCollector`, or
    #: ``None`` with tracing disabled.  Backends that see one create a
    #: trace plane per launch (ring capacity comes from the collector —
    #: small in flight-recorder mode) and scrape it back at drain time.
    trace: Any = None


class ExecutionBackend(ABC):
    """One way of executing a phase of a woven application.

    Stateless with respect to any particular run: the same backend
    instance serves every runtime that resolves it, with all per-run
    state carried by the :class:`PhaseSpec` / :class:`PhaseServices`
    pair.  Subclasses implement :meth:`launch` and declare their
    :meth:`capabilities`.
    """

    #: registry name; must be unique within a registry.
    name: str = "abstract"

    #: semantic modes this backend can launch even when it is not the
    #: mode's default — consulted by ``BackendRegistry.supports`` (and
    #: through it the advisor ladder and Grid mapping policies), and by
    #: ``resolve`` as a fallback when a mode has no default registered.
    #: Mode defaults need not repeat themselves here.
    modes: tuple = ()

    @abstractmethod
    def capabilities(self, config: ExecConfig) -> Capabilities:
        """Coordination services the context may rely on under this
        backend for the given configuration."""

    @abstractmethod
    def launch(self, spec: PhaseSpec, services: PhaseServices
               ) -> PhaseOutcome:
        """Execute one phase to completion, adaptation or failure.

        Must return a :class:`PhaseOutcome` for the three normal phase
        ends and re-raise anything else; must join every worker it
        created before returning, on every path.
        """

    def calibrate(self, machine: MachineModel) -> MachineModel:
        """Per-backend cost-model overrides for transition ranking.

        The shared :class:`MachineModel` describes the simulated cluster;
        a backend whose real substrate behaves differently (the
        multiprocessing backend's fork + queue latency is nothing like
        the modelled network) returns a copy with the relevant constants
        replaced.  Consumed by the advisor when ranking reshape against
        relaunch; the returned model never feeds the phase's virtual
        clocks, so calibration cannot perturb cross-backend vtime parity.
        """
        return machine

    # ------------------------------------------------------------------
    # shared helpers for concrete backends
    # ------------------------------------------------------------------
    def make_context(self, spec: PhaseSpec, services: PhaseServices,
                     rankctx=None, team=None, reshaper=None):
        """Build the phase's :class:`ExecutionContext`.

        Each rank/phase gets its own replay cursor over the shared
        snapshot (replay state is consumed as safe points pass); only
        member 0 carries the snapshot payload.
        """
        from repro.core.context import ExecutionContext, clone_policy

        plugset: PlugSet = getattr(spec.woven, "__pp_plugs__", PlugSet())
        rep = None
        if spec.replay is not None:
            rep = ReplayState(
                target=spec.replay.target,
                snapshot=spec.replay.snapshot
                if (rankctx is None or rankctx.rank == 0) else None)
        return ExecutionContext(
            config=spec.config, machine=services.machine, log=services.log,
            store=services.store, policy=clone_policy(services.policy),
            injector=spec.injector, plan=spec.plan, replay=rep,
            safedata=plugset.safedata_fields(),
            partitioned=plugset.partitioned_fields(),
            ckpt_strategy=services.ckpt_strategy, rankctx=rankctx, team=team,
            advisor=services.advisor,
            caps=self.capabilities(spec.config), reshaper=reshaper)

    def telemetry_plane(self, services: PhaseServices, max_ranks: int,
                        launch_id: str | None = None):
        """The launch's telemetry plane, or ``None`` when disabled.

        Thread substrates pass no ``launch_id`` and get a process-local
        plane; process substrates pass their launch id and get a shared
        segment children attach by deterministic name.
        """
        if services.metrics is None:
            return None
        from repro.telemetry import TelemetryPlane

        if launch_id is None:
            return TelemetryPlane.local(max_ranks, backend=self.name)
        return TelemetryPlane.create(launch_id, max_ranks,
                                     backend=self.name)

    def scrape_telemetry(self, plane, services: PhaseServices) -> None:
        """Drain-time scrape: fold every page — parked ones included —
        into the run's registry, then drop the plane's mapping.  Called
        exactly once per launch, from the backend's ``finally``."""
        if plane is None:
            return
        try:
            services.metrics.absorb(plane.scrape(include_frozen=True))
        finally:
            plane.close()

    def trace_plane(self, services: PhaseServices, max_ranks: int,
                    launch_id: str | None = None):
        """The launch's trace plane, or ``None`` when tracing is off.

        Same shape as :meth:`telemetry_plane`: thread substrates get a
        process-local plane, process substrates a shared segment the
        children attach by deterministic name.  Ring capacity comes
        from the run's collector (small in flight-recorder mode).
        """
        if services.trace is None:
            return None
        from repro.trace import TracePlane

        capacity = services.trace.capacity
        if launch_id is None:
            return TracePlane.local(max_ranks, capacity=capacity,
                                    backend=self.name)
        return TracePlane.create(launch_id, max_ranks, capacity=capacity,
                                 backend=self.name)

    def scrape_trace(self, plane, services: PhaseServices) -> None:
        """Drain-time ring scrape: fold every rank's records — parked
        and dead ranks included, their rings outlive them in the
        segment — into the run's collector, then drop the mapping."""
        if plane is None:
            return
        try:
            services.trace.absorb(plane.scrape(include_frozen=True),
                                  backend=self.name)
        finally:
            plane.close()

    def run_entry(self, ctx, spec: PhaseSpec) -> Any:
        """Instantiate the woven class, bind it, and call the entry."""
        instance = spec.woven(*spec.ctor_args, **spec.ctor_kwargs)
        ctx.bind(instance)
        return getattr(instance, spec.entry)(*spec.entry_args)

    @staticmethod
    def normalise_unwind(exc: BaseException, end_vtime: float
                         ) -> PhaseOutcome | None:
        """Map a cooperative unwind to its outcome; ``None`` otherwise."""
        if isinstance(exc, AdaptationExit):
            return PhaseOutcome(PHASE_ADAPTED, end_vtime, adaptation=exc)
        if isinstance(exc, InjectedFailure):
            return PhaseOutcome(PHASE_FAILED, end_vtime, failure=exc)
        return None
