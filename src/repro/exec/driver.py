"""PhaseDriver: the mode-agnostic phase loop behind ``Runtime.run``.

The driver owns the part of the paper's Figure 2 that is independent of
*how* a phase executes: launch the current configuration through the
backend the registry resolves for it, then react to the phase outcome —

* **completed** — flush checkpoints, mark the ledger, return;
* **adapted** — pay the live/restart transition cost, build the replay
  state (in-memory snapshot for live adaptations, the checkpoint read
  back from disk for restart-based ones) and relaunch in the new
  configuration — which may name a different *backend*, not just a
  different shape;
* **failed** — with ``auto_recover``, restart from the newest durable
  checkpoint, optionally in a different configuration (the paper's
  Figure 6 experiment); otherwise re-raise with the ledger left
  ``running`` so the next run replays.

Reshape beats restart where the backend allows it: a backend that
advertises ``Capabilities.elastic_ranks`` applies rank-count adaptation
steps *inside* the phase (a membership transition, no unwind — see
:mod:`repro.elastic`), so the driver never has to relaunch for them; it
only folds the reported in-place reshapes into the run record and keeps
the relaunch machinery as the fallback and the recovery path.

Recovery reads prefer the master checkpoint format but no longer depend
on it: when only ``STRATEGY_LOCAL`` per-rank shards exist on disk, the
driver reassembles a master-format snapshot from the same-shape shards
(:meth:`CheckpointStore.assemble_from_shards`).

Because each relaunch resolves its backend afresh, the full Mode matrix
(and any backend registered at run time) flows through the one loop —
the driver contains no mode conditionals at all.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable

from repro.ckpt.replay import ReplayState
from repro.ckpt.snapshot import SnapshotCorrupt
from repro.core.adaptation import AdaptationRecord
from repro.core.errors import WeaveError
from repro.core.modes import ExecConfig
from repro.exec.base import (
    PHASE_ADAPTED,
    PHASE_COMPLETED,
    PhaseServices,
    PhaseSpec,
)
from repro.exec.registry import BackendRegistry, default_registry


class PhaseDriver:
    """Drives one application run as a chain of backend launches."""

    def __init__(self, services: PhaseServices, ledger,
                 registry: BackendRegistry | None = None,
                 restart_penalty: float = 0.02,
                 adapt_penalty: float = 0.01) -> None:
        self.services = services
        self.ledger = ledger
        self.registry = registry if registry is not None else default_registry()
        self.restart_penalty = restart_penalty
        self.adapt_penalty = adapt_penalty

    # ------------------------------------------------------------------
    def drive(self,
              woven: type,
              ctor_args: tuple,
              ctor_kwargs: dict,
              entry: str,
              entry_args: tuple,
              config: ExecConfig,
              plan,
              injector,
              replay: ReplayState | None,
              auto_recover: bool = False,
              max_restarts: int = 8,
              recover_config: Callable[[int], ExecConfig] | None = None):
        from repro.core.runtime import PhaseReport, RunResult

        services = self.services
        store = services.store
        #: partitioned declarations travel with the woven class; shard
        #: reassembly needs the layouts to recombine per-rank regions.
        plugset = getattr(woven, "__pp_plugs__", None)
        partitioned = plugset.partitioned_fields() if plugset else {}
        vtime = 0.0
        phases: list[PhaseReport] = []
        adaptations: list[AdaptationRecord] = []
        restarts = 0

        while True:
            self.ledger.mark_running()
            backend = self.registry.resolve(config)
            spec = PhaseSpec(
                woven=woven, ctor_args=ctor_args, ctor_kwargs=ctor_kwargs,
                entry=entry, entry_args=entry_args, config=config,
                plan=plan, injector=injector, replay=replay,
                start_vtime=vtime)
            # one phase span on the driver track per launch attempt —
            # wall-side only, through the collector's own writer (the
            # driver is not a rank, so it never competes with a rank's
            # thread-local tracer binding).
            tracing = services.trace
            t0 = perf_counter() if tracing is not None else 0.0
            try:
                out = backend.launch(spec, services)
            finally:
                if tracing is not None:
                    from repro.trace import schema as _tc

                    tracing.driver.span(_tc.PHASE, t0, a=vtime,
                                        b=float(len(phases)))
            if out.reshapes:
                # in-place reshapes (elastic rank transitions, live team
                # resizes) never unwind; the backend reports them so the
                # run record stays complete — and the phase's *current*
                # shape is the last one they reached.
                adaptations.extend(out.reshapes)
                config = out.reshapes[-1].to_config

            if out.status == PHASE_COMPLETED:
                store.flush()  # all checkpoints durable before "done"
                self.ledger.mark_completed()
                phases.append(PhaseReport(config, vtime, out.end_vtime,
                                          PHASE_COMPLETED))
                return RunResult(value=out.value, vtime=out.end_vtime,
                                 events=services.log, final_config=config,
                                 phases=phases, restarts=restarts,
                                 adaptations=adaptations)

            if out.status == PHASE_ADAPTED:
                ae = out.adaptation
                phases.append(PhaseReport(config, vtime, out.end_vtime,
                                          PHASE_ADAPTED))
                step = ae.new_config
                snap = ae.snapshot
                if step.via_restart:
                    store.flush()
                    if tracing is not None:
                        # restore-side store spans (chunk-fetch fan-out)
                        # record on the driver track.
                        from repro.trace.plane import bind as _tbind

                        _tbind(tracing.driver)
                    try:
                        try:
                            # the checkpoint at the exit point, regardless
                            # of whether newer checkpoints exist on disk.
                            disk = store.read(step.at)
                        except (SnapshotCorrupt, OSError):
                            # no master-format file: a STRATEGY_LOCAL phase
                            # saved per-rank shards instead — reassemble.
                            disk = store.assemble_from_shards(
                                step.at, partitioned)
                    finally:
                        if tracing is not None:
                            _tbind(None)
                    if disk is None:
                        raise WeaveError(
                            "restart-based adaptation found no checkpoint "
                            f"at safe point {step.at}") from ae
                    disk.meta["from_disk"] = True
                    snap = disk
                    vtime = out.end_vtime + self.restart_penalty
                else:
                    vtime = out.end_vtime + self.adapt_penalty
                adaptations.append(AdaptationRecord(
                    at_count=step.at, from_config=config,
                    to_config=step.config, via_restart=step.via_restart,
                    vtime=vtime))
                replay = ReplayState(target=step.at, snapshot=snap)
                config = step.config
                continue

            # failed
            fail = out.failure
            phases.append(PhaseReport(config, vtime, out.end_vtime,
                                      "failed"))
            services.log.emit("failure", vtime=out.end_vtime,
                              count=fail.safepoint)
            if tracing is not None:
                # the flight-recorder black box: the last-N decoded
                # records of every rank's ring (the dead rank's ring
                # outlived it in the launch segment and was scraped by
                # the backend's drain).  Rides the raised failure and
                # the assembled document's otherData alike.
                box = tracing.flight_snapshot()
                tracing.flights.append({"safepoint": fail.safepoint,
                                        "rank": fail.rank, "ranks": box})
                fail.flight = box
            # recovery (this run's or a later one's) must only ever see
            # fully-written files.
            store.flush()
            if not auto_recover:
                raise fail  # ledger stays "running": next run() replays
            restarts += 1
            if restarts > max_restarts:
                raise fail
            if tracing is not None:
                from repro.trace.plane import bind as _tbind

                _tbind(tracing.driver)
            try:
                snap = store.read_latest()
                if snap is None:
                    # survivable STRATEGY_LOCAL: reassemble the newest
                    # complete shard set into a master-format snapshot.
                    snap = store.assemble_latest_from_shards(partitioned)
            finally:
                if tracing is not None:
                    _tbind(None)
            if snap is not None:
                snap.meta["from_disk"] = True
                replay = ReplayState.from_snapshot(snap)
            else:
                replay = None  # no checkpoint: recompute from scratch
            if recover_config is not None:
                config = recover_config(restarts)
            vtime = out.end_vtime + self.restart_penalty
            continue
