"""Hybrid execution: aggregates of thread teams (one team per rank)."""

from __future__ import annotations

from repro.core.modes import Capabilities, ExecConfig
from repro.exec.base import PhaseServices, PhaseSpec
from repro.exec.cluster import SimClusterBackend
from repro.smp.team import ThreadTeam


class HybridBackend(SimClusterBackend):
    """The composition: cluster ranks, each running a thread team.

    Inherits the cluster lifecycle and failure normalisation; adds the
    per-rank team (created in the rank entry, joined in its ``finally``
    by the base class) and both capability families — the team protocol
    runs per rank, with rank-level collectives run by one thread per
    rank.

    Deliberately *not* ``elastic_ranks`` (so the inherited launch wires
    no reshaper): the team dimension reshapes live per rank, but a
    rank-count change would need the membership protocol to compose a
    joining rank's entry replay with its team's region replay, which is
    unimplemented — rank reshapes relaunch, the documented fallback.
    """

    name = "hybrid"

    def capabilities(self, config: ExecConfig) -> Capabilities:
        return Capabilities(team_regions=True, rank_collectives=True)

    def rank_team(self, spec: PhaseSpec,
                  services: PhaseServices) -> ThreadTeam:
        return ThreadTeam(services.machine, size=spec.config.workers,
                          log=services.log)
