"""Distributed execution: SPMD ranks on a simulated cluster."""

from __future__ import annotations

from repro.ckpt.failure import InjectedFailure
from repro.core.errors import AdaptationExit
from repro.core.modes import Capabilities, ExecConfig
from repro.dsm.comm import current_rank
from repro.dsm.simcluster import RankFailure, SimCluster
from repro.exec.base import (
    PHASE_COMPLETED,
    ExecutionBackend,
    PhaseOutcome,
    PhaseServices,
    PhaseSpec,
)
from repro.smp.team import ThreadTeam


class SimClusterBackend(ExecutionBackend):
    """MPI-like execution over a fresh :class:`SimCluster` per phase.

    The backend owns the cluster's lifecycle (rank threads are joined by
    ``SimCluster.run``; the communicator is torn down in the ``finally``)
    and normalises rank failures: a :class:`RankFailure` is unwrapped to
    the most informative cooperative unwind gathered across ranks — an
    :class:`AdaptationExit` carrying the snapshot beats one without,
    which beats an :class:`InjectedFailure` — so the driver never sees
    rank-level wreckage when a normal unwind caused it.
    """

    name = "simcluster"

    def capabilities(self, config: ExecConfig) -> Capabilities:
        return Capabilities(rank_collectives=True)

    # hook: HybridBackend equips each rank with a thread team.
    def rank_team(self, spec: PhaseSpec,
                  services: PhaseServices) -> ThreadTeam | None:
        return None

    def launch(self, spec: PhaseSpec, services: PhaseServices
               ) -> PhaseOutcome:
        cluster = SimCluster(spec.config.nranks, services.machine,
                             services.log, start_time=spec.start_vtime)

        def rank_entry():
            rankctx = current_rank()
            team = self.rank_team(spec, services)
            try:
                if team is not None:
                    team.clock.advance_to(rankctx.clock.now)
                ctx = self.make_context(spec, services, rankctx=rankctx,
                                        team=team)
                result = self.run_entry(ctx, spec)
                if team is not None:
                    rankctx.clock.advance_to(team.clock.now)
                if rankctx.rank == 0:
                    ctx.ckpt_flush_barrier()
                return result
            finally:
                if team is not None:
                    team.shutdown()

        try:
            results = cluster.run(rank_entry)
            return PhaseOutcome(PHASE_COMPLETED, self._end(cluster, spec),
                                value=results[0])
        except RankFailure as rf:
            cause = self._root_unwind(cluster, rf)
            out = self.normalise_unwind(cause, self._end(cluster, spec))
            if out is None:
                raise
            return out
        finally:
            cluster.shutdown()

    # ------------------------------------------------------------------
    @staticmethod
    def _end(cluster: SimCluster, spec: PhaseSpec) -> float:
        return max(spec.start_vtime, cluster.max_time)

    @staticmethod
    def _root_unwind(cluster: SimCluster, rf: RankFailure) -> BaseException:
        """The most informative cause gathered across failed ranks."""
        causes = [e.cause for e in cluster.errors]
        exits = [c for c in causes if isinstance(c, AdaptationExit)]
        with_snap = [c for c in exits if c.snapshot is not None]
        if with_snap:
            return with_snap[0]
        if exits:
            return exits[0]
        fails = [c for c in causes if isinstance(c, InjectedFailure)]
        if fails:
            return fails[0]
        return rf
