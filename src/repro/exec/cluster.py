"""Distributed execution: SPMD ranks on a simulated cluster."""

from __future__ import annotations

from repro.ckpt.failure import InjectedFailure
from repro.core.adaptation import AdaptStep
from repro.core.errors import AdaptationExit
from repro.core.modes import Capabilities, ExecConfig
from repro.dsm.comm import current_rank
from repro.dsm.simcluster import RankFailure, SimCluster
from repro.elastic import (
    JoinReplay,
    RankReshaper,
    RankRetired,
    ReshapePlan,
    apply_new_identity,
    execute_moves,
    join_rendezvous,
)
from repro.exec.base import (
    PHASE_COMPLETED,
    ExecutionBackend,
    PhaseOutcome,
    PhaseServices,
    PhaseSpec,
)
from repro.smp.team import ThreadTeam


class ClusterReshaper(RankReshaper):
    """Elastic membership transitions on a :class:`SimCluster`.

    The simulated-cluster instantiation of the protocol in
    :mod:`repro.elastic.protocol`: the membership switch spawns/retires
    rank threads via :meth:`SimCluster.switch`, joiners rebuild their
    call stack by replaying ``make_rank_entry``'s entry with a
    :class:`JoinReplay`, and field regions move over the (reshaped)
    in-process communicator.
    """

    def __init__(self, cluster: SimCluster, machine,
                 make_rank_entry) -> None:
        self.cluster = cluster
        self.machine = machine
        #: callable(join: JoinReplay | None) -> rank entry result; set by
        #: the backend once the launch closure exists.
        self.make_rank_entry = make_rank_entry

    # ------------------------------------------------------------------
    def reshape(self, ctx, step: AdaptStep, count: int) -> bool:
        plan = ReshapePlan(ctx.nranks, step.config.nranks)
        comm = ctx.rankctx.comm
        rank = ctx.rank
        if ctx.nranks > 1:
            comm.barrier()  # quiesce: every prior collective drained
        if plan.shrinking:
            # retiring owners push their regions while they still have
            # endpoints on the old communicator.
            execute_moves(ctx, plan, comm)

        def joiner_entry():
            return self.make_rank_entry(
                JoinReplay(count, self, plan, step))

        epoch = self.cluster.switch(
            plan, joiner_entry if plan.growing else None)
        ctx.rankctx.clock.advance_to(epoch)
        if rank in plan.retiring:
            raise RankRetired(count, rank)
        # --- new membership from here on -------------------------------
        if plan.growing:
            join_rendezvous(ctx, plan, step, count, comm, self.machine)
        else:
            comm.barrier()  # survivors resync on the shrunken membership
            apply_new_identity(ctx, step, plan, count, self.machine)
        return True

    def complete_join(self, ctx, replay: JoinReplay, count: int) -> None:
        join_rendezvous(ctx, replay.plan, replay.step, count,
                        ctx.rankctx.comm, self.machine)


class SimClusterBackend(ExecutionBackend):
    """MPI-like execution over a fresh :class:`SimCluster` per phase.

    The backend owns the cluster's lifecycle (rank threads are joined by
    ``SimCluster.run``; the communicator is torn down in the ``finally``)
    and normalises rank failures: a :class:`RankFailure` is unwrapped to
    the most informative cooperative unwind gathered across ranks — an
    :class:`AdaptationExit` carrying the snapshot beats one without,
    which beats an :class:`InjectedFailure` — so the driver never sees
    rank-level wreckage when a normal unwind caused it.

    Elastic: rank-count adaptations within DISTRIBUTED mode run as
    membership transitions (simulated nodes added/retired in place, see
    :class:`ClusterReshaper`) instead of phase relaunches.
    """

    name = "simcluster"

    def capabilities(self, config: ExecConfig) -> Capabilities:
        return Capabilities(rank_collectives=True, elastic_ranks=True)

    # hook: HybridBackend equips each rank with a thread team.
    def rank_team(self, spec: PhaseSpec,
                  services: PhaseServices) -> ThreadTeam | None:
        return None

    def launch(self, spec: PhaseSpec, services: PhaseServices
               ) -> PhaseOutcome:
        from repro import telemetry, trace

        cluster = SimCluster(spec.config.nranks, services.machine,
                             services.log, start_time=spec.start_vtime)
        elastic = self.capabilities(spec.config).elastic_ranks
        reshaper = ClusterReshaper(cluster, services.machine, None) \
            if elastic else None
        reshapes: list = []
        # sized past the starting membership so joiners admitted by
        # elastic growth land on pre-laid-out pages of the same plane.
        plane = self.telemetry_plane(
            services, max(4 * spec.config.nranks, 64))
        trplane = self.trace_plane(
            services, max(4 * spec.config.nranks, 64))

        def rank_entry(join: JoinReplay | None = None):
            rankctx = current_rank()
            if plane is not None and rankctx.rank < plane.max_ranks:
                telemetry.bind(plane.writer(rankctx.rank))
            if trplane is not None and rankctx.rank < trplane.max_ranks:
                trace.bind(trplane.writer(rankctx.rank))
            team = self.rank_team(spec, services)
            ctx = None
            try:
                if team is not None:
                    team.clock.advance_to(rankctx.clock.now)
                ctx = self.make_context(spec, services, rankctx=rankctx,
                                        team=team, reshaper=reshaper)
                if join is not None:
                    # a joining rank replays to the transition safe
                    # point, then enters the rendezvous — the phase-level
                    # replay state does not apply to it.
                    ctx.replay = join
                    ctx.config = join.step.config
                try:
                    result = self.run_entry(ctx, spec)
                except RankRetired:
                    return None  # shrunk out of the membership: clean end
                if team is not None:
                    rankctx.clock.advance_to(team.clock.now)
                if rankctx.rank == 0:
                    ctx.ckpt_flush_barrier()
                return result
            finally:
                if rankctx.rank == 0 and ctx is not None:
                    reshapes.extend(ctx.reshapes)
                if team is not None:
                    team.shutdown()
                telemetry.bind(None)
                trace.bind(None)

        if reshaper is not None:
            reshaper.make_rank_entry = rank_entry

        try:
            results = cluster.run(rank_entry)
            return PhaseOutcome(PHASE_COMPLETED, self._end(cluster, spec),
                                value=results[0], reshapes=reshapes)
        except RankFailure as rf:
            cause = self._root_unwind(cluster, rf)
            out = self.normalise_unwind(cause, self._end(cluster, spec))
            if out is None:
                raise
            out.reshapes = reshapes
            return out
        finally:
            cluster.shutdown()
            self.scrape_telemetry(plane, services)
            self.scrape_trace(trplane, services)

    # ------------------------------------------------------------------
    @staticmethod
    def _end(cluster: SimCluster, spec: PhaseSpec) -> float:
        return max(spec.start_vtime, cluster.max_time)

    @staticmethod
    def _root_unwind(cluster: SimCluster, rf: RankFailure) -> BaseException:
        """The most informative cause gathered across failed ranks."""
        causes = [e.cause for e in cluster.errors]
        exits = [c for c in causes if isinstance(c, AdaptationExit)]
        with_snap = [c for c in exits if c.snapshot is not None]
        if with_snap:
            return with_snap[0]
        if exits:
            return exits[0]
        fails = [c for c in causes if isinstance(c, InjectedFailure)]
        if fails:
            return fails[0]
        return rf
