"""Sockets execution: the first multi-node backend.

Structurally a :class:`~repro.exec.multiproc.MultiprocessBackend` —
rank processes, the parent-side funnel/unwind/unlink discipline — but
the communication fabric is the hybrid transport of
:mod:`repro.dsm.socketmail`: ranks are assigned to *physical nodes*
(``pnode_of``), co-located ranks keep the zero-copy queue/slab fabric,
and every cross-node byte rides length-prefixed TCP frames.  In CI the
"nodes" are a partition of localhost processes (every listener binds
loopback); a real deployment supplies ``hosts`` so each node's ranks
bind its interface.

What changes against the parent class, and why:

* **communicator** — a :class:`~repro.dsm.socketmail.
  HierarchicalCommunicator` over a per-rank
  :class:`~repro.dsm.socketmail.SocketTransport`; listener addresses
  are exchanged through a parent-mediated rendezvous (children post
  ``(rank, address)`` on a queue, the parent broadcasts the gathered
  map on the control channels) before the first remote send;
* **no shared fields** — partitioned fields stay private per rank:
  pages cannot alias across physical nodes, so scatter / halo / gather
  perform real data movement over the transport (which is exactly what
  this backend is for);
* **no elastic ranks** — membership transitions would need a second
  rendezvous for joiner listeners; a rank-count adaptation falls back
  to the relaunch path, honestly declared via ``Capabilities``;
* **checkpoint funnel** — the framed-TCP variant
  (:class:`~repro.ckpt.funnel.SocketCheckpointFunnel`): snapshots ride
  the wire like any other cross-node payload, always inline (a slab
  descriptor is meaningless off-node).

Results, checkpoint bytes and virtual time are identical to every
other backend: the modelled :class:`~repro.vtime.machine.MachineModel`
feeds the clocks, and the transport choice only moves wall-clock
bytes.  ``calibrate`` hands the advisor wire-realistic constants
(:data:`~repro.vtime.machine.SOCKET_RANKS_CALIBRATION`) for ranking
adaptations; they never touch a running phase's clocks.
"""

from __future__ import annotations

import queue as _queue
import time

from repro.ckpt.funnel import SocketCheckpointFunnel
from repro.core.modes import Capabilities, ExecConfig, Mode
from repro.dsm.mailbox import Message
from repro.dsm.shm import SegmentManager
from repro.dsm.socketmail import HierarchicalCommunicator, SocketTransport
from repro.exec.base import PhaseSpec
from repro.exec.multiproc import MultiprocessBackend, _ChildTask
from repro.vtime.machine import SOCKET_RANKS_CALIBRATION

#: how long launch-time address exchange may take end to end.
_RENDEZVOUS_SECONDS = 60.0


class SocketsBackend(MultiprocessBackend):
    """Multi-node SPMD: queue/slab fabric within a node, TCP across.

    ``ranks_per_node`` partitions the rank space into physical nodes
    (rank ``r`` lives on node ``r // ranks_per_node``); ``hosts``
    optionally names one bind address per node for real multi-host
    deployments (default: every node is localhost, which is the CI
    topology).  Honest capabilities: rank collectives yes, shared
    fields no (no cross-node page aliasing), elastic ranks no (reshape
    falls back to relaunch), team regions no.
    """

    name = "sockets"
    modes = (Mode.DISTRIBUTED,)
    proc_prefix = "sk-rank-"

    def __init__(self, start_method: str | None = None,
                 join_timeout: float = 120.0,
                 ranks_per_node: int = 2,
                 hosts: list[str] | None = None,
                 data_plane: bool = True,
                 plane_threshold: int | None = None) -> None:
        super().__init__(start_method=start_method,
                         join_timeout=join_timeout, max_ranks=None,
                         data_plane=data_plane,
                         plane_threshold=plane_threshold)
        if ranks_per_node < 1:
            raise ValueError("ranks_per_node must be >= 1")
        self.ranks_per_node = ranks_per_node
        self.hosts = list(hosts) if hosts else ["127.0.0.1"]

    # ------------------------------------------------------------------
    def pnode_of(self, rank: int) -> int:
        """The physical node hosting ``rank`` (the deployment layout)."""
        return rank // self.ranks_per_node

    def _bind_host(self, rank: int) -> str:
        return self.hosts[self.pnode_of(rank) % len(self.hosts)]

    def capabilities(self, config: ExecConfig) -> Capabilities:
        return Capabilities(rank_collectives=True, shared_fields=False,
                            elastic_ranks=False)

    def calibrate(self, machine):
        return machine.with_(**SOCKET_RANKS_CALIBRATION)

    def place_fields(self, ctx, instance, comm, launch_id: str
                     ) -> tuple[SegmentManager | None, dict]:
        # partitioned fields stay private: a page cannot alias across
        # physical nodes, so data movement must be real (and is — over
        # the transport this backend exists to exercise).
        ctx.shared_fields = set()
        return None, {}

    def _fabric_size(self, spec: PhaseSpec) -> int:
        # no in-place reshape over sockets: fork exactly the launch
        # shape, park nothing.
        return spec.config.nranks

    def _make_funnel(self, store, mpctx, max_ranks: int):
        return SocketCheckpointFunnel(store, mpctx, max_ranks,
                                      bind_host=self.hosts[0])

    def _launch_extras(self, mpctx) -> dict:
        return {"rendezvous": mpctx.Queue()}

    # ------------------------------------------------------------------
    # address rendezvous: child half (in make_communicator) and parent
    # half (in _after_start)
    # ------------------------------------------------------------------
    def make_communicator(self, rank: int, nranks: int, machine,
                          task: _ChildTask, plane, mail_epoch: int
                          ) -> HierarchicalCommunicator:
        transport = SocketTransport(rank, task.channels, self.pnode_of,
                                    bind_host=self._bind_host(rank))
        task.extras["rendezvous"].put((rank, transport.address))
        buffered: list[Message] = []
        deadline = time.monotonic() + _RENDEZVOUS_SECONDS
        while True:
            try:
                msg = task.channels[rank].get(
                    timeout=max(0.1, deadline - time.monotonic()))
            except _queue.Empty:
                transport.close()
                raise RuntimeError(
                    f"rank {rank}: no address map after "
                    f"{_RENDEZVOUS_SECONDS:.0f}s (rendezvous incomplete)"
                ) from None
            if isinstance(msg, Message):
                # a fast co-located peer (or a remote peer's re-injected
                # frame) got its map first and already sent: hold the
                # envelope, deliver it through the mailbox below.
                buffered.append(msg)
                continue
            if isinstance(msg, dict) and msg.get("kind") == "addresses":
                transport.set_addresses(msg["map"])
                break
            if isinstance(msg, dict) and msg.get("kind") == "stop":
                transport.close()
                raise RuntimeError(
                    f"rank {rank}: launch aborted before rendezvous")
        comm = HierarchicalCommunicator(rank, nranks, machine, transport,
                                        plane=plane, mail_epoch=mail_epoch)
        inbox = comm.mailboxes[rank]
        for m in buffered:  # pending is scanned before the channel: FIFO
            inbox._admit(m)
        return comm

    def _after_start(self, spec: PhaseSpec, procs, channels,
                     extras: dict) -> None:
        """Gather every rank's listener address, broadcast the map.

        On a child death mid-rendezvous the map is never posted; the
        survivors time out their wait and report, and ``_collect``
        attributes the root cause to the dead rank.
        """
        n = spec.config.nranks
        rendezvous = extras["rendezvous"]
        addresses: dict[int, tuple[str, int]] = {}
        deadline = time.monotonic() + _RENDEZVOUS_SECONDS
        while len(addresses) < n and time.monotonic() < deadline:
            try:
                rank, addr = rendezvous.get(timeout=0.5)
            except _queue.Empty:
                if any(not procs[r].is_alive()
                       and procs[r].exitcode is not None for r in range(n)):
                    return
                continue
            addresses[rank] = addr
        if len(addresses) < n:
            return
        for r in range(n):
            channels[r].put({"kind": "addresses", "map": addresses})
