"""Backend registry: how an :class:`ExecConfig` finds its launcher.

Resolution order for a configuration:

1. ``config.backend`` — an explicit registry *name* pins the launch to a
   specific backend (an adaptation step can therefore reshape onto a
   different backend, not just a different shape);
2. otherwise the configuration's :class:`~repro.core.modes.Mode` selects
   the backend registered as that mode's default.

The process-wide :func:`default_registry` comes pre-populated with the
four stock backends.  Registering a new backend is one call and touches
nothing in ``core/``::

    from repro.exec import register_backend
    register_backend(MyMultiprocessBackend())          # by name only
    register_backend(MyMpiBackend(), mode=Mode.DISTRIBUTED,
                     replace=True)                     # new mode default

Advisors and resource managers consult ``supports(mode)`` so adaptation
ladders and Grid mapping policies only ever propose configurations that
can actually be launched.
"""

from __future__ import annotations

from repro.core.errors import WeaveError
from repro.core.modes import ExecConfig, Mode
from repro.exec.base import ExecutionBackend


class BackendRegistry:
    """Named execution backends plus per-mode defaults."""

    def __init__(self) -> None:
        self._by_name: dict[str, ExecutionBackend] = {}
        self._by_mode: dict[Mode, ExecutionBackend] = {}

    # ------------------------------------------------------------------
    def register(self, backend: ExecutionBackend, mode: Mode | None = None,
                 replace: bool = False) -> ExecutionBackend:
        """Add ``backend`` under its ``name``; optionally as a mode default.

        Returns the backend (handy for chaining in tests).
        """
        name = backend.name
        if not name or name == "abstract":
            raise WeaveError("execution backends must define a name")
        previous = self._by_name.get(name)
        if previous is not None and not replace:
            raise WeaveError(f"backend {name!r} is already registered "
                             "(pass replace=True to override)")
        self._by_name[name] = backend
        if previous is not None:
            # replacing a name must also replace any mode defaults bound
            # to the old instance, or mode-based resolution would keep
            # silently launching the replaced backend.
            for m, b in list(self._by_mode.items()):
                if b is previous:
                    self._by_mode[m] = backend
        if mode is not None:
            if mode in self._by_mode and not replace:
                raise WeaveError(f"mode {mode.value!r} already has a default "
                                 "backend (pass replace=True to override)")
            self._by_mode[mode] = backend
        return backend

    def unregister(self, name: str) -> None:
        backend = self._by_name.pop(name, None)
        if backend is None:
            return
        for mode, b in list(self._by_mode.items()):
            if b is backend:
                del self._by_mode[mode]

    # ------------------------------------------------------------------
    def resolve(self, config: ExecConfig) -> ExecutionBackend:
        """The backend that launches ``config`` (name beats mode)."""
        if config.backend is not None:
            try:
                return self._by_name[config.backend]
            except KeyError:
                raise WeaveError(
                    f"no execution backend named {config.backend!r}; "
                    f"registered: {sorted(self._by_name)}") from None
        backend = self._by_mode.get(config.mode)
        if backend is None:
            backend = self._named_for_mode(config.mode)
        if backend is None:
            raise WeaveError(
                f"no execution backend registered for mode "
                f"{config.mode.value!r}")
        return backend

    def _named_for_mode(self, mode: Mode) -> ExecutionBackend | None:
        """A named backend declaring ``mode`` launchable (stable pick)."""
        for name in sorted(self._by_name):
            if mode in self._by_name[name].modes:
                return self._by_name[name]
        return None

    def supports(self, mode: Mode) -> bool:
        """Can *some* registered backend launch ``mode``?

        True for the mode's default and for any named backend declaring
        the mode in its ``modes`` — so advisor ladders and mapping
        policies keep proposing e.g. distributed shapes while an
        alternative distributed backend (multiprocessing) is registered,
        even with the stock one removed.
        """
        return mode in self._by_mode or self._named_for_mode(mode) is not None

    def has(self, name: str) -> bool:
        return name in self._by_name

    def names(self) -> list[str]:
        return sorted(self._by_name)

    def copy(self) -> "BackendRegistry":
        """A detached registry with the same entries (test isolation)."""
        out = BackendRegistry()
        out._by_name = dict(self._by_name)
        out._by_mode = dict(self._by_mode)
        return out


# ---------------------------------------------------------------------------
# the process-wide default registry
# ---------------------------------------------------------------------------
def build_default_registry() -> BackendRegistry:
    """A fresh registry holding the six stock backends.

    The simulated cluster stays the DISTRIBUTED default (virtual-time
    fidelity); the real multiprocessing and sockets backends are
    registered by name — ``ExecConfig.distributed(n)
    .with_backend("multiproc")`` / ``.with_backend("sockets")`` — and
    serve as distributed fallbacks when the simulated one is
    unregistered.
    """
    from repro.exec.cluster import SimClusterBackend
    from repro.exec.hybrid import HybridBackend
    from repro.exec.multiproc import MultiprocessBackend
    from repro.exec.sequential import SequentialBackend
    from repro.exec.sockets import SocketsBackend
    from repro.exec.threads import ThreadTeamBackend

    reg = BackendRegistry()
    reg.register(SequentialBackend(), mode=Mode.SEQUENTIAL)
    reg.register(ThreadTeamBackend(), mode=Mode.SHARED)
    reg.register(SimClusterBackend(), mode=Mode.DISTRIBUTED)
    reg.register(HybridBackend(), mode=Mode.HYBRID)
    reg.register(MultiprocessBackend())
    reg.register(SocketsBackend())
    return reg


_default: BackendRegistry | None = None


def default_registry() -> BackendRegistry:
    """The process-wide registry every :class:`Runtime` uses by default."""
    global _default
    if _default is None:
        _default = build_default_registry()
    return _default


def register_backend(backend: ExecutionBackend, mode: Mode | None = None,
                     replace: bool = False) -> ExecutionBackend:
    """Register ``backend`` in the process-wide default registry."""
    return default_registry().register(backend, mode=mode, replace=replace)
