"""Checkpoint-frequency policies.

"The selection of the set of safe points is a trade-off between
checkpointing overhead and computation lost when a failure occurs.  Note
that a checkpoint might be taken only after a set of safe points."
(Section IV.A.)  Policies decide, given the current safe-point count,
whether a checkpoint is due.

Policies must be *deterministic functions of the count*: in a parallel
run every thread/rank evaluates the policy locally and all must agree
without communicating.  ``mark_taken`` makes re-evaluation at the same
count idempotent (a barrier generation can replay its parked action when
the team grows).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable


class CheckpointPolicy(ABC):
    """Decides at which safe-point counts checkpoints are taken."""

    def __init__(self) -> None:
        self._last_taken = -1

    @abstractmethod
    def _due(self, count: int) -> bool:
        """Pure frequency rule (no idempotence bookkeeping)."""

    def due(self, count: int) -> bool:
        if count <= self._last_taken:
            return False
        return self._due(count)

    def mark_taken(self, count: int) -> None:
        if count > self._last_taken:
            self._last_taken = count

    def reset(self, last_taken: int = -1) -> None:
        """Re-arm the policy (e.g. after a restart at a given count)."""
        self._last_taken = last_taken


class EveryN(CheckpointPolicy):
    """Checkpoint every ``n`` safe points (offset by ``phase``)."""

    def __init__(self, n: int, phase: int = 0) -> None:
        super().__init__()
        if n < 1:
            raise ValueError("n must be >= 1")
        self.n = n
        self.phase = phase

    def _due(self, count: int) -> bool:
        return count > 0 and (count - self.phase) % self.n == 0


class AtCounts(CheckpointPolicy):
    """Checkpoint exactly at the given safe-point counts."""

    def __init__(self, counts: Iterable[int]) -> None:
        super().__init__()
        self.counts = frozenset(int(c) for c in counts)

    def _due(self, count: int) -> bool:
        return count in self.counts


class Never(CheckpointPolicy):
    """Safe points are counted but no checkpoint is ever taken.

    Used to measure the pure counting overhead (the paper's Figure 3
    "0 checkpoints" series).
    """

    def _due(self, count: int) -> bool:
        return False


# ---------------------------------------------------------------------------
# anchor policies (incremental checkpointing)
# ---------------------------------------------------------------------------
class AnchorPolicy(ABC):
    """Decides which checkpoints in an incremental chain are full anchors.

    An incremental store writes most checkpoints as deltas against the
    previous one; every so often it must write a *full* snapshot so that
    (a) restore replays a bounded chain and (b) a corrupt file loses at
    most one anchor interval.  ``due(chain_len)`` is asked with the number
    of consecutive deltas since the last anchor and answers whether the
    next write must be full.
    """

    @abstractmethod
    def due(self, chain_len: int) -> bool:
        """Must the next checkpoint be a full anchor?"""

    def observe(self, kind: str, nbytes: int) -> None:
        """Feedback hook: one completed write (``"full"``/``"delta"``,
        encoded size).  The incremental store calls this after every
        write; adaptive policies retarget their cadence from it, fixed
        policies ignore it."""


class AnchorEvery(AnchorPolicy):
    """Full anchor every ``k`` checkpoints (chain length capped at k-1)."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("anchor interval must be >= 1")
        self.k = k

    def due(self, chain_len: int) -> bool:
        return chain_len >= self.k - 1


class AlwaysAnchor(AnchorEvery):
    """Every checkpoint is full — disables delta encoding."""

    def __init__(self) -> None:
        super().__init__(1)


class AdaptiveAnchor(AnchorPolicy):
    """Anchor cadence driven by the observed delta/full size ratio.

    A fixed cadence k is only right for one workload: tiny deltas want
    long chains (fulls are almost pure waste), wholesale-changing state
    wants short ones (a delta costs as much as a full but adds chain
    risk and replay work).  With per-delta write cost d and full-anchor
    cost f, an interval of k amortises the anchor over the chain
    (amortised write ≈ f/k + d) while the expected restore replays half
    a chain (read ≈ f + k·d/2); minimising the sum over k gives
    k* = sqrt(2·f/d) — the incremental-checkpointing analogue of Young's
    checkpoint-interval formula.

    The store reports every write through :meth:`observe`; the policy
    keeps exponential moving averages of full and delta sizes and tracks
    k* within ``[min_interval, max_interval]``.  Until both kinds have
    been seen it behaves like ``AnchorEvery(start)``.  Policies hold
    per-store state, so each store (and each STRATEGY_LOCAL shard store)
    gets its own copy.
    """

    def __init__(self, start: int = 8, min_interval: int = 2,
                 max_interval: int = 64, smoothing: float = 0.5) -> None:
        if not (1 <= min_interval <= start <= max_interval):
            raise ValueError(
                "need 1 <= min_interval <= start <= max_interval")
        if not (0.0 < smoothing <= 1.0):
            raise ValueError("smoothing must be in (0, 1]")
        self.interval = start
        self.min_interval = min_interval
        self.max_interval = max_interval
        self.smoothing = smoothing
        self._full_ema: float | None = None
        self._delta_ema: float | None = None

    def _ema(self, prev: float | None, nbytes: int) -> float:
        if prev is None:
            return float(nbytes)
        return (1.0 - self.smoothing) * prev + self.smoothing * nbytes

    def observe(self, kind: str, nbytes: int) -> None:
        """Feed one completed checkpoint write (called by the store)."""
        if kind == "full":
            self._full_ema = self._ema(self._full_ema, nbytes)
        else:
            self._delta_ema = self._ema(self._delta_ema, nbytes)
        if self._full_ema is None or self._delta_ema is None:
            return  # warm-up: keep the configured start cadence
        if self._delta_ema <= 0.0:
            # deltas are (near) free: stretch the chain as far as allowed
            self.interval = self.max_interval
            return
        target = (2.0 * self._full_ema / self._delta_ema) ** 0.5
        self.interval = max(self.min_interval,
                            min(self.max_interval, round(target)))

    def due(self, chain_len: int) -> bool:
        return chain_len >= self.interval - 1
