"""Snapshots: the data saved at a checkpoint.

A snapshot records the values of the programmer-declared ``SafeData``
fields plus the number of executed safe points.  The encoded form is
deliberately mode-independent (Section IV.A: "the checkpoint data is the
same in all environments"), which is what lets a run checkpointed under
MPI-style execution restart as a sequential or threaded run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.util.serialization import (
    crc32_of,
    dumps_portable,
    loads_portable,
    nbytes_of,
)

FORMAT_VERSION = 1


class SnapshotCorrupt(RuntimeError):
    """A section failed its checksum or the container is malformed."""


@dataclass
class Snapshot:
    """In-memory checkpoint: SafeData field values + safe-point count."""

    app: str
    safepoint_count: int
    fields: dict[str, Any]
    mode: str = "sequential"
    meta: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def capture(cls, instance: Any, field_names: list[str], count: int,
                app: str | None = None, mode: str = "sequential",
                **meta: Any) -> "Snapshot":
        """Snapshot ``field_names`` of ``instance`` at safe point ``count``.

        Values are captured *by encoding* immediately, so later mutation of
        the live object cannot corrupt a pending checkpoint.
        """
        missing = [f for f in field_names if not hasattr(instance, f)]
        if missing:
            raise AttributeError(
                f"SafeData fields not present on instance: {missing}")
        fields = {f: loads_portable(dumps_portable(getattr(instance, f)))
                  for f in field_names}
        return cls(app=app or type(instance).__name__,
                   safepoint_count=count, fields=fields, mode=mode,
                   meta=dict(meta))

    def restore_into(self, instance: Any) -> None:
        """Write the saved field values back onto ``instance``."""
        for name, value in self.fields.items():
            setattr(instance, name, value)

    @property
    def nbytes(self) -> int:
        """Payload size — what the disk/network cost models charge."""
        return sum(nbytes_of(v) for v in self.fields.values())

    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        """Serialise to the portable container format.

        Layout: a pickled envelope ``{header, sections}`` where each
        section is ``(portable_bytes, crc32)``.  Everything inside the
        sections uses :mod:`repro.util.serialization`'s portable encoding.
        """
        sections = {}
        for name, value in self.fields.items():
            blob = dumps_portable(value)
            sections[name] = (blob, crc32_of(blob))
        header = {
            "version": FORMAT_VERSION,
            "app": self.app,
            "safepoint_count": self.safepoint_count,
            "mode": self.mode,
            "meta": self.meta,
            "fields": list(self.fields),
        }
        return dumps_portable({"header": header, "sections": sections})

    @classmethod
    def decode(cls, data: bytes) -> "Snapshot":
        try:
            envelope = loads_portable(data)
            header = envelope["header"]
            sections = envelope["sections"]
        except Exception as exc:
            raise SnapshotCorrupt(f"malformed snapshot container: {exc}") from exc
        if header.get("version") != FORMAT_VERSION:
            raise SnapshotCorrupt(
                f"unsupported snapshot version {header.get('version')!r}")
        fields: dict[str, Any] = {}
        for name in header["fields"]:
            blob, crc = sections[name]
            if crc32_of(blob) != crc:
                raise SnapshotCorrupt(f"checksum mismatch in field {name!r}")
            fields[name] = loads_portable(blob)
        return cls(app=header["app"], safepoint_count=header["safepoint_count"],
                   fields=fields, mode=header["mode"], meta=header["meta"])
