"""Snapshots: the data saved at a checkpoint.

A snapshot records the values of the programmer-declared ``SafeData``
fields plus the number of executed safe points.  The encoded form is
deliberately mode-independent (Section IV.A: "the checkpoint data is the
same in all environments"), which is what lets a run checkpointed under
MPI-style execution restart as a sequential or threaded run.

Container format (version 2): a pickled envelope ``{header, sections}``
where each section is ``(flags, stored_blob, crc32)``.  ``flags`` carries
per-section transforms (today: ``SEC_ZLIB`` for transparent zlib
compression, negotiated by size threshold at encode time); the CRC is
over the *stored* bytes so corruption is detected before decompression.
Version-1 files (sections as ``(blob, crc32)`` pairs, no flags) are still
readable.  The same envelope shape also carries incremental *delta*
records (``header["kind"] == "delta"``) — those are produced and resolved
by :mod:`repro.ckpt.delta`; decoding one directly raises
:class:`SnapshotCorrupt` because a delta alone is not a restorable state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.util.serialization import (
    crc32_of,
    dumps_portable,
    loads_portable,
    nbytes_of,
    pack_section,
    unpack_section,
)

FORMAT_VERSION = 2

#: container kinds: a full restorable state, an incremental delta, or a
#: chunk recipe (a manifest of CAS chunk refs — see :mod:`repro.ckpt.cas`).
KIND_FULL = "full"
KIND_DELTA = "delta"
KIND_RECIPE = "recipe"


class SnapshotCorrupt(RuntimeError):
    """A section failed its checksum or the container is malformed."""


# ---------------------------------------------------------------------------
# container helpers (shared with repro.ckpt.delta)
# ---------------------------------------------------------------------------
def encode_container(header: dict, blobs: dict[str, bytes],
                     compress_min_bytes: int | None = None) -> bytes:
    """Assemble the on-disk envelope from pre-encoded field blobs."""
    sections = {}
    for name, blob in blobs.items():
        flags, stored = pack_section(blob, compress_min_bytes)
        sections[name] = (flags, stored, crc32_of(stored))
    return dumps_portable({"header": header, "sections": sections})


def decode_envelope(data: bytes) -> tuple[dict, dict]:
    """Parse and version-check an envelope; returns ``(header, sections)``."""
    try:
        envelope = loads_portable(data)
        header = envelope["header"]
        sections = envelope["sections"]
    except Exception as exc:
        raise SnapshotCorrupt(f"malformed snapshot container: {exc}") from exc
    if header.get("version") not in (1, FORMAT_VERSION):
        raise SnapshotCorrupt(
            f"unsupported snapshot version {header.get('version')!r}")
    return header, sections


def decode_section(sections: dict, name: str) -> bytes:
    """Checksum-verify one section and undo its storage transforms."""
    try:
        entry = sections[name]
    except KeyError as exc:
        raise SnapshotCorrupt(f"missing section {name!r}") from exc
    if len(entry) == 2:  # version-1 layout: (blob, crc), never compressed
        blob, crc = entry
        flags = 0
    else:
        flags, blob, crc = entry
    if crc32_of(blob) != crc:
        raise SnapshotCorrupt(f"checksum mismatch in field {name!r}")
    return unpack_section(flags, blob)


@dataclass
class Snapshot:
    """In-memory checkpoint: SafeData field values + safe-point count."""

    app: str
    safepoint_count: int
    fields: dict[str, Any]
    mode: str = "sequential"
    meta: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def capture(cls, instance: Any, field_names: list[str], count: int,
                app: str | None = None, mode: str = "sequential",
                **meta: Any) -> "Snapshot":
        """Snapshot ``field_names`` of ``instance`` at safe point ``count``.

        Values are captured *by encoding* immediately, so later mutation of
        the live object cannot corrupt a pending checkpoint.
        """
        missing = [f for f in field_names if not hasattr(instance, f)]
        if missing:
            raise AttributeError(
                f"SafeData fields not present on instance: {missing}")
        fields = {f: loads_portable(dumps_portable(getattr(instance, f)))
                  for f in field_names}
        return cls(app=app or type(instance).__name__,
                   safepoint_count=count, fields=fields, mode=mode,
                   meta=dict(meta))

    def restore_into(self, instance: Any) -> None:
        """Write the saved field values back onto ``instance``."""
        for name, value in self.fields.items():
            setattr(instance, name, value)

    @property
    def nbytes(self) -> int:
        """Payload size — what the disk/network cost models charge."""
        return sum(nbytes_of(v) for v in self.fields.values())

    # ------------------------------------------------------------------
    def field_blobs(self) -> dict[str, bytes]:
        """Portable (uncompressed) encoding of every field."""
        return {name: dumps_portable(value)
                for name, value in self.fields.items()}

    def header(self, kind: str = KIND_FULL) -> dict:
        return {
            "version": FORMAT_VERSION,
            "kind": kind,
            "app": self.app,
            "safepoint_count": self.safepoint_count,
            "mode": self.mode,
            "meta": self.meta,
            "fields": list(self.fields),
        }

    def encode(self, compress_min_bytes: int | None = None) -> bytes:
        """Serialise to the portable container format (a full record)."""
        return encode_container(self.header(KIND_FULL), self.field_blobs(),
                                compress_min_bytes)

    @classmethod
    def decode(cls, data: bytes) -> "Snapshot":
        header, sections = decode_envelope(data)
        if header.get("kind", KIND_FULL) != KIND_FULL:
            raise SnapshotCorrupt(
                "incremental delta record cannot be decoded standalone; "
                "resolve it through IncrementalCheckpointStore.read")
        fields: dict[str, Any] = {}
        for name in header["fields"]:
            fields[name] = loads_portable(decode_section(sections, name))
        return cls(app=header["app"], safepoint_count=header["safepoint_count"],
                   fields=fields, mode=header["mode"], meta=header["meta"])
