"""Content-defined chunking: split payloads at rolling-hash boundaries.

The checkpoint object store (:mod:`repro.ckpt.cas`) stores field
payloads as chunks keyed by content digest.  For dedup to survive
*insertions* — one element appended to an array shifts every later byte
— chunk boundaries must be decided by the bytes themselves, not by
offsets: a window's rolling hash matching a mask cuts a chunk, so an
edit re-chunks only its neighbourhood and every later chunk keeps its
identity (the classic LBFS/CDC construction).

The rolling hash is a buzhash over a ``WINDOW``-byte window: each
position's hash is the XOR of its window's bytes mapped through a
fixed table and rotated by age.  The recurrence form
(``H = rotl(H,1) ^ rotl(T[out], W) ^ T[in]``) is byte-at-a-time; this
implementation evaluates the *unrolled* form instead — ``W`` shifted,
rotated table-lookup arrays XOR'd together with numpy — so chunking a
multi-megabyte field is ``W`` vectorised passes, not ``n`` Python
iterations.

Boundary discipline:

* a cut is proposed wherever ``hash & (avg_size - 1) == 0`` — so chunk
  sizes are geometrically distributed around ``avg_size``;
* proposals closer than ``min_size`` to the previous cut are skipped
  (bounds the per-chunk overhead);
* a gap longer than ``max_size`` is cut at exactly ``max_size`` — on
  pathological data (constant buffers never match the mask) this
  degrades to a fixed-size split, which is also the declared fallback
  for payloads too small to roll a window over: they become a single
  chunk.

Everything here is deterministic — the table is derived from a fixed
keyed hash, never from process state — so every rank, the funnel
parent and a future process chunk identical bytes into identical
digests.  That determinism is what the funnel's digest-presence
handshake and cross-job dedup stand on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

#: rolling-hash window in bytes.
WINDOW = 16

#: digest identifying a chunk's content (hex).  BLAKE2b-160: far below
#: the disk's own undetected-error rate, short enough for filenames.
DIGEST_SIZE = 20


def _gear_table() -> np.ndarray:
    """The fixed byte -> 64-bit mixing table.

    Derived entry-by-entry from a keyed BLAKE2b so it is identical on
    every platform and Python/numpy version forever — unlike a seeded
    RNG stream, which is only guaranteed stable per generator version.
    """
    out = np.empty(256, dtype=np.uint64)
    for i in range(256):
        h = hashlib.blake2b(bytes([i]), digest_size=8,
                            person=b"pp-cdc-01").digest()
        out[i] = int.from_bytes(h, "little")
    return out


_TABLE = _gear_table()


def _rotl(x: np.ndarray, k: int) -> np.ndarray:
    k &= 63
    if k == 0:
        return x
    return (x << np.uint64(k)) | (x >> np.uint64(64 - k))


@dataclass(frozen=True)
class ChunkParams:
    """Chunk-size policy: minimum, expected and maximum chunk bytes.

    ``avg_size`` must be a power of two (it becomes the boundary mask);
    ``min_size`` must leave room for the rolling window.  The defaults
    suit checkpoint fields from tens of kilobytes up — small enough
    that touching one array element re-writes a few kilobytes, large
    enough that recipe/ref overhead stays well under one percent.
    """

    min_size: int = 1 << 10
    avg_size: int = 1 << 12
    max_size: int = 1 << 14

    def __post_init__(self) -> None:
        if self.avg_size & (self.avg_size - 1) or self.avg_size <= 0:
            raise ValueError("avg_size must be a power of two")
        if not WINDOW <= self.min_size <= self.avg_size <= self.max_size:
            raise ValueError(
                f"need {WINDOW} <= min <= avg <= max, got "
                f"{self.min_size}/{self.avg_size}/{self.max_size}")

    @property
    def mask(self) -> int:
        return self.avg_size - 1


DEFAULT_PARAMS = ChunkParams()


def chunk_digest(payload) -> str:
    """Content digest (hex) keying one chunk in the CAS."""
    return hashlib.blake2b(payload, digest_size=DIGEST_SIZE).hexdigest()


def chunk_bounds(data, params: ChunkParams = DEFAULT_PARAMS) -> list[int]:
    """Cut positions for ``data``: ``[0, ..., len(data)]``, ascending.

    Consecutive pairs delimit the chunks.  Deterministic in the bytes
    alone.  Payloads shorter than ``min_size`` (or the window) fall
    back to a single fixed chunk.
    """
    buf = np.frombuffer(data, dtype=np.uint8)
    n = buf.size
    if n == 0:
        return [0]
    if n <= max(params.min_size, WINDOW):
        return [0, n]
    # unrolled buzhash: H[k] covers the window ending at byte k+W-1,
    # XOR of W rotated table lookups, each term one vectorised pass.
    t = _TABLE[buf]
    h = np.zeros(n - WINDOW + 1, dtype=np.uint64)
    for age in range(WINDOW):
        h ^= _rotl(t[WINDOW - 1 - age: n - age], age)
    # a window ending at k+W-1 proposes a cut *after* it, at k+W.
    cand = np.flatnonzero((h & np.uint64(params.mask)) == 0) + WINDOW
    bounds = [0]
    last = 0
    for p in map(int, cand):
        if p - last < params.min_size:
            continue
        while p - last > params.max_size:  # force cuts across long gaps
            last += params.max_size
            bounds.append(last)
        if p - last >= params.min_size:
            last = p
            bounds.append(p)
        if n - last <= params.min_size:
            break
    while n - last > params.max_size:
        last += params.max_size
        bounds.append(last)
    if bounds[-1] != n:
        # a sub-min tail merges into the previous chunk only if the
        # merge respects max_size; otherwise it stands alone.
        if len(bounds) > 1 and n - bounds[-2] <= params.max_size \
                and n - bounds[-1] < params.min_size:
            bounds.pop()
        bounds.append(n)
    return bounds


def chunk_refs(blob, params: ChunkParams = DEFAULT_PARAMS
               ) -> list[tuple[str, int, int]]:
    """Chunk ``blob``: ``(digest, start, end)`` per chunk, in order."""
    bounds = chunk_bounds(blob, params)
    mv = memoryview(blob)
    return [(chunk_digest(mv[a:b]), a, b)
            for a, b in zip(bounds, bounds[1:])]
