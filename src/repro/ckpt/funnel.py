"""Cross-process checkpoint funnel: worker writes through the master store.

Worker processes must not write checkpoint files themselves: the master
:class:`~repro.ckpt.store.CheckpointStore` carries state that has to
stay consistent across phases — incremental delta baselines, adaptive
anchor policies, async-writer queues, byte accounting — and it lives in
the parent process, where the :class:`~repro.exec.driver.PhaseDriver`
reads checkpoints back for restarts and adaptations.

So checkpoint traffic is funnelled: a worker-side :class:`FunnelStore`
(the ``store`` its :class:`~repro.core.context.ExecutionContext` sees)
ships each snapshot over a request queue and blocks on a per-rank ack;
the parent-side :class:`CheckpointFunnel` drains requests on a thread
and performs the real ``write``/``flush`` against the master store (or
its per-rank shard sub-store for ``STRATEGY_LOCAL``), acking the bytes
written so the worker's virtual-time accounting matches what a
single-process run would charge.  Restart and adaptation chains then
work identically under every backend: the bytes on disk are produced by
the same store object either way.

Snapshot *bytes* ride the shared-memory data plane when the worker has
one (:class:`~repro.dsm.shm.DataPlane`): large array fields are copied
into leased slabs and the request queue carries only descriptors — the
parent copies them out, recycles the slots, and writes.  The write RPC
is synchronous (the worker blocks on the ack), so the slab borrow is
bounded and the field values the parent encodes are exactly the
captured ones; checkpoint bytes are bit-identical with and without the
plane.
"""

from __future__ import annotations

import queue as _queue
import threading
import traceback
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.ckpt.snapshot import KIND_FULL, Snapshot
from repro.dsm.shm import PoolClient, ShmRef

if TYPE_CHECKING:  # pragma: no cover
    from repro.ckpt.store import CheckpointStore
    from repro.dsm.shm import DataPlane

_OP_WRITE = "write"
_OP_FLUSH = "flush"
_OP_STOP = "stop"


@dataclass
class PackedSnapshot:
    """A snapshot whose large array fields travelled as slab refs.

    Only C-contiguous non-object arrays are packed — everything else
    stays inline — so unpacking reproduces bit-identical field values
    (and therefore bit-identical checkpoint bytes) in the parent.
    """

    app: str
    safepoint_count: int
    mode: str
    meta: dict[str, Any]
    fields: dict[str, Any] = field(default_factory=dict)

    @staticmethod
    def pack(snap: Snapshot, plane: "DataPlane") -> "PackedSnapshot":
        plane.start_pack()  # one snapshot = one lease budget
        fields = {name: plane.pack_exact(value)
                  for name, value in snap.fields.items()}
        return PackedSnapshot(app=snap.app,
                              safepoint_count=snap.safepoint_count,
                              mode=snap.mode, meta=snap.meta, fields=fields)

    def unpack(self, client: PoolClient) -> Snapshot:
        fields = {name: client.fetch(v) if isinstance(v, ShmRef) else v
                  for name, v in self.fields.items()}
        return Snapshot(app=self.app, safepoint_count=self.safepoint_count,
                        fields=fields, mode=self.mode, meta=self.meta)


@dataclass
class _WriterShim:
    """Enough of ``AsyncCheckpointWriter`` for the cost model's view."""

    depth: int


class CheckpointFunnel:
    """Parent side: drains worker checkpoint requests into the store."""

    def __init__(self, store: "CheckpointStore", mpctx, nranks: int) -> None:
        self.store = store
        self.requests = mpctx.Queue()
        self.acks = [mpctx.Queue() for _ in range(nranks)]
        self._thread: threading.Thread | None = None
        #: attach cache over the workers' slab rings (descriptor unpack).
        self._client = PoolClient()

    # ------------------------------------------------------------------
    def client(self, rank: int) -> "FunnelStore":
        """The store stand-in to hand to worker ``rank``."""
        return FunnelStore(
            rank=rank, requests=self.requests, ack=self.acks[rank],
            is_async=self.store.is_async,
            depth=self.store.writer.depth if self.store.is_async else 0)

    def start(self) -> None:
        """Begin serving; call *after* worker processes are spawned so a
        fork cannot duplicate the drain thread into a child."""
        self._thread = threading.Thread(target=self._serve, daemon=True,
                                        name="ckpt-funnel")
        self._thread.start()

    def stop(self) -> None:
        """Stop serving once every worker has exited; idempotent."""
        if self._thread is None:
            return
        self.requests.put((_OP_STOP, 0, None, None))
        self._thread.join(timeout=30.0)
        self._thread = None
        self._client.close_all()

    # ------------------------------------------------------------------
    def _serve(self) -> None:
        while True:
            try:
                op, rank, shard_rank, payload = self.requests.get(timeout=600.0)
            except _queue.Empty:  # orphaned funnel: give up quietly
                return
            if op == _OP_STOP:
                return
            try:
                if op == _OP_WRITE:
                    if isinstance(payload, PackedSnapshot):
                        payload = payload.unpack(self._client)
                    target = (self.store if shard_rank is None
                              else self.store.shard(shard_rank))
                    target.write(payload)
                    reply = ("ok", target.last_write_nbytes,
                             target.last_write_kind)
                elif op == _OP_FLUSH:
                    self.store.flush()
                    reply = ("ok", 0, KIND_FULL)
                else:
                    reply = ("error", f"unknown funnel op {op!r}", None)
            except Exception:  # noqa: BLE001 - worker must not hang on us
                reply = ("error", traceback.format_exc(), None)
            self.acks[rank].put(reply)


class FunnelStore:
    """Worker side: the minimal ``CheckpointStore`` surface a context uses.

    ``write``/``flush`` round-trip through the parent; ``shard(rank)``
    returns a view whose writes land in the master store's shard
    sub-store.  Reads are parent-only by design — the driver performs
    them — so they raise here.
    """

    def __init__(self, rank: int, requests, ack, is_async: bool,
                 depth: int, shard_rank: int | None = None) -> None:
        self.rank = rank
        self._requests = requests
        self._ack = ack
        self._shard_rank = shard_rank
        # shard sub-stores are synchronous in the master implementation;
        # mirror that so the worker's cost accounting branches match.
        self._is_async = is_async and shard_rank is None
        self.writer = _WriterShim(depth) if self._is_async else None
        self.last_write_nbytes = 0
        self.last_write_kind = KIND_FULL
        #: the rank's shared-memory data plane, wired post-fork by the
        #: worker (the client objects themselves are built pre-fork).
        self.plane: "DataPlane | None" = None

    # ------------------------------------------------------------------
    @property
    def is_async(self) -> bool:
        return self._is_async

    def shard(self, rank: int) -> "FunnelStore":
        if self._shard_rank is not None:
            raise ValueError("shard stores cannot be sharded again")
        sub = FunnelStore(rank=self.rank, requests=self._requests,
                          ack=self._ack, is_async=False, depth=0,
                          shard_rank=rank)
        sub.plane = self.plane
        return sub

    # ------------------------------------------------------------------
    def _rpc(self, op: str, payload) -> tuple[int, str]:
        self._requests.put((op, self.rank, self._shard_rank, payload))
        status, a, b = self._ack.get(timeout=120.0)
        if status != "ok":
            raise RuntimeError(f"checkpoint funnel failed in parent:\n{a}")
        return a, b

    def write(self, snap: "Snapshot") -> None:
        payload: "Snapshot | PackedSnapshot" = snap
        if self.plane is not None:
            # large array fields ride slabs; the synchronous ack below
            # bounds the lease (the parent recycles before replying).
            payload = PackedSnapshot.pack(snap, self.plane)
        nbytes, kind = self._rpc(_OP_WRITE, payload)
        self.last_write_nbytes = nbytes
        self.last_write_kind = kind

    def flush(self) -> None:
        self._rpc(_OP_FLUSH, None)

    # ------------------------------------------------------------------
    def read(self, count: int):
        raise NotImplementedError(
            "checkpoint reads happen in the parent process (PhaseDriver)")

    def read_latest(self):
        raise NotImplementedError(
            "checkpoint reads happen in the parent process (PhaseDriver)")

    def counts(self) -> list[int]:
        raise NotImplementedError(
            "checkpoint listings happen in the parent process (PhaseDriver)")
