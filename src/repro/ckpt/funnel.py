"""Cross-process checkpoint funnel: worker writes through the master store.

Worker processes must not write checkpoint files themselves: the master
:class:`~repro.ckpt.store.CheckpointStore` carries state that has to
stay consistent across phases — incremental delta baselines, adaptive
anchor policies, async-writer queues, byte accounting — and it lives in
the parent process, where the :class:`~repro.exec.driver.PhaseDriver`
reads checkpoints back for restarts and adaptations.

So checkpoint traffic is funnelled: a worker-side :class:`FunnelStore`
(the ``store`` its :class:`~repro.core.context.ExecutionContext` sees)
ships each snapshot over a request queue and blocks on a per-rank ack;
the parent-side :class:`CheckpointFunnel` drains requests on a thread
and performs the real ``write``/``flush`` against the master store (or
its per-rank shard sub-store for ``STRATEGY_LOCAL``), acking the bytes
written so the worker's virtual-time accounting matches what a
single-process run would charge.  Restart and adaptation chains then
work identically under every backend: the bytes on disk are produced by
the same store object either way.

Snapshot *bytes* ride the shared-memory data plane when the worker has
one (:class:`~repro.dsm.shm.DataPlane`): large array fields are copied
into leased slabs and the request queue carries only descriptors — the
parent copies them out, recycles the slots, and writes.  The write RPC
is synchronous (the worker blocks on the ack), so the slab borrow is
bounded and the field values the parent encodes are exactly the
captured ones; checkpoint bytes are bit-identical with and without the
plane.

When the master store is a :class:`~repro.ckpt.cas.CasCheckpointStore`
the funnel speaks **chunk refs** instead of snapshots: the worker
chunks and hashes its fields locally (skipping unchanged fields via a
value-hash baseline), asks the parent which digests its CAS lacks
(``_OP_MISSING`` — the presence handshake), and ships *only those
chunk payloads* with the recipe.  Replicated SafeData and halo/stale
regions other ranks already funnelled are never transferred at all —
cross-rank dedup happens on the wire, not just on the disk.  The
parent digest-verifies every shipped chunk before storing it; if a
referenced chunk vanished between handshake and write (a GC race) the
ack carries a ``CAS_CHUNK_MISSING`` marker and the worker retries once
with every chunk payload inline.
"""

from __future__ import annotations

import queue as _queue
import threading
import traceback
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Any

from repro.ckpt.snapshot import FORMAT_VERSION, KIND_FULL, KIND_RECIPE, Snapshot
from repro.dsm.shm import PoolClient, ShmRef

if TYPE_CHECKING:  # pragma: no cover
    from repro.ckpt.chunker import ChunkParams
    from repro.ckpt.store import CheckpointStore
    from repro.dsm.shm import DataPlane

_OP_WRITE = "write"
_OP_FLUSH = "flush"
_OP_STOP = "stop"
_OP_MISSING = "missing"

#: marker the parent's ChunkCorrupt carries when a handshake raced GC;
#: the worker sees it in the error ack and retries with all chunks.
CAS_CHUNK_MISSING = "CAS_CHUNK_MISSING"


@dataclass
class PackedSnapshot:
    """A snapshot whose large array fields travelled as slab refs.

    Only C-contiguous non-object arrays are packed — everything else
    stays inline — so unpacking reproduces bit-identical field values
    (and therefore bit-identical checkpoint bytes) in the parent.
    """

    app: str
    safepoint_count: int
    mode: str
    meta: dict[str, Any]
    fields: dict[str, Any] = field(default_factory=dict)

    @staticmethod
    def pack(snap: Snapshot, plane: "DataPlane") -> "PackedSnapshot":
        plane.start_pack()  # one snapshot = one lease budget
        fields = {name: plane.pack_exact(value)
                  for name, value in snap.fields.items()}
        return PackedSnapshot(app=snap.app,
                              safepoint_count=snap.safepoint_count,
                              mode=snap.mode, meta=snap.meta, fields=fields)

    def unpack(self, client: PoolClient) -> Snapshot:
        fields = {name: client.fetch(v) if isinstance(v, ShmRef) else v
                  for name, v in self.fields.items()}
        return Snapshot(app=self.app, safepoint_count=self.safepoint_count,
                        fields=fields, mode=self.mode, meta=self.meta)


@dataclass
class ChunkedSnapshot:
    """A worker-chunked checkpoint: recipe refs + missing chunk payloads.

    ``field_refs`` is the complete recipe (field -> ordered
    ``(digest, length)`` refs); only the chunks the parent's presence
    handshake reported absent travel with it.  Inline transport carries
    them as ``chunks`` (digest -> bytes); with a data plane they ride
    one concatenated slab buffer (``chunk_data`` + the ``chunk_index``
    that slices it back apart).
    """

    app: str
    safepoint_count: int
    mode: str
    meta: dict[str, Any]
    field_refs: dict[str, list]
    chunks: dict[str, bytes] | None = None
    chunk_index: list | None = None
    chunk_data: Any = None

    def header(self) -> dict:
        return {
            "version": FORMAT_VERSION,
            "kind": KIND_RECIPE,
            "app": self.app,
            "safepoint_count": self.safepoint_count,
            "mode": self.mode,
            "meta": self.meta,
            "fields": list(self.field_refs),
        }

    def resolve_chunks(self, client: PoolClient) -> dict[str, bytes]:
        """The shipped chunk payloads, whichever way they travelled."""
        if self.chunks is not None:
            return self.chunks
        if not self.chunk_index:
            return {}
        data = self.chunk_data
        if isinstance(data, ShmRef):
            data = client.fetch(data)
        buf = data.tobytes() if hasattr(data, "tobytes") else bytes(data)
        out, off = {}, 0
        for digest, length in self.chunk_index:
            out[digest] = buf[off:off + length]
            off += length
        return out


@dataclass
class _WriterShim:
    """Enough of ``AsyncCheckpointWriter`` for the cost model's view."""

    depth: int


class CheckpointFunnel:
    """Parent side: drains worker checkpoint requests into the store."""

    def __init__(self, store: "CheckpointStore", mpctx, nranks: int) -> None:
        self.store = store
        self.requests = mpctx.Queue()
        self.acks = [mpctx.Queue() for _ in range(nranks)]
        self._thread: threading.Thread | None = None
        #: attach cache over the workers' slab rings (descriptor unpack).
        self._client = PoolClient()

    # ------------------------------------------------------------------
    def client(self, rank: int) -> "FunnelStore":
        """The store stand-in to hand to worker ``rank``."""
        return FunnelStore(
            rank=rank, requests=self.requests, ack=self.acks[rank],
            is_async=self.store.is_async,
            depth=self.store.writer.depth if self.store.is_async else 0,
            chunk_params=getattr(self.store, "chunk_params", None))

    def start(self) -> None:
        """Begin serving; call *after* worker processes are spawned so a
        fork cannot duplicate the drain thread into a child."""
        self._thread = threading.Thread(target=self._serve, daemon=True,
                                        name="ckpt-funnel")
        self._thread.start()

    def stop(self) -> None:
        """Stop serving once every worker has exited; idempotent."""
        if self._thread is None:
            return
        self.requests.put((_OP_STOP, 0, None, None))
        self._thread.join(timeout=30.0)
        self._thread = None
        self._client.close_all()

    # ------------------------------------------------------------------
    def _handle(self, op: str, shard_rank, payload,
                store: "CheckpointStore | None" = None) -> tuple:
        """Perform one funnel request against the master store.

        Transport-independent: the queue drain below and the framed-TCP
        drain in :class:`SocketCheckpointFunnel` both feed it.  Never
        raises — errors travel back to the worker in the reply.

        ``store`` substitutes another destination for this one request —
        the service's fleet funnel routes each job's traffic to that
        job's namespaced sub-store through here.
        """
        base = self.store if store is None else store
        try:
            if op == _OP_WRITE:
                target = (base if shard_rank is None
                          else base.shard(shard_rank))
                if isinstance(payload, ChunkedSnapshot):
                    target.write_chunked(payload.header(),
                                         payload.field_refs,
                                         payload.resolve_chunks(self._client))
                else:
                    if isinstance(payload, PackedSnapshot):
                        payload = payload.unpack(self._client)
                    target.write(payload)
                return ("ok", target.last_write_nbytes,
                        target.last_write_kind,
                        getattr(target, "last_write_stats", None))
            if op == _OP_MISSING:
                # the CAS presence handshake: which digests must ship?
                cas = getattr(base, "cas", None)
                if cas is None:
                    return ("error", "master store has no CAS", None, None)
                return ("ok", cas.missing(payload), KIND_FULL, None)
            if op == _OP_FLUSH:
                base.flush()
                return ("ok", 0, KIND_FULL, None)
            return ("error", f"unknown funnel op {op!r}", None, None)
        except Exception:  # noqa: BLE001 - worker must not hang on us
            return ("error", traceback.format_exc(), None, None)

    def _serve(self) -> None:
        while True:
            try:
                op, rank, shard_rank, payload = self.requests.get(timeout=600.0)
            except _queue.Empty:  # orphaned funnel: give up quietly
                return
            if op == _OP_STOP:
                return
            self.acks[rank].put(self._handle(op, shard_rank, payload))


class FunnelStore:
    """Worker side: the minimal ``CheckpointStore`` surface a context uses.

    ``write``/``flush`` round-trip through the parent; ``shard(rank)``
    returns a view whose writes land in the master store's shard
    sub-store.  Reads are parent-only by design — the driver performs
    them — so they raise here.
    """

    def __init__(self, rank: int, requests, ack, is_async: bool,
                 depth: int, shard_rank: int | None = None,
                 chunk_params: "ChunkParams | None" = None) -> None:
        self.rank = rank
        self._requests = requests
        self._ack = ack
        self._shard_rank = shard_rank
        # shard sub-stores are synchronous in the master implementation;
        # mirror that so the worker's cost accounting branches match.
        self._is_async = is_async and shard_rank is None
        self.writer = _WriterShim(depth) if self._is_async else None
        self.last_write_nbytes = 0
        self.last_write_kind = KIND_FULL
        self.last_write_stats: dict | None = None
        #: when the master store is a CAS store this is its boundary
        #: policy and writes go through the chunk-ref protocol.
        self.chunk_params = chunk_params
        #: worker-side change-detection baseline, mirroring the CAS
        #: store's: field -> (value hash, refs).  Skips re-chunking and
        #: re-hashing fields that didn't move between checkpoints.
        self._cas_base: dict[str, tuple[bytes, list]] = {}
        self._shard_cache: dict[int, FunnelStore] = {}
        #: the rank's shared-memory data plane, wired post-fork by the
        #: worker (the client objects themselves are built pre-fork).
        self.plane: "DataPlane | None" = None

    # ------------------------------------------------------------------
    @property
    def is_async(self) -> bool:
        return self._is_async

    def shard(self, rank: int) -> "FunnelStore":
        if self._shard_rank is not None:
            raise ValueError("shard stores cannot be sharded again")
        # cached so the shard's chunk baseline survives across
        # checkpoints, like the master store's cached shard sub-stores.
        sub = self._shard_cache.get(rank)
        if sub is None:
            sub = self._make_shard(rank)
            self._shard_cache[rank] = sub
        sub.plane = self.plane
        return sub

    def _make_shard(self, rank: int) -> "FunnelStore":
        return FunnelStore(rank=self.rank, requests=self._requests,
                           ack=self._ack, is_async=False, depth=0,
                           shard_rank=rank, chunk_params=self.chunk_params)

    # ------------------------------------------------------------------
    def _rpc(self, op: str, payload) -> tuple:
        self._requests.put((op, self.rank, self._shard_rank, payload))
        status, a, b, stats = self._ack.get(timeout=120.0)
        if status != "ok":
            raise RuntimeError(f"checkpoint funnel failed in parent:\n{a}")
        return a, b, stats

    def write(self, snap: "Snapshot") -> None:
        from repro.trace import schema as _tc
        from repro.trace.plane import tracer as trace_writer

        tr = trace_writer()
        tw0 = perf_counter() if tr.active else 0.0
        if self.chunk_params is not None:
            nbytes = self._write_chunked(snap)
            if tr.active:
                tr.span(_tc.CKPT_FUNNEL, tw0, a=float(nbytes))
            return
        payload: "Snapshot | PackedSnapshot" = snap
        if self.plane is not None:
            # large array fields ride slabs; the synchronous ack below
            # bounds the lease (the parent recycles before replying).
            payload = PackedSnapshot.pack(snap, self.plane)
        nbytes, kind, stats = self._rpc(_OP_WRITE, payload)
        self.last_write_nbytes = nbytes
        self.last_write_kind = kind
        self.last_write_stats = stats
        # the funnel round-trip is the worker's real checkpoint-write
        # cost (pack + ship + parent write + ack); covers the framed-TCP
        # variant too, which only overrides ``_rpc``.
        if tr.active:
            tr.span(_tc.CKPT_FUNNEL, tw0, a=float(nbytes))

    # ------------------------------------------------------------------
    # the chunk-ref write protocol (CAS master store)
    # ------------------------------------------------------------------
    def _write_chunked(self, snap: "Snapshot") -> int:
        from repro.ckpt.chunker import chunk_refs
        from repro.ckpt.delta import content_hash_value
        from repro.trace import schema as _tc
        from repro.trace.plane import tracer as trace_writer
        from repro.util.serialization import dumps_portable

        tr = trace_writer()
        # 1. chunk + hash locally, skipping unchanged fields.
        tc0 = perf_counter() if tr.active else 0.0
        field_refs: dict[str, list] = {}
        blobs: dict[str, bytes] = {}
        new_base: dict[str, tuple[bytes, list]] = {}
        for name, value in snap.fields.items():
            vhash = content_hash_value(value)
            cached = self._cas_base.get(name)
            if cached is not None and cached[0] == vhash:
                refs = cached[1]
            else:
                blob = dumps_portable(value)
                blobs[name] = blob
                refs = [(d, b - a)
                        for d, a, b in chunk_refs(blob, self.chunk_params)]
            field_refs[name] = refs
            new_base[name] = (vhash, refs)
        if tr.active:
            tr.span(_tc.CKPT_CHUNK, tc0,
                    a=float(sum(len(r) for r in field_refs.values())))
        # 2. presence handshake: which digests must actually travel?
        tp0 = perf_counter() if tr.active else 0.0
        ordered: list[str] = []
        seen: set[str] = set()
        for refs in field_refs.values():
            for d, _ in refs:
                if d not in seen:
                    seen.add(d)
                    ordered.append(d)
        missing, _, _ = self._rpc(_OP_MISSING, ordered)
        try:
            nbytes, kind, stats = self._ship(snap, field_refs, blobs,
                                             set(missing))
        except RuntimeError as exc:
            if CAS_CHUNK_MISSING not in str(exc):
                raise
            # the handshake raced a GC in the parent: one retry with
            # every chunk payload aboard settles it.
            nbytes, kind, stats = self._ship(snap, field_refs, blobs, seen)
        if tr.active:
            tr.span(_tc.CKPT_PACK, tp0, a=float(len(missing)))
        self.last_write_nbytes = nbytes
        self.last_write_kind = kind
        self.last_write_stats = stats
        self._cas_base = new_base
        return nbytes

    def _ship(self, snap: "Snapshot", field_refs: dict, blobs: dict,
              needed: set) -> tuple:
        """One chunked-write RPC carrying the payloads in ``needed``."""
        from repro.util.serialization import dumps_portable

        payloads: dict[str, bytes] = {}
        for name, refs in field_refs.items():
            if not any(d in needed and d not in payloads for d, _ in refs):
                continue
            blob = blobs.get(name)
            if blob is None:
                # an unchanged (baseline-cached) field whose chunk the
                # parent nonetheless lacks: re-encode to slice it out.
                blob = dumps_portable(snap.fields[name])
            mv, off = memoryview(blob), 0
            for d, ln in refs:
                if d in needed and d not in payloads:
                    payloads[d] = bytes(mv[off:off + ln])
                off += ln
        cs = ChunkedSnapshot(app=snap.app,
                             safepoint_count=snap.safepoint_count,
                             mode=snap.mode, meta=snap.meta,
                             field_refs=field_refs)
        if self.plane is not None and payloads:
            import numpy as np

            # missing chunks ride the slab plane as one packed buffer.
            self.plane.start_pack()
            index = [(d, len(p)) for d, p in payloads.items()]
            buf = np.frombuffer(b"".join(payloads[d] for d, _ in index),
                                dtype=np.uint8)
            cs.chunk_index = index
            cs.chunk_data = self.plane.pack_exact(buf)
        else:
            cs.chunks = payloads
        return self._rpc(_OP_WRITE, cs)

    def flush(self) -> None:
        self._rpc(_OP_FLUSH, None)

    # ------------------------------------------------------------------
    def read(self, count: int):
        raise NotImplementedError(
            "checkpoint reads happen in the parent process (PhaseDriver)")

    def read_latest(self):
        raise NotImplementedError(
            "checkpoint reads happen in the parent process (PhaseDriver)")

    def counts(self) -> list[int]:
        raise NotImplementedError(
            "checkpoint listings happen in the parent process (PhaseDriver)")


# ---------------------------------------------------------------------------
# the framed-TCP funnel variant (sockets backend)
# ---------------------------------------------------------------------------
class SocketCheckpointFunnel(CheckpointFunnel):
    """Checkpoint funnel over length-prefixed TCP frames.

    The sockets backend's workers model ranks on *other physical
    nodes*, so their checkpoint traffic rides the same wire fabric as
    their collectives: each worker keeps one lazy connection to the
    parent's listener (bound pre-fork, so the address is picklable into
    the task) and exchanges framed request/reply pickles.  Requests
    from different ranks arrive on different connections; a lock
    serialises them into the (single-threaded) master store exactly as
    the queue drain does, so the bytes on disk are identical.
    """

    def __init__(self, store: "CheckpointStore", mpctx, nranks: int,
                 bind_host: str = "127.0.0.1") -> None:
        import socket

        self.store = store
        self._client = PoolClient()  # kept for interface parity (unused:
        # socket payloads are always inline, never slab descriptors)
        self._lock = threading.Lock()
        self._stopping = threading.Event()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((bind_host, 0))
        self._listener.listen()
        # bounded accept wait: stop() cannot count on a cross-thread
        # listener close interrupting a blocking accept().
        self._listener.settimeout(0.25)
        #: (host, port) the workers' stores dial.
        self.address: tuple[str, int] = self._listener.getsockname()
        self._thread: threading.Thread | None = None
        self._conn_threads: list[threading.Thread] = []
        self._conns: list = []

    def client(self, rank: int) -> "SocketFunnelStore":
        return SocketFunnelStore(
            rank=rank, address=self.address, is_async=self.store.is_async,
            depth=self.store.writer.depth if self.store.is_async else 0,
            chunk_params=getattr(self.store, "chunk_params", None))

    def start(self) -> None:
        self._thread = threading.Thread(target=self._accept_loop,
                                        daemon=True, name="ckpt-funnel-sk")
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stopping.set()
        try:
            self._listener.close()
        except OSError:
            pass
        for conn in self._conns:  # unblock serve threads parked in recv
            try:
                conn.shutdown(2)  # SHUT_RDWR
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        self._thread.join(timeout=10.0)
        self._thread = None
        for t in self._conn_threads:
            t.join(timeout=5.0)
        self._client.close_all()

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        import socket as _socket

        while not self._stopping.is_set():
            try:
                conn, _ = self._listener.accept()
            except _socket.timeout:
                continue
            except OSError:
                return  # listener closed: shutdown
            self._conns.append(conn)
            t = threading.Thread(target=self._serve_conn, args=(conn,),
                                 daemon=True, name="ckpt-funnel-conn")
            t.start()
            self._conn_threads.append(t)

    def _serve_conn(self, conn) -> None:
        import pickle

        from repro.dsm.socketmail import _LEN, _recv_exact

        with conn:
            while not self._stopping.is_set():
                head = _recv_exact(conn, _LEN.size)
                if head is None:
                    return  # worker exited; its connection died with it
                blob = _recv_exact(conn, _LEN.unpack(head)[0])
                if blob is None:
                    return
                op, _rank, shard_rank, payload = pickle.loads(blob)
                with self._lock:  # the master store is single-threaded
                    reply = self._handle(op, shard_rank, payload)
                out = pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL)
                try:
                    conn.sendall(_LEN.pack(len(out)) + out)
                except OSError:
                    return


class SocketFunnelStore(FunnelStore):
    """Worker side of the framed-TCP funnel: ``_rpc`` over one socket.

    Checkpoint payloads always travel inline — a shared-memory slab
    descriptor is meaningless on another physical node, so the
    ``plane`` attach the worker performs post-fork is deliberately
    swallowed (the property below).  Checkpoint bytes stay identical:
    plane on/off parity is a proven invariant of the queue funnel.
    """

    def __init__(self, rank: int, address: tuple[str, int], is_async: bool,
                 depth: int, shard_rank: int | None = None,
                 chunk_params: "ChunkParams | None" = None) -> None:
        super().__init__(rank=rank, requests=None, ack=None,
                         is_async=is_async, depth=depth,
                         shard_rank=shard_rank, chunk_params=chunk_params)
        self._address = address
        self._conn = None  # lazy: dialled post-fork on first RPC

    @property
    def plane(self) -> "DataPlane | None":
        return None

    @plane.setter
    def plane(self, value) -> None:  # noqa: ARG002 - see class docstring
        pass

    def _make_shard(self, rank: int) -> "SocketFunnelStore":
        return SocketFunnelStore(rank=self.rank, address=self._address,
                                 is_async=False, depth=0, shard_rank=rank,
                                 chunk_params=self.chunk_params)

    def _rpc(self, op: str, payload) -> tuple:
        import pickle
        import socket

        from repro.dsm.socketmail import _LEN, _recv_exact

        if self._conn is None:
            self._conn = socket.create_connection(self._address,
                                                  timeout=30.0)
            self._conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        blob = pickle.dumps((op, self.rank, self._shard_rank, payload),
                            protocol=pickle.HIGHEST_PROTOCOL)
        self._conn.sendall(_LEN.pack(len(blob)) + blob)
        head = _recv_exact(self._conn, _LEN.size)
        body = None if head is None \
            else _recv_exact(self._conn, _LEN.unpack(head)[0])
        if body is None:
            raise RuntimeError("checkpoint funnel connection closed")
        status, a, b, stats = pickle.loads(body)
        if status != "ok":
            raise RuntimeError(f"checkpoint funnel failed in parent:\n{a}")
        return a, b, stats
