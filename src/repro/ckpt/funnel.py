"""Cross-process checkpoint funnel: worker writes through the master store.

Worker processes must not write checkpoint files themselves: the master
:class:`~repro.ckpt.store.CheckpointStore` carries state that has to
stay consistent across phases — incremental delta baselines, adaptive
anchor policies, async-writer queues, byte accounting — and it lives in
the parent process, where the :class:`~repro.exec.driver.PhaseDriver`
reads checkpoints back for restarts and adaptations.

So checkpoint traffic is funnelled: a worker-side :class:`FunnelStore`
(the ``store`` its :class:`~repro.core.context.ExecutionContext` sees)
ships each snapshot over a request queue and blocks on a per-rank ack;
the parent-side :class:`CheckpointFunnel` drains requests on a thread
and performs the real ``write``/``flush`` against the master store (or
its per-rank shard sub-store for ``STRATEGY_LOCAL``), acking the bytes
written so the worker's virtual-time accounting matches what a
single-process run would charge.  Restart and adaptation chains then
work identically under every backend: the bytes on disk are produced by
the same store object either way.

Snapshot *bytes* ride the shared-memory data plane when the worker has
one (:class:`~repro.dsm.shm.DataPlane`): large array fields are copied
into leased slabs and the request queue carries only descriptors — the
parent copies them out, recycles the slots, and writes.  The write RPC
is synchronous (the worker blocks on the ack), so the slab borrow is
bounded and the field values the parent encodes are exactly the
captured ones; checkpoint bytes are bit-identical with and without the
plane.
"""

from __future__ import annotations

import queue as _queue
import threading
import traceback
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.ckpt.snapshot import KIND_FULL, Snapshot
from repro.dsm.shm import PoolClient, ShmRef

if TYPE_CHECKING:  # pragma: no cover
    from repro.ckpt.store import CheckpointStore
    from repro.dsm.shm import DataPlane

_OP_WRITE = "write"
_OP_FLUSH = "flush"
_OP_STOP = "stop"


@dataclass
class PackedSnapshot:
    """A snapshot whose large array fields travelled as slab refs.

    Only C-contiguous non-object arrays are packed — everything else
    stays inline — so unpacking reproduces bit-identical field values
    (and therefore bit-identical checkpoint bytes) in the parent.
    """

    app: str
    safepoint_count: int
    mode: str
    meta: dict[str, Any]
    fields: dict[str, Any] = field(default_factory=dict)

    @staticmethod
    def pack(snap: Snapshot, plane: "DataPlane") -> "PackedSnapshot":
        plane.start_pack()  # one snapshot = one lease budget
        fields = {name: plane.pack_exact(value)
                  for name, value in snap.fields.items()}
        return PackedSnapshot(app=snap.app,
                              safepoint_count=snap.safepoint_count,
                              mode=snap.mode, meta=snap.meta, fields=fields)

    def unpack(self, client: PoolClient) -> Snapshot:
        fields = {name: client.fetch(v) if isinstance(v, ShmRef) else v
                  for name, v in self.fields.items()}
        return Snapshot(app=self.app, safepoint_count=self.safepoint_count,
                        fields=fields, mode=self.mode, meta=self.meta)


@dataclass
class _WriterShim:
    """Enough of ``AsyncCheckpointWriter`` for the cost model's view."""

    depth: int


class CheckpointFunnel:
    """Parent side: drains worker checkpoint requests into the store."""

    def __init__(self, store: "CheckpointStore", mpctx, nranks: int) -> None:
        self.store = store
        self.requests = mpctx.Queue()
        self.acks = [mpctx.Queue() for _ in range(nranks)]
        self._thread: threading.Thread | None = None
        #: attach cache over the workers' slab rings (descriptor unpack).
        self._client = PoolClient()

    # ------------------------------------------------------------------
    def client(self, rank: int) -> "FunnelStore":
        """The store stand-in to hand to worker ``rank``."""
        return FunnelStore(
            rank=rank, requests=self.requests, ack=self.acks[rank],
            is_async=self.store.is_async,
            depth=self.store.writer.depth if self.store.is_async else 0)

    def start(self) -> None:
        """Begin serving; call *after* worker processes are spawned so a
        fork cannot duplicate the drain thread into a child."""
        self._thread = threading.Thread(target=self._serve, daemon=True,
                                        name="ckpt-funnel")
        self._thread.start()

    def stop(self) -> None:
        """Stop serving once every worker has exited; idempotent."""
        if self._thread is None:
            return
        self.requests.put((_OP_STOP, 0, None, None))
        self._thread.join(timeout=30.0)
        self._thread = None
        self._client.close_all()

    # ------------------------------------------------------------------
    def _handle(self, op: str, shard_rank, payload,
                store: "CheckpointStore | None" = None) -> tuple:
        """Perform one funnel request against the master store.

        Transport-independent: the queue drain below and the framed-TCP
        drain in :class:`SocketCheckpointFunnel` both feed it.  Never
        raises — errors travel back to the worker in the reply.

        ``store`` substitutes another destination for this one request —
        the service's fleet funnel routes each job's traffic to that
        job's namespaced sub-store through here.
        """
        base = self.store if store is None else store
        try:
            if op == _OP_WRITE:
                if isinstance(payload, PackedSnapshot):
                    payload = payload.unpack(self._client)
                target = (base if shard_rank is None
                          else base.shard(shard_rank))
                target.write(payload)
                return ("ok", target.last_write_nbytes,
                        target.last_write_kind)
            if op == _OP_FLUSH:
                base.flush()
                return ("ok", 0, KIND_FULL)
            return ("error", f"unknown funnel op {op!r}", None)
        except Exception:  # noqa: BLE001 - worker must not hang on us
            return ("error", traceback.format_exc(), None)

    def _serve(self) -> None:
        while True:
            try:
                op, rank, shard_rank, payload = self.requests.get(timeout=600.0)
            except _queue.Empty:  # orphaned funnel: give up quietly
                return
            if op == _OP_STOP:
                return
            self.acks[rank].put(self._handle(op, shard_rank, payload))


class FunnelStore:
    """Worker side: the minimal ``CheckpointStore`` surface a context uses.

    ``write``/``flush`` round-trip through the parent; ``shard(rank)``
    returns a view whose writes land in the master store's shard
    sub-store.  Reads are parent-only by design — the driver performs
    them — so they raise here.
    """

    def __init__(self, rank: int, requests, ack, is_async: bool,
                 depth: int, shard_rank: int | None = None) -> None:
        self.rank = rank
        self._requests = requests
        self._ack = ack
        self._shard_rank = shard_rank
        # shard sub-stores are synchronous in the master implementation;
        # mirror that so the worker's cost accounting branches match.
        self._is_async = is_async and shard_rank is None
        self.writer = _WriterShim(depth) if self._is_async else None
        self.last_write_nbytes = 0
        self.last_write_kind = KIND_FULL
        #: the rank's shared-memory data plane, wired post-fork by the
        #: worker (the client objects themselves are built pre-fork).
        self.plane: "DataPlane | None" = None

    # ------------------------------------------------------------------
    @property
    def is_async(self) -> bool:
        return self._is_async

    def shard(self, rank: int) -> "FunnelStore":
        if self._shard_rank is not None:
            raise ValueError("shard stores cannot be sharded again")
        sub = FunnelStore(rank=self.rank, requests=self._requests,
                          ack=self._ack, is_async=False, depth=0,
                          shard_rank=rank)
        sub.plane = self.plane
        return sub

    # ------------------------------------------------------------------
    def _rpc(self, op: str, payload) -> tuple[int, str]:
        self._requests.put((op, self.rank, self._shard_rank, payload))
        status, a, b = self._ack.get(timeout=120.0)
        if status != "ok":
            raise RuntimeError(f"checkpoint funnel failed in parent:\n{a}")
        return a, b

    def write(self, snap: "Snapshot") -> None:
        from time import perf_counter

        from repro.trace import schema as _tc
        from repro.trace.plane import tracer as trace_writer

        tr = trace_writer()
        tw0 = perf_counter() if tr.active else 0.0
        payload: "Snapshot | PackedSnapshot" = snap
        if self.plane is not None:
            # large array fields ride slabs; the synchronous ack below
            # bounds the lease (the parent recycles before replying).
            payload = PackedSnapshot.pack(snap, self.plane)
        nbytes, kind = self._rpc(_OP_WRITE, payload)
        self.last_write_nbytes = nbytes
        self.last_write_kind = kind
        # the funnel round-trip is the worker's real checkpoint-write
        # cost (pack + ship + parent write + ack); covers the framed-TCP
        # variant too, which only overrides ``_rpc``.
        if tr.active:
            tr.span(_tc.CKPT_FUNNEL, tw0, a=float(nbytes))

    def flush(self) -> None:
        self._rpc(_OP_FLUSH, None)

    # ------------------------------------------------------------------
    def read(self, count: int):
        raise NotImplementedError(
            "checkpoint reads happen in the parent process (PhaseDriver)")

    def read_latest(self):
        raise NotImplementedError(
            "checkpoint reads happen in the parent process (PhaseDriver)")

    def counts(self) -> list[int]:
        raise NotImplementedError(
            "checkpoint listings happen in the parent process (PhaseDriver)")


# ---------------------------------------------------------------------------
# the framed-TCP funnel variant (sockets backend)
# ---------------------------------------------------------------------------
class SocketCheckpointFunnel(CheckpointFunnel):
    """Checkpoint funnel over length-prefixed TCP frames.

    The sockets backend's workers model ranks on *other physical
    nodes*, so their checkpoint traffic rides the same wire fabric as
    their collectives: each worker keeps one lazy connection to the
    parent's listener (bound pre-fork, so the address is picklable into
    the task) and exchanges framed request/reply pickles.  Requests
    from different ranks arrive on different connections; a lock
    serialises them into the (single-threaded) master store exactly as
    the queue drain does, so the bytes on disk are identical.
    """

    def __init__(self, store: "CheckpointStore", mpctx, nranks: int,
                 bind_host: str = "127.0.0.1") -> None:
        import socket

        self.store = store
        self._client = PoolClient()  # kept for interface parity (unused:
        # socket payloads are always inline, never slab descriptors)
        self._lock = threading.Lock()
        self._stopping = threading.Event()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((bind_host, 0))
        self._listener.listen()
        # bounded accept wait: stop() cannot count on a cross-thread
        # listener close interrupting a blocking accept().
        self._listener.settimeout(0.25)
        #: (host, port) the workers' stores dial.
        self.address: tuple[str, int] = self._listener.getsockname()
        self._thread: threading.Thread | None = None
        self._conn_threads: list[threading.Thread] = []
        self._conns: list = []

    def client(self, rank: int) -> "SocketFunnelStore":
        return SocketFunnelStore(
            rank=rank, address=self.address, is_async=self.store.is_async,
            depth=self.store.writer.depth if self.store.is_async else 0)

    def start(self) -> None:
        self._thread = threading.Thread(target=self._accept_loop,
                                        daemon=True, name="ckpt-funnel-sk")
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stopping.set()
        try:
            self._listener.close()
        except OSError:
            pass
        for conn in self._conns:  # unblock serve threads parked in recv
            try:
                conn.shutdown(2)  # SHUT_RDWR
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        self._thread.join(timeout=10.0)
        self._thread = None
        for t in self._conn_threads:
            t.join(timeout=5.0)
        self._client.close_all()

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        import socket as _socket

        while not self._stopping.is_set():
            try:
                conn, _ = self._listener.accept()
            except _socket.timeout:
                continue
            except OSError:
                return  # listener closed: shutdown
            self._conns.append(conn)
            t = threading.Thread(target=self._serve_conn, args=(conn,),
                                 daemon=True, name="ckpt-funnel-conn")
            t.start()
            self._conn_threads.append(t)

    def _serve_conn(self, conn) -> None:
        import pickle

        from repro.dsm.socketmail import _LEN, _recv_exact

        with conn:
            while not self._stopping.is_set():
                head = _recv_exact(conn, _LEN.size)
                if head is None:
                    return  # worker exited; its connection died with it
                blob = _recv_exact(conn, _LEN.unpack(head)[0])
                if blob is None:
                    return
                op, _rank, shard_rank, payload = pickle.loads(blob)
                with self._lock:  # the master store is single-threaded
                    reply = self._handle(op, shard_rank, payload)
                out = pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL)
                try:
                    conn.sendall(_LEN.pack(len(out)) + out)
                except OSError:
                    return


class SocketFunnelStore(FunnelStore):
    """Worker side of the framed-TCP funnel: ``_rpc`` over one socket.

    Checkpoint payloads always travel inline — a shared-memory slab
    descriptor is meaningless on another physical node, so the
    ``plane`` attach the worker performs post-fork is deliberately
    swallowed (the property below).  Checkpoint bytes stay identical:
    plane on/off parity is a proven invariant of the queue funnel.
    """

    def __init__(self, rank: int, address: tuple[str, int], is_async: bool,
                 depth: int, shard_rank: int | None = None) -> None:
        super().__init__(rank=rank, requests=None, ack=None,
                         is_async=is_async, depth=depth,
                         shard_rank=shard_rank)
        self._address = address
        self._conn = None  # lazy: dialled post-fork on first RPC

    @property
    def plane(self) -> "DataPlane | None":
        return None

    @plane.setter
    def plane(self, value) -> None:  # noqa: ARG002 - see class docstring
        pass

    def shard(self, rank: int) -> "SocketFunnelStore":
        if self._shard_rank is not None:
            raise ValueError("shard stores cannot be sharded again")
        return SocketFunnelStore(rank=self.rank, address=self._address,
                                 is_async=False, depth=0, shard_rank=rank)

    def _rpc(self, op: str, payload) -> tuple[int, str]:
        import pickle
        import socket

        from repro.dsm.socketmail import _LEN, _recv_exact

        if self._conn is None:
            self._conn = socket.create_connection(self._address,
                                                  timeout=30.0)
            self._conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        blob = pickle.dumps((op, self.rank, self._shard_rank, payload),
                            protocol=pickle.HIGHEST_PROTOCOL)
        self._conn.sendall(_LEN.pack(len(blob)) + blob)
        head = _recv_exact(self._conn, _LEN.size)
        body = None if head is None \
            else _recv_exact(self._conn, _LEN.unpack(head)[0])
        if body is None:
            raise RuntimeError("checkpoint funnel connection closed")
        status, a, b = pickle.loads(body)
        if status != "ok":
            raise RuntimeError(f"checkpoint funnel failed in parent:\n{a}")
        return a, b
