"""Application-level checkpointing substrate.

Implements the paper's Section IV.A machinery:

* :class:`Snapshot` / :class:`CheckpointStore` — portable, checksummed,
  atomically-written checkpoint files containing the ``SafeData`` fields
  and the number of executed safe points.  The *master* checkpoint format
  is mode-independent: the same file restarts a sequential, shared-memory
  or distributed run (the key enabler of restart-based adaptation).
* :class:`RunLedger` — the paper's ``pcr`` module: marks a run as started /
  completed so the next start-up can detect that "the last execution was
  [not] concluded without failures" and enter replay mode.
* :class:`SafePointCounter` and :class:`ReplayState` — safe-point counting
  and the replay protocol: skip ignorable methods, count safe points, load
  the snapshot when the saved count is reached.
* :class:`CheckpointPolicy` family — "a checkpoint might be taken only
  after a set of safe points" (every-N, explicit counts, never).
* :class:`FailureInjector` — synthetic failures at a chosen safe point,
  standing in for the machine crashes the paper's cluster suffered.
* :class:`IncrementalCheckpointStore` + :class:`AnchorPolicy` — delta
  checkpointing: only changed fields are written between periodic full
  anchors, with chain-replay on restore.
* :class:`AsyncCheckpointWriter` — double-buffered background writer so
  the safe point pays only an in-memory copy; ``flush()`` is the
  durability barrier at adaptation/failure boundaries.
* :class:`CasCheckpointStore` + :class:`ChunkStore` — the checkpoint
  object store: content-defined chunking into a refcounted dedup CAS
  shared across shards, namespaces and jobs, with recipe checkpoints,
  parallel chunk-fetch restores and mark-and-sweep GC.
"""

from repro.ckpt.cas import CasCheckpointStore, ChunkCorrupt, ChunkStore
from repro.ckpt.chunker import ChunkParams
from repro.ckpt.delta import IncrementalCheckpointStore
from repro.ckpt.failure import FailureInjector, InjectedFailure
from repro.ckpt.policy import (
    AdaptiveAnchor,
    AlwaysAnchor,
    AnchorEvery,
    AnchorPolicy,
    AtCounts,
    CheckpointPolicy,
    EveryN,
    Never,
)
from repro.ckpt.replay import ReplayState, SafePointCounter
from repro.ckpt.snapshot import Snapshot
from repro.ckpt.store import CheckpointStore, RunLedger
from repro.ckpt.writer import AsyncCheckpointWriter, AsyncWriteFailed

__all__ = [
    "AdaptiveAnchor",
    "AlwaysAnchor",
    "AnchorEvery",
    "AnchorPolicy",
    "AsyncCheckpointWriter",
    "AsyncWriteFailed",
    "AtCounts",
    "CasCheckpointStore",
    "CheckpointPolicy",
    "CheckpointStore",
    "ChunkCorrupt",
    "ChunkParams",
    "ChunkStore",
    "EveryN",
    "FailureInjector",
    "IncrementalCheckpointStore",
    "InjectedFailure",
    "Never",
    "ReplayState",
    "RunLedger",
    "SafePointCounter",
    "Snapshot",
]
