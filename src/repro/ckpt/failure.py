"""Synthetic failure injection.

The paper evaluates restart behaviour after real resource failures; this
reproduction triggers them deterministically.  A :class:`FailureInjector`
arms a failure at a chosen safe-point count (optionally on a specific
rank); when the run reaches it, :class:`InjectedFailure` is raised, the
run ledger is left in the ``running`` state — exactly the footprint of a
crash — and the next execution's pcr check enters replay mode.

The injector fires once per arming: restarted runs pass the same safe
point without failing again (otherwise recovery could never make
progress), unless ``repeat`` is set for crash-loop testing.
"""

from __future__ import annotations

import threading


class InjectedFailure(RuntimeError):
    """The synthetic stand-in for a machine/resource crash."""

    def __init__(self, safepoint: int, rank: int | None = None) -> None:
        where = f" on rank {rank}" if rank is not None else ""
        super().__init__(f"injected failure at safe point {safepoint}{where}")
        self.safepoint = safepoint
        self.rank = rank


class FailureInjector:
    """Arms a failure at safe point ``fail_at`` (optionally rank-scoped)."""

    def __init__(self, fail_at: int | None = None, rank: int | None = None,
                 repeat: bool = False) -> None:
        self._lock = threading.Lock()
        self.fail_at = fail_at
        self.rank = rank
        self.repeat = repeat
        self._fired = False

    # ------------------------------------------------------------------
    @property
    def armed(self) -> bool:
        with self._lock:
            return self.fail_at is not None and (self.repeat or not self._fired)

    def arm(self, fail_at: int, rank: int | None = None) -> None:
        with self._lock:
            self.fail_at = fail_at
            self.rank = rank
            self._fired = False

    def disarm(self) -> None:
        with self._lock:
            self.fail_at = None
            self._fired = False

    def mark_fired(self) -> None:
        """Record that an armed failure fired in another process.

        Worker processes mutate their own *copy* of the injector; the
        multiprocessing backend calls this on the parent's instance when
        a rank reports an injected failure, so recovery relaunches do
        not re-fire a one-shot injection forever.
        """
        with self._lock:
            self._fired = True

    # -- pickling (the lock is process-local state) ---------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def check(self, count: int, rank: int | None = None) -> None:
        """Raise :class:`InjectedFailure` if the armed point is reached."""
        with self._lock:
            if self.fail_at is None or (self._fired and not self.repeat):
                return
            if count < self.fail_at:
                return
            if self.rank is not None and rank is not None and rank != self.rank:
                return
            self._fired = True
            fail_at = self.fail_at
        raise InjectedFailure(fail_at, rank)
